import pytest

from repro.analysis.regions import RegionLog
from repro.analysis.switching import (
    best_pair_at_granularity,
    oracle_switching_curve,
    pair_switch_time,
)


def _log(name, times, size=20):
    return RegionLog(name, "t", size, list(times))


class TestPairSwitchTime:
    def test_takes_min_per_region(self):
        a = _log("a", [10, 40, 10])
        b = _log("b", [20, 20, 20])
        assert pair_switch_time(a, b) == 10 + 20 + 10

    def test_symmetric(self):
        a = _log("a", [5, 9])
        b = _log("b", [7, 3])
        assert pair_switch_time(a, b) == pair_switch_time(b, a)

    def test_never_worse_than_either(self):
        a = _log("a", [5, 9, 2])
        b = _log("b", [7, 3, 4])
        t = pair_switch_time(a, b)
        assert t <= a.total_ps and t <= b.total_ps

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            pair_switch_time(_log("a", [1], 20), _log("b", [1], 40))

    def test_count_mismatch(self):
        with pytest.raises(ValueError):
            pair_switch_time(_log("a", [1, 2]), _log("b", [1]))


class TestBestPair:
    def test_finds_complementary_pair(self):
        logs = {
            "x": _log("x", [1, 100, 1, 100]),
            "y": _log("y", [100, 1, 100, 1]),
            "z": _log("z", [50, 50, 50, 50]),
        }
        pair, t = best_pair_at_granularity(logs, 1)
        assert pair == ("x", "y")
        assert t == 4

    def test_coarsening_erodes_complementarity(self):
        logs = {
            "x": _log("x", [1, 100, 1, 100]),
            "y": _log("y", [100, 1, 100, 1]),
        }
        _, fine = best_pair_at_granularity(logs, 1)
        _, coarse = best_pair_at_granularity(logs, 2)
        assert coarse > fine

    def test_needs_two(self):
        with pytest.raises(ValueError):
            best_pair_at_granularity({"x": _log("x", [1])}, 1)


class TestOracleCurve:
    def _logs(self):
        # "own" is mediocre everywhere; "fast_even"/"fast_odd" alternate
        return {
            "own": _log("own", [10] * 8),
            "fast_even": _log("fast_even", [2, 20, 2, 20, 2, 20, 2, 20]),
            "fast_odd": _log("fast_odd", [20, 2, 20, 2, 20, 2, 20, 2]),
        }

    def test_curve_points(self):
        curve = oracle_switching_curve("own", self._logs())
        assert curve.points[0][0] == 20           # finest granularity
        assert curve.points[0][1] == ("fast_even", "fast_odd")
        assert curve.points[0][2] == pytest.approx(400.0)  # 80/16 - 1

    def test_speedup_decreases_with_granularity(self):
        curve = oracle_switching_curve("own", self._logs())
        speedups = curve.speedups()
        assert speedups[0] >= speedups[-1]

    def test_missing_baseline(self):
        with pytest.raises(KeyError):
            oracle_switching_curve("nope", self._logs())

    def test_knee_granularity(self):
        curve = oracle_switching_curve("own", self._logs())
        assert curve.knee_granularity() >= 20

    def test_on_simulation(self, small_trace):
        from repro.analysis.regions import region_log
        from repro.uarch.config import core_config

        logs = {
            name: region_log(core_config(name), small_trace)
            for name in ("gcc", "vpr", "twolf")
        }
        curve = oracle_switching_curve("gcc", logs)
        assert len(curve.points) >= 3
        # oracle switching can never be slower than the baseline config
        assert all(s >= -1e-9 for s in curve.speedups())
