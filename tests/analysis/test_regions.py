import pytest

from repro.analysis.regions import RegionLog, region_log
from repro.uarch.config import core_config


def _log(times, size=20):
    return RegionLog("cfg", "trace", size, list(times))


class TestRegionLog:
    def test_total(self):
        assert _log([10, 20, 30]).total_ps == 60

    def test_coarsen_merges(self):
        log = _log([1, 2, 3, 4, 5, 6])
        coarse = log.coarsen(2)
        assert coarse.times_ps == [3, 7, 11]
        assert coarse.region_size == 40

    def test_coarsen_partial_tail(self):
        coarse = _log([1, 2, 3]).coarsen(2)
        assert coarse.times_ps == [3, 3]

    def test_coarsen_one_is_identity(self):
        log = _log([1, 2])
        assert log.coarsen(1) is log

    def test_coarsen_invalid(self):
        with pytest.raises(ValueError):
            _log([1]).coarsen(0)

    def test_coarsen_preserves_total(self):
        log = _log(list(range(1, 50)))
        assert log.coarsen(8).total_ps == log.total_ps


class TestRegionLogFromSimulation:
    def test_region_log_covers_trace(self, small_trace, gcc_core):
        log = region_log(gcc_core, small_trace, region_size=20)
        assert len(log.times_ps) == len(small_trace) // 20
        assert all(t > 0 for t in log.times_ps)

    def test_total_matches_run_time(self, small_trace, gcc_core):
        from repro.uarch.run import run_standalone

        log = region_log(gcc_core, small_trace, region_size=20)
        run = run_standalone(gcc_core, small_trace)
        # region boundaries are logged at end-of-committing-cycle, so totals
        # agree exactly when the length is a multiple of the region size
        assert log.total_ps == run.time_ps

    def test_partial_tail_region(self, gcc_core):
        from repro.isa.generator import generate_trace
        from repro.isa.workloads import workload_profile

        trace = generate_trace(workload_profile("gzip"), 1010, seed=2)
        log = region_log(gcc_core, trace, region_size=100)
        assert len(log.times_ps) == 11
