import pytest

from repro.isa.instructions import Instr, OpClass
from repro.isa.trace import Trace


def _make_trace(n=100):
    instrs = []
    for i in range(n):
        if i % 10 == 0:
            instrs.append(Instr(OpClass.LOAD, pc=4 * i, addr=64 * i))
        elif i % 10 == 5:
            instrs.append(Instr(OpClass.BRANCH, pc=4 * i, taken=i % 20 == 5))
        else:
            instrs.append(Instr(OpClass.IALU, pc=4 * i))
    return Trace("t", instrs, seed=1, phase_starts=[0, 50])


class TestTrace:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Trace("empty", [])

    def test_len_and_indexing(self):
        t = _make_trace(100)
        assert len(t) == 100
        assert t[0].op == OpClass.LOAD
        assert t[1].op == OpClass.IALU

    def test_iteration(self):
        t = _make_trace(30)
        assert sum(1 for _ in t) == 30

    def test_regions_exact(self):
        t = _make_trace(100)
        regions = list(t.regions(20))
        assert len(regions) == 5
        assert all(len(r) == 20 for r in regions)

    def test_regions_partial_tail(self):
        t = _make_trace(105)
        regions = list(t.regions(20))
        assert len(regions) == 6
        assert len(regions[-1]) == 5

    def test_regions_invalid(self):
        with pytest.raises(ValueError):
            list(_make_trace().regions(0))

    def test_op_histogram(self):
        t = _make_trace(100)
        hist = t.op_histogram()
        assert sum(hist.values()) == 100
        assert hist[OpClass.LOAD] == 10
        assert hist[OpClass.BRANCH] == 10

    def test_branch_count(self):
        assert _make_trace(100).branch_count() == 10

    def test_memory_footprint(self):
        t = _make_trace(100)
        # loads at addresses 0, 640, 1280 ... 64*90 -> 10 distinct 64B blocks
        assert t.memory_footprint(block=64) == 10
        assert t.memory_footprint(block=1024) <= 10

    def test_memory_footprint_invalid_block(self):
        with pytest.raises(ValueError):
            _make_trace().memory_footprint(block=0)

    def test_repr(self):
        assert "len=100" in repr(_make_trace(100))
