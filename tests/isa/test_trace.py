import pytest

from repro.isa.instructions import Instr, OpClass
from repro.isa.trace import Trace


def _make_trace(n=100):
    instrs = []
    for i in range(n):
        if i % 10 == 0:
            instrs.append(Instr(OpClass.LOAD, pc=4 * i, addr=64 * i))
        elif i % 10 == 5:
            instrs.append(Instr(OpClass.BRANCH, pc=4 * i, taken=i % 20 == 5))
        else:
            instrs.append(Instr(OpClass.IALU, pc=4 * i))
    return Trace("t", instrs, seed=1, phase_starts=[0, 50])


class TestTrace:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Trace("empty", [])

    def test_len_and_indexing(self):
        t = _make_trace(100)
        assert len(t) == 100
        assert t[0].op == OpClass.LOAD
        assert t[1].op == OpClass.IALU

    def test_iteration(self):
        t = _make_trace(30)
        assert sum(1 for _ in t) == 30

    def test_regions_exact(self):
        t = _make_trace(100)
        regions = list(t.regions(20))
        assert len(regions) == 5
        assert all(len(r) == 20 for r in regions)

    def test_regions_partial_tail(self):
        t = _make_trace(105)
        regions = list(t.regions(20))
        assert len(regions) == 6
        assert len(regions[-1]) == 5

    def test_regions_invalid(self):
        with pytest.raises(ValueError):
            list(_make_trace().regions(0))

    def test_op_histogram(self):
        t = _make_trace(100)
        hist = t.op_histogram()
        assert sum(hist.values()) == 100
        assert hist[OpClass.LOAD] == 10
        assert hist[OpClass.BRANCH] == 10

    def test_branch_count(self):
        assert _make_trace(100).branch_count() == 10

    def test_memory_footprint(self):
        t = _make_trace(100)
        # loads at addresses 0, 640, 1280 ... 64*90 -> 10 distinct 64B blocks
        assert t.memory_footprint(block=64) == 10
        assert t.memory_footprint(block=1024) <= 10

    def test_memory_footprint_invalid_block(self):
        with pytest.raises(ValueError):
            _make_trace().memory_footprint(block=0)

    def test_repr(self):
        assert "len=100" in repr(_make_trace(100))


class TestFingerprint:
    def _hand_trace(self):
        instrs = [
            Instr(int(OpClass.IALU), pc=0x10),
            Instr(int(OpClass.LOAD), pc=0x14, dep1=0, addr=0x1000),
            Instr(int(OpClass.BRANCH), pc=0x18, dep1=1, taken=True),
            Instr(int(OpClass.STORE), pc=0x1C, dep1=0, dep2=1, addr=0x2000),
        ]
        return Trace("hand", instrs, seed=7, phase_starts=[0, 2])

    def test_stable_across_constructions(self):
        assert (
            self._hand_trace().fingerprint()
            == self._hand_trace().fingerprint()
        )

    def test_stable_literal(self):
        # pinned digest: changing the hash recipe silently invalidates every
        # persistent cache, so it must be a deliberate, visible change
        # (recipe repro-trace/2: per-field sub-digests, streamable)
        assert self._hand_trace().fingerprint() == (
            "bbebd198e3ef9c27a2ab455d1e9b5318a9fa94f86200443a040b93c183992ec8"
        )

    def test_cached_on_instance(self):
        t = self._hand_trace()
        assert t.fingerprint() is t.fingerprint()

    def test_seed_and_name_distinguish(self):
        base = self._hand_trace()
        renamed = Trace("other", base.instructions, seed=7,
                        phase_starts=[0, 2])
        reseeded = Trace("hand", base.instructions, seed=8,
                         phase_starts=[0, 2])
        assert base.fingerprint() != renamed.fingerprint()
        assert base.fingerprint() != reseeded.fingerprint()

    def test_content_distinguishes(self):
        base = self._hand_trace()
        mutated = list(base.instructions)
        mutated[1] = Instr(int(OpClass.LOAD), pc=0x14, dep1=0, addr=0x1008)
        other = Trace("hand", mutated, seed=7, phase_starts=[0, 2])
        assert base.fingerprint() != other.fingerprint()

    def test_generated_traces_deterministic(self):
        from repro.isa.generator import generate_trace
        from repro.isa.workloads import workload_profile

        a = generate_trace(workload_profile("gcc"), 1500, seed=3)
        b = generate_trace(workload_profile("gcc"), 1500, seed=3)
        c = generate_trace(workload_profile("gcc"), 1500, seed=4)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()
