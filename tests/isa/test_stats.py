import pytest

from repro.isa.generator import generate_trace
from repro.isa.instructions import Instr, OpClass
from repro.isa.phases import (
    PhaseMix,
    branchy_phase,
    pointer_chase_phase,
    serial_chain_phase,
    stream_phase,
    wide_ilp_phase,
)
from repro.isa.stats import characterize, working_set_curve
from repro.isa.trace import Trace


def _mix(phase):
    return PhaseMix("m", [(phase, 1.0)])


class TestCharacterize:
    def test_mix_sums_to_one(self, small_trace):
        ch = characterize(small_trace)
        assert sum(ch.mix.values()) == pytest.approx(1.0)

    def test_serial_trace_low_ilp(self):
        serial = generate_trace(
            _mix(serial_chain_phase(chain_frac=1.0, dep1_frac=1.0,
                                    load_frac=0, store_frac=0, branch_frac=0,
                                    two_src_frac=0, mean_dwell=10**9)),
            2000, seed=1,
        )
        ch = characterize(serial)
        assert ch.ilp_ideal < 1.5
        assert ch.dep_frac > 0.95

    def test_ilp_trace_high_ilp(self):
        ilp = generate_trace(
            _mix(wide_ilp_phase(dep1_frac=0.05, two_src_frac=0.02,
                                mean_dwell=10**9)),
            2000, seed=1,
        )
        assert characterize(ilp).ilp_ideal > 10

    def test_branch_entropy_orders_predictability(self):
        good = generate_trace(
            _mix(branchy_phase(branch_bias=0.99, mean_dwell=10**9)), 4000, seed=1
        )
        bad = generate_trace(
            _mix(branchy_phase(branch_bias=0.6, mean_dwell=10**9)), 4000, seed=1
        )
        assert (
            characterize(bad).branch_entropy_bits
            > characterize(good).branch_entropy_bits
        )

    def test_stream_is_spatial(self):
        stream = generate_trace(
            _mix(stream_phase(seq_frac=1.0, stride=8, mean_dwell=10**9)),
            2000, seed=1,
        )
        assert characterize(stream).spatial_frac > 0.8

    def test_chase_footprint_scales(self):
        small = generate_trace(
            _mix(pointer_chase_phase(footprint=4096, mean_dwell=10**9)),
            3000, seed=1,
        )
        big = generate_trace(
            _mix(pointer_chase_phase(footprint=1 << 20, mean_dwell=10**9)),
            3000, seed=1,
        )
        assert (
            characterize(big).footprint_blocks
            > characterize(small).footprint_blocks
        )

    def test_reuse_high_for_tiny_footprint(self):
        tiny = generate_trace(
            _mix(pointer_chase_phase(footprint=1024, mean_dwell=10**9)),
            2000, seed=1,
        )
        assert characterize(tiny).reuse_short > 0.8

    def test_rows_renderable(self, small_trace):
        rows = characterize(small_trace).rows()
        assert len(rows) == 11
        assert all(len(r) == 2 for r in rows)

    def test_no_branches_no_entropy(self):
        t = Trace("x", [Instr(OpClass.IALU, 0) for _ in range(10)])
        ch = characterize(t)
        assert ch.branch_entropy_bits == 0.0
        assert ch.taken_frac == 0.0

    def test_phase_bookkeeping(self, small_trace):
        ch = characterize(small_trace)
        assert ch.phase_transitions == len(small_trace.phase_starts) - 1
        assert ch.mean_phase_dwell > 0


class TestWorkingSetCurve:
    def test_monotone_in_window(self, memory_trace):
        curve = working_set_curve(memory_trace, (64, 256, 1024))
        assert curve[64] <= curve[256] <= curve[1024]

    def test_no_memory_ops(self):
        t = Trace("x", [Instr(OpClass.IALU, 0) for _ in range(10)])
        curve = working_set_curve(t, (16,))
        assert curve == {16: 0.0}

    def test_invalid_window(self, memory_trace):
        with pytest.raises(ValueError):
            working_set_curve(memory_trace, (0,))

    def test_bounded_by_window(self, memory_trace):
        curve = working_set_curve(memory_trace, (128,))
        assert curve[128] <= 128
