from repro.isa.instructions import MEMORY_OPS, PRODUCING_OPS, Instr, OpClass


class TestOpClass:
    def test_values_stable(self):
        # the core's hot loop mirrors these integers; they must not move
        assert OpClass.IALU == 0
        assert OpClass.IMUL == 1
        assert OpClass.IDIV == 2
        assert OpClass.LOAD == 3
        assert OpClass.STORE == 4
        assert OpClass.BRANCH == 5
        assert OpClass.SYSCALL == 6
        assert OpClass.NOP == 7

    def test_producing_ops(self):
        assert OpClass.LOAD in PRODUCING_OPS
        assert OpClass.IALU in PRODUCING_OPS
        assert OpClass.STORE not in PRODUCING_OPS
        assert OpClass.BRANCH not in PRODUCING_OPS

    def test_memory_ops(self):
        assert MEMORY_OPS == {OpClass.LOAD, OpClass.STORE}


class TestInstr:
    def test_defaults(self):
        i = Instr(OpClass.IALU, pc=0x1000)
        assert i.dep1 == -1 and i.dep2 == -1
        assert i.addr == 0 and i.taken is False

    def test_produces(self):
        assert Instr(OpClass.LOAD, 0).produces
        assert Instr(OpClass.IMUL, 0).produces
        assert not Instr(OpClass.STORE, 0).produces
        assert not Instr(OpClass.BRANCH, 0).produces
        assert not Instr(OpClass.SYSCALL, 0).produces

    def test_is_mem(self):
        assert Instr(OpClass.LOAD, 0).is_mem
        assert Instr(OpClass.STORE, 0).is_mem
        assert not Instr(OpClass.IALU, 0).is_mem

    def test_repr(self):
        i = Instr(OpClass.BRANCH, pc=0x40, taken=True)
        assert "BRANCH" in repr(i)
        assert "taken=True" in repr(i)

    def test_slots(self):
        i = Instr(OpClass.IALU, 0)
        assert not hasattr(i, "__dict__")
