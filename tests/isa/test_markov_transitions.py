"""Tests of the explicit Markov transition matrices in PhaseMix."""

import pytest

from repro.isa.generator import generate_trace
from repro.isa.phases import PhaseMix, branchy_phase, wide_ilp_phase


def _phases():
    return [
        (wide_ilp_phase("a", mean_dwell=50), 1.0),
        (branchy_phase("b", mean_dwell=50), 1.0),
    ]


class TestValidation:
    def test_matrix_must_be_square(self):
        with pytest.raises(ValueError, match="transition matrix"):
            PhaseMix("m", _phases(), transitions=[[1.0]])

    def test_rows_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            PhaseMix("m", _phases(), transitions=[[0.5, 0.4], [0.5, 0.5]])

    def test_no_negative_probabilities(self):
        with pytest.raises(ValueError, match=">= 0"):
            PhaseMix("m", _phases(), transitions=[[1.5, -0.5], [0.5, 0.5]])

    def test_valid_matrix_accepted(self):
        mix = PhaseMix("m", _phases(), transitions=[[0.9, 0.1], [0.1, 0.9]])
        assert mix.transitions is not None


class TestBehaviour:
    def test_strict_alternation(self):
        # a permutation matrix forces a->b->a->b...
        mix = PhaseMix("m", _phases(), transitions=[[0.0, 1.0], [1.0, 0.0]])
        trace = generate_trace(mix, 3000, seed=4)
        # distinguish phases by pc base (index 0 -> 1<<20, 1 -> 2<<20)
        bases = [instr.pc >> 20 for instr in trace]
        # reconstruct the phase at each recorded boundary
        boundary_phases = [bases[start] for start in trace.phase_starts]
        for a, b in zip(boundary_phases, boundary_phases[1:]):
            assert a != b

    def test_sticky_chain_lengthens_dwell(self):
        sticky = PhaseMix(
            "m", _phases(), transitions=[[0.95, 0.05], [0.05, 0.95]]
        )
        flippy = PhaseMix(
            "m", _phases(), transitions=[[0.05, 0.95], [0.95, 0.05]]
        )
        t_sticky = generate_trace(sticky, 20_000, seed=4)
        t_flippy = generate_trace(flippy, 20_000, seed=4)
        assert len(t_sticky.phase_starts) < len(t_flippy.phase_starts)

    def test_absorbing_state(self):
        # once in phase b, never leaves
        mix = PhaseMix("m", _phases(), transitions=[[0.0, 1.0], [0.0, 1.0]])
        trace = generate_trace(mix, 5000, seed=4)
        boundary_phases = [
            trace[start].pc >> 20 for start in trace.phase_starts
        ]
        # after the first transition to b (base 2), it never changes back
        assert len(trace.phase_starts) <= 2

    def test_default_behaviour_unchanged(self):
        plain = PhaseMix("m", _phases())
        trace = generate_trace(plain, 5000, seed=4)
        assert len(trace.phase_starts) > 5
