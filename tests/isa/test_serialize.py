import pytest

from repro.isa.serialize import FORMAT_VERSION, load_trace, save_trace


class TestRoundTrip:
    def test_identical_after_reload(self, small_trace, tmp_path):
        path = tmp_path / "t.rtrc"
        save_trace(small_trace, path)
        loaded = load_trace(path)
        assert loaded.name == small_trace.name
        assert loaded.seed == small_trace.seed
        assert loaded.phase_starts == small_trace.phase_starts
        assert len(loaded) == len(small_trace)
        for a, b in zip(small_trace, loaded):
            assert (a.op, a.pc, a.dep1, a.dep2, a.addr, a.taken) == (
                b.op, b.pc, b.dep1, b.dep2, b.addr, b.taken
            )

    def test_simulation_identical_on_reload(self, small_trace, tmp_path, gcc_core):
        from repro.uarch.run import run_standalone

        path = tmp_path / "t.rtrc"
        save_trace(small_trace, path)
        loaded = load_trace(path)
        assert (
            run_standalone(gcc_core, loaded).time_ps
            == run_standalone(gcc_core, small_trace).time_ps
        )

    def test_file_is_compact(self, small_trace, tmp_path):
        path = tmp_path / "t.rtrc"
        save_trace(small_trace, path)
        # 34 bytes/instruction + header
        assert path.stat().st_size < len(small_trace) * 40 + 1024


class TestErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rtrc"
        path.write_bytes(b"NOPE" + b"\x00" * 64)
        with pytest.raises(ValueError, match="magic"):
            load_trace(path)

    def test_bad_version(self, small_trace, tmp_path):
        import json

        path = tmp_path / "t.rtrc"
        save_trace(small_trace, path)
        blob = path.read_bytes()
        header_len = int.from_bytes(blob[4:8], "little")
        header = json.loads(blob[8 : 8 + header_len].decode())
        header["version"] = FORMAT_VERSION + 1
        new_header = json.dumps(header).encode()
        path.write_bytes(
            blob[:4]
            + len(new_header).to_bytes(4, "little")
            + new_header
            + blob[8 + header_len:]
        )
        with pytest.raises(ValueError, match="version"):
            load_trace(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "nothing.rtrc")
