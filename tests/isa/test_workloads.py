import pytest

from repro.isa.generator import generate_trace
from repro.isa.workloads import BENCHMARKS, all_profiles, workload_profile


class TestWorkloadProfiles:
    def test_eleven_benchmarks(self):
        assert len(BENCHMARKS) == 11
        assert "eon" not in BENCHMARKS  # excluded in the paper too

    @pytest.mark.parametrize("bench", BENCHMARKS)
    def test_profile_exists_and_named(self, bench):
        mix = workload_profile(bench)
        assert mix.name == bench
        assert len(mix.entries) >= 3  # anchor + contrast + flavour

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            workload_profile("eon")

    def test_all_profiles_order(self):
        assert [m.name for m in all_profiles()] == list(BENCHMARKS)

    @pytest.mark.parametrize("bench", BENCHMARKS)
    def test_shared_heap_region(self, bench):
        mix = workload_profile(bench)
        assert all(p.region == "heap" for p, _ in mix.entries)

    @pytest.mark.parametrize("bench", BENCHMARKS)
    def test_generatable(self, bench):
        trace = generate_trace(workload_profile(bench), 500, seed=1)
        assert len(trace) == 500

    def test_dwell_scale_applied(self):
        from repro.isa.workloads import DWELL_SCALE

        assert DWELL_SCALE >= 2
        mix = workload_profile("gcc")
        # template dwells are a few hundred; scaled dwells are near 10^3
        assert all(p.mean_dwell >= 400 for p, _ in mix.entries)

    def test_profiles_are_distinct(self):
        fingerprints = set()
        for bench in BENCHMARKS:
            mix = workload_profile(bench)
            fingerprints.add(
                tuple((p.name, p.footprint, w) for p, w in mix.entries)
            )
        assert len(fingerprints) == 11
