import collections

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.generator import generate_trace, trace_phase_summary
from repro.isa.instructions import OpClass
from repro.isa.phases import (
    PhaseMix,
    PhaseType,
    branchy_phase,
    pointer_chase_phase,
    stream_phase,
    wide_ilp_phase,
)


def _mix(*phases_weights):
    return PhaseMix("test", list(phases_weights))


class TestDeterminism:
    def test_same_seed_identical(self):
        mix = _mix((wide_ilp_phase(), 1.0), (branchy_phase(), 1.0))
        a = generate_trace(mix, 1000, seed=3)
        b = generate_trace(mix, 1000, seed=3)
        for x, y in zip(a, b):
            assert (x.op, x.pc, x.dep1, x.dep2, x.addr, x.taken) == (
                y.op, y.pc, y.dep1, y.dep2, y.addr, y.taken
            )

    def test_different_seed_differs(self):
        mix = _mix((wide_ilp_phase(), 1.0))
        a = generate_trace(mix, 1000, seed=1)
        b = generate_trace(mix, 1000, seed=2)
        assert any(
            x.op != y.op or x.addr != y.addr for x, y in zip(a, b)
        )

    def test_length(self):
        mix = _mix((wide_ilp_phase(), 1.0))
        assert len(generate_trace(mix, 123, seed=0)) == 123

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            generate_trace(_mix((wide_ilp_phase(), 1.0)), 0)


class TestDependences:
    def test_producers_precede_consumers(self):
        mix = _mix((wide_ilp_phase(), 1.0), (pointer_chase_phase(), 1.0))
        trace = generate_trace(mix, 2000, seed=7)
        for seq, instr in enumerate(trace):
            assert instr.dep1 < seq
            assert instr.dep2 < seq

    def test_deps_reference_producers(self):
        mix = _mix((wide_ilp_phase(), 1.0))
        trace = generate_trace(mix, 2000, seed=7)
        for instr in trace:
            for dep in (instr.dep1, instr.dep2):
                if dep >= 0:
                    assert trace[dep].produces

    def test_pointer_chase_serialises_loads(self):
        phase = pointer_chase_phase(mean_dwell=10**9)
        trace = generate_trace(_mix((phase, 1.0)), 2000, seed=7)
        prev_load = -1
        checked = 0
        for seq, instr in enumerate(trace):
            if instr.op == OpClass.LOAD:
                if prev_load >= 0:
                    assert instr.dep1 == prev_load
                    checked += 1
                prev_load = seq
        assert checked > 50

    def test_no_deps_when_disabled(self):
        phase = PhaseType(
            "free", load_frac=0, store_frac=0, branch_frac=0,
            dep1_frac=0, two_src_frac=0, mean_dwell=10**9,
        )
        trace = generate_trace(_mix((phase, 1.0)), 500, seed=0)
        assert all(i.dep1 == -1 and i.dep2 == -1 for i in trace)


class TestMemoryBehaviour:
    def test_addresses_within_region(self):
        phase = stream_phase(footprint=64 * 1024, mean_dwell=10**9)
        trace = generate_trace(_mix((phase, 1.0)), 2000, seed=9)
        base = 1 << 26
        for instr in trace:
            if instr.is_mem:
                assert base <= instr.addr < base + 64 * 1024

    def test_shared_region(self):
        a = stream_phase("a", footprint=4096, region="heap")
        b = stream_phase("b", footprint=4096, region="heap")
        trace = generate_trace(_mix((a, 1.0), (b, 1.0)), 3000, seed=9)
        bases = {instr.addr >> 26 for instr in trace if instr.is_mem}
        assert len(bases) == 1

    def test_private_regions(self):
        a = stream_phase("a", footprint=4096)
        b = stream_phase("b", footprint=4096)
        trace = generate_trace(_mix((a, 1.0), (b, 1.0)), 3000, seed=9)
        bases = {instr.addr >> 26 for instr in trace if instr.is_mem}
        assert len(bases) == 2

    def test_stream_strides(self):
        phase = stream_phase(
            footprint=8 * 1024, stride=16, seq_frac=1.0, mean_dwell=10**9
        )
        trace = generate_trace(_mix((phase, 1.0)), 1000, seed=9)
        addrs = [i.addr for i in trace if i.is_mem]
        deltas = {b - a for a, b in zip(addrs, addrs[1:])}
        # pure sequential stream: constant stride except at wrap
        assert 16 in deltas
        assert all(d == 16 or d < 0 for d in deltas)

    def test_dense_object_walk(self):
        phase = PhaseType(
            "dense", load_frac=0.5, seq_frac=0.0, obj_words=4,
            footprint=64 * 1024, mean_dwell=10**9,
        )
        trace = generate_trace(_mix((phase, 1.0)), 800, seed=9)
        addrs = [i.addr for i in trace if i.is_mem]
        within = sum(1 for a, b in zip(addrs, addrs[1:]) if b - a == 8)
        # three of every four accesses continue the 4-word object
        assert within / len(addrs) > 0.5


class TestBranches:
    def test_bias_reflected_in_outcomes(self):
        phase = branchy_phase(branch_bias=0.95, mean_dwell=10**9)
        trace = generate_trace(_mix((phase, 1.0)), 8000, seed=9)
        per_pc = collections.defaultdict(list)
        for instr in trace:
            if instr.op == OpClass.BRANCH:
                per_pc[instr.pc].append(instr.taken)
        assert per_pc
        for outcomes in per_pc.values():
            if len(outcomes) < 30:
                continue
            frac = sum(outcomes) / len(outcomes)
            # each static branch follows one direction ~95% of the time
            assert frac > 0.85 or frac < 0.15

    def test_taken_frac_zero(self):
        phase = branchy_phase(
            branch_bias=1.0, taken_frac=0.0, mean_dwell=10**9
        )
        trace = generate_trace(_mix((phase, 1.0)), 2000, seed=9)
        assert all(
            not i.taken for i in trace if i.op == OpClass.BRANCH
        )

    def test_branch_pcs_stable(self):
        phase = branchy_phase(n_static_branches=4, mean_dwell=10**9)
        trace = generate_trace(_mix((phase, 1.0)), 2000, seed=9)
        pcs = {i.pc for i in trace if i.op == OpClass.BRANCH}
        assert len(pcs) == 4


class TestPhaseScheduling:
    def test_shares_follow_weight_times_dwell(self):
        a = wide_ilp_phase("a", mean_dwell=200)
        b = branchy_phase("b", mean_dwell=200)
        trace = generate_trace(_mix((a, 3.0), (b, 1.0)), 30000, seed=9)
        # distinguish by pc base: phase index 0 -> 1<<20, 1 -> 2<<20
        counts = collections.Counter(i.pc >> 20 for i in trace)
        share_a = counts[1] / len(trace)
        assert 0.65 < share_a < 0.85  # target 0.75

    def test_phase_starts_recorded(self):
        mix = _mix((wide_ilp_phase("a", mean_dwell=100), 1.0),
                   (branchy_phase("b", mean_dwell=100), 1.0))
        trace = generate_trace(mix, 5000, seed=9)
        summary = trace_phase_summary(trace)
        assert summary["transitions"] > 5
        assert 50 < summary["mean_dwell"] < 1500

    def test_single_phase_no_transitions(self):
        trace = generate_trace(
            _mix((wide_ilp_phase(mean_dwell=10**9), 1.0)), 1000, seed=0
        )
        assert len(trace.phase_starts) == 1


class TestSyscalls:
    def test_syscall_rate(self):
        phase = wide_ilp_phase(syscall_rate=0.01, mean_dwell=10**9)
        trace = generate_trace(_mix((phase, 1.0)), 5000, seed=9)
        n = sum(1 for i in trace if i.op == OpClass.SYSCALL)
        assert 10 < n < 150

    def test_no_syscalls_by_default(self):
        trace = generate_trace(_mix((wide_ilp_phase(), 1.0)), 2000, seed=9)
        assert all(i.op != OpClass.SYSCALL for i in trace)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 1000),
    length=st.integers(50, 400),
)
def test_generator_invariants(seed, length):
    """Property: any generated trace is structurally well-formed."""
    mix = _mix((wide_ilp_phase(), 2.0), (pointer_chase_phase(), 1.0))
    trace = generate_trace(mix, length, seed=seed)
    assert len(trace) == length
    for seq, instr in enumerate(trace):
        assert instr.dep1 < seq and instr.dep2 < seq
        if instr.is_mem:
            assert instr.addr > 0
        else:
            assert instr.addr == 0
