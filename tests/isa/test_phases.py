import pytest

from repro.isa.phases import (
    PHASE_TEMPLATES,
    PhaseMix,
    PhaseType,
    branchy_phase,
    compute_mul_phase,
    pointer_chase_phase,
    serial_chain_phase,
    stream_phase,
    wide_ilp_phase,
    windowed_mem_phase,
)

ALL_FACTORIES = [
    wide_ilp_phase,
    serial_chain_phase,
    pointer_chase_phase,
    windowed_mem_phase,
    stream_phase,
    branchy_phase,
    compute_mul_phase,
]


class TestPhaseTypeValidation:
    def test_mix_over_one_rejected(self):
        with pytest.raises(ValueError):
            PhaseType("bad", load_frac=0.6, store_frac=0.5)

    def test_bias_range(self):
        with pytest.raises(ValueError):
            PhaseType("bad", branch_bias=0.3)
        with pytest.raises(ValueError):
            PhaseType("bad", branch_bias=1.01)

    def test_footprint_positive(self):
        with pytest.raises(ValueError):
            PhaseType("bad", footprint=0)

    def test_stride_positive(self):
        with pytest.raises(ValueError):
            PhaseType("bad", stride=0)

    def test_dwell_positive(self):
        with pytest.raises(ValueError):
            PhaseType("bad", mean_dwell=0)

    def test_dep_window(self):
        with pytest.raises(ValueError):
            PhaseType("bad", dep_window=0)

    def test_body_size(self):
        with pytest.raises(ValueError):
            PhaseType("bad", body_size=2)

    def test_frozen(self):
        p = PhaseType("p")
        with pytest.raises(Exception):
            p.load_frac = 0.5


class TestFactories:
    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_factory_defaults_valid(self, factory):
        phase = factory()
        assert isinstance(phase, PhaseType)
        assert phase.mean_dwell >= 1

    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_factory_overrides(self, factory):
        phase = factory("custom", footprint=4096, mean_dwell=99)
        assert phase.name == "custom"
        assert phase.footprint == 4096
        assert phase.mean_dwell == 99

    def test_pointer_chase_flag(self):
        assert pointer_chase_phase().pointer_chase
        assert not stream_phase().pointer_chase

    def test_templates_list(self):
        assert len(PHASE_TEMPLATES) == 7


class TestPhaseMix:
    def test_needs_entries(self):
        with pytest.raises(ValueError):
            PhaseMix("empty", [])

    def test_unique_names(self):
        p = wide_ilp_phase("a")
        with pytest.raises(ValueError):
            PhaseMix("dup", [(p, 1.0), (p, 2.0)])

    def test_positive_weights(self):
        with pytest.raises(ValueError):
            PhaseMix("neg", [(wide_ilp_phase("a"), -1.0)])

    def test_accessors(self):
        mix = PhaseMix(
            "m", [(wide_ilp_phase("a"), 1.0), (branchy_phase("b"), 2.0)]
        )
        assert [p.name for p in mix.phase_types] == ["a", "b"]
        assert mix.weights == [1.0, 2.0]
