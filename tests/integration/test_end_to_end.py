"""Cross-module integration invariants."""

import pytest

from repro import (
    BENCHMARKS,
    ContestingSystem,
    core_config,
    generate_trace,
    run_contest,
    run_standalone,
    workload_profile,
)
from repro.util.stats import percent_change


class TestPublicApi:
    def test_quickstart_flow(self):
        trace = generate_trace(workload_profile("gcc"), 2000, seed=11)
        alone = run_standalone(core_config("gcc"), trace)
        both = run_contest(core_config("gcc"), core_config("vpr"), trace)
        assert alone.ipt > 0 and both.ipt > 0

    def test_all_that_is_exported_exists(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name)


class TestTimingConsistency:
    def test_contest_time_between_cores(self, small_trace):
        """Contested completion is at least as fast as the faster core's
        commit stream could deliver alone, minus model noise, and cannot be
        faster than a per-region oracle."""
        gcc, vpr = core_config("gcc"), core_config("vpr")
        t_gcc = run_standalone(gcc, small_trace).time_ps
        t_vpr = run_standalone(vpr, small_trace).time_ps
        both = run_contest(gcc, vpr, small_trace)
        assert both.time_ps <= max(t_gcc, t_vpr) * 1.02
        # a 5% better-than-everything bound would require oracle math; the
        # cheap sanity bound is the per-run minimum with generous headroom
        assert both.time_ps >= min(t_gcc, t_vpr) * 0.5

    def test_winner_stats_account_for_trace(self, small_trace):
        result = run_contest(
            core_config("gcc"), core_config("vpr"), small_trace
        )
        winner_key = [
            k for k in result.per_core if k.endswith(result.winner)
        ][0]
        assert result.per_core[winner_key].committed == len(small_trace)


class TestInjectionAblation:
    def test_injection_is_what_keeps_laggers_close(self, small_trace):
        """With a huge GRB latency, results arrive too late to inject; the
        follower must execute everything itself."""
        gcc, gap = core_config("gcc"), core_config("gap")
        near = run_contest(gcc, gap, small_trace, grb_latency_ns=1.0)
        far = run_contest(gcc, gap, small_trace, grb_latency_ns=10_000.0)
        near_inj = near.per_core["1:gap"].injected
        far_inj = far.per_core["1:gap"].injected
        assert far_inj < near_inj


class TestEveryBenchmarkEndToEnd:
    @pytest.mark.parametrize("bench", BENCHMARKS)
    def test_standalone_and_contested(self, bench):
        trace = generate_trace(workload_profile(bench), 1500, seed=2)
        own = run_standalone(core_config(bench), trace)
        assert own.instructions == 1500
        partner = "gcc" if bench != "gcc" else "vpr"
        result = run_contest(
            core_config(bench), core_config(partner), trace
        )
        assert result.instructions == 1500
        # contesting with the own core participating should not collapse
        assert percent_change(result.ipt, own.ipt) > -15.0


class TestNWayOrdering:
    def test_more_cores_never_much_worse(self, small_trace):
        two = ContestingSystem(
            [core_config("gcc"), core_config("vpr")], small_trace
        ).run()
        three = ContestingSystem(
            [core_config("gcc"), core_config("vpr"), core_config("twolf")],
            small_trace,
        ).run()
        assert three.ipt >= two.ipt * 0.95
