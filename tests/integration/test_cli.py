"""Tests of the repro-sim / repro-trace command-line tools."""

import pytest

from repro.cli import sim_main, trace_main


class TestReproSim:
    def test_standalone(self, capsys):
        assert sim_main(["gcc", "--core", "gcc", "--length", "2000"]) == 0
        out = capsys.readouterr().out
        assert "IPT" in out and "IPC" in out

    def test_default_core_is_own(self, capsys):
        assert sim_main(["gzip", "--length", "1500"]) == 0
        assert "gzip on gzip" in capsys.readouterr().out

    def test_contest(self, capsys):
        assert sim_main(
            ["gcc", "--core", "gcc", "--core", "vpr", "--length", "2000"]
        ) == 0
        out = capsys.readouterr().out
        assert "contested" in out
        assert "lead changes" in out

    def test_resync_policy_flag(self, capsys):
        assert sim_main(
            ["gcc", "--core", "gcc", "--core", "mcf", "--length", "1500",
             "--lagger-policy", "resync"]
        ) == 0

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            sim_main(["eon", "--core", "gcc"])

    def test_trace_file_input(self, tmp_path, capsys):
        out = tmp_path / "t.rtrc"
        trace_main(["generate", "gap", "--length", "1500", "--out", str(out)])
        capsys.readouterr()
        assert sim_main([str(out), "--core", "gap"]) == 0
        assert "gap on gap" in capsys.readouterr().out


class TestReproTrace:
    def test_generate_and_info(self, tmp_path, capsys):
        out = tmp_path / "t.rtrc"
        assert trace_main(
            ["generate", "gcc", "--length", "1200", "--out", str(out)]
        ) == 0
        assert out.exists()
        assert trace_main(["info", str(out)]) == 0
        text = capsys.readouterr().out
        assert "1200 instructions" in text

    def test_characterize_profile(self, capsys):
        assert trace_main(["characterize", "perl", "--length", "3000"]) == 0
        out = capsys.readouterr().out
        assert "ideal ILP" in out

    def test_characterize_file(self, tmp_path, capsys):
        out = tmp_path / "t.rtrc"
        trace_main(["generate", "mcf", "--length", "1500", "--out", str(out)])
        capsys.readouterr()
        assert trace_main(["characterize", str(out)]) == 0
        assert "Characterisation" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            trace_main([])
