"""Smoke tests: every example script runs to completion.

The slowest examples (full matrix builds) are exercised with a generous
timeout; they are part of the public deliverable and must not rot.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

FAST = [
    "quickstart.py",
    "oracle_switching.py",
    "latency_sensitivity.py",
    "trace_report.py",
]
SLOW = [
    "design_cmp.py",
    "explore_core.py",
    "customize_for_contesting.py",
    "multiprogram_queueing.py",
]


def _run(name, timeout):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize("name", FAST)
def test_fast_example(name):
    result = _run(name, timeout=240)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


@pytest.mark.parametrize("name", SLOW)
def test_slow_example(name):
    result = _run(name, timeout=600)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_all_examples_covered():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(FAST) | set(SLOW)
