"""The ext_faults experiment: graceful degradation, end to end."""

from repro.experiments import ext_faults
from repro.experiments.common import ExperimentContext
from repro.experiments.runner import EXPERIMENTS

#: relative slack on the monotone-degradation assertions: injection is a
#: hint mechanism, so losing a hint can occasionally reroute a cache/branch
#: interaction slightly in either direction
TOLERANCE = 0.02


def run_tiny():
    ctx = ExperimentContext(scale="tiny", benchmarks=("gcc",))
    return ext_faults.run(ctx)


class TestGracefulDegradation:
    def test_drop_sweep_monotone_down_to_standalone_floor(self):
        result = run_tiny()
        for bench, sweep in result.drop_ipt.items():
            clean, worst = sweep[0], sweep[-1]
            floor = result.standalone[bench]
            assert worst <= clean * (1 + TOLERANCE), (
                f"{bench}: dropping transfers should not speed the gang up"
            )
            for earlier, later in zip(sweep, sweep[1:]):
                assert later <= earlier * (1 + TOLERANCE), (
                    f"{bench}: IPT must degrade monotonically with drop "
                    f"rate (got {sweep})"
                )
            assert worst >= floor * (1 - TOLERANCE), (
                f"{bench}: degraded gang fell below the best standalone "
                f"core ({worst:.3f} < {floor:.3f})"
            )

    def test_killed_leader_runs_complete(self):
        result = run_tiny()
        for bench, killed in result.kills.items():
            assert len(killed) == len(result.kill_fractions)
            for winner, ipt in killed:
                assert winner != result.winners[bench]
                assert ipt > 0

    def test_registered_with_the_runner(self):
        assert "ext_faults" in EXPERIMENTS

    def test_render_mentions_both_tables(self):
        text = run_tiny().render()
        assert "GRB transfer drops" in text
        assert "leader killed" in text.lower()
