"""FaultPlan semantics: determinism, validation, rate fidelity."""

import pytest

from repro.faults import (
    XFER_CORRUPT,
    XFER_DELAY,
    XFER_DROP,
    XFER_OK,
    FaultPlan,
)


class TestDeterminism:
    def test_same_counter_same_fate(self):
        plan = FaultPlan(seed=7, drop_rate=0.3, corrupt_rate=0.2)
        fates = [plan.transfer_fault(0, 1, seq) for seq in range(500)]
        again = [plan.transfer_fault(0, 1, seq) for seq in range(500)]
        assert fates == again

    def test_decisions_independent_of_order(self):
        plan = FaultPlan(seed=7, drop_rate=0.5)
        forward = [plan.transfer_fault(0, 1, s) for s in range(100)]
        backward = [
            plan.transfer_fault(0, 1, s) for s in reversed(range(100))
        ]
        assert forward == list(reversed(backward))

    def test_seed_changes_placement(self):
        a = FaultPlan(seed=1, drop_rate=0.5)
        b = FaultPlan(seed=2, drop_rate=0.5)
        fates_a = [a.transfer_fault(0, 1, s) for s in range(200)]
        fates_b = [b.transfer_fault(0, 1, s) for s in range(200)]
        assert fates_a != fates_b

    def test_hops_are_independent_streams(self):
        plan = FaultPlan(seed=7, drop_rate=0.5)
        ab = [plan.transfer_fault(0, 1, s) for s in range(200)]
        ba = [plan.transfer_fault(1, 0, s) for s in range(200)]
        assert ab != ba


class TestRates:
    def test_observed_rates_track_configured(self):
        plan = FaultPlan(
            seed=3, drop_rate=0.3, corrupt_rate=0.1, delay_rate=0.2
        )
        n = 4000
        fates = [plan.transfer_fault(0, 1, s) for s in range(n)]
        assert abs(fates.count(XFER_DROP) / n - 0.3) < 0.03
        assert abs(fates.count(XFER_CORRUPT) / n - 0.1) < 0.03
        assert abs(fates.count(XFER_DELAY) / n - 0.2) < 0.03
        assert abs(fates.count(XFER_OK) / n - 0.4) < 0.03

    def test_zero_rates_never_fault(self):
        plan = FaultPlan(seed=3)
        assert not plan.perturbs_transfers
        assert all(
            plan.transfer_fault(0, 1, s) == XFER_OK for s in range(100)
        )

    def test_full_drop_always_drops(self):
        plan = FaultPlan(seed=3, drop_rate=1.0)
        assert all(
            plan.transfer_fault(0, 1, s) == XFER_DROP for s in range(100)
        )


class TestValidation:
    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(corrupt_rate=-0.1)

    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=0.6, corrupt_rate=0.6)

    def test_negative_knobs_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(delay_ns=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(kill_at_commit=-1)
        with pytest.raises(ValueError):
            FaultPlan(stall_cycles=-5)


class TestFingerprint:
    def test_every_field_participates(self):
        base = FaultPlan()
        assert base.fingerprint() != FaultPlan(seed=1).fingerprint()
        assert base.fingerprint() != FaultPlan(drop_rate=0.1).fingerprint()
        assert base.fingerprint() != FaultPlan(kill_core=0).fingerprint()
        assert (
            base.fingerprint()
            != FaultPlan(stall_core=1, stall_cycles=10).fingerprint()
        )

    def test_equal_plans_equal_fingerprints(self):
        a = FaultPlan(seed=5, drop_rate=0.25)
        b = FaultPlan(seed=5, drop_rate=0.25)
        assert a == b
        assert a.fingerprint() == b.fingerprint()
