"""Fault injection through the contesting system, and the no-fault golden.

``golden_contest.json`` was captured from the pre-fault-injection build:
the encoded result of the reference contest below, byte for byte.  The
golden test pins the acceptance criterion that installing *no* plan leaves
``ContestingSystem.run`` output byte-identical to the pre-hook behaviour.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.core.system import ContestingSystem
from repro.engine.jobs import ContestJob, TraceSpec, resolve_trace
from repro.faults import FaultPlan
from repro.uarch.config import core_config

GOLDEN = Path(__file__).parent / "golden_contest.json"
SPEC = TraceSpec("gcc", 4000, seed=11)
#: cache key of the reference job with no fault plan — a ``faults=None``
#: job must keep hashing as if the field did not exist, so plan-free
#: entries in the persistent store stay addressable across the faults
#: feature (key regenerated at schema-version bumps)
PRE_FAULTS_KEY = (
    "acb1ac99b40affb2cceae5972bec864da8be51667ce6a24d7f1afe946a6c3d33"
)


def reference_job(faults=None) -> ContestJob:
    return ContestJob(
        configs=(core_config("gcc"), core_config("vpr")),
        trace=SPEC,
        grb_latency_ns=1.0,
        faults=faults,
    )


def run_system(faults):
    trace = resolve_trace(SPEC)
    system = ContestingSystem(
        [core_config("gcc"), core_config("vpr")], trace,
        grb_latency_ns=1.0, faults=faults,
    )
    return system.run(), system


class TestGolden:
    def test_no_plan_output_byte_identical_to_pre_fault_build(self):
        result = reference_job().run()
        encoded = json.dumps(
            dataclasses.asdict(result), indent=1, sort_keys=True
        )
        assert encoded == GOLDEN.read_text().rstrip("\n")

    def test_no_plan_cache_key_unchanged(self):
        assert reference_job().cache_key() == PRE_FAULTS_KEY

    def test_fault_plan_changes_the_cache_key(self):
        faulted = reference_job(FaultPlan(seed=3, drop_rate=0.25))
        assert faulted.cache_key() != PRE_FAULTS_KEY
        other = reference_job(FaultPlan(seed=4, drop_rate=0.25))
        assert other.cache_key() != faulted.cache_key()

    def test_default_plan_is_inert(self):
        clean, _ = run_system(None)
        noop, system = run_system(FaultPlan())
        assert noop == clean
        assert not system.fault_stats.any_faults


class TestTransferFaults:
    def test_drop_all_loses_every_injection_but_completes(self):
        clean, _ = run_system(None)
        result, system = run_system(FaultPlan(seed=3, drop_rate=1.0))
        assert sum(s.injected for s in result.per_core.values()) == 0
        assert result.instructions == clean.instructions
        assert system.fault_stats.dropped > 0

    def test_partial_drop_loses_some_hints(self):
        clean, _ = run_system(None)
        result, system = run_system(FaultPlan(seed=3, drop_rate=0.5))
        injected = sum(s.injected for s in result.per_core.values())
        clean_injected = sum(s.injected for s in clean.per_core.values())
        assert 0 < injected < clean_injected
        assert system.fault_stats.dropped > 0

    def test_corruption_recovers_through_resync(self):
        result, system = run_system(FaultPlan(seed=3, corrupt_rate=0.05))
        assert system.fault_stats.corrupted > 0
        if system.fault_stats.corrupt_consumed:
            assert system.fault_stats.recoveries > 0
            assert result.resyncs == system.fault_stats.recoveries

    def test_delay_charges_latency(self):
        result, system = run_system(
            FaultPlan(seed=3, delay_rate=0.5, delay_ns=20.0)
        )
        assert system.fault_stats.delayed > 0
        assert result.winner  # the run still completes


class TestCoreFaults:
    def test_killed_leader_run_completes_with_new_leader(self):
        # the acceptance scenario: kill the clean run's winner mid-run;
        # the survivor must finish the trace and win
        clean, _ = run_system(None)
        names = ["gcc", "vpr"]
        winner_id = names.index(clean.winner)
        result, system = run_system(
            FaultPlan(kill_core=winner_id, kill_at_commit=1000)
        )
        assert system.fault_stats.killed == [clean.winner]
        assert result.winner != clean.winner
        assert result.instructions == clean.instructions
        assert result.per_core[
            f"{1 - winner_id}:{result.winner}"
        ].committed == clean.instructions
        assert clean.winner in result.saturated

    def test_stall_window_burns_exactly_its_cycles(self):
        result, system = run_system(
            FaultPlan(stall_core=0, stall_at_cycle=500, stall_cycles=750)
        )
        assert system.fault_stats.stalled_cycles == 750
        assert result.winner

    def test_standalone_flip_stops_injections(self):
        result, system = run_system(
            FaultPlan(standalone_core=1, standalone_at_commit=200)
        )
        assert system.fault_stats.flipped == ["vpr"]
        assert result.winner  # the run still completes

    def test_faults_recorded_on_system_not_result(self):
        # the ContestResult schema is frozen (golden test above); fault
        # diagnostics live on the system object only
        result, _ = run_system(FaultPlan(seed=3, drop_rate=0.5))
        assert not hasattr(result, "fault_stats")


class TestEngineIntegration:
    def test_faulted_job_runs_through_the_engine(self):
        from repro.engine import SimEngine

        engine = SimEngine()
        clean = engine.run(reference_job())
        faulted = engine.run(reference_job(FaultPlan(seed=3, drop_rate=1.0)))
        assert engine.stats.misses == 2  # distinct cache identities
        assert sum(s.injected for s in faulted.per_core.values()) == 0
        assert sum(s.injected for s in clean.per_core.values()) > 0
