"""Metrics JSONL snapshots, run manifests, and the store sidecar."""

import json

from repro.engine.store import ResultStore
from repro.telemetry import (
    StatRegistry,
    build_manifest,
    config_hash,
    metrics_snapshot,
    write_manifest,
    write_metrics_jsonl,
)


def sample_registry():
    reg = StatRegistry()
    reg.counter("grb.transfers", "results", "transfers").inc(42)
    reg.histogram("core0.retired_ops", "instructions", "ops").add("load", 7)
    return reg


class TestMetricsSnapshots:
    def test_snapshot_embeds_meta_and_described_stats(self):
        snap = metrics_snapshot(sample_registry(), meta={"bench": "gcc"})
        assert snap["schema"] == 1
        assert snap["meta"] == {"bench": "gcc"}
        assert snap["stats"]["grb.transfers"]["value"] == 42
        assert snap["stats"]["grb.transfers"]["unit"] == "results"

    def test_jsonl_round_trip(self, tmp_path):
        snaps = [
            metrics_snapshot(sample_registry(), meta={"run": i})
            for i in range(3)
        ]
        path = write_metrics_jsonl(tmp_path / "m.jsonl", snaps)
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        assert [json.loads(line)["meta"]["run"] for line in lines] == [0, 1, 2]


class TestConfigHash:
    def test_stable_across_key_order(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_sensitive_to_values(self):
        assert config_hash({"scale": "small"}) != config_hash(
            {"scale": "default"}
        )


class TestRunManifest:
    def test_build_captures_engine_counters(self):
        from repro.engine import SimEngine

        engine = SimEngine()
        manifest = build_manifest(
            scale="small", experiments=["fig06"], jobs=2,
            cache_dir=None, no_cache=False, seed=11, wall_seconds=1.5,
            engine=engine,
        )
        assert manifest.engine_stats["misses"] == 0.0
        assert manifest.experiments == ("fig06",)
        assert len(manifest.config_hash) == 64

    def test_hash_ignores_outcome_fields(self):
        kwargs = dict(
            scale="small", experiments=["fig06"], jobs=1,
            cache_dir=None, no_cache=False, seed=11,
        )
        a = build_manifest(wall_seconds=1.0, **kwargs)
        b = build_manifest(wall_seconds=99.0, **kwargs)
        assert a.config_hash == b.config_hash  # wall time is outcome
        c = build_manifest(wall_seconds=1.0, **{**kwargs, "jobs": 4})
        assert c.config_hash != a.config_hash  # parallelism is config

    def test_write_manifest_is_valid_json(self, tmp_path):
        manifest = build_manifest(
            scale="default", experiments=[], jobs=1,
            cache_dir="default", no_cache=False, seed=11, wall_seconds=0.1,
        )
        path = write_manifest(tmp_path / "manifest.json", manifest)
        data = json.loads(path.read_text())
        assert data["config_hash"] == manifest.config_hash
        assert data["schema"] == 1


class TestStoreSidecar:
    def test_append_metrics_writes_next_to_results(self, tmp_path):
        store = ResultStore(tmp_path)
        snap = metrics_snapshot(sample_registry(), meta={"source": "test"})
        store.append_metrics(snap)
        store.append_metrics(snap)
        sidecar = store.metrics_path
        assert sidecar.parent == store.path.parent
        assert sidecar.name.endswith(".metrics.jsonl")
        lines = sidecar.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["meta"] == {"source": "test"}

    def test_sidecar_does_not_disturb_the_result_store(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append_metrics({"schema": 1, "meta": {}, "stats": {}})
        # a fresh load of the store must not see the sidecar as results
        reloaded = ResultStore(tmp_path)
        assert len(reloaded) == 0
        assert reloaded.corrupt_lines == 0
