"""Property-based metrics invariants across random configs and seeds.

Stdlib-only property testing: a seeded ``random.Random`` draws
(config, profile, length, seed) tuples, every run is replayable from the
printed draw, and the invariants hold for *all* draws:

* a completed standalone run retires exactly the trace length, and the
  tracer's retired counter agrees;
* the per-core retired-op histogram total equals the retired counter
  (histogram totals == counter sums);
* lead-change parity: the tracer's counter, its event stream, the
  ``ContestResult``, and ``analysis.switching.lead_changes_from_events``
  all report the same count.
"""

import random

import pytest

from repro.analysis.switching import lead_changes_from_events
from repro.core.system import ContestingSystem
from repro.isa.generator import generate_trace
from repro.isa.workloads import BENCHMARKS, workload_profile
from repro.telemetry import Tracer
from repro.uarch.config import APPENDIX_A_CORES, core_config
from repro.uarch.run import run_standalone

#: master seed; every draw below derives from it, so a failure names a
#: reproducible (config, profile, length, seed) tuple
MASTER_SEED = 20260806

N_STANDALONE_DRAWS = 6
N_CONTEST_DRAWS = 4


def standalone_draws():
    rng = random.Random(MASTER_SEED)
    draws = []
    for _ in range(N_STANDALONE_DRAWS):
        draws.append((
            rng.choice(sorted(APPENDIX_A_CORES)),
            rng.choice(sorted(BENCHMARKS)),
            rng.randrange(800, 2200),
            rng.randrange(1, 10_000),
        ))
    return draws


def contest_draws():
    rng = random.Random(MASTER_SEED + 1)
    draws = []
    for _ in range(N_CONTEST_DRAWS):
        names = rng.sample(sorted(APPENDIX_A_CORES), rng.choice((2, 2, 3)))
        draws.append((
            tuple(names),
            rng.choice(sorted(BENCHMARKS)),
            rng.randrange(1200, 2600),
            rng.randrange(1, 10_000),
            rng.choice((0.5, 1.0, 2.0)),
        ))
    return draws


@pytest.mark.parametrize(
    "config_name, profile, length, seed", standalone_draws()
)
def test_standalone_invariants(config_name, profile, length, seed):
    trace = generate_trace(workload_profile(profile), length, seed=seed)
    tracer = Tracer()
    result = run_standalone(core_config(config_name), trace, tracer=tracer)

    # retired == trace length, and the tracer saw every retirement
    assert result.stats.committed == length
    retired = tracer.registry["core0.retired"]
    assert retired.value == length

    # histogram totals == counter sums
    hist = tracer.registry["core0.retired_ops"]
    assert hist.total == retired.value
    assert tracer.registry["core0.cycles"].value == result.cycles
    assert tracer.registry["run.end_ts_ps"].value == float(result.time_ps)

    # every skip event the tracer recorded is a forward jump
    for event in tracer.events:
        assert event.name == "skip"
        assert event.args["to_cycle"] > event.args["from_cycle"]


@pytest.mark.parametrize(
    "config_names, profile, length, seed, latency_ns", contest_draws()
)
def test_contest_invariants(config_names, profile, length, seed, latency_ns):
    trace = generate_trace(workload_profile(profile), length, seed=seed)
    configs = [core_config(name) for name in config_names]
    tracer = Tracer()
    result = ContestingSystem(
        configs, trace, grb_latency_ns=latency_ns, tracer=tracer
    ).run()

    # lead-change parity: result == counter == event stream == analysis
    counter = tracer.registry["contest.lead_changes"].value
    events = [e for e in tracer.events if e.name == "lead_change"]
    assert counter == result.lead_changes
    assert len(events) == result.lead_changes
    assert lead_changes_from_events(tracer.events) == result.lead_changes

    # the winner retired the whole trace and the registry agrees
    winner_id = next(
        i for i, name in enumerate(config_names) if name == result.winner
    )
    assert tracer.registry[f"core{winner_id}.retired"].value == length

    # histogram totals == counter sums, per core (no resync in these
    # draws, so every retirement went through the pipeline)
    for core_id in range(len(configs)):
        hist = tracer.registry[f"core{core_id}.retired_ops"]
        assert hist.total == tracer.registry[f"core{core_id}.retired"].value

    # every GRB transfer was counted; with N cores each retirement
    # broadcasts to at most N-1 receivers
    transfers = tracer.registry["grb.transfers"].value
    total_retired = sum(
        tracer.registry[f"core{i}.retired"].value
        for i in range(len(configs))
    )
    assert 0 < transfers <= total_retired * (len(configs) - 1)


def test_lead_change_chain_is_validated():
    """The analysis helper rejects streams whose handoffs don't chain."""

    class FakeEvent:
        def __init__(self, src, dst):
            self.name = "lead_change"
            self.args = {"from": src, "to": dst}

    with pytest.raises(ValueError, match="held it"):
        lead_changes_from_events([FakeEvent(0, 1), FakeEvent(0, 1)])
    with pytest.raises(ValueError, match="holder"):
        lead_changes_from_events([FakeEvent(1, 1)])
