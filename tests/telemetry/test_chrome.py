"""Chrome trace_event export: structure a Perfetto load depends on."""

import json

from repro.telemetry import Tracer, chrome_trace, write_chrome_trace


def contest_tracer():
    """A hand-scripted 2-core contest: leader 0, one handoff each way."""
    tracer = Tracer()
    tracer.register_core(0, "gcc", 500)
    tracer.register_core(1, "vpr", 600)
    tracer.set_initial_leader(0)
    tracer.lead_change(2_000_000, 0, 1, 100)
    tracer.skip(2_500_000, 0, 40, 60, 10_000)
    tracer.lead_change(4_000_000, 1, 0, 200)
    tracer.grb_transfer(4_200_000, 0, 1, 201, 5)
    tracer.finalise_core(0, 300, 9000, 4_500_000)
    tracer.finalise_core(1, 280, 7000, 4_200_000)
    tracer.finish(4_500_000)
    return tracer


class TestEnvelope:
    def test_top_level_shape(self):
        obj = chrome_trace(contest_tracer())
        assert set(obj) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert isinstance(obj["traceEvents"], list)
        assert obj["otherData"]["cores"]["0"]["config"] == "gcc"
        assert obj["otherData"]["cores"]["1"]["period_ps"] == 600

    def test_process_and_thread_metadata(self):
        events = chrome_trace(contest_tracer())["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["name"] for e in meta}
        assert "process_name" in names
        threads = [e for e in meta if e["name"] == "thread_name"]
        assert {e["args"]["name"] for e in threads} == {
            "core0 (gcc)", "core1 (vpr)",
        }

    def test_serialised_file_is_loadable_json(self, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", contest_tracer())
        obj = json.loads(path.read_text())
        assert obj["traceEvents"]


class TestLeadSlices:
    def test_slices_tile_the_run_without_gaps(self):
        events = chrome_trace(contest_tracer())["traceEvents"]
        slices = [e for e in events if e["name"] == "lead"]
        assert [s["tid"] for s in slices] == [0, 1, 0]
        # contiguous: each slice starts where the previous ended
        for prev, cur in zip(slices, slices[1:]):
            assert prev["ts"] + prev["dur"] == cur["ts"]
        # and the final slice runs to the end-of-run timestamp (in us)
        last = slices[-1]
        assert last["ts"] + last["dur"] == 4_500_000 / 1e6

    def test_timestamps_are_microseconds(self):
        events = chrome_trace(contest_tracer())["traceEvents"]
        change = next(e for e in events if e["name"] == "lead_change")
        assert change["ts"] == 2_000_000 / 1e6

    def test_standalone_run_has_no_lead_slices(self):
        tracer = Tracer()
        tracer.register_core(0, "gcc", 500)
        tracer.finalise_core(0, 100, 500, 250_000)
        tracer.finish(250_000)
        events = chrome_trace(tracer)["traceEvents"]
        assert [e for e in events if e["name"] == "lead"] == []


class TestEventRendering:
    def test_skip_is_a_complete_slice_with_duration(self):
        events = chrome_trace(contest_tracer())["traceEvents"]
        skip = next(e for e in events if e["name"] == "skip")
        assert skip["ph"] == "X"
        assert skip["dur"] == 10_000 / 1e6
        assert skip["args"]["from_cycle"] == 40

    def test_instants_carry_args(self):
        events = chrome_trace(contest_tracer())["traceEvents"]
        change = next(e for e in events if e["name"] == "lead_change")
        assert change["ph"] == "i"
        assert change["args"] == {"from": 0, "to": 1, "seq": 100}

    def test_timeseries_become_counter_tracks(self):
        events = chrome_trace(contest_tracer())["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert any(
            e["name"] == "grb.fifo_occupancy.c1_from_c0" for e in counters
        )

    def test_full_detail_renders_grb_instants(self):
        tracer = Tracer(detail="full")
        tracer.register_core(0, "gcc", 500)
        tracer.register_core(1, "vpr", 600)
        tracer.grb_transfer(1000, 0, 1, 0, 1)
        tracer.finish(2000)
        events = chrome_trace(tracer)["traceEvents"]
        grb = [e for e in events if e["name"] == "grb_transfer"]
        assert len(grb) == 1 and grb[0]["ph"] == "i"
