"""Tracer event recording, sampling, and finalisation."""

import pytest

from repro.telemetry import Tracer
from repro.telemetry.tracer import OP_BUCKETS


def make_tracer(**kwargs):
    tracer = Tracer(**kwargs)
    tracer.register_core(0, "gcc", 500)
    tracer.register_core(1, "vpr", 600)
    tracer.set_initial_leader(0)
    return tracer


class TestConstruction:
    def test_rejects_unknown_detail(self):
        with pytest.raises(ValueError, match="detail"):
            Tracer(detail="everything")

    def test_rejects_nonpositive_sampling(self):
        with pytest.raises(ValueError, match="sample_every"):
            Tracer(sample_every=0)

    def test_register_core_returns_one_slot_per_op_class(self):
        tracer = Tracer()
        ops = tracer.register_core(0, "gcc", 500)
        assert ops == [0] * len(OP_BUCKETS)
        assert tracer.op_counts(0) is ops
        assert tracer.core_names == {0: "gcc"}
        assert tracer.core_periods == {0: 500}


class TestEvents:
    def test_lead_change_event_and_counter_agree(self):
        tracer = make_tracer()
        tracer.lead_change(1000, 0, 1, 42)
        tracer.lead_change(2000, 1, 0, 99)
        events = [e for e in tracer.events if e.name == "lead_change"]
        assert len(events) == 2
        assert tracer.registry["contest.lead_changes"].value == 2
        assert events[0].args == {"from": 0, "to": 1, "seq": 42}

    def test_skip_records_jump_and_cycle_sum(self):
        tracer = make_tracer()
        tracer.skip(5000, 0, 10, 30, 10000)
        tracer.skip(9000, 1, 5, 10, 3000)
        assert tracer.registry["skip.jumps"].value == 2
        assert tracer.registry["skip.cycles"].value == 25
        skip = next(e for e in tracer.events if e.name == "skip")
        assert skip.args["from_cycle"] == 10
        assert skip.args["dur_ps"] == 10000

    def test_fault_event_counts_by_kind(self):
        tracer = make_tracer()
        tracer.fault(100, 1, "kill", "vpr")
        tracer.fault(200, 0, "stall", "750 cycles")
        tracer.fault(300, 0, "stall", "750 cycles")
        assert tracer.registry["faults.events"].value == 3
        assert tracer.registry["faults.kill"].value == 1
        assert tracer.registry["faults.stall"].value == 2

    def test_saturated_and_resync_events(self):
        tracer = make_tracer()
        tracer.saturated(100, 1, "vpr")
        tracer.resync(200, 1, 4096)
        assert tracer.registry["contest.saturations"].value == 1
        assert tracer.registry["contest.resyncs"].value == 1
        assert [e.name for e in tracer.events] == ["saturated", "resync"]


class TestGrbDetailModes:
    def test_sampled_mode_counts_every_transfer_but_stores_no_events(self):
        tracer = make_tracer(sample_every=4)
        for seq in range(10):
            tracer.grb_transfer(seq * 100, 0, 1, seq, seq)
        assert tracer.registry["grb.transfers"].value == 10
        assert [e for e in tracer.events if e.name == "grb_transfer"] == []
        series = tracer.registry["grb.fifo_occupancy.c1_from_c0"]
        # transfers 0, 4, 8 are sampled (first always, then every 4th)
        assert series.samples == [(0, 0.0), (400, 4.0), (800, 8.0)]

    def test_full_mode_records_each_transfer(self):
        tracer = make_tracer(detail="full")
        tracer.grb_transfer(100, 0, 1, 7, 3)
        events = [e for e in tracer.events if e.name == "grb_transfer"]
        assert len(events) == 1
        assert events[0].args == {
            "sender": 0, "seq": 7, "occupancy": 3, "fate": "ok",
        }

    def test_faulted_transfer_fates_counted_separately(self):
        tracer = make_tracer()
        tracer.grb_transfer(100, 0, 1, 0, 1, fate=1)  # XFER_DROP
        tracer.grb_transfer(200, 0, 1, 1, 1, fate=2)  # XFER_CORRUPT
        tracer.grb_transfer(300, 0, 1, 2, 1, fate=3)  # XFER_DELAY
        assert tracer.registry["grb.transfers"].value == 3
        assert tracer.registry["grb.dropped"].value == 1
        assert tracer.registry["grb.corrupted"].value == 1
        assert tracer.registry["grb.delayed"].value == 1

    def test_links_sample_independently(self):
        tracer = make_tracer(sample_every=64)
        tracer.grb_transfer(100, 0, 1, 0, 1)
        tracer.grb_transfer(200, 1, 0, 0, 2)
        assert "grb.fifo_occupancy.c1_from_c0" in tracer.registry
        assert "grb.fifo_occupancy.c0_from_c1" in tracer.registry


class TestFinalisation:
    def test_finalise_folds_op_counts_into_histogram(self):
        tracer = make_tracer()
        ops = tracer.op_counts(0)
        ops[0] += 7   # ialu
        ops[3] += 2   # load
        tracer.finalise_core(0, committed=9, cycles=50, time_ps=25000)
        hist = tracer.registry["core0.retired_ops"]
        assert hist.snapshot_value() == {"ialu": 7, "load": 2}
        assert hist.total == tracer.registry["core0.retired"].value == 9
        assert tracer.registry["core0.cycles"].value == 50
        assert tracer.registry["core0.time_ps"].value == 25000.0

    def test_finalise_is_idempotent(self):
        tracer = make_tracer()
        tracer.op_counts(0)[0] += 4
        tracer.finalise_core(0, committed=4, cycles=10, time_ps=5000)
        tracer.finalise_core(0, committed=4, cycles=10, time_ps=5000)
        assert tracer.registry["core0.retired"].value == 4
        assert tracer.registry["core0.retired_ops"].total == 4

    def test_finish_stamps_end_of_run(self):
        tracer = make_tracer()
        tracer.finish(123456)
        assert tracer.end_ts_ps == 123456
        assert tracer.registry["run.end_ts_ps"].value == 123456.0
