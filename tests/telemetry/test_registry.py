"""StatRegistry semantics: declaration, conflicts, snapshots."""

import json

import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    StatRegistry,
    TimeSeries,
)


class TestDeclaration:
    def test_each_kind_declares_and_is_typed(self):
        reg = StatRegistry()
        assert isinstance(reg.counter("a", "events", "doc"), Counter)
        assert isinstance(reg.gauge("b", "ps", "doc"), Gauge)
        assert isinstance(reg.histogram("c", "ops", "doc"), Histogram)
        assert isinstance(reg.timeseries("d", "results", "doc"), TimeSeries)
        assert len(reg) == 4

    def test_redeclaration_is_idempotent(self):
        reg = StatRegistry()
        first = reg.counter("grb.transfers", "results", "doc")
        first.inc(5)
        again = reg.counter("grb.transfers", "results", "doc")
        assert again is first
        assert again.value == 5
        assert len(reg) == 1

    def test_kind_conflict_raises(self):
        reg = StatRegistry()
        reg.counter("x", "events")
        with pytest.raises(ValueError, match="already declared"):
            reg.gauge("x", "events")

    def test_unit_conflict_raises(self):
        reg = StatRegistry()
        reg.counter("x", "events")
        with pytest.raises(ValueError, match="already declared"):
            reg.counter("x", "cycles")

    def test_empty_name_rejected(self):
        reg = StatRegistry()
        with pytest.raises(ValueError):
            reg.counter("")


class TestStatBehaviour:
    def test_counter_monotonic(self):
        c = Counter("n", "events", "")
        c.inc()
        c.inc(3)
        assert c.value == 4
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_overwrites(self):
        g = Gauge("g", "ps", "")
        g.set(1.0)
        g.set(7.5)
        assert g.snapshot_value() == 7.5

    def test_histogram_total_equals_bucket_sum(self):
        h = Histogram("h", "ops", "")
        h.add("load", 3)
        h.add("store")
        h.add("load", 2)
        assert h.total == 6
        assert h.snapshot_value() == {"load": 5, "store": 1}
        with pytest.raises(ValueError):
            h.add("load", -1)

    def test_timeseries_preserves_sample_order(self):
        ts = TimeSeries("t", "results", "")
        ts.sample(100, 1.0)
        ts.sample(50, 2.0)  # order of recording, not of timestamps
        assert ts.snapshot_value() == [(100, 1.0), (50, 2.0)]


class TestAccessAndExport:
    def test_getitem_error_names_known_stats(self):
        reg = StatRegistry()
        reg.counter("known.one")
        with pytest.raises(KeyError, match="known.one"):
            reg["absent"]

    def test_iteration_is_sorted_by_name(self):
        reg = StatRegistry()
        reg.counter("zzz")
        reg.counter("aaa")
        reg.counter("mmm")
        assert [s.name for s in reg] == ["aaa", "mmm", "zzz"]

    def test_contains_and_get(self):
        reg = StatRegistry()
        reg.counter("present")
        assert "present" in reg
        assert "absent" not in reg
        assert reg.get("absent") is None

    def test_snapshot_and_describe_are_json_ready(self):
        reg = StatRegistry()
        reg.counter("c", "events", "count doc").inc(2)
        reg.gauge("g", "ps", "gauge doc").set(1.5)
        reg.histogram("h", "ops", "hist doc").add("ialu", 4)
        reg.timeseries("t", "results", "ts doc").sample(10, 3.0)
        snap = reg.snapshot()
        desc = reg.describe()
        json.dumps(snap)  # must not raise
        json.dumps(desc)
        assert snap == {
            "c": 2, "g": 1.5, "h": {"ialu": 4}, "t": [(10, 3.0)],
        }
        assert desc["c"] == {
            "kind": "counter", "unit": "events", "doc": "count doc",
            "value": 2,
        }
