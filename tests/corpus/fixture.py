"""Golden corpus fixtures: named workloads pinned end to end.

``tests/golden/corpus/corpus_golden.json`` pins, for a family-spanning
slice of the registry, the workload's grammar content hash, the streamed
trace fingerprint, the phase summary, and the timing result on one
Appendix-A configuration.  Any change to the grammar serialization, the
generator, the hash recipe, or the timing model shows up as a named cell;
an intended change is ratified by regenerating:

    PYTHONPATH=src python -m tests.corpus.regenerate
"""

import json
from pathlib import Path
from typing import Dict

from repro.corpus import PhaseSpec, WorkloadSpec, corpus_spec
from repro.isa.generator import trace_phase_summary
from repro.isa.stream import StreamingTrace
from repro.uarch.config import core_config
from repro.uarch.run import run_standalone

GOLDEN_PATH = (
    Path(__file__).parents[1] / "golden" / "corpus" / "corpus_golden.json"
)

#: one workload per single-phase family plus both paired shapes
WORKLOADS = (
    "corpus/wide_ilp-f64k-b92",
    "corpus/serial_chain-f16k-b98",
    "corpus/stream-f256k-b85",
    "corpus/branchy-f16k-b85",
    "corpus/windowed_mem-f1m-b92",
    "corpus/pointer_chase-f4m-b92",
    "corpus/compute_mul-f64k-b98",
    "corpus/branchy+compute_mul-r25-d1",
    "corpus/wide_ilp+stream-r50-d3",
)
LENGTH = 2500
SEED = 11
CONFIG = "gcc"


def compute_only_spec() -> WorkloadSpec:
    """A grammar workload inside the columnar envelope (no memory ops):
    shared by the streaming parity, memory-cap and throughput tests."""
    return WorkloadSpec(
        name="corpus/compute-only",
        phases=(
            PhaseSpec("compute_mul", params=(
                ("branch_bias", 0.95),
                ("branch_frac", 0.06),
                ("dep1_frac", 0.0),
                ("idiv_frac", 0.0),
                ("imul_frac", 0.05),
                ("load_frac", 0.0),
                ("store_frac", 0.0),
                ("two_src_frac", 0.0),
            )),
        ),
    )


def compute_goldens() -> Dict[str, Dict[str, object]]:
    """Pin every fixture workload: identity, content, and timing."""
    goldens: Dict[str, Dict[str, object]] = {}
    config = core_config(CONFIG)
    for name in WORKLOADS:
        spec = corpus_spec(name)
        trace = StreamingTrace(spec.build_mix(), LENGTH, seed=SEED)
        result = run_standalone(config, trace)
        goldens[name] = {
            "content_hash": spec.content_hash(),
            "fingerprint": trace.fingerprint(),
            "phases": trace_phase_summary(trace.materialise()),
            "instructions": result.instructions,
            "cycles": result.cycles,
            "time_ps": result.time_ps,
        }
    return goldens


def load_goldens() -> Dict[str, Dict[str, object]]:
    return json.loads(GOLDEN_PATH.read_text())


def save_goldens() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(compute_goldens(), indent=1, sort_keys=True) + "\n"
    )
