"""Property-based grammar tests (seeded sampling, no hypothesis).

Four properties over the sampled spec matrix: every sampled spec builds
and generates; generation is deterministic in (spec, seed); specs survive
a serialize/deserialize round trip with identical content hashes; and the
trace fingerprint is invariant under chunk size — the streamed hash at
chunk sizes 1, 64 and the default equals the materialised hash.
"""

import pytest

from repro.corpus import GRAMMAR_VERSION, PhaseSpec, WorkloadSpec
from repro.isa.generator import DEFAULT_CHUNK_SIZE, generate_trace
from repro.isa.stream import StreamingTrace
from repro.isa.trace import TraceHasher

from tests.corpus.sampling import sample_spec, sample_specs

N_SAMPLES = 20
LENGTH = 1200


@pytest.mark.parametrize("index", range(N_SAMPLES))
def test_every_sampled_spec_builds_and_generates(index):
    spec = sample_spec(index)
    mix = spec.build_mix()
    trace = generate_trace(mix, LENGTH, seed=index)
    assert len(trace) == LENGTH
    assert trace.name == spec.name


@pytest.mark.parametrize("index", range(0, N_SAMPLES, 4))
def test_generation_is_deterministic_in_spec_and_seed(index):
    spec = sample_spec(index)
    a = generate_trace(spec.build_mix(), LENGTH, seed=7)
    b = generate_trace(spec.build_mix(), LENGTH, seed=7)
    assert a.fingerprint() == b.fingerprint()
    other = generate_trace(spec.build_mix(), LENGTH, seed=8)
    assert other.fingerprint() != a.fingerprint()


def test_round_trip_preserves_spec_and_content_hash():
    for spec in sample_specs(N_SAMPLES):
        back = WorkloadSpec.from_dict(spec.to_dict())
        assert back == spec
        assert back.canonical_json() == spec.canonical_json()
        assert back.content_hash() == spec.content_hash()


def test_content_hash_is_sensitive_to_every_knob():
    base = sample_spec(0)
    variants = [
        WorkloadSpec(base.name, base.phases, dwell_scale=base.dwell_scale + 1),
        WorkloadSpec(base.name, base.phases, region="stack"),
        WorkloadSpec(base.name, base.phases, version=base.version + 1),
        WorkloadSpec("corpus/other", base.phases),
    ]
    hashes = {base.content_hash()} | {v.content_hash() for v in variants}
    assert len(hashes) == len(variants) + 1


@pytest.mark.parametrize("index", range(0, N_SAMPLES, 5))
def test_fingerprint_invariant_under_chunk_size(index):
    spec = sample_spec(index)
    materialised = generate_trace(spec.build_mix(), LENGTH, seed=11)
    want = materialised.fingerprint()
    for chunk_size in (1, 64, DEFAULT_CHUNK_SIZE):
        streamed = StreamingTrace(
            spec.build_mix(), LENGTH, seed=11, chunk_size=chunk_size
        )
        assert streamed.fingerprint() == want, (
            f"chunk_size={chunk_size} perturbed the fingerprint"
        )


def test_trace_hasher_chunking_cannot_affect_the_digest():
    """The v2 recipe property the docstrings promise, pinned directly."""
    trace = generate_trace(sample_spec(3).build_mix(), 300, seed=2)
    d = trace.decoded()
    whole = TraceHasher()
    whole.update(d.ops, d.pcs, d.deps1, d.deps2, d.addrs, d.takens)
    sliced = TraceHasher()
    for lo in range(0, 300, 7):  # uneven 7-instruction slices
        hi = min(lo + 7, 300)
        sliced.update(
            d.ops[lo:hi], d.pcs[lo:hi], d.deps1[lo:hi],
            d.deps2[lo:hi], d.addrs[lo:hi], d.takens[lo:hi],
        )
    args = (trace.name, trace.seed, trace.phase_starts)
    assert sliced.digest(*args) == whole.digest(*args)


class TestValidation:
    def test_unknown_template_rejected(self):
        with pytest.raises(ValueError, match="template"):
            PhaseSpec("not_a_template")

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="field"):
            PhaseSpec("branchy", params=(("no_such_knob", 1),))

    def test_reserved_params_rejected(self):
        for reserved in ("name", "region"):
            with pytest.raises(ValueError):
                PhaseSpec("branchy", params=((reserved, "x"),))

    def test_bad_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            PhaseSpec("branchy", weight=0.0)

    def test_duplicate_phase_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            WorkloadSpec(
                "corpus/dup",
                (PhaseSpec("branchy"), PhaseSpec("branchy")),
            )

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec("corpus/empty", ())

    def test_wrong_grammar_version_rejected(self):
        payload = sample_spec(0).to_dict()
        payload["grammar"] = GRAMMAR_VERSION + 1
        with pytest.raises(ValueError, match="grammar"):
            WorkloadSpec.from_dict(payload)

    def test_unknown_keys_rejected(self):
        payload = sample_spec(0).to_dict()
        payload["extra"] = 1
        with pytest.raises(ValueError):
            WorkloadSpec.from_dict(payload)

    def test_params_are_canonically_sorted(self):
        a = PhaseSpec("branchy", params=(("footprint", 64), ("seq_frac", 0.2)))
        b = PhaseSpec("branchy", params=(("seq_frac", 0.2), ("footprint", 64)))
        assert a == b
        assert a.params == tuple(sorted(a.params))
