"""Pin the golden corpus fixtures (see ``fixture.py``)."""

import pytest

from tests.corpus.fixture import (
    WORKLOADS,
    compute_goldens,
    load_goldens,
)

PINNED = ("content_hash", "fingerprint", "instructions", "cycles", "time_ps")


@pytest.fixture(scope="module")
def current():
    return compute_goldens()


@pytest.fixture(scope="module")
def golden():
    return load_goldens()


def test_fixture_covers_every_workload(golden):
    assert sorted(golden) == sorted(WORKLOADS)


@pytest.mark.parametrize("name", WORKLOADS)
def test_workload_matches_golden(name, current, golden):
    diffs = []
    for stat in PINNED:
        if current[name][stat] != golden[name][stat]:
            diffs.append(
                f"{name}: {stat} moved "
                f"{golden[name][stat]} -> {current[name][stat]}"
            )
    for key, want in golden[name]["phases"].items():
        got = current[name]["phases"][key]
        if got != pytest.approx(want):
            diffs.append(f"{name}: phases.{key} moved {want} -> {got}")
    assert not diffs, (
        "corpus output changed (regenerate with "
        "`python -m tests.corpus.regenerate` if intended):\n  "
        + "\n  ".join(diffs)
    )
