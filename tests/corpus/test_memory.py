"""Memory-cap regression: a million-instruction trace must stream.

The acceptance criterion for streaming generation is that trace length is
no longer bounded by resident memory: a 10^6-instruction workload
simulates to completion while peak RSS stays far below what materialising
the same trace demonstrably costs (~300 MB; streamed runs measure ~40 MB).
The run happens in a fresh subprocess so ``ru_maxrss`` reflects this
workload alone, not whatever the test session already touched.
"""

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

pytest.importorskip("numpy")  # the cap assumes the columnar fast path

SRC = Path(__file__).parents[2] / "src"
LENGTH = 1_000_000
#: generous against the measured ~40 MB streamed peak, far below the
#: ~300 MB a materialised run of the same recipe costs
CAP_MB = 160

_SCRIPT = textwrap.dedent(
    """
    import resource, sys
    sys.path.insert(0, {src!r})
    from repro.isa.stream import StreamingTrace
    from repro.uarch.config import core_config
    from repro.uarch.run import run_standalone
    from tests.corpus.fixture import compute_only_spec

    mix = compute_only_spec().build_mix()
    trace = StreamingTrace(mix, {length}, seed=11)
    result = run_standalone(core_config("gcc"), trace, backend="columnar")
    assert result.instructions == {length}, result.instructions
    peak_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    print(f"{{result.ipc:.6f}} {{peak_mb:.1f}}")
    """
)


def test_million_instruction_trace_streams_under_the_rss_cap():
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT.format(src=str(SRC), length=LENGTH)],
        capture_output=True,
        text=True,
        cwd=Path(__file__).parents[2],
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    ipc, peak_mb = proc.stdout.split()
    assert float(ipc) > 0
    assert float(peak_mb) < CAP_MB, (
        f"streaming run peaked at {peak_mb} MB (cap {CAP_MB} MB): "
        "the trace is being materialised somewhere"
    )


@pytest.mark.slow
def test_cap_is_not_vacuous_materialised_run_exceeds_it():
    """The companion measurement: materialising the same recipe busts the
    cap, so the assertion above genuinely distinguishes the two paths."""
    script = textwrap.dedent(
        """
        import resource, sys
        sys.path.insert(0, {src!r})
        from repro.isa.generator import generate_trace
        from tests.corpus.fixture import compute_only_spec

        trace = generate_trace(
            compute_only_spec().build_mix(), {length}, seed=11
        )
        trace.decoded()
        peak_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
        print(f"{{peak_mb:.1f}}")
        """
    )
    proc = subprocess.run(
        [sys.executable, "-c", script.format(src=str(SRC), length=LENGTH)],
        capture_output=True,
        text=True,
        cwd=Path(__file__).parents[2],
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert float(proc.stdout.strip()) > CAP_MB
