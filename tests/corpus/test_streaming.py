"""Streaming-vs-materialised differential parity.

The streaming trace's contract is *bit-identical* simulation: for any
profile, any backend, any chunk size, running the streamed trace must
produce exactly the result of running the materialised trace — every
stat, every per-region retire time at ``region_size=1``, every cache
counter.  The fast slice covers a representative spread on every push;
the ``slow``-marked full legacy matrix plus the sampled grammar matrix
runs nightly, like ``tests/differential/test_backend.py``.
"""

import dataclasses

import pytest

from repro.engine import SimEngine, StandaloneJob, TraceSpec
from repro.engine.jobs import resolve_trace
from repro.isa.stream import StreamingTrace
from repro.isa.trace import Trace
from repro.isa.workloads import BENCHMARKS, workload_profile
from repro.corpus import corpus_spec, resolve_profile
from repro.uarch.config import core_config
from repro.uarch.run import run_standalone

from tests.corpus.sampling import sample_specs
from tests.differential.diffutil import _assert_dicts_equal


def assert_streaming_identical(
    config, mix, length, seed=11, backend="reference", chunk_size=None,
    **kwargs,
):
    """Run materialised and streamed and require bit-identical results."""
    from repro.isa.generator import generate_trace

    materialised = generate_trace(mix, length, seed=seed)
    stream_kwargs = {} if chunk_size is None else {"chunk_size": chunk_size}
    streamed = StreamingTrace(mix, length, seed=seed, **stream_kwargs)
    want = run_standalone(config, materialised, backend=backend, **kwargs)
    got = run_standalone(config, streamed, backend=backend, **kwargs)
    _assert_dicts_equal(
        dataclasses.asdict(got),
        dataclasses.asdict(want),
        f"streaming {config.name} on {mix.name} [{backend}]",
    )
    assert streamed.fingerprint() == materialised.fingerprint()


# --- fast slice (every push) ------------------------------------------


@pytest.mark.parametrize("profile", ("gcc", "mcf", "twolf"))
def test_legacy_profile_parity_reference(profile):
    assert_streaming_identical(
        core_config(profile), workload_profile(profile), 3000,
        region_size=1,
    )


@pytest.mark.parametrize(
    "name", ("corpus/stream-f64k-b92", "corpus/wide_ilp+branchy-r50-d1")
)
def test_corpus_workload_parity_reference(name):
    assert_streaming_identical(
        core_config("gcc"), resolve_profile(name), 3000, region_size=1,
    )


def test_parity_at_tiny_chunk_sizes():
    # chunk boundaries inside every pipeline structure: the carried-state
    # paths (window eviction, backward reads) all exercise
    assert_streaming_identical(
        core_config("crafty"), workload_profile("vpr"), 2000,
        chunk_size=97, region_size=1,
    )


def test_columnar_backend_parity_streaming():
    np = pytest.importorskip("numpy")  # noqa: F841
    from repro.backend import get_backend

    # compute-only sampled grammar spec: the columnar fast path engages,
    # exercising the chunked scheduler's carried pipeline state
    from tests.corpus.fixture import compute_only_spec

    mix = compute_only_spec().build_mix()
    stats = get_backend("columnar").stats
    before = stats.fast_runs
    assert_streaming_identical(
        core_config("gcc"), mix, 4000, backend="columnar", region_size=1,
    )
    assert stats.fast_runs > before, "columnar fast path did not engage"


def test_columnar_fallback_parity_streaming():
    pytest.importorskip("numpy")
    # memory ops push this outside the columnar envelope: the certificate
    # routes to the reference loop, which must consume the stream too
    assert_streaming_identical(
        core_config("gcc"), workload_profile("gcc"), 2500,
        backend="columnar", region_size=1,
    )


def test_backward_access_restarts_generation():
    mix = workload_profile("gcc")
    trace = StreamingTrace(mix, 6000, seed=11, chunk_size=64)
    ops = trace.decoded().ops
    ops[5999]
    before = trace.restarts
    assert ops[0] == Trace("x", list(trace.materialise()), 11).decoded().ops[0]
    assert trace.restarts > before


class TestEngineIntegration:
    def test_stream_flag_keys_the_cache_separately(self):
        base = TraceSpec("gcc", 2000)
        streamed = TraceSpec("gcc", 2000, stream=True)
        job = StandaloneJob(core_config("gcc"), base)
        sjob = StandaloneJob(core_config("gcc"), streamed)
        assert job.cache_key() != sjob.cache_key()

    def test_streamed_job_result_equals_materialised(self):
        engine = SimEngine()
        config = core_config("gcc")
        want = engine.run(StandaloneJob(config, TraceSpec("gcc", 2000)))
        got = engine.run(
            StandaloneJob(config, TraceSpec("gcc", 2000, stream=True))
        )
        assert dataclasses.asdict(got) == dataclasses.asdict(want)

    def test_resolve_trace_returns_fresh_streams(self):
        spec = TraceSpec("gcc", 1000, stream=True)
        a = resolve_trace(spec)
        b = resolve_trace(spec)
        assert isinstance(a, StreamingTrace)
        assert a is not b  # no memo: windows/restart counters are not shared

    def test_corpus_spec_fingerprint_carries_the_content_hash(self):
        name = "corpus/serial_chain-f16k-b98"
        fp = TraceSpec(name, 2000).fingerprint()
        assert corpus_spec(name).content_hash()[:12] in fp
        assert TraceSpec(name, 2000, stream=True).fingerprint() == (
            fp + "/stream"
        )


# --- full matrix (nightly) --------------------------------------------


@pytest.mark.slow
@pytest.mark.parametrize("profile", BENCHMARKS)
def test_full_legacy_parity_matrix(profile):
    """All 11 legacy profiles, reference backend, retire streams pinned."""
    assert_streaming_identical(
        core_config(profile), workload_profile(profile), 6000,
        region_size=1,
    )


@pytest.mark.slow
@pytest.mark.parametrize("profile", BENCHMARKS[::2])
def test_full_legacy_parity_columnar(profile):
    pytest.importorskip("numpy")
    assert_streaming_identical(
        core_config("gcc"), workload_profile(profile), 6000,
        backend="columnar", region_size=1,
    )


@pytest.mark.slow
@pytest.mark.parametrize("index", range(10))
def test_sampled_grammar_parity_matrix(index):
    """Sampled grammar workloads on contrasting cores, both directions."""
    spec = sample_specs(10)[index]
    core = ("gcc", "mcf", "crafty")[index % 3]
    assert_streaming_identical(
        core_config(core), spec.build_mix(), 5000, region_size=1,
    )
    assert_streaming_identical(
        core_config(core), spec.build_mix(), 5000,
        chunk_size=256, region_size=1,
    )
