"""Registry invariants: naming, sizing, hashing, resolution, cache keys.

The registry is part of the cache identity (``profile_key`` feeds
``TraceSpec.fingerprint``), so these tests pin the properties a content
hash depends on: canonical serialization stability (one literal hash),
uniqueness across the corpus, and the exact key format.
"""

import re

import pytest

from repro.corpus import (
    corpus_names,
    corpus_spec,
    is_corpus_profile,
    profile_key,
    resolve_profile,
)
from repro.corpus.registry import CORPUS_PREFIX
from repro.isa.phases import PhaseMix
from repro.isa.workloads import BENCHMARKS

#: pinned canonical content hash of one registry entry: moves only if the
#: grammar serialization, the hash recipe, or the entry itself changes —
#: all of which invalidate cached results and must be deliberate
PINNED_NAME = "corpus/stream-f64k-b92"
PINNED_HASH = (
    "839932343ed238230146748661b40c6f04a8badfd8b52aaa00e5129079c78cf8"
)


def test_registry_size_is_pinned():
    # 7 templates x 5 footprints x 3 biases singles, plus
    # 21 template pairs x 3 ratios x 2 dwell scales
    assert len(corpus_names()) == 7 * 5 * 3 + 21 * 3 * 2 == 231


def test_names_are_sorted_unique_and_prefixed():
    names = corpus_names()
    assert list(names) == sorted(set(names))
    assert all(n.startswith(CORPUS_PREFIX) for n in names)
    assert not any(n in BENCHMARKS for n in names)


def test_content_hashes_are_unique_across_the_corpus():
    hashes = {corpus_spec(n).content_hash() for n in corpus_names()}
    assert len(hashes) == len(corpus_names())


def test_pinned_content_hash():
    assert corpus_spec(PINNED_NAME).content_hash() == PINNED_HASH
    assert profile_key(PINNED_NAME) == f"{PINNED_NAME}@{PINNED_HASH[:12]}"


def test_profile_key_formats():
    assert profile_key("gcc") == "gcc"  # legacy names key unchanged
    pattern = re.compile(r"corpus/[a-z0-9_+\-]+@[0-9a-f]{12}$")
    for name in corpus_names()[::23]:
        assert pattern.fullmatch(profile_key(name)), profile_key(name)


def test_profile_key_rejects_unknown_names():
    with pytest.raises(KeyError):
        profile_key("corpus/zzz")
    with pytest.raises(KeyError):
        profile_key("not_a_benchmark")


def test_is_corpus_profile():
    assert is_corpus_profile(PINNED_NAME)
    assert not is_corpus_profile("gcc")
    assert not is_corpus_profile("corpus/zzz")


def test_resolve_profile_covers_both_namespaces():
    assert isinstance(resolve_profile("gcc"), PhaseMix)
    mix = resolve_profile(PINNED_NAME)
    assert isinstance(mix, PhaseMix)
    assert mix.name == PINNED_NAME
    with pytest.raises(KeyError, match="corpus"):
        resolve_profile("corpus/zzz")


def test_registry_specs_round_trip():
    for name in corpus_names()[::29]:
        spec = corpus_spec(name)
        assert spec.name == name
        back = type(spec).from_dict(spec.to_dict())
        assert back == spec


def test_paired_workloads_weight_both_templates():
    mix = resolve_profile("corpus/branchy+compute_mul-r25-d1")
    assert len(mix.entries) == 2
    weights = sorted(w for _, w in mix.entries)
    assert weights == pytest.approx([0.25, 0.75])
