"""Corpus conformance suite: grammar properties, registry invariants,
streaming-vs-materialised parity, memory-cap enforcement, and golden
corpus fixtures (regenerate with ``python -m tests.corpus.regenerate``)."""
