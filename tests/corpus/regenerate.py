"""Regenerate the golden corpus fixtures after an *intended* change.

    PYTHONPATH=src python -m tests.corpus.regenerate

Rewrites ``tests/golden/corpus/corpus_golden.json``.  Review the diff
cell by cell before committing it — a moved content hash invalidates
every cached result keyed under that workload, and a moved fingerprint
or cycle count is a claim that the generator or timing model was supposed
to change.
"""

from tests.corpus.fixture import GOLDEN_PATH, save_goldens

if __name__ == "__main__":
    save_goldens()
    print(f"wrote {GOLDEN_PATH}")
