"""Seeded random workload-spec sampling for the property-based tests.

No hypothesis: a plain ``random.Random(seed)`` walk over curated parameter
pools, so every "random" case is replayable from its index and the sampled
matrix is identical on every run and machine.  Pools stay inside the
ranges :class:`repro.isa.phases.PhaseType` validates, so a sampled spec
failing to build is a grammar bug, not a sampler bug.
"""

import random
from typing import List

from repro.corpus import PhaseSpec, WorkloadSpec
from repro.isa.phases import PHASE_TEMPLATES

#: parameter pools: every value is individually valid for PhaseType
BIAS_POOL = (0.60, 0.75, 0.85, 0.92, 0.98)
FOOTPRINT_POOL = (16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024)
SEQ_POOL = (0.2, 0.5, 0.8)
STATIC_BRANCH_POOL = (4, 8, 16)
TAKEN_POOL = (0.3, 0.5, 0.7)
WEIGHT_POOL = (0.25, 0.5, 0.75)
DWELL_POOL = (1, 2, 3)


def sample_spec(index: int) -> WorkloadSpec:
    """The ``index``-th sampled workload spec (deterministic in index)."""
    rng = random.Random(0xC0 + index)
    n_phases = rng.choice((1, 2))
    templates = rng.sample(list(PHASE_TEMPLATES), n_phases)
    phases = []
    for i, template in enumerate(templates):
        params = (
            ("branch_bias", rng.choice(BIAS_POOL)),
            ("footprint", rng.choice(FOOTPRINT_POOL)),
            ("n_static_branches", rng.choice(STATIC_BRANCH_POOL)),
            ("seq_frac", rng.choice(SEQ_POOL)),
            ("taken_frac", rng.choice(TAKEN_POOL)),
        )
        weight = rng.choice(WEIGHT_POOL) if n_phases > 1 else 1.0
        phases.append(PhaseSpec(template, weight=weight, params=params))
    return WorkloadSpec(
        name=f"corpus/prop-{index}",
        phases=tuple(phases),
        dwell_scale=rng.choice(DWELL_POOL),
    )


def sample_specs(count: int) -> List[WorkloadSpec]:
    """The first ``count`` sampled specs."""
    return [sample_spec(i) for i in range(count)]
