"""Calibration invariants of the workload/core pairing (DESIGN.md §5).

These run at a meaningful trace scale (the experiment harness's "small"
preset), so this module is the slowest in the suite (~1 minute).  They pin
the properties the experiments depend on:

* diagonal dominance: each benchmark's best core is its own customised one
  (allowing the same thin margins the paper's own matrix shows),
* the overall-best single core is one of the balanced large-cache designs,
* every trace really varies at sub-thousand-instruction granularity, and
* contesting helps on average and never collapses.
"""

import pytest

from repro.experiments.common import ExperimentContext
from repro.util.stats import arithmetic_mean, harmonic_mean


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(scale="small")


@pytest.fixture(scope="module")
def matrix(ctx):
    return ctx.ipt_matrix()


class TestDiagonalDominance:
    def test_own_core_wins_or_nearly(self, matrix):
        """Every benchmark's own core is within 5% of its row maximum.

        The paper's own matrix contains sub-5% margins (perl's core beats
        crafty's on perl by only ~2.5%), so near-ties are faithful; outright
        large losses are not.
        """
        for bench, row in matrix.items():
            own = row[bench]
            best = max(row.values())
            assert own >= 0.95 * best, (
                f"{bench}: own {own:.3f} vs best {best:.3f}"
            )

    def test_strict_wins_majority(self, matrix):
        strict = sum(
            1 for bench, row in matrix.items()
            if max(row, key=row.get) == bench
        )
        assert strict >= 8

    def test_all_entries_positive(self, matrix):
        for row in matrix.values():
            assert all(v > 0 for v in row.values())


class TestOverallBestCore:
    def test_balanced_core_tops_har(self, matrix):
        cores = next(iter(matrix.values())).keys()
        har = {
            c: harmonic_mean(matrix[b][c] for b in matrix) for c in cores
        }
        best = max(har, key=har.get)
        # the HOM anchor must be one of the balanced large-cache cores (the
        # gcc core in the paper; gcc/twolf/bzip/vpr are the plausible set
        # on this substrate)
        assert best in {"gcc", "twolf", "bzip", "vpr"}

    def test_specialised_cores_not_overall_best(self, matrix):
        cores = next(iter(matrix.values())).keys()
        avg = {
            c: arithmetic_mean(matrix[b][c] for b in matrix) for c in cores
        }
        best = max(avg, key=avg.get)
        assert best not in {"mcf", "gap", "crafty", "perl"}


class TestFineGrainVariation:
    def test_oracle_gain_at_fine_grain(self, ctx):
        """Fine-grain switching headroom exists (the Section-2 premise)."""
        from repro.analysis.switching import oracle_switching_curve

        gains = []
        for bench in ("mcf", "perl", "vpr", "gcc"):
            curve = oracle_switching_curve(bench, ctx.region_logs(bench))
            gains.append(curve.points[0][2])
        assert arithmetic_mean(gains) > 5.0

    def test_oracle_decays_with_granularity(self, ctx):
        from repro.analysis.switching import oracle_switching_curve

        curve = oracle_switching_curve("vpr", ctx.region_logs("vpr"))
        speedups = curve.speedups()
        assert speedups[0] > speedups[-1]


class TestContestingHelps:
    def test_average_speedup_positive(self, ctx):
        from repro.util.stats import percent_change

        speedups = []
        for bench in ("mcf", "vpr", "gcc", "twolf", "parser"):
            pair, result = ctx.best_contest(bench)
            own = ctx.standalone_ipt(bench, bench)
            speedups.append(percent_change(result.ipt, own))
        assert arithmetic_mean(speedups) > 1.0
        assert max(speedups) > 4.0

    def test_no_collapse(self, ctx):
        from repro.util.stats import percent_change

        for bench in ("mcf", "vpr", "gcc"):
            _, result = ctx.best_contest(bench)
            own = ctx.standalone_ipt(bench, bench)
            assert percent_change(result.ipt, own) > -5.0
