"""Shared fixtures: small deterministic traces and core configurations.

Session-scoped where safe (traces are immutable by convention; cores are
constructed fresh per test).
"""

import pytest

from repro.isa.generator import generate_trace
from repro.isa.phases import (
    PhaseMix,
    PhaseType,
    branchy_phase,
    pointer_chase_phase,
    serial_chain_phase,
    wide_ilp_phase,
)
from repro.isa.workloads import workload_profile
from repro.uarch.config import core_config


@pytest.fixture(scope="session")
def small_trace():
    """A 3000-instruction gcc-profile trace (phase-diverse)."""
    return generate_trace(workload_profile("gcc"), 3000, seed=5)


@pytest.fixture(scope="session")
def tiny_trace():
    """A 600-instruction trace for the cheapest pipeline tests."""
    return generate_trace(workload_profile("gzip"), 600, seed=5)


@pytest.fixture(scope="session")
def ilp_trace():
    """Pure independent ALU work (no loads/branches/dependences)."""
    phase = PhaseType(
        "pure",
        load_frac=0.0,
        store_frac=0.0,
        branch_frac=0.0,
        dep1_frac=0.0,
        two_src_frac=0.0,
        footprint=1024,
        mean_dwell=10**9,
    )
    return generate_trace(PhaseMix("pure", [(phase, 1.0)]), 3000, seed=1)


@pytest.fixture(scope="session")
def serial_trace():
    """A strictly serial ALU chain (dependence-limited)."""
    phase = serial_chain_phase(
        "serial",
        load_frac=0.0,
        store_frac=0.0,
        branch_frac=0.0,
        chain_frac=1.0,
        dep1_frac=1.0,
        two_src_frac=0.0,
        mean_dwell=10**9,
    )
    return generate_trace(PhaseMix("serial", [(phase, 1.0)]), 2000, seed=1)


@pytest.fixture(scope="session")
def branchy_trace():
    """Branch-dense, poorly predictable."""
    phase = branchy_phase("bad", branch_bias=0.7, mean_dwell=10**9)
    return generate_trace(PhaseMix("branchy", [(phase, 1.0)]), 3000, seed=2)


@pytest.fixture(scope="session")
def memory_trace():
    """Pointer chasing over a footprint larger than small caches."""
    phase = pointer_chase_phase(
        "chase", footprint=512 * 1024, obj_words=2, zipf_skew=1.5,
        mean_dwell=10**9,
    )
    return generate_trace(PhaseMix("chase", [(phase, 1.0)]), 3000, seed=3)


@pytest.fixture(scope="session")
def store_trace():
    """Store-heavy trace for store-queue tests."""
    phase = PhaseType(
        "stores",
        load_frac=0.10,
        store_frac=0.30,
        branch_frac=0.05,
        footprint=32 * 1024,
        mean_dwell=10**9,
    )
    return generate_trace(PhaseMix("stores", [(phase, 1.0)]), 2000, seed=4)


@pytest.fixture(scope="session")
def syscall_trace():
    """Trace with occasional synchronous exceptions."""
    phase = wide_ilp_phase("sys", syscall_rate=0.002, mean_dwell=10**9)
    return generate_trace(PhaseMix("sys", [(phase, 1.0)]), 2500, seed=6)


@pytest.fixture
def gcc_core():
    return core_config("gcc")


@pytest.fixture
def mcf_core():
    return core_config("mcf")


@pytest.fixture
def crafty_core():
    return core_config("crafty")
