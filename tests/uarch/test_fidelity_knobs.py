"""Tests of the optional fidelity knobs: store-to-load forwarding, perfect
structures, and the shared cache level."""

import dataclasses

import pytest

from repro.isa.instructions import Instr, OpClass
from repro.isa.trace import Trace
from repro.uarch.cache import Cache, CacheConfig, CacheHierarchy
from repro.uarch.config import core_config
from repro.uarch.core import Core
from repro.uarch.run import run_standalone


def _forwarding_trace(n=1200):
    """A serial store->load chain: each load reads the word just stored and
    feeds the next store, so the load latency is on the critical path and
    the producing store is still in flight when the load issues."""
    instrs = []
    prev_load = -1
    for i in range(n):
        addr = 0x100000 + (i % 64) * 8
        if i % 2 == 0:
            # store's data comes from the previous load: it stays in
            # flight until that load completes
            instrs.append(
                Instr(OpClass.STORE, pc=4 * (i % 32), addr=addr,
                      dep1=prev_load)
            )
        else:
            instrs.append(
                Instr(OpClass.LOAD, pc=4 * (i % 32), addr=addr - 8,
                      dep1=prev_load)
            )
            prev_load = i
    return Trace("fwd", instrs)


class TestStoreForwarding:
    def test_off_by_default(self):
        assert core_config("gcc").store_forwarding is False

    def test_forwarding_speeds_up_store_load_pairs(self):
        trace = _forwarding_trace()
        base = core_config("mcf")  # slow 5-cycle L1 makes forwarding visible
        off = run_standalone(base, trace)
        on = run_standalone(
            dataclasses.replace(base, store_forwarding=True), trace
        )
        assert on.cycles < off.cycles

    def test_forwarding_correct_completion(self):
        trace = _forwarding_trace()
        cfg = dataclasses.replace(core_config("gcc"), store_forwarding=True)
        result = run_standalone(cfg, trace)
        assert result.instructions == len(trace)

    def test_store_words_drained_at_commit(self):
        trace = _forwarding_trace(300)
        cfg = dataclasses.replace(core_config("gcc"), store_forwarding=True)
        core = Core(cfg, trace)
        while not core.done:
            core.step()
        assert core._store_words == {}


class TestSharedLevel:
    def _l3(self):
        return CacheConfig(assoc=8, block=64, sets=4096, latency=1)

    def test_hierarchy_with_shared(self):
        shared = Cache(self._l3())
        h = CacheHierarchy(
            CacheConfig(1, 64, 2, 2), CacheConfig(2, 64, 4, 10), 100,
            shared_cache=shared, shared_latency=20,
        )
        # cold: l1 + l2 + l3-probe + memory
        assert h.access(0x40000) == 2 + 10 + 20 + 100
        # now resident in all levels; evict from tiny L1/L2 via conflicts
        for i in range(1, 30):
            h.access(0x40000 + i * 0x1000)
        lat = h.access(0x40000)
        assert lat in (2, 12, 132) or lat == 32  # L1/L2/L3 hit or re-miss

    def test_shared_latency_required(self):
        with pytest.raises(ValueError):
            CacheHierarchy(
                CacheConfig(1, 64, 2, 2), CacheConfig(2, 64, 4, 10), 100,
                shared_cache=Cache(self._l3()), shared_latency=0,
            )

    def test_contesting_with_shared_l3_completes(self, small_trace):
        from repro.core.system import ContestingSystem

        system = ContestingSystem(
            [core_config("gcc"), core_config("vpr")], small_trace,
            shared_l3=self._l3(),
        )
        result = system.run()
        assert result.instructions == len(small_trace)
        assert system.shared_l3 is not None

    def test_merged_stores_reach_shared_level(self, store_trace):
        from repro.core.system import ContestingSystem

        system = ContestingSystem(
            [core_config("gcc"), core_config("mcf")], store_trace,
            shared_l3=self._l3(),
        )
        result = system.run()
        assert result.merged_stores > 0
        assert system._merged_written == result.merged_stores
        assert system.shared_l3.accesses >= result.merged_stores
