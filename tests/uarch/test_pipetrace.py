import pytest

from repro.isa.instructions import Instr, OpClass
from repro.isa.trace import Trace
from repro.uarch.config import core_config
from repro.uarch.core import Core
from repro.uarch.pipetrace import TracingCore, pipetrace


def _trace(n=200):
    instrs = []
    for i in range(n):
        if i % 7 == 3:
            instrs.append(Instr(OpClass.LOAD, pc=4 * (i % 16), addr=0x1000 + 8 * i))
        elif i % 7 == 5:
            instrs.append(Instr(OpClass.BRANCH, pc=4 * (i % 16), taken=i % 2 == 0))
        else:
            instrs.append(Instr(OpClass.IALU, pc=4 * (i % 16), dep1=i - 1 if i % 3 == 0 else -1))
    return Trace("pt", instrs)


class TestPipeTrace:
    def test_all_instructions_traced(self):
        trace = pipetrace(Core(core_config("gcc"), _trace(100)))
        assert len(trace.timelines) == 100

    def test_stage_ordering(self):
        trace = pipetrace(Core(core_config("gcc"), _trace(150)))
        for t in trace.timelines.values():
            assert t.fetch >= 0
            assert t.dispatch >= t.fetch
            if t.issue >= 0:
                assert t.issue >= t.dispatch
            if t.complete >= 0 and t.issue >= 0:
                assert t.complete >= t.issue
            assert t.commit >= t.dispatch

    def test_commit_in_order(self):
        trace = pipetrace(Core(core_config("gcc"), _trace(150)))
        commits = [trace.timelines[s].commit for s in sorted(trace.timelines)]
        assert commits == sorted(commits)

    def test_limit_caps_memory(self):
        trace = pipetrace(Core(core_config("gcc"), _trace(200)), limit=50)
        assert len(trace.timelines) == 50

    def test_render_contains_glyphs(self):
        trace = pipetrace(Core(core_config("gcc"), _trace(80)))
        text = trace.render(start_seq=0, count=10)
        assert "F" in text and "R" in text
        assert "legend" in text

    def test_render_empty_range(self):
        trace = pipetrace(Core(core_config("gcc"), _trace(50)))
        assert "no instructions" in trace.render(start_seq=10_000)

    def test_injected_instructions_marked(self, small_trace):
        """In a contest, the trailing core's timelines carry the * marker
        and no issue stage."""
        from repro.core.system import ContestingSystem

        system = ContestingSystem(
            [core_config("gcc"), core_config("gap")], small_trace
        )
        tracer = TracingCore(system.cores[1], limit=100_000)
        # drive the co-simulation manually, tracing the follower
        while True:
            core = min(system._active, key=lambda c: c.time_ps)
            if core is system.cores[1]:
                tracer.step()
            else:
                core.step()
            if core.done:
                break
        injected = [t for t in tracer.trace.timelines.values() if t.injected]
        assert injected
        assert all(t.issue == -1 for t in injected)

    def test_does_not_change_timing(self):
        plain = Core(core_config("gcc"), _trace(150))
        while not plain.done:
            plain.step()
        traced_core = Core(core_config("gcc"), _trace(150))
        pipetrace(traced_core)
        assert traced_core.time_ps == plain.time_ps


class TestSkipAhead:
    """Timelines collected under event-driven skip-ahead carry true event
    cycles — including completions whose latency elapsed entirely inside a
    skipped window, which are back-dated from the in-flight record."""

    def _stall_trace(self, n=400):
        # a serial chain of loads scattered over a large footprint: every
        # load misses and depends on the previous one, so the pipeline
        # idles for long windows the skipper jumps over
        instrs = []
        for i in range(n):
            instrs.append(Instr(
                OpClass.LOAD,
                pc=4 * (i % 16),
                addr=(i * 4097 * 64) % (1 << 24),
                dep1=i - 1 if i else -1,
            ))
        return Trace("stall", instrs)

    def _run_skipping(self, core):
        """Drive a tracer with explicit skips, recording worked cycles."""
        from repro.uarch.core import NO_EVENT

        tracer = TracingCore(core, limit=100_000)
        worked = set()
        while not core.done:
            worked.add(core.cycle)
            tracer.step()
            nxt = core.next_event_cycle()
            if core.cycle < nxt < NO_EVENT:
                core.skip_to(nxt)
        return tracer.trace, worked

    def test_skip_actually_skips(self):
        core = Core(core_config("mcf"), self._stall_trace())
        trace, worked = self._run_skipping(core)
        # far fewer worked cycles than elapsed cycles, or nothing was tested
        assert len(worked) < core.cycle // 2

    def test_stage_cycles_true_under_skip(self):
        """Identity with the cycle-stepped reference, plus soundness: every
        recorded stage cycle is a cycle the skipping run actually worked —
        the skipper never jumps past a stage event (completion maturities
        are themselves skip-horizon events), so a stage cycle inside a
        skipped window would mean a record was stamped with a wrong clock.
        """
        core = Core(core_config("mcf"), self._stall_trace())
        fast, worked = self._run_skipping(core)
        slow = pipetrace(
            Core(core_config("mcf"), self._stall_trace()), skip_ahead=False
        )
        assert fast.timelines.keys() == slow.timelines.keys()
        for seq in slow.timelines:
            assert fast.timelines[seq] == slow.timelines[seq]
        for t in fast.timelines.values():
            for stage in ("fetch", "dispatch", "issue", "complete", "commit"):
                cycle = getattr(t, stage)
                assert cycle < 0 or cycle in worked, (
                    f"instruction {t.seq}: {stage} recorded at {cycle}, "
                    "which lies inside a skipped window"
                )

    def test_run_defaults_to_skip_for_standalone(self):
        fast = pipetrace(Core(core_config("mcf"), self._stall_trace(150)))
        slow = pipetrace(
            Core(core_config("mcf"), self._stall_trace(150)),
            skip_ahead=False,
        )
        assert fast.timelines == slow.timelines
        assert fast.last_cycle == slow.last_cycle
