"""Behavioural tests of the cycle-stepped pipeline model."""

import dataclasses

import pytest

from repro.isa.generator import generate_trace
from repro.isa.instructions import Instr, OpClass
from repro.isa.phases import PhaseMix, PhaseType, serial_chain_phase
from repro.isa.trace import Trace
from repro.uarch.cache import CacheConfig
from repro.uarch.config import CoreConfig, core_config
from repro.uarch.core import Core
from repro.uarch.run import run_standalone


def _simple_config(**kw):
    params = dict(
        name="test",
        clock_period_ns=0.5,
        width=2,
        rob_size=32,
        iq_size=16,
        lsq_size=16,
        frontend_depth=3,
        sched_depth=0,
        awaken_latency=0,
        mem_latency=50,
        l1=CacheConfig(2, 64, 16, 1),
        l2=CacheConfig(4, 64, 64, 5),
    )
    params.update(kw)
    return CoreConfig(**params)


def _alu_trace(n, deps=False):
    instrs = []
    for i in range(n):
        dep = i - 1 if deps and i > 0 else -1
        instrs.append(Instr(OpClass.IALU, pc=4 * (i % 32), dep1=dep))
    return Trace("alu", instrs)


class TestBasicExecution:
    def test_completes(self):
        result = run_standalone(_simple_config(), _alu_trace(200))
        assert result.instructions == 200
        assert result.cycles > 0
        assert result.time_ps == result.cycles * 500

    def test_ipc_reaches_width_on_independent_alu(self):
        result = run_standalone(_simple_config(width=4), _alu_trace(4000))
        assert result.ipc > 3.5

    def test_serial_chain_one_per_cycle(self):
        result = run_standalone(
            _simple_config(width=4), _alu_trace(2000, deps=True)
        )
        # fully serial single-cycle ALU chain: ~1 IPC regardless of width
        assert 0.9 < result.ipc <= 1.05

    def test_awaken_latency_divides_chain_rate(self):
        fast = run_standalone(
            _simple_config(awaken_latency=0), _alu_trace(2000, deps=True)
        )
        slow = run_standalone(
            _simple_config(awaken_latency=2), _alu_trace(2000, deps=True)
        )
        ratio = fast.ipc / slow.ipc
        assert 2.5 < ratio < 3.5  # 1 cycle/link vs 3 cycles/link

    def test_ipt_folds_clock(self):
        a = run_standalone(_simple_config(clock_period_ns=0.5), _alu_trace(1000))
        b = run_standalone(_simple_config(clock_period_ns=0.25), _alu_trace(1000))
        assert b.ipt == pytest.approx(2 * a.ipt, rel=0.01)

    def test_deadlock_guard(self):
        with pytest.raises(RuntimeError):
            run_standalone(_simple_config(), _alu_trace(500), max_cycles=10)

    def test_step_after_done_ok(self):
        core = Core(_simple_config(), _alu_trace(10))
        while not core.done:
            core.step()
        assert core.commit_count == 10


class TestBranches:
    def _branch_trace(self, n, taken_every=2, predictable=True):
        instrs = []
        for i in range(n):
            if i % 4 == 3:
                if predictable:
                    taken = (i // 4) % taken_every == 0
                else:
                    taken = (i * 2654435761) % 7 < 3  # pseudo-random
                instrs.append(Instr(OpClass.BRANCH, pc=4 * (i % 64), taken=taken))
            else:
                instrs.append(Instr(OpClass.IALU, pc=4 * (i % 64)))
        return Trace("br", instrs)

    def test_branch_stats(self):
        result = run_standalone(_simple_config(), self._branch_trace(1000))
        assert result.stats.branches == 250

    def test_mispredicts_slow_execution(self):
        good = run_standalone(
            _simple_config(), self._branch_trace(2000, predictable=True)
        )
        bad = run_standalone(
            _simple_config(), self._branch_trace(2000, predictable=False)
        )
        assert bad.stats.mispredict_rate > good.stats.mispredict_rate
        assert bad.ipc < good.ipc

    def test_deeper_frontend_pays_more(self):
        shallow = run_standalone(
            _simple_config(frontend_depth=3),
            self._branch_trace(2000, predictable=False),
        )
        deep = run_standalone(
            _simple_config(frontend_depth=12),
            self._branch_trace(2000, predictable=False),
        )
        assert deep.cycles > shallow.cycles


class TestMemory:
    def _load_trace(self, n, footprint, dep_chain=False):
        instrs = []
        prev_load = -1
        for i in range(n):
            if i % 3 == 0:
                addr = 0x100000 + (i * 2654435761) % footprint
                addr -= addr % 8
                instrs.append(
                    Instr(OpClass.LOAD, pc=4 * (i % 32),
                          dep1=prev_load if dep_chain else -1, addr=addr)
                )
                prev_load = i
            else:
                instrs.append(Instr(OpClass.IALU, pc=4 * (i % 32)))
        return Trace("mem", instrs)

    def test_bigger_footprint_slower(self):
        small = run_standalone(
            _simple_config(), self._load_trace(3000, 1024, dep_chain=True),
            prewarm=True,
        )
        big = run_standalone(
            _simple_config(), self._load_trace(3000, 1 << 22, dep_chain=True),
            prewarm=True,
        )
        assert big.cycles > small.cycles * 2

    def test_prewarm_warms_cache(self):
        trace = self._load_trace(3000, 8192)
        cold = run_standalone(_simple_config(), trace, prewarm=False)
        warm = run_standalone(_simple_config(), trace, prewarm=True)
        assert warm.cycles <= cold.cycles

    def test_mshrs_bound_mlp(self):
        # independent scattered misses: few MSHRs serialise them
        trace = self._load_trace(3000, 1 << 22)
        few = run_standalone(_simple_config(mshrs=1), trace)
        many = run_standalone(_simple_config(mshrs=16), trace)
        assert few.cycles > many.cycles * 1.5


class TestStructuralLimits:
    def test_small_rob_hurts_memory_overlap(self):
        trace = TestMemory()._load_trace(3000, 1 << 22)
        small = run_standalone(_simple_config(rob_size=8, mshrs=16), trace)
        big = run_standalone(_simple_config(rob_size=128, mshrs=16), trace)
        assert small.cycles > big.cycles

    def test_region_log(self):
        result = run_standalone(
            _simple_config(), _alu_trace(400), region_size=20
        )
        assert len(result.region_times_ps) == 20
        assert all(
            a < b for a, b in zip(result.region_times_ps, result.region_times_ps[1:])
        )
        assert result.region_times_ps[-1] == result.time_ps

    def test_region_sum_matches_total(self):
        result = run_standalone(
            _simple_config(), _alu_trace(400), region_size=20
        )
        deltas = [result.region_times_ps[0]] + [
            b - a
            for a, b in zip(result.region_times_ps, result.region_times_ps[1:])
        ]
        assert sum(deltas) == result.time_ps


class TestSyscalls:
    def test_syscall_penalty(self):
        plain = _alu_trace(500)
        instrs = list(plain.instructions)
        instrs[250] = Instr(OpClass.SYSCALL, pc=0x999)
        with_sys = Trace("sys", instrs)
        a = run_standalone(_simple_config(), plain)
        b = run_standalone(_simple_config(), with_sys)
        from repro.uarch.core import SYSCALL_PENALTY
        assert b.cycles >= a.cycles + SYSCALL_PENALTY - 50

    def test_multiple_syscalls(self, syscall_trace, gcc_core):
        result = run_standalone(gcc_core, syscall_trace)
        assert result.instructions == len(syscall_trace)


class TestWorkloadsOnRealCores:
    def test_gcc_trace_all_cores(self, small_trace):
        for name in ("gcc", "mcf", "crafty"):
            result = run_standalone(core_config(name), small_trace)
            assert result.instructions == len(small_trace)
            assert 0.05 < result.ipt < 50

    def test_determinism(self, small_trace, gcc_core):
        a = run_standalone(gcc_core, small_trace)
        b = run_standalone(gcc_core, small_trace)
        assert a.time_ps == b.time_ps
        assert a.stats.mispredicts == b.stats.mispredicts
