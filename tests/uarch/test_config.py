import dataclasses

import pytest

from repro.uarch.cache import CacheConfig
from repro.uarch.config import APPENDIX_A_CORES, CoreConfig, core_config


class TestAppendixA:
    def test_eleven_cores(self):
        assert len(APPENDIX_A_CORES) == 11

    def test_published_clock_periods(self):
        # spot-check the Appendix-A table, verbatim
        assert core_config("bzip").clock_period_ns == 0.49
        assert core_config("crafty").clock_period_ns == 0.19
        assert core_config("mcf").clock_period_ns == 0.45
        assert core_config("vortex").clock_period_ns == 0.27

    def test_published_window_sizes(self):
        assert core_config("mcf").rob_size == 1024
        assert core_config("crafty").rob_size == 64
        assert core_config("bzip").iq_size == 64
        assert core_config("gcc").lsq_size == 256

    def test_published_widths(self):
        widths = {n: c.width for n, c in APPENDIX_A_CORES.items()}
        assert widths == {
            "bzip": 5, "crafty": 8, "gap": 4, "gcc": 4, "gzip": 4,
            "mcf": 3, "parser": 4, "perl": 5, "twolf": 5, "vortex": 7,
            "vpr": 5,
        }

    def test_published_cache_sizes(self):
        assert core_config("mcf").l2.size_bytes == 4 * 1024 * 1024
        assert core_config("bzip").l2.size_bytes == 2 * 1024 * 1024
        assert core_config("gcc").l1.size_bytes == 256 * 1024
        assert core_config("vpr").l1.size_bytes == 8 * 1024

    def test_published_latencies(self):
        assert core_config("mcf").l2.latency == 27
        assert core_config("crafty").mem_latency == 321
        assert core_config("bzip").l1.latency == 2

    def test_memory_time_near_57ns(self):
        # the published palette implies a ~54-61 ns DRAM access
        for cfg in APPENDIX_A_CORES.values():
            ns = cfg.mem_latency * cfg.clock_period_ns
            assert 50 <= ns <= 65

    def test_unknown_core(self):
        with pytest.raises(KeyError):
            core_config("eon")


class TestDerivedProperties:
    def test_period_ps(self):
        assert core_config("bzip").period_ps == 490
        assert core_config("crafty").period_ps == 190

    def test_peak_ips(self):
        cfg = core_config("crafty")
        assert cfg.peak_ips == pytest.approx(8 / 0.19)

    def test_fetch_queue_default(self):
        cfg = core_config("gcc")
        assert cfg.fetch_queue_size == 2 * 4 * 7

    def test_fetch_queue_override(self):
        cfg = dataclasses.replace(core_config("gcc"), fetch_queue=99)
        assert cfg.fetch_queue_size == 99

    def test_mshr_derivation(self):
        assert core_config("mcf").mshr_count == 32       # rob 1024
        assert core_config("crafty").mshr_count == 4     # rob 64 -> floor 4
        assert core_config("gcc").mshr_count == 8        # rob 256

    def test_mshr_override(self):
        cfg = dataclasses.replace(core_config("gcc"), mshrs=16)
        assert cfg.mshr_count == 16

    def test_fingerprint_hashable_distinct(self):
        prints = {c.fingerprint() for c in APPENDIX_A_CORES.values()}
        assert len(prints) == 11

    def test_with_l2_swaps_only_l2(self):
        a = core_config("bzip")
        b = core_config("parser")
        hybrid = a.with_l2(b)
        assert hybrid.l2 == b.l2
        assert hybrid.l1 == a.l1
        assert hybrid.clock_period_ns == a.clock_period_ns
        assert "bzip" in hybrid.name and "parser" in hybrid.name


class TestValidation:
    def _base(self, **kw):
        params = dict(
            name="t", clock_period_ns=0.3, width=4, rob_size=64,
            iq_size=32, lsq_size=32, frontend_depth=5, sched_depth=1,
            awaken_latency=0, mem_latency=100,
            l1=CacheConfig(1, 64, 16, 2), l2=CacheConfig(2, 64, 64, 8),
        )
        params.update(kw)
        return CoreConfig(**params)

    def test_valid(self):
        assert self._base().width == 4

    def test_bad_period(self):
        with pytest.raises(ValueError):
            self._base(clock_period_ns=0)

    def test_bad_width(self):
        with pytest.raises(ValueError):
            self._base(width=0)

    def test_bad_rob(self):
        with pytest.raises(ValueError):
            self._base(rob_size=1)

    def test_bad_frontend(self):
        with pytest.raises(ValueError):
            self._base(frontend_depth=0)

    def test_bad_mem_latency(self):
        with pytest.raises(ValueError):
            self._base(mem_latency=0)

    def test_bad_awaken(self):
        with pytest.raises(ValueError):
            self._base(awaken_latency=-1)
