import random

import pytest

from repro.uarch.branch import (
    BimodalPredictor,
    GsharePredictor,
    HybridPredictor,
    make_predictor,
)

ALL = [BimodalPredictor, GsharePredictor, HybridPredictor]


def _accuracy(predictor, stream):
    correct = 0
    for pc, taken in stream:
        if predictor.predict(pc) == taken:
            correct += 1
        predictor.update(pc, taken)
    return correct / len(stream)


def _biased_stream(n=2000, bias=0.95, n_pcs=8, seed=1):
    rng = random.Random(seed)
    dirs = {0x100 + 4 * i: rng.random() < 0.5 for i in range(n_pcs)}
    pcs = list(dirs)
    return [
        (pc, dirs[pc] if rng.random() < bias else not dirs[pc])
        for pc in (pcs[i % n_pcs] for i in range(n))
        for _ in [0]
    ]


class TestValidation:
    @pytest.mark.parametrize("cls", ALL)
    def test_power_of_two_entries(self, cls):
        with pytest.raises(ValueError):
            cls(entries=1000)

    def test_gshare_history_bits(self):
        with pytest.raises(ValueError):
            GsharePredictor(history_bits=0)


class TestLearning:
    @pytest.mark.parametrize("cls", ALL)
    def test_learns_biased_branches(self, cls):
        acc = _accuracy(cls(), _biased_stream(bias=0.97))
        assert acc > 0.90

    @pytest.mark.parametrize("cls", ALL)
    def test_learns_constant_branch(self, cls):
        p = cls()
        stream = [(0x40, True)] * 200
        assert _accuracy(p, stream) > 0.95

    def test_gshare_learns_alternating_pattern(self):
        # T,N,T,N ... defeats bimodal but gshare's history captures it
        stream = [(0x40, i % 2 == 0) for i in range(2000)]
        gshare = _accuracy(GsharePredictor(), stream)
        bimodal = _accuracy(BimodalPredictor(), stream)
        assert gshare > 0.9
        assert gshare > bimodal

    def test_hybrid_tracks_better_component(self):
        stream = [(0x40, i % 2 == 0) for i in range(2000)]
        hybrid = _accuracy(HybridPredictor(), stream)
        assert hybrid > 0.85


class TestBimodalCounters:
    def test_hysteresis(self):
        p = BimodalPredictor()
        for _ in range(4):
            p.update(0x40, True)
        # one contrary outcome must not flip a saturated counter
        p.update(0x40, False)
        assert p.predict(0x40) is True

    def test_flips_after_two(self):
        p = BimodalPredictor()
        for _ in range(4):
            p.update(0x40, True)
        p.update(0x40, False)
        p.update(0x40, False)
        assert p.predict(0x40) is False


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        ("bimodal", BimodalPredictor),
        ("gshare", GsharePredictor),
        ("hybrid", HybridPredictor),
    ])
    def test_make(self, kind, cls):
        assert isinstance(make_predictor(kind), cls)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_predictor("perceptron")
