import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch.cache import Cache, CacheConfig, CacheHierarchy


def _cfg(assoc=2, block=64, sets=4, latency=2):
    return CacheConfig(assoc=assoc, block=block, sets=sets, latency=latency)


class TestCacheConfig:
    def test_size_bytes(self):
        assert _cfg(assoc=2, block=64, sets=4).size_bytes == 512

    def test_block_power_of_two(self):
        with pytest.raises(ValueError):
            CacheConfig(assoc=1, block=48, sets=4, latency=1)

    def test_sets_power_of_two(self):
        with pytest.raises(ValueError):
            CacheConfig(assoc=1, block=64, sets=3, latency=1)

    def test_positive_fields(self):
        with pytest.raises(ValueError):
            CacheConfig(assoc=0, block=64, sets=4, latency=1)
        with pytest.raises(ValueError):
            CacheConfig(assoc=1, block=64, sets=4, latency=0)


class TestCache:
    def test_miss_then_hit(self):
        c = Cache(_cfg())
        assert not c.lookup(0x1000)
        assert c.lookup(0x1000)
        assert c.hits == 1 and c.misses == 1

    def test_same_block_hits(self):
        c = Cache(_cfg(block=64))
        c.lookup(0x1000)
        assert c.lookup(0x1038)  # same 64B block

    def test_different_block_misses(self):
        c = Cache(_cfg(block=64))
        c.lookup(0x1000)
        assert not c.lookup(0x1040)

    def test_lru_eviction(self):
        c = Cache(_cfg(assoc=2, block=64, sets=1))
        a, b, d = 0x0, 0x40, 0x80  # all map to the single set
        c.lookup(a)
        c.lookup(b)
        c.lookup(d)          # evicts a (LRU)
        assert not c.contains(a)
        assert c.contains(b) and c.contains(d)

    def test_lru_touch_refreshes(self):
        c = Cache(_cfg(assoc=2, block=64, sets=1))
        a, b, d = 0x0, 0x40, 0x80
        c.lookup(a)
        c.lookup(b)
        c.lookup(a)          # refresh a; b becomes LRU
        c.lookup(d)          # evicts b
        assert c.contains(a) and not c.contains(b)

    def test_no_allocate(self):
        c = Cache(_cfg())
        c.lookup(0x1000, allocate=False)
        assert not c.contains(0x1000)

    def test_contains_no_stats(self):
        c = Cache(_cfg())
        c.contains(0x1000)
        assert c.accesses == 0

    def test_set_occupancy_bounded(self):
        c = Cache(_cfg(assoc=2, block=64, sets=1))
        for i in range(10):
            c.lookup(i * 64)
        assert len(c._sets[0]) <= 2

    def test_miss_rate(self):
        c = Cache(_cfg())
        assert c.miss_rate == 0.0
        c.lookup(0)
        c.lookup(0)
        assert c.miss_rate == pytest.approx(0.5)

    def test_reset_stats_keeps_contents(self):
        c = Cache(_cfg())
        c.lookup(0x1000)
        c.reset_stats()
        assert c.accesses == 0
        assert c.contains(0x1000)

    @settings(max_examples=20, deadline=None)
    @given(addrs=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=200))
    def test_hits_plus_misses(self, addrs):
        c = Cache(_cfg(assoc=4, block=32, sets=8))
        for a in addrs:
            c.lookup(a)
        assert c.hits + c.misses == len(addrs)

    @settings(max_examples=20, deadline=None)
    @given(addr=st.integers(0, 1 << 30))
    def test_lookup_then_contains(self, addr):
        c = Cache(_cfg())
        c.lookup(addr)
        assert c.contains(addr)


class TestHierarchy:
    def _hier(self):
        return CacheHierarchy(
            l1=_cfg(assoc=1, block=64, sets=2, latency=2),
            l2=_cfg(assoc=2, block=64, sets=8, latency=10),
            mem_latency=100,
        )

    def test_l1_hit_latency(self):
        h = self._hier()
        h.access(0)  # warm
        assert h.access(0) == 2

    def test_l2_hit_latency(self):
        h = self._hier()
        h.access(0x0)
        h.access(0x80)  # evicts 0x0 from direct-mapped L1 set 0
        lat = h.access(0x0)
        assert lat == 2 + 10

    def test_full_miss_latency(self):
        h = self._hier()
        assert h.access(0x4000) == 2 + 10 + 100

    def test_write_allocates(self):
        h = self._hier()
        h.write(0x1000)
        assert h.access(0x1000) == 2

    def test_mem_latency_validation(self):
        with pytest.raises(ValueError):
            CacheHierarchy(_cfg(), _cfg(), mem_latency=0)

    def test_reset_stats(self):
        h = self._hier()
        h.access(0)
        h.reset_stats()
        assert h.l1.accesses == 0 and h.l2.accesses == 0
