"""Structural edge-case tests of the pipeline model."""

import pytest

from repro.isa.instructions import Instr, OpClass
from repro.isa.trace import Trace
from repro.uarch.cache import CacheConfig
from repro.uarch.config import CoreConfig
from repro.uarch.core import Core


def _config(**kw):
    params = dict(
        name="edge",
        clock_period_ns=0.5,
        width=4,
        rob_size=32,
        iq_size=8,
        lsq_size=4,
        frontend_depth=2,
        sched_depth=0,
        awaken_latency=0,
        mem_latency=40,
        l1=CacheConfig(2, 64, 16, 1),
        l2=CacheConfig(4, 64, 64, 5),
    )
    params.update(kw)
    return CoreConfig(**params)


def _run(config, trace):
    core = Core(config, trace)
    while not core.done:
        core.step()
        assert core._iq_free >= 0
        assert core._lsq_free >= 0
        assert len(core._fetch_q) <= config.fetch_queue_size
    return core


class TestStructuralInvariants:
    def test_resources_restored_at_end(self):
        trace = Trace("t", [Instr(OpClass.IALU, 4 * i) for i in range(100)])
        core = _run(_config(), trace)
        assert core._iq_free == core.config.iq_size
        assert core._lsq_free == core.config.lsq_size
        assert core.rob_occupancy == 0

    def test_lsq_capacity_respected_with_loads(self):
        instrs = [
            Instr(OpClass.LOAD, pc=4 * (i % 8), addr=0x400000 + 4096 * i)
            for i in range(60)
        ]
        core = _run(_config(lsq_size=2), Trace("l", instrs))
        assert core.commit_count == 60

    def test_commit_width_bound(self):
        trace = Trace("t", [Instr(OpClass.IALU, 4 * i) for i in range(400)])
        config = _config(width=3)
        core = Core(config, trace)
        prev = 0
        while not core.done:
            core.step()
            assert core.commit_count - prev <= config.width
            prev = core.commit_count


class TestLatencyClasses:
    def _chain(self, op, n=300):
        return Trace(
            "c",
            [Instr(op, pc=4 * (i % 8), dep1=i - 1 if i else -1) for i in range(n)],
        )

    def test_idiv_slower_than_imul_slower_than_ialu(self):
        times = {}
        for op in (OpClass.IALU, OpClass.IMUL, OpClass.IDIV):
            core = _run(_config(iq_size=32), self._chain(op))
            times[op] = core.cycle
        assert times[OpClass.IALU] < times[OpClass.IMUL] < times[OpClass.IDIV]

    def test_ialu_chain_one_cycle_per_link(self):
        core = _run(_config(iq_size=32), self._chain(OpClass.IALU, 500))
        assert core.cycle == pytest.approx(500, rel=0.1)


class TestFetchBehaviour:
    def _branchy(self, taken, n=400):
        # a branch every other instruction: a taken direction caps the
        # fetch group at 2 while the width is 4
        instrs = []
        for i in range(n):
            if i % 2 == 1:
                instrs.append(Instr(OpClass.BRANCH, pc=0x100, taken=taken))
            else:
                instrs.append(Instr(OpClass.IALU, pc=4 * (i % 8)))
        return Trace("b", instrs)

    def test_taken_branches_throttle_fetch(self):
        # identical predictability (constant outcome), different direction:
        # the taken stream breaks every fetch group
        not_taken = _run(_config(), self._branchy(False))
        taken = _run(_config(), self._branchy(True))
        assert taken.cycle > not_taken.cycle

    def test_single_mispredict_costs_at_least_frontend(self):
        # branch flips once after the predictor saturates
        instrs = [Instr(OpClass.IALU, 4 * (i % 8)) for i in range(64)]
        instrs.append(Instr(OpClass.BRANCH, pc=0x200, taken=True))
        instrs += [Instr(OpClass.IALU, 4 * (i % 8)) for i in range(64)]
        flip = list(instrs)
        flip[64] = Instr(OpClass.BRANCH, pc=0x200, taken=False)
        base = _run(_config(frontend_depth=8), Trace("p", instrs))
        # warm predictor says taken; the flipped trace mispredicts once
        flipped = Core(_config(frontend_depth=8), Trace("f", flip))
        # train the predictor toward taken before timing
        for _ in range(8):
            flipped.predictor.update(0x200, True)
        while not flipped.done:
            flipped.step()
        assert flipped.stats.mispredicts >= 1
        assert flipped.cycle >= base.cycle + 8 - 2  # ~frontend refill


class TestNopAndMisc:
    def test_nop_flows_through(self):
        instrs = [Instr(OpClass.NOP, 4 * i) for i in range(50)]
        core = _run(_config(), Trace("n", instrs))
        assert core.commit_count == 50

    def test_mixed_trace_with_everything(self):
        instrs = []
        for i in range(300):
            mod = i % 11
            if mod == 0:
                instrs.append(Instr(OpClass.LOAD, 4 * (i % 16), addr=0x1000 + 8 * i))
            elif mod == 3:
                instrs.append(Instr(OpClass.STORE, 4 * (i % 16), addr=0x1000 + 8 * i))
            elif mod == 5:
                instrs.append(Instr(OpClass.BRANCH, 0x300, taken=i % 3 == 0))
            elif mod == 7:
                instrs.append(Instr(OpClass.IMUL, 4 * (i % 16), dep1=i - 2))
            elif mod == 9:
                instrs.append(Instr(OpClass.NOP, 4 * (i % 16)))
            else:
                instrs.append(Instr(OpClass.IALU, 4 * (i % 16), dep1=i - 1))
        core = _run(_config(), Trace("mix", instrs))
        assert core.commit_count == 300
