"""Backend name resolution, the registry, and NumPy availability."""

import pytest

from repro.backend import (
    BACKEND_CHOICES,
    CONCRETE_BACKENDS,
    BackendUnavailable,
    get_backend,
    resolve_backend_name,
)
from repro.backend import base as backend_base
from repro.backend import columnar as columnar_mod


def test_choices_cover_concrete_plus_auto():
    assert set(BACKEND_CHOICES) == set(CONCRETE_BACKENDS) | {"auto"}


def test_concrete_names_pass_through():
    assert resolve_backend_name("reference") == "reference"
    assert resolve_backend_name("columnar") == "columnar"


def test_unknown_name_rejected():
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend_name("gpu")


def test_auto_picks_columnar_when_numpy_importable(monkeypatch):
    monkeypatch.setattr(backend_base, "numpy_available", lambda: True)
    assert resolve_backend_name("auto") == "columnar"


def test_auto_falls_back_to_reference_without_numpy(monkeypatch):
    monkeypatch.setattr(backend_base, "numpy_available", lambda: False)
    assert resolve_backend_name("auto") == "reference"


def test_get_backend_is_a_singleton():
    assert get_backend("reference") is get_backend("reference")
    assert get_backend("columnar") is get_backend("columnar")


def test_get_backend_unknown_name():
    with pytest.raises(ValueError, match="unknown backend"):
        get_backend("gpu")


def test_backend_names_match_registry_keys():
    for name in CONCRETE_BACKENDS:
        assert get_backend(name).name == name


def test_explicit_columnar_without_numpy_raises(monkeypatch):
    """--backend columnar on a NumPy-free install must fail loudly, with
    the remedy (the ``repro[fast]`` extra) in the message."""

    def no_numpy():
        raise ImportError("No module named 'numpy'")

    monkeypatch.setattr(columnar_mod, "_np", None)
    monkeypatch.setattr(columnar_mod, "_import_numpy", no_numpy)
    backend = columnar_mod.ColumnarBackend()
    from repro.isa.generator import generate_trace
    from repro.isa.workloads import workload_profile
    from repro.uarch.config import core_config

    trace = generate_trace(workload_profile("gcc"), 200, seed=3)
    with pytest.raises(BackendUnavailable, match=r"repro\[fast\]"):
        backend.run_standalone(core_config("gcc"), trace)
