"""Capability-driven fallbacks: deterministic routing, counted reasons."""

import dataclasses

from repro.backend import backend_for_contest, get_backend
from repro.backend.columnar import ColumnarBackend
from repro.isa.generator import generate_trace
from repro.isa.phases import PhaseMix, PhaseType
from repro.isa.workloads import workload_profile
from repro.uarch.config import core_config
from repro.telemetry import Tracer
from repro.uarch.run import run_standalone


def _compute_trace(length=1500, seed=7):
    """A trace inside the columnar envelope: no loads/stores/syscalls."""
    phase = PhaseType(
        name="pure_compute",
        load_frac=0.0, store_frac=0.0, branch_frac=0.05, imul_frac=0.10,
        dep1_frac=0.0, two_src_frac=0.0, branch_bias=0.95,
    )
    mix = PhaseMix("pure_compute", [(phase, 1.0)])
    return generate_trace(mix, length, seed=seed)


def _memory_trace(length=800, seed=3):
    """A trace outside the envelope (gcc profile: loads and stores)."""
    return generate_trace(workload_profile("gcc"), length, seed=seed)


def test_memory_ops_fall_back_with_reason():
    backend = ColumnarBackend()
    config = core_config("gcc")
    trace = _memory_trace()
    result = backend.run_standalone(config, trace)
    assert backend.stats.fast_runs == 0
    assert backend.stats.fallback_runs == 1
    assert backend.stats.fallback_reasons == {"memory-ops": 1}
    # the fallback is the reference computation, bit for bit
    reference = run_standalone(config, trace, backend="reference")
    assert dataclasses.asdict(result) == dataclasses.asdict(reference)


def test_tracer_falls_back_before_touching_numpy():
    backend = ColumnarBackend()
    config = core_config("gcc")
    trace = _compute_trace(length=400)
    tracer = Tracer()
    backend.run_standalone(config, trace, tracer=tracer)
    assert backend.stats.fallback_reasons == {"telemetry": 1}
    # the reference backend actually drove the tracer to completion
    assert tracer.end_ts_ps is not None


def test_in_envelope_run_engages_fast_path():
    backend = ColumnarBackend()
    config = core_config("gcc")
    result = backend.run_standalone(config, _compute_trace())
    assert backend.stats.fast_runs == 1
    assert backend.stats.fallback_runs == 0
    reference = run_standalone(config, _compute_trace(), backend="reference")
    assert dataclasses.asdict(result) == dataclasses.asdict(reference)


def test_fallback_routing_is_deterministic():
    backend = ColumnarBackend()
    config = core_config("gcc")
    trace = _memory_trace()
    backend.run_standalone(config, trace)
    backend.run_standalone(config, trace)
    # same job, same route, twice — never flaky, never cached away
    assert backend.stats.fallback_reasons == {"memory-ops": 2}


def test_contests_fall_back_to_reference():
    columnar = get_backend("columnar")
    before = dict(columnar.stats.fallback_reasons)
    assert backend_for_contest("columnar") == "reference"
    assert backend_for_contest("reference") == "reference"
    after = columnar.stats.fallback_reasons
    assert after.get("contest", 0) == before.get("contest", 0) + 1
