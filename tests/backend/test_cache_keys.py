"""The backend field's cache-key contract.

Reference and columnar results must never alias one cache entry, and every
pre-backend (implicitly reference) cache entry must keep its identity.
"""

import pytest

from repro.engine import ContestJob, StandaloneJob, TraceSpec
from repro.uarch.config import core_config

SPEC = TraceSpec(profile="gcc", length=2_000, seed=11)


def _standalone(backend=None):
    if backend is None:
        return StandaloneJob(core_config("gcc"), SPEC)
    return StandaloneJob(core_config("gcc"), SPEC, backend=backend)


def _contest(backend=None):
    configs = (core_config("gcc"), core_config("mcf"))
    if backend is None:
        return ContestJob(configs=configs, trace=SPEC)
    return ContestJob(configs=configs, trace=SPEC, backend=backend)


def test_standalone_backends_never_share_cache_entries():
    assert _standalone("reference").cache_key() != \
        _standalone("columnar").cache_key()


def test_contest_backends_never_share_cache_entries():
    assert _contest("reference").cache_key() != \
        _contest("columnar").cache_key()


def test_reference_is_the_implicit_default_key():
    # a job built before the backend field existed hashed without it;
    # the explicit reference job must still land on those entries
    assert _standalone().cache_key() == _standalone("reference").cache_key()
    assert _contest().cache_key() == _contest("reference").cache_key()


def test_jobs_reject_auto():
    # "auto" depends on what is installed; a job carrying it would give
    # one logical computation different keys on different machines
    with pytest.raises(ValueError, match="concrete"):
        _standalone("auto")
    with pytest.raises(ValueError, match="concrete"):
        _contest("auto")


def test_jobs_reject_unknown_backends():
    with pytest.raises(ValueError, match="concrete"):
        _standalone("gpu")


def test_backend_round_trips_through_the_job():
    job = _standalone("columnar")
    assert job.backend == "columnar"
    # frozen dataclass: the field is part of the job's identity
    assert job == _standalone("columnar")
    assert job != _standalone("reference")
