import pytest

from repro.explore.annealing import simulated_annealing
from repro.explore.objective import cached
from repro.explore.space import derive_config


def _synthetic_objective(config):
    """Cheap, deterministic objective: prefers wide, big-ROB, fast cores."""
    return (
        config.width * 2.0
        + (config.rob_size ** 0.5) * 0.3
        + 1.0 / config.clock_period_ns
    )


class TestSimulatedAnnealing:
    def test_improves_over_first_sample(self):
        result = simulated_annealing(_synthetic_objective, steps=150, seed=3)
        assert result.best_score >= result.trajectory[0][1]

    def test_finds_good_extremes(self):
        result = simulated_annealing(_synthetic_objective, steps=400, seed=3)
        best = result.best_config("x")
        # the synthetic objective is maximised by the widest machines
        assert best.width >= 6

    def test_deterministic(self):
        a = simulated_annealing(_synthetic_objective, steps=50, seed=9)
        b = simulated_annealing(_synthetic_objective, steps=50, seed=9)
        assert a.best_score == b.best_score
        assert a.best_genome == b.best_genome

    def test_evaluation_budget(self):
        result = simulated_annealing(_synthetic_objective, steps=50, seed=1)
        assert result.evaluations == 51

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            simulated_annealing(_synthetic_objective, steps=0)

    def test_invalid_temps(self):
        with pytest.raises(ValueError):
            simulated_annealing(
                _synthetic_objective, steps=5, initial_temp=0.01, final_temp=0.5
            )

    def test_best_config_buildable(self):
        result = simulated_annealing(_synthetic_objective, steps=20, seed=2)
        cfg = result.best_config("winner")
        assert cfg.name == "winner"
        assert cfg.mem_latency >= 1


class TestCachedObjective:
    def test_memoises(self):
        calls = []

        def counting(config):
            calls.append(config.fingerprint())
            return 1.0

        wrapped = cached(counting)
        cfg = derive_config("c", {
            "width": 4, "rob_size": 128, "iq_size": 32, "lsq_size": 64,
            "frontend_depth": 6, "sched_depth": 1, "l1_assoc": 2,
            "l1_block": 64, "l1_sets": 256, "l2_assoc": 4, "l2_block": 128,
            "l2_sets": 1024,
        })
        wrapped(cfg)
        wrapped(cfg)
        assert len(calls) == 1


class TestOnSimulator:
    def test_small_budget_run(self, tiny_trace):
        """An end-to-end annealing run against the real simulator."""
        from repro.explore.objective import workload_objective

        result = simulated_annealing(
            workload_objective(tiny_trace), steps=6, seed=1
        )
        assert result.best_score > 0


class TestEngineAnnealing:
    def _objective(self):
        from repro.engine import TraceSpec
        from repro.explore.objective import workload_objective

        return workload_objective(TraceSpec("gzip", 600, seed=5))

    def test_engine_chain_matches_serial(self):
        """With one neighbour per step the engine-batched chain is the
        serial chain exactly (same rng consumption, same accepts)."""
        from repro.engine import SimEngine

        serial = simulated_annealing(self._objective(), steps=5, seed=4)
        batched = simulated_annealing(
            self._objective(), steps=5, seed=4,
            engine=SimEngine(), neighbours_per_step=1,
        )
        assert batched.best_score == serial.best_score
        assert batched.best_genome == serial.best_genome
        assert batched.trajectory == serial.trajectory

    def test_speculative_candidates_counted(self):
        from repro.engine import SimEngine

        result = simulated_annealing(
            self._objective(), steps=3, seed=4,
            engine=SimEngine(), neighbours_per_step=3,
        )
        assert result.evaluations == 1 + 3 * 3
        assert result.best_score > 0

    def test_invalid_neighbour_count(self):
        with pytest.raises(ValueError):
            simulated_annealing(
                _synthetic_objective, steps=5, neighbours_per_step=0
            )


class TestEngineObjectives:
    def test_objectives_expose_jobs(self, tiny_trace):
        from repro.explore.objective import (
            contest_pair_objective,
            suite_objective,
            workload_objective,
        )
        from repro.uarch.config import core_config

        single = workload_objective(tiny_trace)
        suite = suite_objective([tiny_trace])
        pair = contest_pair_objective(tiny_trace, core_config("gcc"))
        cfg = core_config("gzip")
        assert len(single.jobs(cfg)) == 1
        assert len(suite.jobs(cfg)) == 1
        assert len(pair.jobs(cfg)) == 1
        # callable form still works and agrees with jobs+combine
        assert single(cfg) == single.combine(
            [j.run() for j in single.jobs(cfg)]
        )

    def test_evaluate_candidates_batches(self, tiny_trace):
        from repro.engine import SimEngine
        from repro.explore.objective import (
            evaluate_candidates,
            workload_objective,
        )
        from repro.uarch.config import core_config

        objective = workload_objective(tiny_trace)
        engine = SimEngine()
        configs = [core_config("gcc"), core_config("vpr")]
        scores = evaluate_candidates(engine, objective, configs)
        assert scores == [objective(c) for c in configs]
        assert engine.stats.misses == 2
