import pytest

from repro.explore.pairs import (
    best_partner_from_palette,
    contest_score,
    explore_contesting_pair,
)
from repro.uarch.config import core_config


class TestContestScore:
    def test_positive(self, tiny_trace):
        score = contest_score(
            core_config("gcc"), core_config("vpr"), tiny_trace
        )
        assert score > 0

    def test_deterministic(self, tiny_trace):
        a = contest_score(core_config("gcc"), core_config("vpr"), tiny_trace)
        b = contest_score(core_config("gcc"), core_config("vpr"), tiny_trace)
        assert a == b


class TestBestPartner:
    def test_picks_a_partner(self, tiny_trace):
        partner, score = best_partner_from_palette(
            core_config("gcc"),
            [core_config(n) for n in ("vpr", "twolf", "mcf")],
            tiny_trace,
        )
        assert partner.name in ("vpr", "twolf", "mcf")
        assert score > 0

    def test_skips_identical(self, tiny_trace):
        partner, _ = best_partner_from_palette(
            core_config("gcc"),
            [core_config("gcc"), core_config("vpr")],
            tiny_trace,
        )
        assert partner.name == "vpr"

    def test_all_identical_rejected(self, tiny_trace):
        with pytest.raises(ValueError):
            best_partner_from_palette(
                core_config("gcc"), [core_config("gcc")], tiny_trace
            )

    def test_empty_candidates(self, tiny_trace):
        with pytest.raises(ValueError):
            best_partner_from_palette(core_config("gcc"), [], tiny_trace)


class TestJointAnnealing:
    def test_small_budget_runs(self, tiny_trace):
        result = explore_contesting_pair(tiny_trace, steps=4, seed=1)
        assert result.best_score > 0
        assert result.evaluations == 5
        a, b = result.best_configs()
        assert a.name == "pair_a" and b.name == "pair_b"

    def test_deterministic(self, tiny_trace):
        a = explore_contesting_pair(tiny_trace, steps=3, seed=2)
        b = explore_contesting_pair(tiny_trace, steps=3, seed=2)
        assert a.best_score == b.best_score

    def test_invalid_steps(self, tiny_trace):
        with pytest.raises(ValueError):
            explore_contesting_pair(tiny_trace, steps=0)

    def test_improves_or_holds(self, tiny_trace):
        result = explore_contesting_pair(tiny_trace, steps=8, seed=3)
        assert result.best_score >= result.trajectory[0][1]
