"""Checkpoint/resume of the annealer: a killed run continues its chain."""

import json

import pytest

from repro.explore.annealing import simulated_annealing


def _objective(config):
    return (
        config.width * 2.0
        + (config.rob_size ** 0.5) * 0.3
        + 1.0 / config.clock_period_ns
    )


class _Crash(Exception):
    pass


def _crashing_after(n):
    calls = {"n": 0}

    def objective(config):
        calls["n"] += 1
        if calls["n"] > n:
            raise _Crash()
        return _objective(config)

    return objective


class TestCheckpointResume:
    def test_resumed_chain_identical_to_uninterrupted(self, tmp_path):
        ckpt = tmp_path / "anneal.json"
        base = simulated_annealing(
            _objective, steps=30, seed=5, memoise=False
        )
        with pytest.raises(_Crash):
            simulated_annealing(
                _crashing_after(14), steps=30, seed=5, memoise=False,
                checkpoint_path=ckpt, checkpoint_every=4,
            )
        assert ckpt.exists()
        resumed = simulated_annealing(
            _objective, steps=30, seed=5, memoise=False,
            checkpoint_path=ckpt, checkpoint_every=4, resume=True,
        )
        assert resumed.best_genome == base.best_genome
        assert resumed.best_score == base.best_score
        assert resumed.trajectory == base.trajectory
        assert resumed.evaluations == base.evaluations

    def test_checkpoint_removed_on_completion(self, tmp_path):
        ckpt = tmp_path / "anneal.json"
        simulated_annealing(
            _objective, steps=10, seed=5, memoise=False,
            checkpoint_path=ckpt, checkpoint_every=3,
        )
        assert not ckpt.exists()

    def test_mismatched_identity_refused(self, tmp_path):
        ckpt = tmp_path / "anneal.json"
        with pytest.raises(_Crash):
            simulated_annealing(
                _crashing_after(10), steps=30, seed=5, memoise=False,
                checkpoint_path=ckpt, checkpoint_every=2,
            )
        with pytest.raises(ValueError, match="different run"):
            simulated_annealing(
                _objective, steps=30, seed=6, memoise=False,
                checkpoint_path=ckpt, resume=True,
            )
        with pytest.raises(ValueError, match="different run"):
            simulated_annealing(
                _objective, steps=40, seed=5, memoise=False,
                checkpoint_path=ckpt, resume=True,
            )

    def test_unknown_version_refused(self, tmp_path):
        ckpt = tmp_path / "anneal.json"
        ckpt.write_text(json.dumps({"version": 99, "seed": 5, "steps": 10}))
        with pytest.raises(ValueError, match="version"):
            simulated_annealing(
                _objective, steps=10, seed=5, memoise=False,
                checkpoint_path=ckpt, resume=True,
            )

    def test_resume_without_checkpoint_starts_fresh(self, tmp_path):
        ckpt = tmp_path / "missing.json"
        base = simulated_annealing(
            _objective, steps=15, seed=7, memoise=False
        )
        fresh = simulated_annealing(
            _objective, steps=15, seed=7, memoise=False,
            checkpoint_path=ckpt, resume=True,
        )
        assert fresh.best_genome == base.best_genome

    def test_invalid_checkpoint_every(self):
        with pytest.raises(ValueError):
            simulated_annealing(
                _objective, steps=10, seed=1, checkpoint_every=0
            )
