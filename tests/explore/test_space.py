import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explore.space import (
    DRAM_NS,
    GENOME_KEYS,
    PALETTES,
    DesignSpace,
    derive_config,
    random_config,
)

genomes = st.fixed_dictionaries(
    {k: st.sampled_from(v) for k, v in PALETTES.items()}
)


class TestDeriveConfig:
    @settings(max_examples=60, deadline=None)
    @given(genomes)
    def test_any_genome_valid(self, genome):
        cfg = derive_config("c", genome)
        assert cfg.clock_period_ns >= 0.15
        assert cfg.l1.latency >= 1
        assert cfg.l2.latency >= 2
        assert cfg.mem_latency >= 1

    @settings(max_examples=30, deadline=None)
    @given(genomes)
    def test_memory_time_constant(self, genome):
        cfg = derive_config("c", genome)
        ns = cfg.mem_latency * cfg.clock_period_ns
        assert abs(ns - DRAM_NS) < cfg.clock_period_ns  # rounding only

    def test_deeper_pipe_faster_clock(self):
        base = {k: v[0] for k, v in PALETTES.items()}
        shallow = dict(base, frontend_depth=4, sched_depth=1)
        deep = dict(base, frontend_depth=12, sched_depth=4)
        assert (
            derive_config("d", deep).clock_period_ns
            < derive_config("s", shallow).clock_period_ns
        )

    def test_wider_slower_clock(self):
        base = {k: v[0] for k, v in PALETTES.items()}
        narrow = dict(base, width=3)
        wide = dict(base, width=8)
        assert (
            derive_config("w", wide).clock_period_ns
            > derive_config("n", narrow).clock_period_ns
        )

    def test_awaken_tracks_sched_depth(self):
        base = {k: v[0] for k, v in PALETTES.items()}
        cfg = derive_config("a", dict(base, sched_depth=4))
        assert cfg.awaken_latency == 3

    def test_bigger_cache_higher_latency(self):
        base = {k: v[0] for k, v in PALETTES.items()}
        small = dict(base, l1_sets=128, l1_block=8, l1_assoc=1)
        big = dict(base, l1_sets=32768, l1_block=64, l1_assoc=4)
        assert (
            derive_config("b", big).l1.latency
            >= derive_config("s", small).l1.latency
        )


class TestDesignSpace:
    def test_random_genome_in_palettes(self):
        space = DesignSpace()
        genome = space.random_genome(random.Random(1))
        for key, value in genome.items():
            assert value in PALETTES[key]

    def test_neighbour_single_step(self):
        space = DesignSpace()
        rng = random.Random(2)
        genome = space.random_genome(rng)
        for _ in range(50):
            new = space.neighbour(genome, rng)
            changed = [k for k in GENOME_KEYS if new[k] != genome[k]]
            assert len(changed) == 1
            key = changed[0]
            palette = PALETTES[key]
            old_idx = palette.index(genome[key])
            new_idx = palette.index(new[key])
            assert abs(new_idx - old_idx) == 1
            genome = new

    def test_neighbour_does_not_mutate_input(self):
        space = DesignSpace()
        rng = random.Random(3)
        genome = space.random_genome(rng)
        snapshot = dict(genome)
        space.neighbour(genome, rng)
        assert genome == snapshot

    def test_size(self):
        space = DesignSpace()
        expected = 1
        for v in PALETTES.values():
            expected *= len(v)
        assert space.size() == expected


class TestRandomConfig:
    def test_deterministic(self):
        assert random_config("a", 5).fingerprint() == random_config("a", 5).fingerprint()

    def test_named(self):
        assert random_config("mycore", 1).name == "mycore"
