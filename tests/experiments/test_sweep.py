import pytest

from repro.experiments.sweep import sweep, write_csv


class TestSweep:
    def test_cartesian_product(self):
        rows = sweep(lambda a, b: {"s": a + b}, a=[1, 2], b=[10, 20])
        assert len(rows) == 4
        assert {"a": 1, "b": 10, "s": 11} in rows
        assert {"a": 2, "b": 20, "s": 22} in rows

    def test_single_grid(self):
        rows = sweep(lambda x: {"y": x * x}, x=[3])
        assert rows == [{"x": 3, "y": 9}]

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            sweep(lambda x: {"y": x}, x=[])

    def test_no_grids_rejected(self):
        with pytest.raises(ValueError):
            sweep(lambda: {"y": 1})

    def test_non_dict_result_rejected(self):
        with pytest.raises(TypeError):
            sweep(lambda x: x, x=[1])

    def test_column_shadowing_rejected(self):
        with pytest.raises(ValueError):
            sweep(lambda x: {"x": x}, x=[1])

    def test_deterministic_order(self):
        rows = sweep(lambda a, b: {"v": 0}, b=[1, 2], a=[3, 4])
        # names sorted: a varies slowest
        assert [(r["a"], r["b"]) for r in rows] == [
            (3, 1), (3, 2), (4, 1), (4, 2)
        ]

    def test_on_simulator(self, tiny_trace):
        from repro.core.system import ContestingSystem
        from repro.uarch.config import core_config

        def run(latency_ns):
            result = ContestingSystem(
                [core_config("gcc"), core_config("vpr")], tiny_trace,
                grb_latency_ns=latency_ns,
            ).run()
            return {"ipt": result.ipt}

        rows = sweep(run, latency_ns=[1.0, 100.0])
        assert rows[0]["ipt"] >= rows[1]["ipt"] * 0.98


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y,z"}]
        path = tmp_path / "out.csv"
        write_csv(rows, path)
        text = path.read_text()
        assert text.splitlines()[0] == "a,b"
        assert '"y,z"' in text

    def test_heterogeneous_columns(self, tmp_path):
        rows = [{"a": 1}, {"b": 2}]
        path = tmp_path / "out.csv"
        write_csv(rows, path)
        lines = path.read_text().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,"
        assert lines[2] == ",2"

    def test_quote_escaping(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv([{"a": 'say "hi"'}], path)
        assert '"say ""hi"""' in path.read_text()

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], tmp_path / "out.csv")
