"""Structural tests of every experiment at tiny scale.

These check that each experiment runs end-to-end, returns the paper's rows
and series, and renders a table containing the expected elements; the
*quantitative* claims are covered by tests/calibration (which runs at a
meaningful scale).
"""

import pytest

from repro.experiments import appendix_a, fig01, fig06, fig07, fig08, fig09
from repro.experiments import fig10, fig11, fig12, fig13, table1
from repro.experiments.common import ExperimentContext
from repro.experiments.runner import EXPERIMENTS, run_all
from repro.isa.workloads import BENCHMARKS


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(scale="tiny")


@pytest.fixture(scope="module")
def table1_result(ctx):
    return table1.run(ctx)


@pytest.fixture(scope="module")
def fig06_result(ctx):
    return fig06.run(ctx)


class TestFig01:
    def test_curves_for_all_benchmarks(self, ctx):
        result = fig01.run(ctx)
        assert set(result.curves) == set(BENCHMARKS)
        for curve in result.curves.values():
            assert curve.points[0][0] == 20
            assert all(s >= -1e-9 for s in curve.speedups())
        assert "Figure 1" in result.render()

    def test_average_curve_length(self, ctx):
        result = fig01.run(ctx)
        assert len(result.average_curve()) >= 3


class TestAppendixA:
    def test_matrix_square(self, ctx):
        result = appendix_a.run(ctx)
        assert set(result.matrix) == set(BENCHMARKS)
        for row in result.matrix.values():
            assert len(row) == 11
            assert all(v > 0 for v in row.values())
        assert "Appendix A" in result.render()


class TestFig06:
    def test_rows(self, fig06_result):
        assert set(fig06_result.rows) == set(BENCHMARKS)
        for pair, contested, own in fig06_result.rows.values():
            assert contested > 0 and own > 0
        text = fig06_result.render()
        assert "average speedup" in text

    def test_contesting_never_much_worse(self, fig06_result):
        # the best pair includes near-own-core options; a large regression
        # would indicate a mechanism bug
        for bench in fig06_result.rows:
            assert fig06_result.speedup(bench) > -10.0


class TestFig07:
    def test_rows(self, ctx, fig06_result):
        result = fig07.run(ctx, fig06_result)
        assert set(result.rows) == set(BENCHMARKS)
        for bench in result.rows:
            assert 0.0 <= result.l2_fraction(bench) <= 1.0
        assert "L2" in result.render()


class TestFig08:
    def test_sweep(self, ctx, fig06_result):
        result = fig08.run(ctx, latencies_ns=(1.0, 10.0), fig06=fig06_result)
        assert result.latencies_ns == (1.0, 10.0)
        assert all(len(v) == 2 for v in result.speedups.values())
        assert len(result.average()) == 2
        assert "latency" in result.render()


class TestTable1:
    def test_designs(self, table1_result):
        assert set(table1_result.designs) == {
            "HET-A", "HET-B", "HET-C", "HET-D", "HOM", "HET-ALL",
        }
        assert "Table 1" in table1_result.render()

    def test_het_all_dominates_hom(self, table1_result):
        assert table1_result.het_all_vs_hom() >= 0.0


class TestFig09:
    def test_design_columns(self, ctx, table1_result):
        result = fig09.run(ctx, table1_result)
        for per_design in result.ipt.values():
            assert set(per_design) == {
                "HET-A", "HET-B", "HET-C", "HOM", "HET-ALL",
            }
            # HET-ALL provides each benchmark's unconstrained best
            assert per_design["HET-ALL"] >= max(
                v for k, v in per_design.items() if k != "HET-ALL"
            ) - 1e-9
        assert "Figure 9" in result.render()


class TestFigs10to12:
    @pytest.mark.parametrize("module,design", [
        (fig10, "HET-A"), (fig11, "HET-B"), (fig12, "HET-C"),
    ])
    def test_design_contest(self, ctx, table1_result, module, design):
        result = module.run(ctx, table1_result)
        assert result.design_name == design
        assert len(result.core_types) == 2
        assert set(result.rows) == set(BENCHMARKS)
        text = module.render(result)
        assert design in text

    def test_contest_ge_available_mostly(self, ctx, table1_result):
        result = fig10.run(ctx, table1_result)
        # contesting includes the best available core as a participant, so
        # it should rarely lose much to it
        losses = [
            b for b in result.rows if result.contest_speedup(b) < -10
        ]
        assert len(losses) <= 2


class TestFig13:
    def test_rows(self, ctx, table1_result):
        result = fig13.run(ctx, table1_result)
        assert len(result.het_d_types) == 3
        assert set(result.rows) == set(BENCHMARKS)
        c, d, a = result.averages()
        assert a >= d - 1e-9  # HET-ALL can't lose to HET-D
        assert "Figure 13" in result.render()


class TestExtCorpus:
    def test_sample_is_deterministic(self):
        from repro.experiments.ext_corpus import sample_workloads

        assert sample_workloads(11, 8) == sample_workloads(11, 8)
        assert len(sample_workloads(11, 8)) == 8
        assert all(n.startswith("corpus/") for n in sample_workloads(11, 8))

    def test_sweep_runs_and_renders(self, ctx):
        from repro.experiments import ext_corpus

        result = ext_corpus.run(ctx, workloads_to_run=2)
        assert len(result.ipcs) == 2
        for per_core in result.ipcs.values():
            assert set(per_core) == set(ext_corpus.SWEEP_CORES)
        assert "corpus.workloads" in result.registry
        rendered = result.render()
        assert "corpus sweep rollups:" in rendered
        assert "corpus.ipc.mean" in rendered


class TestRunner:
    def test_registry_complete(self):
        paper = {
            "fig01", "fig06", "fig07", "fig08", "fig09", "fig10",
            "fig11", "fig12", "fig13", "table1", "appendix_a",
        }
        extensions = {
            "ext_queueing", "ext_nway", "ext_resync", "ext_energy",
            "ext_robustness", "ext_faults", "ext_corpus",
        }
        assert set(EXPERIMENTS) == paper | extensions

    def test_run_subset(self, capsys):
        run_all(scale="tiny", names=["table1"])
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            run_all(scale="tiny", names=["fig99"])
