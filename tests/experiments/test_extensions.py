"""Structural tests of the extension experiments."""

import pytest

from repro.experiments import ext_nway, ext_queueing, ext_resync, table1
from repro.experiments.common import ExperimentContext


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(scale="tiny")


class TestExtQueueing:
    def test_runs_and_renders(self, ctx):
        result = ext_queueing.run(ctx)
        assert len(result.turnarounds) >= 3
        for light, heavy in result.turnarounds.values():
            assert heavy >= light * 0.5  # heavy load can't be much faster
        assert set(m for m, _ in result.agreement) == {"avg", "har", "cw-har"}
        for value in result.agreement.values():
            assert 0.0 <= value <= 1.0
        assert "rank agreement" in result.render()

    def test_light_load_ranking_strong(self, ctx):
        # with no queueing, service time == har prediction; har should
        # order designs nearly perfectly
        result = ext_queueing.run(ctx)
        assert result.agreement[("har", "light")] >= 0.6


class TestExtNway:
    def test_runs_and_renders(self, ctx):
        result = ext_nway.run(ctx)
        assert len(result.two_way_types) == 2
        assert len(result.three_way_types) == 3
        single, two, three = result.averages()
        assert single > 0 and two > 0 and three > 0
        assert "3-way" in result.render()

    def test_reuses_table1(self, ctx):
        t1 = table1.run(ctx)
        result = ext_nway.run(ctx, t1)
        assert result.two_way_types == t1.designs["HET-C"].core_types


class TestExtResync:
    def test_runs_and_renders(self, ctx):
        result = ext_resync.run(ctx)
        assert result.partner == "crafty"  # highest peak IPS in the palette
        assert result.partner not in result.rows
        for disable_ipt, resync_ipt, resyncs in result.rows.values():
            assert disable_ipt > 0 and resync_ipt > 0
            assert resyncs >= 0
        assert "saturated-lagger policy" in result.render()

    def test_resync_not_catastrophic(self, ctx):
        result = ext_resync.run(ctx)
        for disable_ipt, resync_ipt, _ in result.rows.values():
            assert resync_ipt >= disable_ipt * 0.9
