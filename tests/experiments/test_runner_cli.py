"""Tests of the CLI entry point (argument handling, tee output)."""

import pytest

from repro.experiments.runner import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["--scale", "enormous"])

    def test_run_single(self, capsys):
        assert main(["--scale", "tiny", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "results.txt"
        assert main(["--scale", "tiny", "table1", "--output", str(out_file)]) == 0
        text = out_file.read_text()
        assert "Table 1" in text
        # console still got the output too
        assert "Table 1" in capsys.readouterr().out

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            main(["--scale", "tiny", "fig99"])
