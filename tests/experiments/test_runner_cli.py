"""Tests of the CLI entry point (argument handling, tee output)."""

import logging

import pytest

from repro.experiments.runner import EXPERIMENTS, SuiteFailure, main, run_all


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["--scale", "enormous"])

    def test_run_single(self, capsys):
        assert main(["--scale", "tiny", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "results.txt"
        assert main(["--scale", "tiny", "table1", "--output", str(out_file)]) == 0
        text = out_file.read_text()
        assert "Table 1" in text
        # console still got the output too
        assert "Table 1" in capsys.readouterr().out

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            main(["--scale", "tiny", "fig99"])

    def test_verbose_logs_timing(self, capsys, caplog):
        with caplog.at_level(logging.INFO, logger="repro.experiments"):
            assert main(["--scale", "tiny", "--no-cache", "-v", "table1"]) == 0
        messages = [r.getMessage() for r in caplog.records]
        assert any("table1" in m and "s" in m for m in messages)
        assert any("[engine]" in m for m in messages)


class TestKeepGoing:
    @pytest.fixture
    def broken_experiment(self, monkeypatch):
        def explode(ctx):
            raise RuntimeError("synthetic experiment failure")

        monkeypatch.setitem(EXPERIMENTS, "table1", explode)

    def test_first_failure_aborts_by_default(self, broken_experiment):
        with pytest.raises(RuntimeError, match="synthetic"):
            run_all(scale="tiny", names=["table1", "appendix_a"])

    def test_keep_going_runs_the_rest_then_fails(
        self, broken_experiment, capsys
    ):
        with pytest.raises(SuiteFailure) as excinfo:
            run_all(
                scale="tiny", names=["table1", "appendix_a"],
                keep_going=True,
            )
        assert "table1" in excinfo.value.errors
        assert "synthetic experiment failure" in excinfo.value.errors["table1"]
        # the healthy experiment still rendered
        assert "Appendix A" in capsys.readouterr().out

    def test_keep_going_exit_code(self, broken_experiment, capsys):
        assert main(
            ["--scale", "tiny", "--no-cache", "--keep-going",
             "table1", "appendix_a"]
        ) == 1
        captured = capsys.readouterr()
        assert "Appendix A" in captured.out
        assert "1 experiment(s) failed" in captured.err
