import pytest

from repro.experiments.common import ExperimentContext
from repro.experiments.replicate import (
    Replication,
    fig06_speedups,
    matrix_diagonal_margin,
    replicate,
)


class TestReplicationAggregation:
    def test_mean_and_std(self):
        rep = Replication(seeds=[1, 2, 3], samples={"x": [1.0, 2.0, 3.0]})
        assert rep.mean("x") == pytest.approx(2.0)
        assert rep.std("x") == pytest.approx(1.0)

    def test_single_sample_std_zero(self):
        rep = Replication(seeds=[1], samples={"x": [5.0]})
        assert rep.std("x") == 0.0

    def test_render(self):
        rep = Replication(seeds=[1, 2], samples={"x": [1.0, 3.0]})
        out = rep.render("title", unit="%")
        assert "title" in out and "stddev" in out


class TestReplicate:
    def test_needs_seeds(self):
        with pytest.raises(ValueError):
            replicate(lambda ctx: {"a": 1.0}, seeds=())

    def test_metric_rows_must_match(self):
        calls = []

        def flaky(ctx):
            calls.append(1)
            return {"a": 1.0} if len(calls) == 1 else {"b": 1.0}

        with pytest.raises(ValueError):
            replicate(flaky, scale="tiny", seeds=(1, 2))

    def test_seeds_produce_different_contexts(self):
        seen = []

        def capture(ctx):
            seen.append(ctx.scale.seed)
            return {"a": float(ctx.scale.seed)}

        rep = replicate(capture, scale="tiny", seeds=(3, 9))
        assert seen == [3, 9]
        assert rep.samples["a"] == [3.0, 9.0]


class TestRealMetrics:
    def test_diagonal_margin_metric(self):
        ctx = ExperimentContext(scale="tiny", benchmarks=("gcc", "vpr"))
        margins = matrix_diagonal_margin(ctx)
        assert set(margins) == {"gcc", "vpr"}
        assert all(m > 0 for m in margins.values())

    @pytest.mark.slow
    def test_fig06_metric_rows(self):
        ctx = ExperimentContext(scale="tiny")
        values = fig06_speedups(ctx)
        assert "AVERAGE" in values
        assert len(values) == 12  # 11 benchmarks + AVERAGE
