import pytest

from repro.engine import SimEngine
from repro.experiments.common import SCALES, ExperimentContext
from repro.uarch.config import core_config


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(scale="tiny", benchmarks=("gcc", "vpr", "twolf"))


class TestScales:
    def test_presets(self):
        assert set(SCALES) == {"tiny", "small", "default", "full"}
        assert SCALES["tiny"].trace_len < SCALES["full"].trace_len

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            ExperimentContext(scale="huge")


class TestCaching:
    def test_trace_cached(self, ctx):
        assert ctx.trace("gcc") is ctx.trace("gcc")

    def test_standalone_cached(self, ctx):
        a = ctx.standalone("gcc", core_config("gcc"))
        b = ctx.standalone("gcc", core_config("gcc"))
        assert a is b

    def test_region_logs_cached(self, ctx):
        a = ctx.region_logs("gcc")["vpr"]
        b = ctx.region_logs("gcc")["vpr"]
        assert a is b

    def test_contest_cached(self, ctx):
        cfgs = [core_config("gcc"), core_config("vpr")]
        a = ctx.contest("gcc", cfgs)
        b = ctx.contest("gcc", cfgs)
        assert a is b

    def test_contest_latency_distinguishes(self, ctx):
        cfgs = [core_config("gcc"), core_config("vpr")]
        a = ctx.contest("gcc", cfgs, grb_latency_ns=1.0)
        b = ctx.contest("gcc", cfgs, grb_latency_ns=50.0)
        assert a is not b


class TestKeyAliasing:
    """Cache keys carry the trace identity, never the benchmark name alone:
    contexts differing only in seed or scale must not share entries even
    when they share one engine (the regression this guards was a
    ``(bench, config)`` key aliasing stale results across seeds)."""

    def test_seed_change_never_aliases(self):
        engine = SimEngine()
        ctx_a = ExperimentContext(
            scale="tiny", benchmarks=("gcc",), seed=1, engine=engine
        )
        ctx_b = ExperimentContext(
            scale="tiny", benchmarks=("gcc",), seed=2, engine=engine
        )
        a = ctx_a.standalone("gcc", core_config("gcc"))
        b = ctx_b.standalone("gcc", core_config("gcc"))
        assert a is not b
        assert engine.stats.misses == 2  # two distinct simulations ran

    def test_scale_change_never_aliases(self):
        engine = SimEngine()
        tiny = ExperimentContext(
            scale="tiny", benchmarks=("gcc",), engine=engine
        )
        small = ExperimentContext(
            scale="small", benchmarks=("gcc",), engine=engine
        )
        a = tiny.standalone("gcc", core_config("gcc"))
        b = small.standalone("gcc", core_config("gcc"))
        assert a.instructions != b.instructions

    def test_same_recipe_shares_across_contexts(self):
        engine = SimEngine()
        ctx_a = ExperimentContext(
            scale="tiny", benchmarks=("gcc",), engine=engine
        )
        ctx_b = ExperimentContext(
            scale="tiny", benchmarks=("gcc",), engine=engine
        )
        a = ctx_a.standalone("gcc", core_config("gcc"))
        b = ctx_b.standalone("gcc", core_config("gcc"))
        assert a is b  # identical recipe: the engine deduplicates
        assert engine.stats.misses == 1


class TestDerived:
    def test_matrix_shape(self, ctx):
        matrix = ctx.ipt_matrix()
        assert set(matrix) == {"gcc", "vpr", "twolf"}
        assert len(matrix["gcc"]) == 11  # all Appendix-A core types

    def test_candidate_pairs(self, ctx):
        pairs = ctx.candidate_pairs("gcc")
        assert 1 <= len(pairs) <= SCALES["tiny"].pair_candidates
        assert all(a != b for a, b in pairs)
        assert len(set(pairs)) == len(pairs)

    def test_best_contest(self, ctx):
        pair, result = ctx.best_contest("gcc")
        assert result.instructions == len(ctx.trace("gcc"))
        assert pair[0] != pair[1]
