"""Structural tests of the energy and robustness extension experiments."""

import pytest

from repro.experiments import ext_energy, ext_robustness
from repro.experiments.common import ExperimentContext


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(scale="tiny")


class TestExtEnergy:
    def test_runs_and_renders(self, ctx):
        result = ext_energy.run(ctx)
        assert len(result.rows) == 11
        for speedup, energy_ratio, edp_ratio in result.rows.values():
            # two cores cost more energy than one, bounded by ~2x + GRB
            assert 1.0 < energy_ratio < 3.5
            assert edp_ratio > 0
        assert "energy" in result.render()

    def test_edp_consistent_with_speedup(self, ctx):
        result = ext_energy.run(ctx)
        for speedup, energy_ratio, edp_ratio in result.rows.values():
            expected = energy_ratio / (1.0 + speedup / 100.0)
            assert edp_ratio == pytest.approx(expected, rel=0.02)


class TestExtRobustness:
    def test_runs_and_renders(self, ctx):
        result = ext_robustness.run(ctx)
        assert len(result.design_types) == 2
        assert len(result.rows) == len(ext_robustness.ARRIVAL_RATES)
        for plain, contested, frac in result.rows.values():
            assert plain > 0 and contested > 0
            assert 0.0 <= frac <= 1.0
        assert "need-to-have" in result.render()

    def test_contested_fraction_decreases_with_load(self, ctx):
        result = ext_robustness.run(ctx)
        fracs = [v[2] for _, v in sorted(result.rows.items())]
        assert fracs[0] >= fracs[-1]


class TestContestWhenIdlePolicy:
    def test_requires_contest_ipt(self):
        from repro.cmp.queueing import CmpQueueSimulator

        with pytest.raises(ValueError):
            CmpQueueSimulator(
                {"b": {"x": 1.0, "y": 1.0}}, ["x", "y"],
                policy="contest-when-idle",
            )

    def test_gangs_at_light_load(self):
        from repro.cmp.queueing import CmpQueueSimulator, JobStream

        matrix = {"b": {"x": 1.0, "y": 1.0}}
        sim = CmpQueueSimulator(
            matrix, ["x", "y"], policy="contest-when-idle",
            contest_ipt={"b": 1.5},
        )
        result = sim.run(JobStream(arrival_rate=1e-7, job_length=1000, jobs=40))
        assert sim.contested_jobs > 30
        # ganged service at 1.5 IPT: turnaround ~ 1000/1.5
        assert result.mean_turnaround_ns < 1000.0

    def test_fallback_identical_when_never_contestable(self):
        from repro.cmp.queueing import CmpQueueSimulator, JobStream

        matrix = {"b": {"x": 2.0, "y": 1.0}}
        stream = JobStream(arrival_rate=1e-4, job_length=5000, jobs=80)
        plain = CmpQueueSimulator(
            matrix, ["x", "y"], policy="best-available"
        ).run(stream, seed=5)
        mode = CmpQueueSimulator(
            matrix, ["x", "y"], policy="contest-when-idle",
            contest_ipt={"other": 9.9},
        ).run(stream, seed=5)
        assert mode.mean_turnaround_ns == plain.mean_turnaround_ns
