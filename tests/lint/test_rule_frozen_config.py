"""frozen-config: config/spec dataclasses must be frozen=True."""

import textwrap

from repro.lint import lint_source

BAD_UNFROZEN = textwrap.dedent(
    """
    from dataclasses import dataclass

    @dataclass
    class CoreConfig:
        width: int = 4
    """
)

BAD_EXPLICIT_FALSE = textwrap.dedent(
    """
    from dataclasses import dataclass

    @dataclass(frozen=False)
    class SpecJob:
        seed: int = 0
    """
)

OK_FROZEN = textwrap.dedent(
    """
    import dataclasses

    @dataclasses.dataclass(frozen=True)
    class CoreConfig:
        width: int = 4
    """
)

OK_PLAIN_CLASS = textwrap.dedent(
    """
    class Helper:
        pass
    """
)


def rules_fired(source, module):
    return [d.rule for d in lint_source(source, module=module)]


def test_fires_on_unfrozen_dataclass_in_config_module():
    diags = lint_source(BAD_UNFROZEN, module="repro.uarch.config")
    assert any(d.rule == "frozen-config" for d in diags)


def test_fires_on_explicit_frozen_false_in_jobs_module():
    assert "frozen-config" in rules_fired(BAD_EXPLICIT_FALSE, "repro.engine.jobs")


def test_fires_in_faults_module():
    assert "frozen-config" in rules_fired(BAD_UNFROZEN, "repro.faults")


def test_frozen_dataclass_is_clean():
    assert "frozen-config" not in rules_fired(OK_FROZEN, "repro.uarch.config")


def test_plain_class_is_clean():
    assert rules_fired(OK_PLAIN_CLASS, "repro.uarch.config") == []


def test_silent_outside_config_modules():
    # mutable runtime state (core pipeline registers etc.) is fine
    assert "frozen-config" not in rules_fired(BAD_UNFROZEN, "repro.uarch.core")
