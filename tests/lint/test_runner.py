"""Runner plumbing: module naming, file walking, syntax-error handling."""

import os

from repro.lint import lint_modules, lint_paths, lint_paths_report, lint_source
from repro.lint.runner import iter_python_files, module_name_for


def test_module_name_anchors_at_repro_package():
    assert module_name_for("src/repro/uarch/core.py") == "repro.uarch.core"
    assert module_name_for("src/repro/faults.py") == "repro.faults"
    assert module_name_for("src/repro/lint/__init__.py") == "repro.lint"


def test_module_name_fallback_outside_package():
    assert module_name_for("/tmp/scratch/helper.py") == "helper"


def test_module_name_init_outside_package_falls_back_to_stem():
    # no repro anchor to hang the package name on
    assert module_name_for("/tmp/scratch/__init__.py") == "__init__"


def test_module_name_through_a_symlinked_checkout(tmp_path):
    # anchoring is textual over the *given* path, so a tree reached
    # through a symlinked parent keeps its repro.* names
    real = tmp_path / "checkout" / "src" / "repro" / "uarch"
    real.mkdir(parents=True)
    (real / "core.py").write_text("X = 1\n")
    link = tmp_path / "link"
    os.symlink(tmp_path / "checkout", link)
    path = link / "src" / "repro" / "uarch" / "core.py"
    assert module_name_for(str(path)) == "repro.uarch.core"


def test_symlink_named_repro_anchors_module_names(tmp_path):
    # ... and a symlink *named* repro is model scope by that same rule
    real = tmp_path / "pkgdata" / "uarch"
    real.mkdir(parents=True)
    (real / "core.py").write_text("X = 1\n")
    os.symlink(tmp_path / "pkgdata", tmp_path / "repro")
    assert (
        module_name_for(str(tmp_path / "repro" / "uarch" / "core.py"))
        == "repro.uarch.core"
    )


def test_lint_paths_scopes_rules_through_a_symlinked_tree(tmp_path):
    real = tmp_path / "pkg" / "repro" / "uarch"
    real.mkdir(parents=True)
    (real / "core.py").write_text(
        "import time\n\ndef step():\n    return time.time()\n"
    )
    link = tmp_path / "alias"
    os.symlink(tmp_path / "pkg", link)
    diags = lint_paths([str(link)])
    assert any(d.rule == "no-wallclock" for d in diags)


def test_syntax_error_becomes_diagnostic():
    diags = lint_source("def broken(:\n", path="bad.py")
    assert [d.rule for d in diags] == ["syntax-error"]


def test_iter_python_files_skips_caches(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "a.cpython-311.py").write_text("")
    (tmp_path / "notes.txt").write_text("not python")
    found = iter_python_files([str(tmp_path)])
    assert found == [str(tmp_path / "pkg" / "a.py")]


def test_lint_paths_walks_directories(tmp_path):
    (tmp_path / "bad.py").write_text("def f(x=[]):\n    return x\n")
    (tmp_path / "good.py").write_text("def f(x=None):\n    return x\n")
    diags = lint_paths([str(tmp_path)])
    assert [d.rule for d in diags] == ["no-mutable-default"]


def test_findings_are_ordered_within_a_file():
    source = (
        "def b(y={}):\n"
        "    return y\n"
        "def a(x=[]):\n"
        "    return x\n"
    )
    diags = lint_source(source, module="repro.engine.engine")
    assert [d.line for d in diags] == sorted(d.line for d in diags)


def test_lint_paths_report_carries_run_telemetry(tmp_path):
    (tmp_path / "bad.py").write_text("def f(x=[]):\n    return x\n")
    (tmp_path / "good.py").write_text("def f(x=None):\n    return x\n")
    report = lint_paths_report([str(tmp_path)])
    assert report.file_count == 2
    assert report.line_count == 4
    assert report.per_rule_counts() == {"no-mutable-default": 1}
    assert report.project_build_seconds > 0.0
    assert report.total_seconds >= report.project_build_seconds


def test_lint_modules_runs_both_passes():
    # per-file finding (mutable default) and project finding (discarded
    # coroutine) from one synthetic two-module project
    diags = lint_modules(
        {
            "repro.service.core": "async def drain():\n    return 1\n",
            "repro.service.api": (
                "from repro.service.core import drain\n"
                "\n"
                "def stop(extra=[]):\n"
                "    drain()\n"
            ),
        }
    )
    assert {d.rule for d in diags} == {
        "no-mutable-default",
        "await-discarded",
    }
    # synthesised paths follow the dotted module names
    assert all(d.path == os.path.join("repro", "service", "api.py")
               for d in diags)
