"""Runner plumbing: module naming, file walking, syntax-error handling."""

from repro.lint import lint_paths, lint_source
from repro.lint.runner import iter_python_files, module_name_for


def test_module_name_anchors_at_repro_package():
    assert module_name_for("src/repro/uarch/core.py") == "repro.uarch.core"
    assert module_name_for("src/repro/faults.py") == "repro.faults"
    assert module_name_for("src/repro/lint/__init__.py") == "repro.lint"


def test_module_name_fallback_outside_package():
    assert module_name_for("/tmp/scratch/helper.py") == "helper"


def test_syntax_error_becomes_diagnostic():
    diags = lint_source("def broken(:\n", path="bad.py")
    assert [d.rule for d in diags] == ["syntax-error"]


def test_iter_python_files_skips_caches(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "a.cpython-311.py").write_text("")
    (tmp_path / "notes.txt").write_text("not python")
    found = iter_python_files([str(tmp_path)])
    assert found == [str(tmp_path / "pkg" / "a.py")]


def test_lint_paths_walks_directories(tmp_path):
    (tmp_path / "bad.py").write_text("def f(x=[]):\n    return x\n")
    (tmp_path / "good.py").write_text("def f(x=None):\n    return x\n")
    diags = lint_paths([str(tmp_path)])
    assert [d.rule for d in diags] == ["no-mutable-default"]


def test_findings_are_ordered_within_a_file():
    source = (
        "def b(y={}):\n"
        "    return y\n"
        "def a(x=[]):\n"
        "    return x\n"
    )
    diags = lint_source(source, module="repro.engine.engine")
    assert [d.line for d in diags] == sorted(d.line for d in diags)
