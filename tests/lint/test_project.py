"""The whole-program layer: symbol table, call graph, reachability."""

import ast
import os
import textwrap

from repro.lint.dataflow import (
    ReachAnalysis,
    async_functions,
    display_name,
    functions_in_modules,
)
from repro.lint.project import build_project


def make_project(sources):
    """Build a ProjectContext from ``{dotted.module: source}``."""
    parsed = []
    for module, source in sources.items():
        src = textwrap.dedent(source)
        path = module.replace(".", os.sep) + ".py"
        parsed.append((path, src, ast.parse(src), module))
    return build_project(parsed)


CHAIN = {
    "repro.alpha": """
        import time

        def leaf():
            time.sleep(1)

        def mid():
            leaf()

        def clean(x):
            return x + 1
        """,
    "repro.beta": """
        import repro.alpha as alpha

        def helper():
            alpha.mid()
        """,
}

CLASSES = {
    "repro.gamma": """
        class Base:
            def shared(self):
                return 1

        class Impl(Base):
            def run(self):
                return self.shared()
        """,
    "repro.delta": """
        from repro.gamma import Impl

        def boot():
            worker = Impl()
            return worker.run()
        """,
}


# ------------------------------------------------------------ symbol table


def test_functions_indexed_by_qualname():
    project = make_project(CHAIN)
    assert "repro.alpha.leaf" in project.functions
    assert "repro.beta.helper" in project.functions
    assert project.functions["repro.alpha.leaf"].short_name == "leaf"


def test_resolve_bare_name_to_module_function():
    project = make_project(CHAIN)
    mod = project.module_by_name("repro.alpha")
    assert project.resolve_name(mod, "leaf") == "repro.alpha.leaf"


def test_resolve_from_import_to_project_function():
    project = make_project(
        {
            "repro.one": "def f():\n    return 1\n",
            "repro.two": "from repro.one import f\n\ndef g():\n    return f()\n",
        }
    )
    mod = project.module_by_name("repro.two")
    assert project.resolve_name(mod, "f") == "repro.one.f"


def test_resolve_from_import_of_external_member():
    project = make_project(
        {"repro.one": "from json import dumps\n\ndef f(x):\n    return dumps(x)\n"}
    )
    mod = project.module_by_name("repro.one")
    assert project.resolve_name(mod, "dumps") == "json.dumps"


def test_method_resolution_walks_base_classes():
    project = make_project(CLASSES)
    assert (
        project.method_of("repro.gamma.Impl", "shared")
        == "repro.gamma.Base.shared"
    )
    assert project.method_of("repro.gamma.Impl", "missing") is None


def test_same_stem_modules_get_path_qualified_names():
    # two conftest.py files in different test dirs must stay distinct
    # call-graph nodes, and dotted lookup must refuse to guess.
    src_a = "def fixture_a():\n    return 1\n"
    src_b = "def fixture_b():\n    return 2\n"
    project = build_project(
        [
            ("tests/a/conftest.py", src_a, ast.parse(src_a), "conftest"),
            ("tests/b/conftest.py", src_b, ast.parse(src_b), "conftest"),
        ]
    )
    assert project.module_by_name("conftest") is None
    assert "tests/a/conftest.py:fixture_a" in project.functions
    assert "tests/b/conftest.py:fixture_b" in project.functions
    assert (
        display_name("tests/a/conftest.py:fixture_a", project) == "fixture_a"
    )


# -------------------------------------------------------------- call graph


def test_bare_and_module_alias_calls_become_edges():
    project = make_project(CHAIN)
    graph = project.graph
    assert [s.callee for s in graph.calls_from("repro.alpha.mid")] == [
        "repro.alpha.leaf"
    ]
    assert [s.callee for s in graph.calls_from("repro.beta.helper")] == [
        "repro.alpha.mid"
    ]
    assert [s.callee for s in graph.calls_from("repro.alpha.leaf")] == [
        "time.sleep"
    ]


def test_self_method_call_resolves_through_bases():
    project = make_project(CLASSES)
    callees = [
        s.callee for s in project.graph.calls_from("repro.gamma.Impl.run")
    ]
    assert callees == ["repro.gamma.Base.shared"]


def test_constructor_is_init_edge_and_typed_local_call_resolves():
    project = make_project(CLASSES)
    edges = {
        (s.callee, s.kind)
        for s in project.graph.out_edges["repro.delta.boot"]
    }
    assert ("repro.gamma.Impl.__init__", "init") in edges
    assert ("repro.gamma.Impl.run", "call") in edges


def test_nested_def_calls_are_not_attributed_to_the_encloser():
    project = make_project(
        {
            "repro.nested": """
            import time

            def outer():
                def inner():
                    time.sleep(1)
                return inner
            """,
        }
    )
    reach = ReachAnalysis(project.graph, {"time.sleep"})
    assert not reach.reaches("repro.nested.outer")


DISPATCH = {
    "repro.workers": """
        import threading
        import time

        def job():
            time.sleep(1)

        def spawn():
            thread = threading.Thread(target=job)
            thread.start()

        def pool(executor):
            executor.submit(job)
        """,
}


def test_thread_target_and_submit_become_ref_edges():
    project = make_project(DISPATCH)
    refs = {(s.caller, s.callee) for s in project.graph.dispatches}
    assert ("repro.workers.spawn", "repro.workers.job") in refs
    assert ("repro.workers.pool", "repro.workers.job") in refs


def test_ref_edges_never_propagate_reachability():
    # handing a blocking callable to a worker is the *fix*, not a path
    project = make_project(DISPATCH)
    reach = ReachAnalysis(project.graph, {"time.sleep"})
    assert reach.reaches("repro.workers.job")
    assert not reach.reaches("repro.workers.spawn")
    assert not reach.reaches("repro.workers.pool")


# ------------------------------------------------------------ reachability


def test_reach_analysis_keeps_a_witness_chain():
    project = make_project(CHAIN)
    reach = ReachAnalysis(project.graph, {"time.sleep"})
    assert reach.reaches("repro.beta.helper")
    assert reach.witness("repro.beta.helper") == [
        "repro.beta.helper",
        "repro.alpha.mid",
        "repro.alpha.leaf",
        "time.sleep",
    ]
    assert reach.path_string("repro.beta.helper") == (
        "beta.helper -> alpha.mid -> alpha.leaf -> time.sleep"
    )


def test_blocked_nodes_terminate_propagation():
    project = make_project(CHAIN)
    reach = ReachAnalysis(
        project.graph, {"time.sleep"}, blocked={"repro.alpha.mid"}
    )
    assert reach.reaches("repro.alpha.leaf")
    assert not reach.reaches("repro.alpha.mid")
    assert not reach.reaches("repro.beta.helper")


def test_function_without_a_path_does_not_reach():
    project = make_project(CHAIN)
    reach = ReachAnalysis(project.graph, {"time.sleep"})
    assert not reach.reaches("repro.alpha.clean")
    assert reach.witness("repro.alpha.clean") == []


def test_init_edges_are_followed_only_on_request():
    project = make_project(
        {
            "repro.slowinit": """
            import time

            class Slow:
                def __init__(self):
                    time.sleep(1)

            def build():
                return Slow()
            """,
        }
    )
    default = ReachAnalysis(project.graph, {"time.sleep"})
    assert default.reaches("repro.slowinit.Slow.__init__")
    assert not default.reaches("repro.slowinit.build")
    follow = ReachAnalysis(project.graph, {"time.sleep"}, follow_init=True)
    assert follow.reaches("repro.slowinit.build")


# ---------------------------------------------------------------- dataflow


def test_async_functions_and_module_function_sets():
    project = make_project(
        {
            "repro.svc": """
            async def handle():
                return 1

            class S:
                async def drain(self):
                    return 2

                def sync(self):
                    return 3
            """,
        }
    )
    assert async_functions(project) == {
        "repro.svc.handle",
        "repro.svc.S.drain",
    }
    names = functions_in_modules(project, ("repro.svc",))
    assert {"repro.svc.handle", "repro.svc.S.drain", "repro.svc.S.sync"} <= names
