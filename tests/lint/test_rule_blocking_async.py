"""blocking-in-async: coroutines must not reach blocking calls."""

import textwrap

from repro.lint import lint_modules

RULE = "blocking-in-async"


def findings(sources):
    diags = lint_modules(
        {m: textwrap.dedent(s) for m, s in sources.items()}
    )
    return [d for d in diags if d.rule == RULE]


DIRECT = {
    "repro.service.api": """
        import time

        async def handle():
            time.sleep(0.1)
        """,
}

CROSS_FILE = {
    "repro.service.api": """
        from repro.service.io import persist

        async def handle():
            persist("x")
        """,
    "repro.service.io": """
        def persist(payload):
            flush(payload)

        def flush(payload):
            with open("log", "a") as fh:
                fh.write(payload)
        """,
}


def test_direct_blocking_call_fires():
    diags = findings(DIRECT)
    assert len(diags) == 1
    assert "time.sleep" in diags[0].message
    assert "handle" in diags[0].message


def test_transitive_cross_file_path_fires_at_the_async_call_site():
    diags = findings(CROSS_FILE)
    assert len(diags) == 1
    diag = diags[0]
    # anchored in the async file, not at the sink two modules away
    assert diag.path.endswith("api.py")
    # the witness chain names every hop down to the sink
    assert "persist" in diag.message
    assert "flush" in diag.message
    assert "open" in diag.message


def test_offloading_via_to_thread_is_exempt():
    sources = dict(CROSS_FILE)
    sources["repro.service.api"] = """
        import asyncio

        from repro.service.io import persist

        async def handle():
            await asyncio.to_thread(persist, "x")
        """
    assert findings(sources) == []


def test_run_in_executor_is_exempt():
    sources = dict(CROSS_FILE)
    sources["repro.service.api"] = """
        import asyncio

        from repro.service.io import persist

        async def handle():
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, persist, "x")
        """
    assert findings(sources) == []


def test_object_construction_is_exempt():
    # __init__ doing file I/O is startup wiring, not steady-state
    assert (
        findings(
            {
                "repro.service.boot": """
                class Store:
                    def __init__(self):
                        self.fh = open("log", "a")

                async def start():
                    return Store()
                """,
            }
        )
        == []
    )


def test_each_offending_coroutine_reports_once():
    # outer awaits inner; only inner owns the blocking hop
    diags = findings(
        {
            "repro.service.chain": """
            import time

            async def inner():
                time.sleep(0.1)

            async def outer():
                await inner()
            """,
        }
    )
    assert len(diags) == 1
    assert "inner" in diags[0].message


def test_sim_engine_run_is_a_project_sink():
    diags = findings(
        {
            "repro.engine.sim": """
            class SimEngine:
                def run(self, job):
                    return job
            """,
            "repro.service.api": """
            from repro.engine.sim import SimEngine

            async def handle(engine: SimEngine, job):
                return engine.run(job)
            """,
        }
    )
    assert len(diags) == 1
    assert "SimEngine.run" in diags[0].message


# ------------------------------------------------- pragma anchor semantics


def test_pragma_at_the_call_site_suppresses():
    sources = dict(CROSS_FILE)
    sources["repro.service.api"] = """
        from repro.service.io import persist

        async def handle():
            persist("x")  # repro: allow-blocking-in-async
        """
    assert findings(sources) == []


def test_pragma_at_the_sink_does_not_suppress_callers():
    # suppression must stay visible next to every reported line
    sources = dict(CROSS_FILE)
    sources["repro.service.io"] = """
        def persist(payload):
            flush(payload)

        def flush(payload):
            with open("log", "a") as fh:  # repro: allow-blocking-in-async
                fh.write(payload)
        """
    assert len(findings(sources)) == 1
