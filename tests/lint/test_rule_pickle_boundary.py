"""pickle-boundary: __getstate__-dropped attrs need a rebuild path."""

import textwrap

from repro.lint import lint_source

BAD_NO_REBUILD = textwrap.dedent(
    """
    class Trace:
        def __getstate__(self):
            state = self.__dict__.copy()
            state["_decoded"] = None
            return state
    """
)

BAD_POP_NO_SETSTATE = textwrap.dedent(
    """
    class Result:
        def __getstate__(self):
            state = self.__dict__.copy()
            state.pop("_curve")
            return state

        def curve(self):
            return self._curve
    """
)

OK_TRACE_PATTERN = textwrap.dedent(
    """
    class Trace:
        def __getstate__(self):
            state = self.__dict__.copy()
            state["_decoded"] = None
            return state

        def __setstate__(self, state):
            self.__dict__.update(state)
            self._decoded = None

        def decoded(self):
            if self._decoded is None:
                self._decoded = object()
            return self._decoded
    """
)

OK_NO_DROPS = textwrap.dedent(
    """
    class Plain:
        def __getstate__(self):
            return self.__dict__.copy()
    """
)


def findings(source):
    return [
        d for d in lint_source(source, module="repro.isa.trace")
        if d.rule == "pickle-boundary"
    ]


def test_fires_when_dropped_attr_has_no_rebuild_member():
    fired = findings(BAD_NO_REBUILD)
    assert fired
    assert any("_decoded" in d.message for d in fired)


def test_fires_when_key_removed_without_setstate():
    fired = findings(BAD_POP_NO_SETSTATE)
    assert any("__setstate__" in d.message for d in fired)


def test_trace_lean_pickle_pattern_is_clean():
    assert findings(OK_TRACE_PATTERN) == []


def test_getstate_without_drops_is_clean():
    assert findings(OK_NO_DROPS) == []


def test_real_trace_class_is_clean():
    # the pattern this rule guards, as actually shipped
    import repro.isa.trace as trace_mod
    import inspect

    source = inspect.getsource(trace_mod)
    assert [
        d for d in lint_source(source, module="repro.isa.trace")
        if d.rule == "pickle-boundary"
    ] == []
