"""no-untyped-stats: typed stat accumulation in model code."""

import textwrap

from repro.lint import lint_source

BAD_AUG_ASSIGN = textwrap.dedent(
    """
    class System:
        def on_drop(self):
            self.fault_stats["dropped"] += 1
    """
)

BAD_ASSIGN = textwrap.dedent(
    """
    def reset(core):
        core.stats["cycles"] = 0
    """
)

BAD_BARE_NAME = textwrap.dedent(
    """
    def account(run_stats, n):
        run_stats["committed"] += n
    """
)

OK_ATTRIBUTE_FIELD = textwrap.dedent(
    """
    class System:
        def on_drop(self):
            self.fault_stats.dropped += 1
    """
)

OK_RUNTIME_KEY = textwrap.dedent(
    """
    def mark(fifo, seq, flag):
        fifo.faulted[seq] = flag
    """
)

OK_NON_STATS_DICT = textwrap.dedent(
    """
    def cache(table):
        table["entry"] = 1
    """
)

OK_READ_ONLY = textwrap.dedent(
    """
    def report(system):
        return system.fault_stats["dropped"]
    """
)


def findings(source, module="repro.core.system"):
    return [
        d for d in lint_source(source, module=module)
        if d.rule == "no-untyped-stats"
    ]


def test_fires_on_string_keyed_increment():
    assert findings(BAD_AUG_ASSIGN)


def test_fires_on_string_keyed_assignment():
    assert findings(BAD_ASSIGN)


def test_fires_on_bare_stats_name():
    assert findings(BAD_BARE_NAME)


def test_typed_field_access_is_clean():
    assert findings(OK_ATTRIBUTE_FIELD) == []


def test_runtime_key_is_data_indexing_not_a_stat():
    assert findings(OK_RUNTIME_KEY) == []


def test_non_stats_container_is_clean():
    assert findings(OK_NON_STATS_DICT) == []


def test_reads_are_not_flagged():
    # only writes mint new keys; consumers reading a key they believe
    # exists are the symptom, not the disease
    assert findings(OK_READ_ONLY) == []


def test_silent_outside_model_scope():
    # engine/experiment bookkeeping dicts are not timing-model stats
    assert findings(BAD_AUG_ASSIGN, module="repro.engine.engine") == []


def test_pragma_suppresses():
    suppressed = textwrap.dedent(
        """
        class System:
            def on_drop(self):
                self.fault_stats["dropped"] += 1  # repro: allow-no-untyped-stats
        """
    )
    assert findings(suppressed) == []
