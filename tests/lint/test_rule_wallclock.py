"""no-wallclock: host-clock reads are banned from timing-model code."""

import textwrap

from repro.lint import lint_modules, lint_source

BAD_IMPORT_AND_CALL = textwrap.dedent(
    """
    import time

    def step(self):
        return time.perf_counter()
    """
)

BAD_FROM_IMPORT = textwrap.dedent(
    """
    from time import monotonic

    def stamp():
        return monotonic()
    """
)

BAD_DATETIME = textwrap.dedent(
    """
    import datetime

    def stamp():
        return datetime.datetime.now()
    """
)

CLEAN_MODEL = textwrap.dedent(
    """
    def step(clock_ps, period_ps):
        return clock_ps + period_ps
    """
)


def rules_fired(source, module):
    return [d.rule for d in lint_source(source, module=module)]


def test_fires_on_wallclock_call_in_model_code():
    diags = lint_source(BAD_IMPORT_AND_CALL, module="repro.uarch.core")
    assert any(d.rule == "no-wallclock" for d in diags)
    # the finding points at the call site
    assert any("perf_counter" in d.message for d in diags)


def test_fires_on_from_import():
    assert "no-wallclock" in rules_fired(BAD_FROM_IMPORT, "repro.core.system")


def test_fires_on_datetime_now():
    assert "no-wallclock" in rules_fired(BAD_DATETIME, "repro.isa.generator")


def test_fires_in_faults_module():
    assert "no-wallclock" in rules_fired(BAD_IMPORT_AND_CALL, "repro.faults")


def test_silent_outside_model_scope():
    # the engine times jobs for reporting; that is sanctioned
    assert "no-wallclock" not in rules_fired(
        BAD_IMPORT_AND_CALL, "repro.engine.executors"
    )


def test_clean_model_code_passes():
    assert rules_fired(CLEAN_MODEL, "repro.uarch.core") == []


# ------------------------------------------------- project-pass taint


def project_findings(sources):
    diags = lint_modules(
        {m: textwrap.dedent(s) for m, s in sources.items()}
    )
    return [d for d in diags if d.rule == "no-wallclock"]


HELPER_TAINT = {
    "repro.uarch.sampler": """
        from repro.util.timing import jitter

        def sample(clock_ps):
            return clock_ps + jitter()
        """,
    "repro.util.timing": """
        import time

        def jitter():
            return time.time()
        """,
}

RNG_ROUTED = {
    # same shape, but the path runs through the sanctioned seeding layer
    "repro.uarch.sampler": """
        from repro.util.rng import substream

        def sample(clock_ps, seed):
            return clock_ps + substream(seed, "sampler").random()
        """,
    "repro.util.rng": """
        import random
        import time

        def substream(seed, name):
            if seed is None:
                seed = time.time_ns()
            return random.Random(seed)
        """,
}


def test_cross_file_taint_through_a_helper_module_fires():
    diags = project_findings(HELPER_TAINT)
    assert len(diags) == 1
    diag = diags[0]
    # anchored at the model-side call site, not at the helper's sink
    assert diag.path.endswith("sampler.py")
    assert "time.time" in diag.message
    # the witness chain names the hop through the other module
    assert "jitter" in diag.message


def test_path_through_the_rng_module_is_sanctioned():
    assert project_findings(RNG_ROUTED) == []


def test_direct_in_file_read_is_not_double_reported():
    # the per-file pass owns direct calls; the project pass must not
    # report the same line a second time
    diags = project_findings(
        {
            "repro.uarch.core": """
            import time

            def step():
                return time.time()
            """,
        }
    )
    assert len(diags) == 1


def test_non_model_caller_of_a_tainted_helper_passes():
    sources = dict(HELPER_TAINT)
    sources["repro.engine.runner2"] = sources.pop("repro.uarch.sampler")
    assert project_findings(sources) == []
