"""no-wallclock: host-clock reads are banned from timing-model code."""

import textwrap

from repro.lint import lint_source

BAD_IMPORT_AND_CALL = textwrap.dedent(
    """
    import time

    def step(self):
        return time.perf_counter()
    """
)

BAD_FROM_IMPORT = textwrap.dedent(
    """
    from time import monotonic

    def stamp():
        return monotonic()
    """
)

BAD_DATETIME = textwrap.dedent(
    """
    import datetime

    def stamp():
        return datetime.datetime.now()
    """
)

CLEAN_MODEL = textwrap.dedent(
    """
    def step(clock_ps, period_ps):
        return clock_ps + period_ps
    """
)


def rules_fired(source, module):
    return [d.rule for d in lint_source(source, module=module)]


def test_fires_on_wallclock_call_in_model_code():
    diags = lint_source(BAD_IMPORT_AND_CALL, module="repro.uarch.core")
    assert any(d.rule == "no-wallclock" for d in diags)
    # the finding points at the call site
    assert any("perf_counter" in d.message for d in diags)


def test_fires_on_from_import():
    assert "no-wallclock" in rules_fired(BAD_FROM_IMPORT, "repro.core.system")


def test_fires_on_datetime_now():
    assert "no-wallclock" in rules_fired(BAD_DATETIME, "repro.isa.generator")


def test_fires_in_faults_module():
    assert "no-wallclock" in rules_fired(BAD_IMPORT_AND_CALL, "repro.faults")


def test_silent_outside_model_scope():
    # the engine times jobs for reporting; that is sanctioned
    assert "no-wallclock" not in rules_fired(
        BAD_IMPORT_AND_CALL, "repro.engine.executors"
    )


def test_clean_model_code_passes():
    assert rules_fired(CLEAN_MODEL, "repro.uarch.core") == []
