"""no-mutable-default: no shared mutable default arguments."""

import textwrap

from repro.lint import lint_source

BAD_LIST_DEFAULT = textwrap.dedent(
    """
    def collect(samples=[]):
        samples.append(1)
        return samples
    """
)

BAD_DICT_CALL_DEFAULT = textwrap.dedent(
    """
    def tally(counts=dict()):
        return counts
    """
)

BAD_KWONLY_SET = textwrap.dedent(
    """
    def unique(*, seen={1, 2}):
        return seen
    """
)

OK_NONE_DEFAULT = textwrap.dedent(
    """
    def collect(samples=None):
        if samples is None:
            samples = []
        return samples
    """
)

OK_TUPLE_DEFAULT = textwrap.dedent(
    """
    def span(bounds=(0, 1)):
        return bounds
    """
)


def findings(source, module="repro.engine.engine"):
    return [
        d for d in lint_source(source, module=module)
        if d.rule == "no-mutable-default"
    ]


def test_fires_on_list_literal_default():
    assert findings(BAD_LIST_DEFAULT)


def test_fires_on_constructor_call_default():
    assert findings(BAD_DICT_CALL_DEFAULT)


def test_fires_on_kwonly_set_default():
    assert findings(BAD_KWONLY_SET)


def test_none_sentinel_is_clean():
    assert findings(OK_NONE_DEFAULT) == []


def test_immutable_tuple_default_is_clean():
    assert findings(OK_TUPLE_DEFAULT) == []


def test_applies_tree_wide():
    assert findings(BAD_LIST_DEFAULT, module="repro.uarch.core")
    assert findings(BAD_LIST_DEFAULT, module="util_helpers")
