"""cache-key-completeness: every spec field must feed the cache key."""

import textwrap

from repro.lint import lint_modules, lint_source

BAD_ESCAPED_FIELD = textwrap.dedent(
    """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class ContestJob:
        trace: str
        max_lag: int = 0
        sat_grace_ns: float = 400.0

        def cache_key(self):
            return hash((self.trace, self.max_lag))
    """
)

OK_ALL_FIELDS = textwrap.dedent(
    """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class ContestJob:
        trace: str
        max_lag: int = 0

        def cache_key(self):
            return hash((self.trace, self.max_lag))
    """
)

OK_ASTUPLE = textwrap.dedent(
    """
    import dataclasses
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class CoreConfig:
        width: int
        rob_size: int

        def fingerprint(self):
            return dataclasses.astuple(self)
    """
)

OK_CLASSVAR_SKIPPED = textwrap.dedent(
    """
    from dataclasses import dataclass
    from typing import ClassVar

    @dataclass(frozen=True)
    class Job:
        seed: int
        kind: ClassVar[str] = "job"

        def cache_key(self):
            return str(self.seed)
    """
)


BAD_BACKEND_ESCAPES_KEY = textwrap.dedent(
    """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class StandaloneJob:
        trace: str
        backend: str = "reference"

        def cache_key(self):
            return hash(("standalone", self.trace))
    """
)

OK_BACKEND_JOINS_CONDITIONALLY = textwrap.dedent(
    """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class StandaloneJob:
        trace: str
        backend: str = "reference"

        def cache_key(self):
            parts = ("standalone", self.trace)
            if self.backend != "reference":
                parts += (("backend", self.backend),)
            return hash(parts)
    """
)


def findings(source, module="repro.engine.jobs"):
    return [
        d for d in lint_source(source, module=module)
        if d.rule == "cache-key-completeness"
    ]


def test_fires_on_field_missing_from_cache_key():
    fired = findings(BAD_ESCAPED_FIELD)
    assert len(fired) == 1
    assert "sat_grace_ns" in fired[0].message
    # anchored at the escaping field, not the class header
    assert fired[0].line == 8


def test_clean_when_every_field_participates():
    assert findings(OK_ALL_FIELDS) == []


def test_astuple_covers_all_fields():
    assert findings(OK_ASTUPLE, module="repro.uarch.config") == []


def test_classvar_attrs_are_not_fields():
    assert findings(OK_CLASSVAR_SKIPPED) == []


def test_fires_when_backend_escapes_the_key():
    # a backend-bearing job whose key ignores the backend aliases the
    # reference and columnar engines onto one cache entry
    fired = findings(BAD_BACKEND_ESCAPES_KEY)
    assert len(fired) == 1
    assert "backend" in fired[0].message


def test_conditional_backend_read_covers_the_field():
    # the real jobs fold the backend in only when it is non-default; a
    # conditional self.backend read still counts as coverage
    assert findings(OK_BACKEND_JOINS_CONDITIONALLY) == []


def test_applies_tree_wide():
    # a job spec living in any module is still checked
    assert findings(BAD_ESCAPED_FIELD, module="repro.experiments.common")


# ----------------------------------------- cross-module field tracking


SPEC_VIA_HELPER = """
    from dataclasses import dataclass

    from repro.engine.keys import digest

    @dataclass(frozen=True)
    class Job:
        alpha: int
        beta: int

        def cache_key(self):
            return digest(self)
    """


def project_findings(sources):
    diags = lint_modules(
        {m: textwrap.dedent(s) for m, s in sources.items()}
    )
    return [d for d in diags if d.rule == "cache-key-completeness"]


def test_helper_in_another_module_covers_the_fields_it_reads():
    assert (
        project_findings(
            {
                "repro.engine.spec": SPEC_VIA_HELPER,
                "repro.engine.keys": """
            def digest(job):
                return (job.alpha, job.beta)
            """,
            }
        )
        == []
    )


def test_fires_when_the_cross_module_helper_misses_a_field():
    diags = project_findings(
        {
            "repro.engine.spec": SPEC_VIA_HELPER,
            "repro.engine.keys": """
            def digest(job):
                return (job.alpha,)
            """,
        }
    )
    assert len(diags) == 1
    assert "beta" in diags[0].message
    assert diags[0].path.endswith("spec.py")


def test_helper_forwarding_the_object_is_followed_one_more_level():
    assert (
        project_findings(
            {
                "repro.engine.spec": SPEC_VIA_HELPER,
                "repro.engine.keys": """
            def digest(job):
                return _fold(job)

            def _fold(item):
                return (item.alpha, item.beta)
            """,
            }
        )
        == []
    )


def test_whole_object_helper_in_another_module_covers_everything():
    assert (
        project_findings(
            {
                "repro.engine.spec": SPEC_VIA_HELPER,
                "repro.engine.keys": """
            from dataclasses import astuple

            def digest(job):
                return astuple(job)
            """,
            }
        )
        == []
    )


def test_per_file_pass_alone_cannot_credit_cross_module_helpers():
    # lint_source has no project: the helper's reads are invisible, so
    # both fields look uncovered — which is exactly why the project pass
    # replaces the per-file one on whole-tree runs
    diags = findings(textwrap.dedent(SPEC_VIA_HELPER))
    assert {d.rule for d in diags} == {"cache-key-completeness"}
    assert len(diags) == 2
