"""cross-thread-mutable-state: loop/worker shared writes need a lock."""

import textwrap

from repro.lint import lint_modules

RULE = "cross-thread-mutable-state"


def findings(sources):
    diags = lint_modules(
        {m: textwrap.dedent(s) for m, s in sources.items()}
    )
    return [d for d in diags if d.rule == RULE]


RACY = {
    "repro.service.srv": """
        import threading

        class Service:
            def __init__(self):
                self.pending = 0

            async def submit(self):
                self.pending += 1
                thread = threading.Thread(target=self.worker)
                thread.start()

            def worker(self):
                self.pending -= 1
        """,
}


def test_attribute_written_on_both_sides_fires():
    diags = findings(RACY)
    assert len(diags) == 1
    diag = diags[0]
    assert "Service.pending" in diag.message
    # both witness chains are named in the message
    assert "submit" in diag.message
    assert "worker" in diag.message


def test_lock_guarded_writes_pass():
    assert (
        findings(
            {
                "repro.service.srv": """
            import threading

            class Service:
                def __init__(self):
                    self._mu = threading.Lock()
                    self.pending = 0

                async def submit(self):
                    with self._mu:
                        self.pending += 1
                    thread = threading.Thread(target=self.worker)
                    thread.start()

                def worker(self):
                    with self._mu:
                        self.pending -= 1
            """,
            }
        )
        == []
    )


def test_single_sided_writes_pass():
    # no worker dispatch: everything runs on the loop thread
    assert (
        findings(
            {
                "repro.service.srv": """
            class Service:
                def __init__(self):
                    self.pending = 0

                async def submit(self):
                    self.pending += 1

                def bookkeep(self):
                    self.pending -= 1
            """,
            }
        )
        == []
    )


def test_transitive_cross_file_race_fires_on_the_shared_class():
    diags = findings(
        {
            "repro.service.srv": """
            import threading

            from repro.service.state import Tracker

            class Service:
                def __init__(self):
                    self.tracker = Tracker()

                async def submit(self):
                    self.tracker.bump()
                    thread = threading.Thread(target=self.drudge)
                    thread.start()

                def drudge(self):
                    self.tracker.drop()
            """,
            "repro.service.state": """
            class Tracker:
                def __init__(self):
                    self.count = 0

                def bump(self):
                    self.count += 1

                def drop(self):
                    self.count -= 1
            """,
        }
    )
    assert len(diags) == 1
    diag = diags[0]
    # the race lives on Tracker, a module away from the dispatch
    assert diag.path.endswith("state.py")
    assert "Tracker.count" in diag.message
    assert "Service.submit -> Tracker.bump" in diag.message


def test_executor_submit_marks_the_worker_side():
    diags = findings(
        {
            "repro.service.srv": """
            from concurrent.futures import ThreadPoolExecutor

            class Service:
                def __init__(self):
                    self.inflight = 0
                    self.pool = ThreadPoolExecutor(max_workers=1)

                async def submit(self):
                    self.inflight += 1
                    self.pool.submit(self.job)

                def job(self):
                    self.inflight -= 1
            """,
        }
    )
    assert len(diags) == 1
    assert "Service.inflight" in diags[0].message
