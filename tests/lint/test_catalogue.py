"""Every registered rule is documented and self-describing."""

from pathlib import Path

from repro.lint import all_rules

DOC = Path(__file__).resolve().parents[2] / "docs" / "static-analysis.md"


def test_every_rule_has_summary_and_rationale():
    rules = all_rules()
    assert len(rules) >= 7
    for rule in rules:
        assert rule.name, rule
        assert rule.summary, rule.name
        assert len(rule.rationale) > 40, rule.name


def test_every_rule_is_documented():
    text = DOC.read_text(encoding="utf-8")
    for rule in all_rules():
        assert f"`{rule.name}`" in text, (
            f"rule {rule.name!r} missing from docs/static-analysis.md"
        )


def test_doc_mentions_the_pragma_escape_hatch():
    text = DOC.read_text(encoding="utf-8")
    assert "repro: allow-" in text
