"""duplicate-def: a class attribute bound twice silently shadows."""

import textwrap

from repro.lint import lint_source

# mirrors the real bug this rule was written for: Core.rob_occupancy was
# defined twice, and the docstring-less copy silently won
BAD_DOUBLE_PROPERTY = textwrap.dedent(
    """
    class Core:
        @property
        def rob_occupancy(self):
            \"\"\"Instructions dispatched but not yet committed.\"\"\"
            return len(self._rob)

        @property
        def rob_occupancy(self):
            return len(self._rob)
    """
)

BAD_DOUBLE_METHOD = textwrap.dedent(
    """
    class Core:
        def step(self):
            return 1

        def step(self):
            return 2
    """
)

BAD_DOUBLE_FIELD = textwrap.dedent(
    """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class Job:
        seed: int
        seed: int = 0
    """
)

BAD_ASSIGN_SHADOWS_METHOD = textwrap.dedent(
    """
    class Core:
        def width(self):
            return self._width

        width = 4
    """
)

OK_PROPERTY_SETTER = textwrap.dedent(
    """
    class Core:
        @property
        def width(self):
            return self._width

        @width.setter
        def width(self, value):
            self._width = value

        @width.deleter
        def width(self):
            del self._width
    """
)

OK_OVERLOAD = textwrap.dedent(
    """
    from typing import overload

    class Trace:
        @overload
        def __getitem__(self, index: int) -> int: ...

        @overload
        def __getitem__(self, index: slice) -> list: ...

        def __getitem__(self, index):
            return self._ops[index]
    """
)

OK_SINGLEDISPATCH_REGISTER = textwrap.dedent(
    """
    from functools import singledispatchmethod

    class Renderer:
        @singledispatchmethod
        def render(self, value):
            return str(value)

        @render.register
        def _render_int(self, value: int):
            return hex(value)
    """
)

OK_CONDITIONAL_DEFINITION = textwrap.dedent(
    """
    class Shim:
        try:
            from math import prod as _prod
        except ImportError:
            def _prod(self, values):
                out = 1
                for v in values:
                    out *= v
                return out
    """
)

OK_DISTINCT_NAMES = textwrap.dedent(
    """
    class Core:
        width = 4

        def step(self):
            return self.width
    """
)


def findings(source, module="repro.uarch.core"):
    return [
        d for d in lint_source(source, module=module)
        if d.rule == "duplicate-def"
    ]


def test_fires_on_duplicate_property():
    fired = findings(BAD_DOUBLE_PROPERTY)
    assert len(fired) == 1
    assert "rob_occupancy" in fired[0].message
    # anchored at the shadowing definition, naming the shadowed line
    assert fired[0].line == 9
    assert "line 4" in fired[0].message


def test_fires_on_duplicate_method():
    fired = findings(BAD_DOUBLE_METHOD)
    assert len(fired) == 1
    assert "step" in fired[0].message


def test_fires_on_duplicate_dataclass_field():
    fired = findings(BAD_DOUBLE_FIELD, module="repro.engine.jobs")
    assert len(fired) == 1
    assert "seed" in fired[0].message


def test_fires_when_assignment_shadows_method():
    fired = findings(BAD_ASSIGN_SHADOWS_METHOD)
    assert len(fired) == 1
    assert "width" in fired[0].message


def test_property_accessors_are_clean():
    assert findings(OK_PROPERTY_SETTER) == []


def test_typing_overload_is_clean():
    assert findings(OK_OVERLOAD) == []


def test_singledispatch_register_is_clean():
    assert findings(OK_SINGLEDISPATCH_REGISTER) == []


def test_conditional_fallback_definitions_are_clean():
    # only direct class-body statements count: try/except import fallbacks
    # (and if TYPE_CHECKING blocks) bind alternatives, not duplicates
    assert findings(OK_CONDITIONAL_DEFINITION) == []


def test_distinct_names_are_clean():
    assert findings(OK_DISTINCT_NAMES) == []


def test_applies_tree_wide():
    # not restricted to model scope: a duplicate in any module is a bug
    assert findings(BAD_DOUBLE_METHOD, module="repro.experiments.common")
