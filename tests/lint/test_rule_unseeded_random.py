"""no-unseeded-random: repro.util.rng is the sole sanctioned entry point."""

import textwrap

from repro.lint import lint_source

BAD_MODEL_IMPORT = textwrap.dedent(
    """
    import random

    def jitter():
        return random.random()
    """
)

BAD_GLOBAL_STREAM = textwrap.dedent(
    """
    import random

    def pick(items):
        return random.choice(items)
    """
)

BAD_UNSEEDED_INSTANCE = textwrap.dedent(
    """
    import random

    def make_rng():
        return random.Random()
    """
)

OK_SEEDED_INSTANCE = textwrap.dedent(
    """
    import random

    def make_rng(seed):
        return random.Random(seed)
    """
)

OK_SUBSTREAM = textwrap.dedent(
    """
    from repro.util.rng import substream

    def make_rng(seed):
        return substream(seed, "annealing", "moves")
    """
)


def rules_fired(source, module):
    return [d.rule for d in lint_source(source, module=module)]


def test_model_code_may_not_import_random_at_all():
    diags = lint_source(BAD_MODEL_IMPORT, module="repro.uarch.branch")
    fired = [d for d in diags if d.rule == "no-unseeded-random"]
    assert fired
    assert any("repro.util.rng" in d.message for d in fired)


def test_global_stream_banned_everywhere():
    # even outside model scope, random.choice() mutates process state
    assert "no-unseeded-random" in rules_fired(
        BAD_GLOBAL_STREAM, "repro.explore.annealing"
    )


def test_unseeded_random_instance_banned_everywhere():
    assert "no-unseeded-random" in rules_fired(
        BAD_UNSEEDED_INSTANCE, "repro.engine.executors"
    )


def test_seeded_instance_allowed_outside_model_scope():
    assert "no-unseeded-random" not in rules_fired(
        OK_SEEDED_INSTANCE, "repro.engine.executors"
    )


def test_sanctioned_wrapper_is_exempt():
    # the wrapper itself must be able to import random
    assert rules_fired("import random\n", "repro.util.rng") == []


def test_substream_usage_is_clean():
    assert rules_fired(OK_SUBSTREAM, "repro.explore.annealing") == []
