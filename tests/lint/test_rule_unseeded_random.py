"""no-unseeded-random: repro.util.rng is the sole sanctioned entry point."""

import textwrap

from repro.lint import lint_modules, lint_source

BAD_MODEL_IMPORT = textwrap.dedent(
    """
    import random

    def jitter():
        return random.random()
    """
)

BAD_GLOBAL_STREAM = textwrap.dedent(
    """
    import random

    def pick(items):
        return random.choice(items)
    """
)

BAD_UNSEEDED_INSTANCE = textwrap.dedent(
    """
    import random

    def make_rng():
        return random.Random()
    """
)

OK_SEEDED_INSTANCE = textwrap.dedent(
    """
    import random

    def make_rng(seed):
        return random.Random(seed)
    """
)

OK_SUBSTREAM = textwrap.dedent(
    """
    from repro.util.rng import substream

    def make_rng(seed):
        return substream(seed, "annealing", "moves")
    """
)


def rules_fired(source, module):
    return [d.rule for d in lint_source(source, module=module)]


def test_model_code_may_not_import_random_at_all():
    diags = lint_source(BAD_MODEL_IMPORT, module="repro.uarch.branch")
    fired = [d for d in diags if d.rule == "no-unseeded-random"]
    assert fired
    assert any("repro.util.rng" in d.message for d in fired)


def test_global_stream_banned_everywhere():
    # even outside model scope, random.choice() mutates process state
    assert "no-unseeded-random" in rules_fired(
        BAD_GLOBAL_STREAM, "repro.explore.annealing"
    )


def test_unseeded_random_instance_banned_everywhere():
    assert "no-unseeded-random" in rules_fired(
        BAD_UNSEEDED_INSTANCE, "repro.engine.executors"
    )


def test_seeded_instance_allowed_outside_model_scope():
    assert "no-unseeded-random" not in rules_fired(
        OK_SEEDED_INSTANCE, "repro.engine.executors"
    )


def test_sanctioned_wrapper_is_exempt():
    # the wrapper itself must be able to import random
    assert rules_fired("import random\n", "repro.util.rng") == []


def test_substream_usage_is_clean():
    assert rules_fired(OK_SUBSTREAM, "repro.explore.annealing") == []


# ------------------------------------------------- project-pass taint


def project_findings(sources):
    diags = lint_modules(
        {m: textwrap.dedent(s) for m, s in sources.items()}
    )
    return [d for d in diags if d.rule == "no-unseeded-random"]


def test_model_code_reaching_the_global_stream_transitively_fires():
    diags = project_findings(
        {
            "repro.core.dram": """
            from repro.helpers.noise import perturb

            def latency(base):
                return base + perturb()
            """,
            "repro.helpers.noise": """
            import random

            def perturb():
                return random.random()
            """,
        }
    )
    # the helper's own direct call is the per-file pass's finding; the
    # transitive model-side finding is the project pass's
    model_side = [d for d in diags if d.path.endswith("dram.py")]
    assert len(model_side) == 1
    assert "random.random" in model_side[0].message
    assert "substream" in model_side[0].message


def test_seeded_helper_instance_is_not_a_taint_source():
    assert (
        project_findings(
            {
                "repro.core.dram": """
            from repro.helpers.noise import perturb

            def latency(base, seed):
                return base + perturb(seed)
            """,
                "repro.helpers.noise": """
            import random

            def perturb(seed):
                return random.Random(seed).random()
            """,
            }
        )
        == []
    )


def test_draw_routed_through_the_rng_module_passes():
    assert (
        project_findings(
            {
                "repro.core.dram": """
            from repro.util.rng import substream

            def latency(base, seed):
                return base + substream(seed, "dram").random()
            """,
                "repro.util.rng": """
            import random

            def substream(seed, *names):
                return random.Random((seed,) + names)
            """,
            }
        )
        == []
    )
