"""no-swallowed-oserror: engine I/O failures must be counted or logged."""

import textwrap

from repro.lint import lint_source

BAD_BARE_PASS = textwrap.dedent(
    """
    def append(path, data):
        try:
            path.write_bytes(data)
        except OSError:
            pass
    """
)

BAD_IOERROR_ALIAS = textwrap.dedent(
    """
    def cleanup(tmp):
        try:
            tmp.unlink()
        except IOError:
            pass
    """
)

BAD_TUPLE_CLAUSE = textwrap.dedent(
    """
    def probe(path):
        try:
            return path.stat()
        except (ValueError, OSError):
            ...
    """
)

BAD_DOCSTRING_ONLY = textwrap.dedent(
    '''
    def close(fd):
        import os
        try:
            os.close(fd)
        except OSError:
            "already closed"
    '''
)

OK_COUNTED = textwrap.dedent(
    """
    def append(store, path, data):
        try:
            path.write_bytes(data)
        except OSError:
            store.write_errors += 1
    """
)

OK_LOGGED = textwrap.dedent(
    """
    import logging
    log = logging.getLogger(__name__)

    def kill(proc):
        try:
            proc.kill()
        except OSError as exc:
            log.debug("kill failed: %s", exc)
    """
)

OK_RERAISED = textwrap.dedent(
    """
    def read(path):
        try:
            return path.read_bytes()
        except OSError:
            raise RuntimeError("store unreadable")
    """
)

OK_OTHER_EXCEPTION = textwrap.dedent(
    """
    def decode(payload):
        try:
            return int(payload)
        except ValueError:
            pass
    """
)


def findings(source, module="repro.engine.store"):
    return [
        d for d in lint_source(source, module=module)
        if d.rule == "no-swallowed-oserror"
    ]


def test_fires_on_bare_pass():
    assert findings(BAD_BARE_PASS)


def test_fires_on_ioerror_alias():
    assert findings(BAD_IOERROR_ALIAS)


def test_fires_inside_tuple_clause():
    assert findings(BAD_TUPLE_CLAUSE)


def test_fires_on_constant_only_body():
    # a string "comment" in the handler is still observably nothing
    assert findings(BAD_DOCSTRING_ONLY)


def test_counter_increment_is_clean():
    assert findings(OK_COUNTED) == []


def test_log_call_is_clean():
    assert findings(OK_LOGGED) == []


def test_reraise_is_clean():
    assert findings(OK_RERAISED) == []


def test_other_exceptions_are_out_of_scope():
    assert findings(OK_OTHER_EXCEPTION) == []


def test_silent_outside_engine_scope():
    # model/analysis code has no durability counters to feed; the rule
    # polices the engine and store layers only
    assert findings(BAD_BARE_PASS, module="repro.uarch.core") == []


def test_engine_package_root_is_in_scope():
    assert findings(BAD_BARE_PASS, module="repro.engine")


def test_pragma_suppresses():
    suppressed = textwrap.dedent(
        """
        def append(path, data):
            try:
                path.write_bytes(data)
            except OSError:  # repro: allow-no-swallowed-oserror
                pass
        """
    )
    assert findings(suppressed) == []
