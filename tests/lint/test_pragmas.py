"""The ``# repro: allow-<rule>`` escape hatch."""

import textwrap

from repro.lint import lint_source
from repro.lint.pragmas import parse_pragmas

SUPPRESSED_SAME_LINE = textwrap.dedent(
    """
    from time import monotonic  # repro: allow-no-wallclock

    def stamp():
        return monotonic()  # repro: allow-no-wallclock
    """
)

SUPPRESSED_LINE_ABOVE = textwrap.dedent(
    """
    # repro: allow-no-mutable-default (fixture: shared accumulator on purpose)
    def collect(samples=[]):
        return samples
    """
)

WRONG_RULE_PRAGMA = textwrap.dedent(
    """
    def collect(samples=[]):  # repro: allow-no-wallclock
        return samples
    """
)

ALLOW_ALL = textwrap.dedent(
    """
    def collect(samples=[]):  # repro: allow-all
        return samples
    """
)


def test_same_line_pragma_suppresses():
    assert lint_source(SUPPRESSED_SAME_LINE, module="repro.uarch.run") == []


def test_comment_line_above_covers_next_line():
    assert lint_source(SUPPRESSED_LINE_ABOVE, module="repro.uarch.run") == []


def test_pragma_for_a_different_rule_does_not_suppress():
    diags = lint_source(WRONG_RULE_PRAGMA, module="repro.uarch.run")
    assert [d.rule for d in diags] == ["no-mutable-default"]


def test_allow_all_suppresses_everything():
    assert lint_source(ALLOW_ALL, module="repro.uarch.run") == []


def test_parse_pragmas_shapes():
    allowed = parse_pragmas(
        "x = 1  # repro: allow-no-wallclock, allow-frozen-config\n"
        "# repro: allow-no-mutable-default\n"
        "y = 2\n"
    )
    assert allowed[1] == {"no-wallclock", "frozen-config"}
    # comment-only pragma covers its own line and the next
    assert allowed[2] == {"no-mutable-default"}
    assert allowed[3] == {"no-mutable-default"}


def test_plain_comments_are_not_pragmas():
    assert parse_pragmas("x = 1  # repro is deterministic\n") == {}
