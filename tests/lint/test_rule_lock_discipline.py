"""lock-discipline: designated-lock classes stay inside their locks."""

import textwrap

from repro.lint import lint_modules

RULE = "lock-discipline"


def findings(sources):
    diags = lint_modules(
        {m: textwrap.dedent(s) for m, s in sources.items()}
    )
    return [d for d in diags if d.rule == RULE]


def test_unlocked_raw_write_fires():
    diags = findings(
        {
            "repro.engine.storelike": """
            import os
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._fd = os.open("data", os.O_RDWR)

                def append(self, payload):
                    os.write(self._fd, payload)
            """,
        }
    )
    assert len(diags) == 1
    assert "raw file write" in diags[0].message
    assert "Store.append" in diags[0].message


def test_write_inside_the_lock_passes():
    assert (
        findings(
            {
                "repro.engine.storelike": """
            import os
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._fd = os.open("data", os.O_RDWR)

                def append(self, payload):
                    with self._lock:
                        os.write(self._fd, payload)
            """,
            }
        )
        == []
    )


def test_helper_called_only_from_locked_regions_is_exempt():
    # the _heal_tail pattern: the lock is taken one frame up
    assert (
        findings(
            {
                "repro.engine.storelike": """
            import os
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._fd = os.open("data", os.O_RDWR)

                def append(self, payload):
                    with self._lock:
                        self._write(payload)

                def _write(self, payload):
                    os.write(self._fd, payload)
            """,
            }
        )
        == []
    )


def test_unlocked_write_to_guarded_attribute_fires():
    diags = findings(
        {
            "repro.engine.storelike": """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def record(self, key):
                    with self._lock:
                        self._entries[key] = 1

                def fast_path(self, key):
                    self._entries[key] = 2
            """,
        }
    )
    assert len(diags) == 1
    assert "_entries" in diags[0].message
    assert "fast_path" in diags[0].message


def test_contextmanager_lock_method_counts_as_a_lock_scope():
    diags = findings(
        {
            "repro.engine.storelike": """
            import os
            from contextlib import contextmanager

            class Store:
                @contextmanager
                def _locked(self):
                    yield

                def append(self, payload):
                    with self._locked():
                        os.write(1, payload)

                def sneak(self, payload):
                    os.write(1, payload)
            """,
        }
    )
    assert len(diags) == 1
    assert "Store.sneak" in diags[0].message


def test_class_without_a_designated_lock_is_out_of_scope():
    # raw writes alone do not opt a class into the audit
    assert (
        findings(
            {
                "repro.engine.plainlog": """
            import os

            class Log:
                def append(self, payload):
                    os.write(1, payload)
            """,
            }
        )
        == []
    )


def test_lock_inherited_from_a_base_class_is_recognised():
    diags = findings(
        {
            "repro.engine.base": """
            import threading

            class Locked:
                def __init__(self):
                    self._lock = threading.Lock()
            """,
            "repro.engine.derived": """
            import os

            from repro.engine.base import Locked

            class Store(Locked):
                def append(self, payload):
                    os.write(1, payload)
            """,
        }
    )
    assert len(diags) == 1
    assert diags[0].path.endswith("derived.py")
