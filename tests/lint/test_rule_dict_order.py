"""no-dict-order-dependence: sorted iteration over sets in model code."""

import textwrap

from repro.lint import lint_source

BAD_SET_CALL = textwrap.dedent(
    """
    def flush(blocks):
        for block in set(blocks):
            touch(block)
    """
)

BAD_SET_COMP = textwrap.dedent(
    """
    def pending(instrs):
        return [i for i in {x.seq for x in instrs}]
    """
)

BAD_SET_ALGEBRA = textwrap.dedent(
    """
    def drain(ready, done):
        for seq in set(ready) - set(done):
            retire(seq)
    """
)

OK_SORTED = textwrap.dedent(
    """
    def flush(blocks):
        for block in sorted(set(blocks)):
            touch(block)
    """
)

OK_DICT_ITERATION = textwrap.dedent(
    """
    def walk(table):
        for key, value in table.items():
            touch(key, value)
    """
)


def findings(source, module="repro.uarch.cache"):
    return [
        d for d in lint_source(source, module=module)
        if d.rule == "no-dict-order-dependence"
    ]


def test_fires_on_set_call_iteration():
    assert findings(BAD_SET_CALL)


def test_fires_on_set_comprehension_iteration():
    assert findings(BAD_SET_COMP)


def test_fires_on_set_algebra_iteration():
    assert findings(BAD_SET_ALGEBRA)


def test_sorted_wrapper_is_clean():
    assert findings(OK_SORTED) == []


def test_dict_iteration_is_clean():
    # CPython dicts preserve insertion order; only sets are hash-ordered
    assert findings(OK_DICT_ITERATION) == []


def test_silent_outside_model_scope():
    # analysis/experiment code may aggregate over sets (order-insensitive
    # reductions); the determinism risk is in the timing models
    assert findings(BAD_SET_CALL, module="repro.experiments.common") == []
