"""await-discarded: a coroutine called as a bare statement never runs."""

import textwrap

from repro.lint import lint_modules

RULE = "await-discarded"


def findings(sources):
    diags = lint_modules(
        {m: textwrap.dedent(s) for m, s in sources.items()}
    )
    return [d for d in diags if d.rule == RULE]


def test_bare_coroutine_call_fires():
    diags = findings(
        {
            "repro.service.api": """
            async def drain():
                return 1

            async def shutdown():
                drain()
            """,
        }
    )
    assert len(diags) == 1
    assert "drain" in diags[0].message
    assert "never runs" in diags[0].message


def test_cross_file_coroutine_call_fires():
    # the caller's file has no idea drain is async; the project does
    diags = findings(
        {
            "repro.service.api": """
            from repro.service.core import drain

            def stop():
                drain()
            """,
            "repro.service.core": """
            async def drain():
                return 1
            """,
        }
    )
    assert len(diags) == 1
    assert diags[0].path.endswith("api.py")


def test_awaited_call_passes():
    assert (
        findings(
            {
                "repro.service.api": """
            async def drain():
                return 1

            async def shutdown():
                await drain()
            """,
            }
        )
        == []
    )


def test_create_task_wrapped_call_passes():
    assert (
        findings(
            {
                "repro.service.api": """
            import asyncio

            async def drain():
                return 1

            async def shutdown():
                asyncio.create_task(drain())
            """,
            }
        )
        == []
    )


def test_assigned_coroutine_passes():
    # binding the coroutine object is deliberate (gather, task lists)
    assert (
        findings(
            {
                "repro.service.api": """
            import asyncio

            async def drain():
                return 1

            async def shutdown():
                tasks = [drain(), drain()]
                await asyncio.gather(*tasks)
            """,
            }
        )
        == []
    )


def test_sync_function_call_as_statement_passes():
    assert (
        findings(
            {
                "repro.service.api": """
            def log(msg):
                return msg

            async def shutdown():
                log("bye")
            """,
            }
        )
        == []
    )
