"""The ``python -m repro.lint`` front end and the clean-tree gate."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_SOURCE = "def collect(samples=[]):\n    return samples\n"


def run_cli(*argv, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *argv],
        cwd=cwd or REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_clean_tree_exits_zero():
    # the acceptance gate: the shipped source passes its own analyzer
    proc = run_cli("src")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_findings_exit_one_with_text_report(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_SOURCE)
    proc = run_cli(str(bad))
    assert proc.returncode == 1
    assert "no-mutable-default" in proc.stdout
    assert f"{bad}:1:" in proc.stdout


def test_json_format_is_machine_readable(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_SOURCE)
    proc = run_cli("--format=json", str(bad))
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload and payload[0]["rule"] == "no-mutable-default"
    assert payload[0]["line"] == 1
    assert payload[0]["path"] == str(bad)


def test_select_restricts_rules(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_SOURCE)
    proc = run_cli("--select", "no-wallclock", str(bad))
    assert proc.returncode == 0


def test_ignore_drops_rules(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_SOURCE)
    proc = run_cli("--ignore", "no-mutable-default", str(bad))
    assert proc.returncode == 0


def test_unknown_rule_is_a_usage_error():
    with pytest.raises(SystemExit):
        main(["--select", "no-such-rule", "src"])


def test_list_rules_prints_catalogue():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for rule in (
        "no-wallclock",
        "no-unseeded-random",
        "frozen-config",
        "cache-key-completeness",
        "pickle-boundary",
        "no-mutable-default",
        "no-dict-order-dependence",
    ):
        assert rule in proc.stdout
