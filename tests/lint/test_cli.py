"""The ``python -m repro.lint`` front end and the clean-tree gate."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_SOURCE = "def collect(samples=[]):\n    return samples\n"


def run_cli(*argv, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *argv],
        cwd=cwd or REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_clean_tree_exits_zero():
    # the acceptance gate: the shipped source passes its own analyzer
    proc = run_cli("src")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_whole_tree_is_clean_including_tests_and_benchmarks():
    # the CI gate lints the full tree — src, tests, benchmarks — with
    # the project pass on; it must hold without pragmas in src/repro
    proc = run_cli("src", "tests", "benchmarks")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_findings_exit_one_with_text_report(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_SOURCE)
    proc = run_cli(str(bad))
    assert proc.returncode == 1
    assert "no-mutable-default" in proc.stdout
    assert f"{bad}:1:" in proc.stdout


def test_json_format_is_machine_readable(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_SOURCE)
    proc = run_cli("--format=json", str(bad))
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload and payload[0]["rule"] == "no-mutable-default"
    assert payload[0]["line"] == 1
    assert payload[0]["path"] == str(bad)


def test_github_format_emits_error_workflow_commands(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_SOURCE)
    proc = run_cli("--format=github", str(bad))
    assert proc.returncode == 1
    line = proc.stdout.strip().splitlines()[0]
    assert line.startswith("::error file=")
    assert ",line=1," in line
    assert "title=no-mutable-default" in line
    # workflow commands put the message after the :: separator
    assert "::" in line.split("title=no-mutable-default", 1)[1]


def test_github_format_escapes_property_delimiters(tmp_path):
    # a path containing a comma must not split the file property
    subdir = tmp_path / "odd,dir"
    subdir.mkdir()
    bad = subdir / "bad.py"
    bad.write_text(BAD_SOURCE)
    proc = run_cli("--format=github", str(bad))
    assert proc.returncode == 1
    line = proc.stdout.strip().splitlines()[0]
    assert "odd%2Cdir" in line


def test_stats_go_to_stderr_and_compose_with_formats(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_SOURCE)
    proc = run_cli("--stats", "--format=json", str(bad))
    assert proc.returncode == 1
    json.loads(proc.stdout)  # stdout stays machine-readable
    assert "stats: 1 files" in proc.stderr
    assert "project pass" in proc.stderr
    assert "stats: no-mutable-default: 1" in proc.stderr


def test_stats_on_a_clean_run_reports_zero_findings(tmp_path):
    good = tmp_path / "good.py"
    good.write_text("def f(x=None):\n    return x\n")
    proc = run_cli("--stats", str(good))
    assert proc.returncode == 0
    assert "0 findings" in proc.stderr


def test_select_restricts_rules(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_SOURCE)
    proc = run_cli("--select", "no-wallclock", str(bad))
    assert proc.returncode == 0


def test_ignore_drops_rules(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_SOURCE)
    proc = run_cli("--ignore", "no-mutable-default", str(bad))
    assert proc.returncode == 0


def test_unknown_rule_is_a_usage_error():
    with pytest.raises(SystemExit):
        main(["--select", "no-such-rule", "src"])


def test_list_rules_prints_catalogue():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for rule in (
        "no-wallclock",
        "no-unseeded-random",
        "frozen-config",
        "cache-key-completeness",
        "pickle-boundary",
        "no-mutable-default",
        "no-dict-order-dependence",
    ):
        assert rule in proc.stdout
