"""Unit-level tests of the Section-4.1 scenario logic (pop counters, fetch
counter, late-result discarding, pairing, and the Figure-5 corner case)."""

from repro.core.system import ContestingSystem, ResultFifo
from repro.isa.generator import generate_trace
from repro.isa.instructions import Instr, OpClass
from repro.isa.phases import PhaseMix, branchy_phase
from repro.isa.trace import Trace
from repro.uarch.config import core_config


class TestResultFifo:
    def test_pop_counter_starts_at_zero(self):
        fifo = ResultFifo(sender_id=1)
        assert fifo.next_seq == 0
        assert fifo.occupancy == 0

    def test_push_occupancy(self):
        fifo = ResultFifo(0)
        fifo.push(100)
        fifo.push(200)
        assert fifo.occupancy == 2


def _system(trace, a="gcc", b="mcf", **kw):
    return ContestingSystem(
        [core_config(a), core_config(b)], trace, **kw
    )


def _alu_trace(n=50):
    return Trace("alu", [Instr(OpClass.IALU, pc=4 * i) for i in range(n)])


class TestScenario1LateDiscard:
    def test_late_results_discarded(self, small_trace):
        system = _system(small_trace)
        result = system.run()
        # whichever core led, its incoming FIFO saw late results discarded
        late = sum(
            f.popped_late
            for flist in system.fifos.values()
            for f in flist
        )
        assert late > 0

    def test_pop_counters_advance_in_order(self, tiny_trace):
        system = _system(tiny_trace)
        system.run()
        for flist in system.fifos.values():
            for fifo in flist:
                assert 0 <= fifo.next_seq <= len(tiny_trace)


class TestScenario2Pairing:
    def test_trailing_core_pairs_results(self, small_trace):
        # gap trails gcc on the gcc workload
        system = _system(small_trace, a="gcc", b="gap")
        system.run()
        paired = sum(
            f.popped_paired for f in system.fifos[1]
        )
        assert paired > 0

    def test_paired_plus_late_bounded_by_retires(self, small_trace):
        system = _system(small_trace)
        system.run()
        for rid, flist in system.fifos.items():
            for fifo in flist:
                assert fifo.popped_late + fifo.popped_paired == fifo.next_seq


class TestEarlyBranchResolution:
    def test_corner_case_fires(self):
        # A branchy, poorly-predictable trace contested between two similar
        # cores: each core's mispredicted branches are regularly resolved by
        # the other's (slightly earlier) retired outcomes.
        mix = PhaseMix(
            "b", [(branchy_phase("x", branch_bias=0.75, mean_dwell=10**9), 1.0)]
        )
        trace = generate_trace(mix, 12000, seed=3)
        system = _system(trace, a="twolf", b="vpr")
        result = system.run()
        early = sum(s.early_resolved for s in result.per_core.values())
        assert early > 0

    def test_early_resolution_requires_misprediction(self, tiny_trace):
        from repro.uarch.core import Core

        core = Core(core_config("gcc"), tiny_trace)
        # no branch in flight -> nothing to resolve
        assert core.early_resolve_branch(0) is False


class TestFetchCounterEquivalence:
    def test_fetch_index_is_fetch_counter(self, tiny_trace):
        """Trace-driven fetch_index only counts correct-path instructions,
        which is exactly the paper's (checkpoint-repaired) fetch counter."""
        from repro.uarch.core import Core

        core = Core(core_config("gcc"), tiny_trace)
        for _ in range(200):
            if core.done:
                break
            core.step()
        assert core.fetch_index >= core.commit_count
        assert core.fetch_index <= len(tiny_trace)
