"""Property-based tests: contesting invariants over random tiny workloads."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.system import ContestingSystem
from repro.isa.generator import generate_trace
from repro.isa.phases import PhaseMix, branchy_phase, stream_phase, wide_ilp_phase
from repro.isa.workloads import BENCHMARKS
from repro.uarch.config import core_config

CORE_NAMES = list(BENCHMARKS)


def _random_mix(ilp_w, branchy_w, stream_w):
    return PhaseMix(
        "prop",
        [
            (wide_ilp_phase("i", mean_dwell=150), ilp_w),
            (branchy_phase("b", branch_bias=0.85, mean_dwell=150), branchy_w),
            (stream_phase("s", footprint=32 * 1024, mean_dwell=150), stream_w),
        ],
    )


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    ilp_w=st.floats(0.2, 3.0),
    branchy_w=st.floats(0.2, 3.0),
    stream_w=st.floats(0.2, 3.0),
    pair=st.tuples(
        st.sampled_from(CORE_NAMES), st.sampled_from(CORE_NAMES)
    ).filter(lambda p: p[0] != p[1]),
)
def test_contest_always_completes_and_is_sane(seed, ilp_w, branchy_w, stream_w, pair):
    trace = generate_trace(_random_mix(ilp_w, branchy_w, stream_w), 800, seed=seed)
    system = ContestingSystem(
        [core_config(pair[0]), core_config(pair[1])], trace
    )
    result = system.run()
    # completion
    assert result.instructions == 800
    assert result.time_ps > 0
    # the winner really retired everything
    winner_key = [k for k in result.per_core if k.endswith(result.winner)][0]
    assert result.per_core[winner_key].committed == 800
    # pop-counter conservation on every FIFO
    for flist in system.fifos.values():
        for fifo in flist:
            assert fifo.popped_late + fifo.popped_paired == fifo.next_seq
            assert fifo.next_seq <= 800


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    pair=st.tuples(
        st.sampled_from(CORE_NAMES), st.sampled_from(CORE_NAMES)
    ).filter(lambda p: p[0] != p[1]),
)
def test_contest_determinism_property(seed, pair):
    trace = generate_trace(_random_mix(1, 1, 1), 600, seed=seed)
    configs = [core_config(pair[0]), core_config(pair[1])]
    a = ContestingSystem(configs, trace).run()
    b = ContestingSystem(configs, trace).run()
    assert a.time_ps == b.time_ps
    assert a.winner == b.winner
    assert a.lead_changes == b.lead_changes


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_contest_not_slower_than_slowest_single(seed):
    from repro.uarch.run import run_standalone

    trace = generate_trace(_random_mix(1, 1, 1), 700, seed=seed)
    gcc = core_config("gcc")
    mcf = core_config("mcf")
    worst_time = max(
        run_standalone(gcc, trace).time_ps,
        run_standalone(mcf, trace).time_ps,
    )
    both = ContestingSystem([gcc, mcf], trace).run()
    assert both.time_ps <= worst_time * 1.05
