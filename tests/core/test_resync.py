"""Tests of the resync (re-fork) lagger policy extension."""

import pytest

from repro.core.system import ContestingSystem
from repro.uarch.config import core_config
from repro.uarch.core import Core
from repro.uarch.run import run_standalone


class TestCoreResync:
    def test_resync_jumps_position(self, small_trace, gcc_core):
        core = Core(gcc_core, small_trace)
        for _ in range(100):
            core.step()
        core.resync(2000)
        assert core.fetch_index == 2000
        assert core.commit_count == 2000
        assert core.rob_occupancy == 0

    def test_resync_penalty_charges_time(self, small_trace, gcc_core):
        core = Core(gcc_core, small_trace)
        t0 = core.time_ps
        core.resync(100, penalty_cycles=50)
        assert core.time_ps == t0 + 50 * core.period_ps

    def test_resync_backwards_rejected(self, small_trace, gcc_core):
        core = Core(gcc_core, small_trace)
        core.resync(500)
        with pytest.raises(ValueError):
            core.resync(100)

    def test_resync_beyond_trace_rejected(self, small_trace, gcc_core):
        core = Core(gcc_core, small_trace)
        with pytest.raises(ValueError):
            core.resync(len(small_trace) + 1)

    def test_execution_continues_after_resync(self, small_trace, gcc_core):
        core = Core(gcc_core, small_trace)
        core.resync(len(small_trace) - 200)
        while not core.done:
            core.step()
        assert core.commit_count == len(small_trace)


class TestResyncPolicy:
    def test_policy_validation(self, small_trace, gcc_core, mcf_core):
        with pytest.raises(ValueError):
            ContestingSystem(
                [gcc_core, mcf_core], small_trace, lagger_policy="reboot"
            )

    def test_resync_instead_of_halt(self, ilp_trace):
        system = ContestingSystem(
            [core_config("crafty"), core_config("mcf")], ilp_trace,
            max_lag=256, sat_grace_ns=5.0, lagger_policy="resync",
        )
        result = system.run()
        assert result.saturated == []       # nobody is removed
        assert system.resyncs >= 1          # mcf was re-forked instead

    def test_resync_not_slower_than_disable(self, ilp_trace):
        kw = dict(max_lag=256, sat_grace_ns=5.0)
        disable = ContestingSystem(
            [core_config("crafty"), core_config("mcf")], ilp_trace,
            lagger_policy="disable", **kw,
        ).run()
        resync = ContestingSystem(
            [core_config("crafty"), core_config("mcf")], ilp_trace,
            lagger_policy="resync", **kw,
        ).run()
        assert resync.ipt >= disable.ipt * 0.97

    def test_store_accounting_after_resync(self, store_trace):
        # gcc races far ahead of mcf on the store trace; with a tight lag
        # bound and resync, merged stores must stay consistent (no deadlock,
        # no over-merge)
        system = ContestingSystem(
            [core_config("gcc"), core_config("mcf")], store_trace,
            max_lag=64, sat_grace_ns=5.0, lagger_policy="resync",
        )
        result = system.run()
        n_stores = sum(1 for i in store_trace if i.op == 4)
        assert result.instructions == len(store_trace)
        assert 0 <= result.merged_stores <= n_stores

    def test_resync_completes_on_real_workload(self, small_trace):
        system = ContestingSystem(
            [core_config("gcc"), core_config("gap")], small_trace,
            max_lag=128, sat_grace_ns=10.0, lagger_policy="resync",
        )
        result = system.run()
        assert result.instructions == len(small_trace)
