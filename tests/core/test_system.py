"""End-to-end behaviour of the contesting system."""

import dataclasses

import pytest

from repro.core.system import ContestingSystem, run_contest
from repro.uarch.config import core_config
from repro.uarch.run import run_standalone


class TestBasicContract:
    def test_requires_two_cores(self, small_trace, gcc_core):
        with pytest.raises(ValueError):
            ContestingSystem([gcc_core], small_trace)

    def test_completes_and_reports(self, small_trace, gcc_core, mcf_core):
        result = run_contest(gcc_core, mcf_core, small_trace)
        assert result.instructions == len(small_trace)
        assert result.time_ps > 0
        assert result.winner in ("gcc", "mcf")
        assert set(result.config_names) == {"gcc", "mcf"}
        assert result.ipt > 0

    def test_determinism(self, small_trace, gcc_core, mcf_core):
        a = run_contest(gcc_core, mcf_core, small_trace)
        b = run_contest(gcc_core, mcf_core, small_trace)
        assert a.time_ps == b.time_ps
        assert a.lead_changes == b.lead_changes

    def test_per_core_stats_keys(self, small_trace, gcc_core, mcf_core):
        result = run_contest(gcc_core, mcf_core, small_trace)
        assert set(result.per_core) == {"0:gcc", "1:mcf"}

    def test_identical_cores_no_harm(self, small_trace, gcc_core):
        alone = run_standalone(gcc_core, small_trace)
        both = run_contest(gcc_core, gcc_core, small_trace)
        # contesting two identical cores must match standalone timing
        # closely (the cores tie; broadcasts are all late/discarded)
        assert both.ipt == pytest.approx(alone.ipt, rel=0.02)

    def test_never_slower_than_worst(self, small_trace, gcc_core, crafty_core):
        worst = min(
            run_standalone(gcc_core, small_trace).ipt,
            run_standalone(crafty_core, small_trace).ipt,
        )
        both = run_contest(gcc_core, crafty_core, small_trace)
        assert both.ipt >= worst * 0.98


class TestLeaderFollower:
    def test_follower_receives_injections(self, small_trace):
        # gcc is much better than gap on the gcc workload: gap trails and
        # must be fed results
        result = run_contest(
            core_config("gcc"), core_config("gap"), small_trace
        )
        assert result.per_core["1:gap"].injected > 10

    def test_lead_changes_counted(self, small_trace):
        result = run_contest(
            core_config("gcc"), core_config("vpr"), small_trace
        )
        assert result.lead_changes >= 1

    def test_injection_reduces_follower_mispredicts(self, small_trace):
        alone = run_standalone(core_config("gap"), small_trace)
        both = run_contest(
            core_config("gcc"), core_config("gap"), small_trace
        )
        # injected branches cannot mispredict, so the trailing core resolves
        # fewer branches the hard way
        assert both.per_core["1:gap"].mispredicts < alone.stats.mispredicts


class TestGrbLatency:
    def test_latency_monotone_not_better(self, small_trace, gcc_core):
        vpr = core_config("vpr")
        near = run_contest(gcc_core, vpr, small_trace, grb_latency_ns=1.0)
        far = run_contest(gcc_core, vpr, small_trace, grb_latency_ns=100.0)
        assert far.ipt <= near.ipt * 1.02

    def test_latency_zero_allowed(self, tiny_trace, gcc_core, mcf_core):
        result = run_contest(gcc_core, mcf_core, tiny_trace, grb_latency_ns=0.0)
        assert result.instructions == len(tiny_trace)


class TestSaturation:
    def test_rate_mismatch_saturates(self, ilp_trace):
        # crafty retires pure ILP at ~8/0.19 = 42 per ns; mcf can consume at
        # most 3/0.45 = 6.7 per ns: a saturated lagger by the paper's rate
        # condition.  (Short traces need a short grace window to observe it.)
        result = ContestingSystem(
            [core_config("crafty"), core_config("mcf")], ilp_trace,
            max_lag=256, sat_grace_ns=5.0,
        ).run()
        assert result.saturated == ["mcf"]

    def test_saturated_run_matches_leader_alone(self, ilp_trace):
        alone = run_standalone(core_config("crafty"), ilp_trace)
        both = ContestingSystem(
            [core_config("crafty"), core_config("mcf")], ilp_trace,
            max_lag=256, sat_grace_ns=5.0,
        ).run()
        assert both.ipt == pytest.approx(alone.ipt, rel=0.05)

    def test_max_lag_param(self, small_trace, gcc_core):
        vpr = core_config("vpr")
        tight = ContestingSystem(
            [gcc_core, vpr], small_trace, max_lag=32, sat_grace_ns=1.0
        ).run()
        loose = ContestingSystem(
            [gcc_core, vpr], small_trace, max_lag=100_000
        ).run()
        assert loose.saturated == []
        # the tight bound trips on ordinary transients
        assert tight.saturated != []

    def test_bad_max_lag(self, small_trace, gcc_core, mcf_core):
        with pytest.raises(ValueError):
            ContestingSystem([gcc_core, mcf_core], small_trace, max_lag=-1)


class TestStores:
    def test_stores_merge(self, store_trace, gcc_core, mcf_core):
        result = run_contest(gcc_core, mcf_core, store_trace)
        n_stores = sum(1 for i in store_trace if i.op == 4)
        # the run ends when the first core retires the last instruction; the
        # other core's trailing stores are still buffered, so merged counts
        # the slower core's store progress
        assert 0 < result.merged_stores <= n_stores
        assert result.merged_stores > n_stores // 2

    def test_tiny_store_queue_stalls_but_completes(self, store_trace, gcc_core, mcf_core):
        result = ContestingSystem(
            [gcc_core, mcf_core], store_trace, store_queue_capacity=2
        ).run()
        assert result.instructions == len(store_trace)
        assert result.store_stalls > 0

    def test_big_queue_no_stalls(self, store_trace, gcc_core, mcf_core):
        result = ContestingSystem(
            [gcc_core, mcf_core], store_trace, store_queue_capacity=100_000
        ).run()
        assert result.store_stalls == 0


class TestExceptions:
    def test_syscall_barrier_completes(self, syscall_trace, gcc_core, mcf_core):
        result = run_contest(gcc_core, mcf_core, syscall_trace)
        assert result.instructions == len(syscall_trace)

    def test_syscall_costs_time(self, gcc_core, mcf_core):
        from repro.isa.generator import generate_trace
        from repro.isa.phases import PhaseMix, wide_ilp_phase

        plain_mix = PhaseMix("p", [(wide_ilp_phase("x", mean_dwell=10**9), 1.0)])
        sys_mix = PhaseMix(
            "s", [(wide_ilp_phase("x", mean_dwell=10**9, syscall_rate=0.005), 1.0)]
        )
        plain = generate_trace(plain_mix, 2000, seed=1)
        with_sys = generate_trace(sys_mix, 2000, seed=1)
        a = run_contest(gcc_core, mcf_core, plain)
        b = run_contest(gcc_core, mcf_core, with_sys)
        assert b.time_ps > a.time_ps


class TestNWay:
    def test_three_way_completes(self, tiny_trace):
        system = ContestingSystem(
            [core_config("gcc"), core_config("vpr"), core_config("twolf")],
            tiny_trace,
        )
        result = system.run()
        assert result.instructions == len(tiny_trace)
        assert len(result.per_core) == 3

    def test_three_way_not_worse_than_pairs(self, small_trace):
        triple = ContestingSystem(
            [core_config("gcc"), core_config("vpr"), core_config("twolf")],
            small_trace,
        ).run()
        best_single = max(
            run_standalone(core_config(n), small_trace).ipt
            for n in ("gcc", "vpr", "twolf")
        )
        assert triple.ipt >= best_single * 0.97
