import pytest

from repro.core.storequeue import SyncStoreQueue


class TestValidation:
    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            SyncStoreQueue([0, 1], capacity=0)

    def test_needs_cores(self):
        with pytest.raises(ValueError):
            SyncStoreQueue([])


class TestMerging:
    def test_merge_when_all_performed(self):
        q = SyncStoreQueue([0, 1])
        q.perform(0)
        assert q.merged == 0          # core 1 hasn't performed it
        q.perform(1)
        assert q.merged == 1          # now merged to the shared level

    def test_merge_order_independent(self):
        q = SyncStoreQueue([0, 1])
        q.perform(1)
        q.perform(1)
        q.perform(0)
        assert q.merged == 1
        q.perform(0)
        assert q.merged == 2

    def test_occupancy_is_spread(self):
        q = SyncStoreQueue([0, 1])
        for _ in range(5):
            q.perform(0)
        assert q.occupancy == 5
        q.perform(1)
        assert q.occupancy == 4

    def test_three_cores(self):
        q = SyncStoreQueue([0, 1, 2])
        q.perform(0)
        q.perform(1)
        assert q.merged == 0
        q.perform(2)
        assert q.merged == 1


class TestCapacity:
    def test_leader_stalls_at_capacity(self):
        q = SyncStoreQueue([0, 1], capacity=3)
        for _ in range(3):
            assert q.can_commit(0)
            q.perform(0)
        assert not q.can_commit(0)
        assert q.stalls == 1

    def test_laggard_never_stalls(self):
        q = SyncStoreQueue([0, 1], capacity=3)
        for _ in range(3):
            q.perform(0)
        assert q.can_commit(1)

    def test_drain_unblocks(self):
        q = SyncStoreQueue([0, 1], capacity=2)
        q.perform(0)
        q.perform(0)
        assert not q.can_commit(0)
        q.perform(1)
        assert q.can_commit(0)


class TestDeactivation:
    def test_deactivate_releases_pending(self):
        q = SyncStoreQueue([0, 1])
        for _ in range(4):
            q.perform(0)
        assert q.merged == 0
        q.deactivate(1)                # saturated lagger removed
        assert q.merged == 4
        assert q.occupancy == 0

    def test_deactivated_core_bypasses(self):
        q = SyncStoreQueue([0, 1], capacity=1)
        q.deactivate(1)
        for _ in range(10):
            assert q.can_commit(0)
            q.perform(0)
        assert q.merged == 10

    def test_perform_after_deactivation_ignored(self):
        q = SyncStoreQueue([0, 1])
        q.deactivate(1)
        q.perform(1)
        assert q.occupancy == 0

    def test_double_deactivate(self):
        q = SyncStoreQueue([0, 1])
        q.deactivate(1)
        q.deactivate(1)
        assert not q.is_active(1)

    def test_is_active(self):
        q = SyncStoreQueue([0, 1])
        assert q.is_active(0) and q.is_active(1)
        q.deactivate(0)
        assert not q.is_active(0)
