"""Regenerate the golden fixtures after an *intended* model change.

    PYTHONPATH=src python -m tests.golden.regenerate

Rewrites ``golden_ipc.json`` (timing-model numbers) and the telemetry
exporter artefacts under ``telemetry/``.  Review the resulting diff cell
by cell before committing it — each changed number is a claim that the
model was supposed to move there.
"""

from tests.golden.fixture import GOLDEN_PATH, save_goldens
from tests.golden.fixture_telemetry import save_artifacts

if __name__ == "__main__":
    save_goldens()
    print(f"wrote {GOLDEN_PATH}")
    for path in save_artifacts():
        print(f"wrote {path}")
