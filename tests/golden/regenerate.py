"""Regenerate ``golden_ipc.json`` after an *intended* timing-model change.

    PYTHONPATH=src python -m tests.golden.regenerate

Review the resulting diff cell by cell before committing it — each changed
number is a claim that the model was supposed to move there.
"""

from tests.golden.fixture import GOLDEN_PATH, save_goldens

if __name__ == "__main__":
    save_goldens()
    print(f"wrote {GOLDEN_PATH}")
