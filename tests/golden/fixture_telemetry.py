"""Golden fixtures for the telemetry exporters.

Pins the complete exporter output — the Chrome ``trace_event`` JSON and
the metrics JSONL snapshot — for three (workload, cores) trios: one
standalone run and two contests.  Unlike the invariant suite (which
proves internal consistency), this pins the *serialised* artefacts
field by field: a renamed event, a dropped ``args`` key, or a shifted
timestamp shows up as a named path into the JSON, and an intended schema
change is ratified by regenerating:

    PYTHONPATH=src python -m tests.golden.regenerate
"""

import json
from pathlib import Path
from typing import Dict, List, Tuple

from repro.core.system import ContestingSystem
from repro.isa.generator import generate_trace
from repro.isa.workloads import workload_profile
from repro.telemetry import Tracer, chrome_trace, metrics_snapshot
from repro.uarch.config import core_config
from repro.uarch.run import run_standalone

TELEMETRY_DIR = Path(__file__).parent / "telemetry"

#: (fixture name, workload profile, core configs) — one standalone run
#: and two contests, covering lead slices, skip slices and counter tracks
TRIOS: Tuple[Tuple[str, str, Tuple[str, ...]], ...] = (
    ("gcc_standalone", "gcc", ("gcc",)),
    ("mcf_two_way", "mcf", ("mcf", "crafty")),
    ("twolf_three_way", "twolf", ("vortex", "vpr", "twolf")),
)
LENGTH = 1200
SEED = 11


def run_trio(profile: str, config_names: Tuple[str, ...]) -> Tracer:
    """Run one fixture scenario under a default (sampled) tracer."""
    trace = generate_trace(workload_profile(profile), LENGTH, seed=SEED)
    tracer = Tracer()
    configs = [core_config(name) for name in config_names]
    if len(configs) == 1:
        run_standalone(configs[0], trace, tracer=tracer)
    else:
        ContestingSystem(configs, trace, tracer=tracer).run()
    return tracer


def fixture_meta(
    name: str, profile: str, config_names: Tuple[str, ...]
) -> Dict[str, object]:
    """Deterministic snapshot meta — no wall times or hostnames."""
    return {
        "fixture": name,
        "workload": profile,
        "cores": list(config_names),
        "length": LENGTH,
        "seed": SEED,
    }


def compute_artifacts() -> Dict[str, Tuple[Dict, Dict]]:
    """(chrome trace, metrics snapshot) for every fixture trio."""
    artifacts: Dict[str, Tuple[Dict, Dict]] = {}
    for name, profile, config_names in TRIOS:
        tracer = run_trio(profile, config_names)
        artifacts[name] = (
            chrome_trace(tracer),
            metrics_snapshot(
                tracer.registry, meta=fixture_meta(name, profile, config_names)
            ),
        )
    return artifacts


def trace_path(name: str) -> Path:
    return TELEMETRY_DIR / f"{name}.trace.json"


def metrics_path(name: str) -> Path:
    return TELEMETRY_DIR / f"{name}.metrics.jsonl"


def load_artifacts() -> Dict[str, Tuple[Dict, Dict]]:
    """Read the checked-in goldens back as parsed JSON."""
    artifacts: Dict[str, Tuple[Dict, Dict]] = {}
    for name, _, _ in TRIOS:
        trace = json.loads(trace_path(name).read_text())
        lines = metrics_path(name).read_text().splitlines()
        assert len(lines) == 1, f"{name}: expected one snapshot line"
        artifacts[name] = (trace, json.loads(lines[0]))
    return artifacts


def save_artifacts() -> List[Path]:
    TELEMETRY_DIR.mkdir(exist_ok=True)
    written: List[Path] = []
    for name, (trace, snapshot) in sorted(compute_artifacts().items()):
        tp = trace_path(name)
        tp.write_text(json.dumps(trace, indent=1, sort_keys=True) + "\n")
        mp = metrics_path(name)
        mp.write_text(
            json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
            + "\n"
        )
        written.extend([tp, mp])
    return written
