"""Pin end-to-end performance numbers for the Appendix-A config grid."""

import pytest

from repro.uarch.config import APPENDIX_A_CORES

from .fixture import PROFILES, compute_goldens, load_goldens


@pytest.fixture(scope="module")
def current():
    return compute_goldens()


@pytest.fixture(scope="module")
def golden():
    return load_goldens()


def test_grid_is_complete(golden):
    assert sorted(golden) == sorted(PROFILES)
    for profile in PROFILES:
        assert sorted(golden[profile]) == sorted(APPENDIX_A_CORES)


@pytest.mark.parametrize("profile", PROFILES)
def test_profile_matches_golden(profile, current, golden):
    """Every pinned stat of every config, first divergence named."""
    diffs = []
    for config_name in sorted(APPENDIX_A_CORES):
        want = golden[profile][config_name]
        got = current[profile][config_name]
        for stat in ("instructions", "cycles", "time_ps"):
            if got[stat] != want[stat]:
                diffs.append(
                    f"{config_name}/{profile}: {stat} moved "
                    f"{want[stat]} -> {got[stat]}"
                )
    assert not diffs, (
        "timing model output changed (regenerate with "
        "`python -m tests.golden.regenerate` if intended):\n  "
        + "\n  ".join(diffs)
    )
