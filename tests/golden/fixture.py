"""End-to-end performance goldens: every Appendix-A core on three profiles.

``golden_ipc.json`` pins ``instructions``, ``cycles`` and ``time_ps`` for
all eleven Appendix-A configurations on three contrasting workload
profiles.  Unlike the differential suite (which proves skip-ahead equals
cycle stepping), this pins the *absolute* numbers: any change to the
timing model — intended or not — shows up as a named stat on a named
(config, profile) cell, and an intended change is ratified by regenerating
the fixture:

    PYTHONPATH=src python -m tests.golden.regenerate
"""

import json
from pathlib import Path
from typing import Dict

from repro.isa.generator import generate_trace
from repro.isa.workloads import workload_profile
from repro.uarch.config import APPENDIX_A_CORES, core_config
from repro.uarch.run import run_standalone

GOLDEN_PATH = Path(__file__).parent / "golden_ipc.json"

#: three contrasting profiles: phase-diverse (gcc), memory-bound (mcf),
#: compute/branch-led (crafty)
PROFILES = ("gcc", "mcf", "crafty")
LENGTH = 2500
SEED = 11


def compute_goldens() -> Dict[str, Dict[str, Dict[str, int]]]:
    """Simulate the full config x profile grid and collect pinned stats."""
    goldens: Dict[str, Dict[str, Dict[str, int]]] = {}
    for profile in PROFILES:
        trace = generate_trace(workload_profile(profile), LENGTH, seed=SEED)
        for config_name in sorted(APPENDIX_A_CORES):
            result = run_standalone(core_config(config_name), trace)
            goldens.setdefault(profile, {})[config_name] = {
                "instructions": result.instructions,
                "cycles": result.cycles,
                "time_ps": result.time_ps,
            }
    return goldens


def load_goldens() -> Dict[str, Dict[str, Dict[str, int]]]:
    return json.loads(GOLDEN_PATH.read_text())


def save_goldens() -> None:
    GOLDEN_PATH.write_text(
        json.dumps(compute_goldens(), indent=1, sort_keys=True) + "\n"
    )
