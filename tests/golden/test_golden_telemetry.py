"""Pin the telemetry exporter artefacts field by field."""

import pytest

from .fixture_telemetry import TRIOS, compute_artifacts, load_artifacts

REGEN_HINT = (
    "exporter output changed (regenerate with "
    "`python -m tests.golden.regenerate` if intended)"
)


@pytest.fixture(scope="module")
def current():
    return compute_artifacts()


@pytest.fixture(scope="module")
def golden():
    return load_artifacts()


def assert_json_equal(got, want, path):
    """Field-by-field compare, naming the first diverging JSON path."""
    if isinstance(want, dict):
        assert isinstance(got, dict), f"{REGEN_HINT}: {path} is not an object"
        assert sorted(got) == sorted(want), (
            f"{REGEN_HINT}: keys differ at {path}: "
            f"{sorted(set(got) ^ set(want))}"
        )
        for key in want:
            assert_json_equal(got[key], want[key], f"{path}.{key}")
    elif isinstance(want, list):
        assert isinstance(got, list), f"{REGEN_HINT}: {path} is not an array"
        assert len(got) == len(want), (
            f"{REGEN_HINT}: {path} length moved {len(want)} -> {len(got)}"
        )
        for i, (a, b) in enumerate(zip(got, want)):
            assert_json_equal(a, b, f"{path}[{i}]")
    else:
        assert got == want, (
            f"{REGEN_HINT}: {path} moved {want!r} -> {got!r}"
        )


@pytest.mark.parametrize("name", [name for name, _, _ in TRIOS])
def test_chrome_trace_matches_golden(name, current, golden):
    got, _ = current[name]
    want, _ = golden[name]
    # json round-trip the live object so tuple/list and int/float
    # representation match what the file format can express
    import json

    got = json.loads(json.dumps(got))
    assert_json_equal(got, want, name)


@pytest.mark.parametrize("name", [name for name, _, _ in TRIOS])
def test_metrics_snapshot_matches_golden(name, current, golden):
    import json

    _, got = current[name]
    _, want = golden[name]
    got = json.loads(json.dumps(got))
    assert_json_equal(got, want, f"{name}.metrics")


def test_every_fixture_trio_has_both_artifacts(golden):
    for name, _, _ in TRIOS:
        trace, snapshot = golden[name]
        assert trace["traceEvents"], f"{name}: empty trace"
        assert snapshot["stats"], f"{name}: empty snapshot"
        assert snapshot["meta"]["fixture"] == name
