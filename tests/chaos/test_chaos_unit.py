"""Unit behaviour of the chaos layer: plans, budgets, hooks, counters."""

import dataclasses

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.chaos import (
    ChaosBackendError,
    ChaosPlan,
    HarnessChaos,
    SITES,
    apply_action,
    arm_backend_failure,
    disarm_backend_failure,
)
from repro.chaos.plan import (
    SITE_BACKEND_FAIL,
    SITE_POOL_BREAK,
    SITE_WORKER_HANG,
    SITE_WORKER_KILL,
    SITE_WORKER_SLOW,
    SITE_WRITE_BITFLIP,
    SITE_WRITE_FAIL,
    SITE_WRITE_TORN,
)
from repro.backend.base import get_backend


class TestChaosPlan:
    def test_default_plan_is_inert(self):
        plan = ChaosPlan()
        assert not plan.perturbs_anything
        assert all(not plan.fires(site, t) for site in SITES for t in range(50))

    def test_decisions_are_pure(self):
        plan = ChaosPlan(seed=3, kill_worker_rate=0.5)
        draws = [plan.fires(SITE_WORKER_KILL, t) for t in range(100)]
        again = [plan.fires(SITE_WORKER_KILL, t) for t in range(100)]
        assert draws == again
        assert any(draws) and not all(draws)

    def test_sites_have_independent_streams(self):
        plan = ChaosPlan(seed=3, kill_worker_rate=0.5, hang_worker_rate=0.5)
        kills = [plan.fires(SITE_WORKER_KILL, t) for t in range(64)]
        hangs = [plan.fires(SITE_WORKER_HANG, t) for t in range(64)]
        assert kills != hangs

    @pytest.mark.parametrize(
        "field", [
            "kill_worker_rate", "hang_worker_rate", "slow_worker_rate",
            "pool_break_rate", "write_fail_rate", "torn_write_rate",
            "bitflip_rate", "backend_fail_rate",
        ],
    )
    def test_rate_validation(self, field):
        with pytest.raises(ValueError):
            ChaosPlan(**{field: 1.5})

    def test_other_validation(self):
        with pytest.raises(ValueError):
            ChaosPlan(hang_s=-1)
        with pytest.raises(ValueError):
            ChaosPlan(crash_after_writes=-1)
        with pytest.raises(ValueError):
            ChaosPlan(max_per_site=0)
        with pytest.raises(ValueError):
            ChaosPlan().rate_for("no-such-site")

    def test_sample_is_deterministic_and_active(self):
        for seed in range(40):
            plan = ChaosPlan.sample(seed)
            assert plan == ChaosPlan.sample(seed)
            assert plan.perturbs_anything
            assert plan.fingerprint() == ChaosPlan.sample(seed).fingerprint()

    def test_sample_crashes_every_fourth_seed(self):
        crash_seeds = [s for s in range(40) if ChaosPlan.sample(s).crash_after_writes]
        assert crash_seeds == [s for s in range(40) if s % 4 == 0]


class TestBudgets:
    def test_site_budget_bounds_injections(self):
        plan = ChaosPlan(seed=1, write_fail_rate=1.0, max_per_site=2)
        chaos = HarnessChaos(plan)
        fails = 0
        for _ in range(20):
            try:
                chaos.store_write_bytes(b'{"k":1}\n')
            except OSError:
                fails += 1
        assert fails == 2
        assert chaos.stats.write_fails == 2

    def test_pool_break_budget(self):
        chaos = HarnessChaos(ChaosPlan(seed=1, pool_break_rate=1.0))
        breaks = 0
        for _ in range(10):
            try:
                chaos.before_submit()
            except BrokenProcessPool:
                breaks += 1
        assert breaks == 2


class TestChunkActions:
    def test_clean_plan_returns_none(self):
        chaos = HarnessChaos(ChaosPlan())
        assert chaos.chunk_actions(4, attempt=1, max_attempts=3) is None

    def test_last_attempt_is_always_clean_of_destruction(self):
        plan = ChaosPlan(
            seed=5, kill_worker_rate=1.0, hang_worker_rate=1.0,
            backend_fail_rate=1.0, max_per_site=100,
        )
        chaos = HarnessChaos(plan)
        for _ in range(20):
            actions = chaos.chunk_actions(2, attempt=3, max_attempts=3)
            assert actions is None
        assert chaos.stats.kills == 0
        assert chaos.stats.hangs == 0
        assert chaos.stats.backend_fails == 0

    def test_slow_is_allowed_on_last_attempt(self):
        plan = ChaosPlan(seed=5, slow_worker_rate=1.0, slow_s=0.001)
        chaos = HarnessChaos(plan)
        actions = chaos.chunk_actions(1, attempt=3, max_attempts=3)
        assert actions == (("slow", 0.001),)

    def test_kill_scheduled_before_last_attempt(self):
        plan = ChaosPlan(seed=5, kill_worker_rate=1.0)
        chaos = HarnessChaos(plan)
        actions = chaos.chunk_actions(2, attempt=1, max_attempts=3)
        assert actions is not None
        assert ("kill", 0.0) in actions


class TestStoreWriteBytes:
    LINE = b'{"crc":1,"key":"k","kind":"standalone","v":2,"value":{}}\n'

    def test_torn_write_strips_newline_and_truncates(self):
        chaos = HarnessChaos(ChaosPlan(seed=2, torn_write_rate=1.0))
        out = chaos.store_write_bytes(self.LINE)
        assert 0 < len(out) < len(self.LINE)
        assert not out.endswith(b"\n")
        assert self.LINE.startswith(out)

    def test_bitflip_changes_exactly_one_bit_not_the_newline(self):
        chaos = HarnessChaos(ChaosPlan(seed=2, bitflip_rate=1.0))
        out = chaos.store_write_bytes(self.LINE)
        assert len(out) == len(self.LINE)
        assert out.endswith(b"\n")
        diff = [
            (a ^ b) for a, b in zip(self.LINE, out) if a != b
        ]
        assert len(diff) == 1
        assert bin(diff[0]).count("1") == 1

    def test_passthrough_when_inert(self):
        chaos = HarnessChaos(ChaosPlan())
        assert chaos.store_write_bytes(self.LINE) == self.LINE


class TestBackendHook:
    def test_armed_hook_raises_once_then_clears(self):
        arm_backend_failure(1)
        try:
            with pytest.raises(ChaosBackendError):
                get_backend("reference")
            # the arm is one-shot: the very next dispatch succeeds
            assert get_backend("reference").name == "reference"
        finally:
            disarm_backend_failure()

    def test_disarmed_hook_is_removed(self):
        disarm_backend_failure()
        assert get_backend("reference").name == "reference"

    def test_backend_fail_action_arms(self):
        try:
            apply_action(("backend-fail", 0.0))
            with pytest.raises(ChaosBackendError):
                get_backend("reference")
        finally:
            disarm_backend_failure()

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            apply_action(("explode", 0.0))


class TestCounters:
    def test_counters_cover_every_site_field(self):
        chaos = HarnessChaos(ChaosPlan())
        counters = chaos.counters()
        assert set(counters) == {
            "kills", "hangs", "slows", "pool_breaks", "write_fails",
            "torn_writes", "bitflips", "backend_fails", "crashes",
        }
        assert all(v == 0 for v in counters.values())
        assert chaos.stats.total_injections == 0

    def test_register_into_telemetry(self):
        from repro.telemetry.registry import StatRegistry

        chaos = HarnessChaos(ChaosPlan(seed=1, slow_worker_rate=1.0))
        chaos.chunk_actions(3, attempt=1, max_attempts=3)
        registry = StatRegistry()
        chaos.register_into(registry)
        assert registry.get("chaos.slows").value == chaos.stats.slows
        assert chaos.stats.slows > 0

    def test_crash_counts_via_replace(self):
        # crash_after_writes=0 never crashes; the plan is frozen so the
        # soak driver disables it with dataclasses.replace
        plan = ChaosPlan.sample(4)
        assert plan.crash_after_writes > 0
        disabled = dataclasses.replace(plan, crash_after_writes=0)
        chaos = HarnessChaos(disabled)
        for _ in range(10):
            chaos.after_store_write()  # must not exit the process
        assert chaos.stats.crashes == 0
