"""The convergence soak: every chaos schedule ends bit-identical to clean.

For each seeded :meth:`ChaosPlan.sample` schedule, a forked child process
runs the shared mixed batch through a ``ParallelExecutor`` and a shared
``ResultStore`` with the full chaos runtime attached — workers killed and
hung, the pool broken at submit, store writes failed/torn/bit-flipped,
backend dispatch erroring mid-job, and (on crash schedules) the whole
harness ``os._exit``-ing mid-batch.  The driver restarts crashed harnesses
against the same store until a run completes, then asserts the invariant
the whole layer exists for:

* the completed run's results are **bit-identical** to the chaos-free
  serial baseline (no ``JobFailure``, no corrupt record served);
* ``repro-store fsck`` leaves (and then finds) a **clean store**.

The fast slice runs on every push; the full soak
(:data:`SOAK_SEEDS` schedules, ``-m slow``) rides the nightly CI job.
"""

import dataclasses
import multiprocessing
import os

import pytest

from repro.chaos import CRASH_EXIT_STATUS, ChaosPlan, HarnessChaos
from repro.engine import (
    ParallelExecutor,
    ResultStore,
    RetryPolicy,
    SimEngine,
)
from repro.engine import store_cli

from tests.chaos.conftest import canonical, make_batch

#: seeds of the fast, every-push slice (two of them crash mid-batch)
FAST_SEEDS = tuple(range(8))
#: seeds of the nightly soak; with the fast slice this exceeds the
#: 200-schedule acceptance floor
SOAK_SEEDS = tuple(range(8, 208))

#: retry budget every schedule runs under: enough attempts that the
#: clean-last-attempt guarantee has room, timeouts generous enough that
#: only injected hangs trip the watchdog
RETRY = RetryPolicy(max_attempts=3, backoff_s=0.01, job_timeout_s=1.5)

#: restart ceiling per schedule (a crash schedule restarts once, with
#: ``crash_after_writes`` disabled; more would mean a convergence bug)
MAX_RUNS = 4


def _harness_main(store_path, plan, conn):
    """Child-process harness: the full engine stack under one chaos plan.

    Sends ``(results, chaos_counters, store_counters)`` on success; a
    crash schedule never reaches the send and exits with
    :data:`CRASH_EXIT_STATUS` instead.
    """
    chaos = HarnessChaos(plan)
    store = ResultStore(store_path, chaos=chaos)
    executor = ParallelExecutor(
        workers=2,
        chunk_size=2,
        retry=dataclasses.replace(RETRY, jitter_seed=plan.seed),
        chaos=chaos,
    )
    engine = SimEngine(executor=executor, store=store)
    results = engine.run_many(make_batch())
    conn.send((canonical(results), chaos.counters(), store.counters()))
    conn.close()


def _run_once(store_path, plan):
    """One harness child run; returns ``(exitcode, payload-or-None)``."""
    ctx = multiprocessing.get_context("fork")
    receiver, sender = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_harness_main, args=(store_path, plan, sender)
    )
    proc.start()
    sender.close()
    try:
        payload = receiver.recv()
    except EOFError:  # child died (crash schedule) before sending
        payload = None
    finally:
        receiver.close()
    proc.join(timeout=120)
    if proc.is_alive():  # pragma: no cover - would be a convergence bug
        proc.kill()
        proc.join()
        raise AssertionError(f"harness child hung under {plan!r}")
    return proc.exitcode, payload


def run_schedule(store_path, seed, clean_results):
    """Drive one schedule to completion and assert the soak invariant."""
    plan = ChaosPlan.sample(seed)
    payload = None
    crashes = 0
    for _ in range(MAX_RUNS):
        exitcode, payload = _run_once(store_path, plan)
        if exitcode == CRASH_EXIT_STATUS:
            # the harness died mid-batch as scheduled; restart against
            # the same store with only the crash disabled — every other
            # fault stays armed for the recovery run
            crashes += 1
            plan = dataclasses.replace(plan, crash_after_writes=0)
            continue
        assert exitcode == 0, (
            f"seed {seed}: harness exited {exitcode} under {plan!r}"
        )
        break
    assert payload is not None, (
        f"seed {seed}: no completed run within {MAX_RUNS} starts"
    )
    results, chaos_counters, store_counters = payload
    assert results == clean_results, (
        f"seed {seed}: results diverged from the chaos-free baseline "
        f"(injections: {chaos_counters})"
    )
    if ChaosPlan.sample(seed).crash_after_writes:
        assert crashes >= 1, f"seed {seed}: crash schedule never crashed"
    # the store must end fsck-clean: repair anything the final appends
    # left behind (e.g. a torn last write), then verify
    assert store_cli.main(["--path", str(store_path), "fsck", "--repair"]) == 0
    assert store_cli.main(["--path", str(store_path), "fsck"]) == 0
    return chaos_counters, store_counters


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_fast_slice_converges(tmp_path, seed, clean_results):
    store_path = tmp_path / "store.jsonl"
    run_schedule(store_path, seed, clean_results)


def test_fast_slice_actually_injects(tmp_path, clean_results):
    # the soak proves nothing if the sampled schedules are quiet: across
    # the fast slice, faults must actually fire on both the executor and
    # the store paths
    totals = {}
    for seed in FAST_SEEDS:
        chaos_counters, _ = run_schedule(
            tmp_path / f"s{seed}.jsonl", seed, clean_results
        )
        for name, count in chaos_counters.items():
            totals[name] = totals.get(name, 0) + count
    assert sum(totals.values()) > 0
    store_faults = (
        totals["write_fails"] + totals["torn_writes"] + totals["bitflips"]
    )
    worker_faults = totals["kills"] + totals["hangs"] + totals["slows"]
    assert store_faults > 0, totals
    assert worker_faults > 0, totals


@pytest.mark.slow
@pytest.mark.parametrize("seed", SOAK_SEEDS)
def test_soak_converges(tmp_path, seed, clean_results):
    store_path = tmp_path / "store.jsonl"
    run_schedule(store_path, seed, clean_results)
