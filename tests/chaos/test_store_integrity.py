"""Store crash-consistency: framing, torn tails, fsck, and contention."""

import dataclasses
import json
import multiprocessing
import os

import pytest

from repro.engine import (
    ResultStore,
    SerialExecutor,
    SimEngine,
    StandaloneJob,
    TraceSpec,
)
from repro.engine import store_cli
from repro.engine.store import (
    STATUS_CORRUPT,
    STATUS_CRC,
    STATUS_LEGACY,
    STATUS_OK,
    STATUS_TORN,
    STORE_FORMAT,
    classify_line,
    frame_record,
    scan_store,
)
from repro.telemetry.manifest import build_manifest
from repro.uarch.config import core_config

VALUE = {"answer": 42, "pi": 3.5, "name": "x"}


@dataclasses.dataclass
class _FakeResult:
    """Minimal encodable stand-in (``encode_result`` needs a dataclass)."""

    answer: int = 42


def put_one(path, key="k1", seed=11):
    """Run one tiny job through an engine backed by the store at ``path``;
    returns the result object (so tests exercise the real put path)."""
    store = ResultStore(path)
    engine = SimEngine(executor=SerialExecutor(), store=store)
    job = StandaloneJob(core_config("gcc"), TraceSpec("gcc", 120, seed=seed))
    (result,) = engine.run_many([job])
    return store, job, result


class TestFraming:
    def test_round_trip(self):
        line = frame_record("k", "standalone", VALUE)
        assert line.endswith(b"\n")
        status, key, kind, value = classify_line(line.rstrip(b"\n"))
        assert (status, key, kind) == (STATUS_OK, "k", "standalone")
        assert value == VALUE

    def test_any_single_bitflip_is_detected(self):
        line = frame_record("k", "standalone", VALUE).rstrip(b"\n")
        clean = 0
        for index in range(len(line)):
            for bit in range(8):
                flipped = (
                    line[:index]
                    + bytes([line[index] ^ (1 << bit)])
                    + line[index + 1:]
                )
                status = classify_line(flipped)[0]
                if status == STATUS_OK:
                    clean += 1
        assert clean == 0

    def test_legacy_unframed_record_classifies(self):
        raw = json.dumps(
            {"key": "k", "kind": "standalone", "value": VALUE}
        ).encode()
        assert classify_line(raw)[0] == STATUS_LEGACY

    def test_bad_shapes_are_corrupt(self):
        for raw in (
            b"not json",
            b"[1,2,3]",
            b'{"key": 7, "kind": "standalone", "value": {}}',
            b'{"key": "k", "kind": "nope", "value": {}}',
            b'{"key": "k", "kind": "standalone", "value": []}',
        ):
            assert classify_line(raw)[0] == STATUS_CORRUPT

    def test_wrong_crc_is_crc_status(self):
        body = {"key": "k", "kind": "standalone", "v": STORE_FORMAT,
                "value": VALUE, "crc": 123456}
        raw = json.dumps(body, sort_keys=True).encode()
        assert classify_line(raw)[0] == STATUS_CRC


class TestTornTail:
    def test_torn_tail_detected_and_truncated(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store, job, result = put_one(path)
        intact_size = path.stat().st_size
        torn = frame_record("k2", "standalone", VALUE)[:25]
        with open(path, "ab") as fh:
            fh.write(torn)
        reloaded = ResultStore(path)
        assert reloaded.torn_tails == 1
        assert reloaded.torn_bytes_truncated == len(torn)
        assert reloaded.counters()["corrupt_lines"] == 1
        # the torn bytes are gone from disk; the intact record survives
        assert path.stat().st_size == intact_size
        assert reloaded.get(job.cache_key(), "standalone") is not None

    def test_append_heals_unterminated_valid_tail(self, tmp_path):
        path = tmp_path / "store.jsonl"
        line = frame_record("k1", "standalone", VALUE)
        path.write_bytes(line[:-1])  # valid record, missing only its \n
        store = ResultStore(path)
        assert store.torn_tails == 0  # verifiable: not torn, just unsealed
        _, job, _ = put_one(path, seed=13)
        healed = ResultStore(path)
        assert healed.counters()["corrupt_lines"] == 0
        assert len(healed) == 2

    def test_scan_reports_torn_final_line(self, tmp_path):
        path = tmp_path / "store.jsonl"
        good = frame_record("k1", "standalone", VALUE)
        path.write_bytes(good + good[: len(good) // 2])
        statuses = [r.status for r in scan_store(path)]
        assert statuses == [STATUS_OK, STATUS_TORN]


class TestBitflip:
    def test_flipped_record_is_rejected_not_served(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store, job, result = put_one(path)
        raw = path.read_bytes()
        index = len(raw) // 2
        flipped = raw[:index] + bytes([raw[index] ^ 0x10]) + raw[index + 1:]
        path.write_bytes(flipped)
        reloaded = ResultStore(path)
        counters = reloaded.counters()
        assert counters["corrupt_lines"] == 1
        assert counters["crc_failures"] + counters["torn_tails"] >= 1
        assert reloaded.get(job.cache_key(), "standalone") is None


class TestFsckCli:
    def test_clean_store_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "store.jsonl"
        put_one(path)
        assert store_cli.main(["--path", str(path), "fsck"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_corruption_found_then_repaired(self, tmp_path, capsys):
        path = tmp_path / "store.jsonl"
        store, job, _ = put_one(path)
        with open(path, "ab") as fh:
            fh.write(b"garbage line\n")
            fh.write(frame_record("k9", "standalone", VALUE)[:20])
        assert store_cli.main(["--path", str(path), "fsck"]) == 1
        assert store_cli.main(["--path", str(path), "fsck", "--repair"]) == 0
        assert store_cli.main(["--path", str(path), "fsck"]) == 0
        statuses = [r.status for r in scan_store(path)]
        assert statuses == [STATUS_OK]
        assert ResultStore(path).get(job.cache_key(), "standalone") is not None

    def test_repair_reframes_legacy_records(self, tmp_path):
        path = tmp_path / "store.jsonl"
        legacy = json.dumps(
            {"key": "k", "kind": "standalone", "value": VALUE}
        ).encode() + b"\n"
        path.write_bytes(legacy)
        assert ResultStore(path).legacy_lines == 1
        assert store_cli.main(["--path", str(path), "fsck", "--repair"]) == 0
        (record,) = scan_store(path)
        assert record.status == STATUS_OK
        assert record.value == VALUE

    def test_compact_dedupes_and_frames(self, tmp_path, capsys):
        path = tmp_path / "store.jsonl"
        line_v1 = frame_record("k", "standalone", {"v": 1})
        line_v2 = frame_record("k", "standalone", {"v": 2})
        path.write_bytes(line_v1 + line_v2)
        assert store_cli.main(["--path", str(path), "compact"]) == 0
        (record,) = scan_store(path)
        assert record.value == {"v": 2}  # later lines win

    def test_stats_reports_shape(self, tmp_path, capsys):
        path = tmp_path / "store.jsonl"
        put_one(path)
        assert store_cli.main(["--path", str(path), "stats"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["unique_keys"] == 1
        assert payload["by_status"] == {STATUS_OK: 1}
        assert payload["by_kind"] == {"standalone": 1}

    def test_missing_store_is_clean(self, tmp_path):
        assert store_cli.main(
            ["--cache-dir", str(tmp_path / "nope"), "fsck"]
        ) == 0

    def test_directory_path_resolution(self, tmp_path):
        put_one(tmp_path)  # directory form: results-v<N>.jsonl inside it
        assert store_cli.main(["--path", str(tmp_path), "fsck"]) == 0


class TestWriteErrors:
    def test_failed_append_is_counted_and_survives_in_memory(
        self, tmp_path, monkeypatch, caplog
    ):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        real_write = os.write

        def failing_write(fd, data):
            raise OSError("disk full")

        monkeypatch.setattr(os, "write", failing_write)
        with caplog.at_level("WARNING", logger="repro.engine"):
            store.put("k", "standalone", _FakeResult())
        monkeypatch.setattr(os, "write", real_write)
        assert store.write_errors == 1
        assert store.counters()["write_errors"] == 1
        assert "write_errors" in caplog.text
        # the record still serves from memory for this process's lifetime
        assert "k" in store._entries

    def test_log_emitted_once_per_store(self, tmp_path, monkeypatch, caplog):
        store = ResultStore(tmp_path / "store.jsonl")
        monkeypatch.setattr(
            os, "write", lambda fd, data: (_ for _ in ()).throw(OSError())
        )
        with caplog.at_level("WARNING", logger="repro.engine"):
            store.put("k1", "standalone", _FakeResult())
            store.put("k2", "standalone", _FakeResult())
            store.append_metrics({"m": 1})
        assert store.write_errors == 3
        assert caplog.text.count("append failed") == 1

    def test_write_errors_surface_in_manifest(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store.jsonl")
        engine = SimEngine(executor=SerialExecutor(), store=store)
        monkeypatch.setattr(
            os, "write", lambda fd, data: (_ for _ in ()).throw(OSError())
        )
        engine.run_many(
            [StandaloneJob(core_config("gcc"), TraceSpec("gcc", 120))]
        )
        manifest = build_manifest(
            scale="tiny", experiments=(), jobs=1, cache_dir=str(tmp_path),
            no_cache=False, seed=0, wall_seconds=0.0, engine=engine,
        )
        assert manifest.engine_stats["store_write_errors"] == 1.0
        assert "store_corrupt_lines" in manifest.engine_stats


class TestFsync:
    def test_fsync_store_round_trips(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path, fsync=True)
        store.put("k", "standalone", _FakeResult())
        assert ResultStore(path, fsync=True).counters()["entries"] == 1


def _append_worker(path, worker, count):
    """Child process: append ``count`` records through the real put path."""
    store = ResultStore(path, max_entries=40)
    for i in range(count):
        store.put(f"w{worker}-r{i}", "standalone", _FakeResult())


class TestContention:
    def test_concurrent_appenders_never_interleave_bytes(self, tmp_path):
        path = tmp_path / "store.jsonl"
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_append_worker, args=(str(path), w, 25))
            for w in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        records = list(scan_store(path))
        assert records, "no records written"
        # max_entries=40 with 100 total puts forces eviction/compaction
        # races between the four writers; flock + atomic rename must keep
        # every surviving line independently verifiable
        assert all(r.status == STATUS_OK for r in records)
        store = ResultStore(path)
        assert store.counters()["corrupt_lines"] == 0
        assert store_cli.main(["--path", str(path), "fsck"]) == 0
        for record in records:
            assert record.key.startswith("w")
            assert record.value == {"answer": 42}
