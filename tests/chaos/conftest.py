"""Shared fixtures for the chaos suite: one mixed job batch + its clean
serial results, computed once per session (the bit-identity baseline)."""

import json

import pytest

from repro.engine import (
    ContestJob,
    RegionLogJob,
    SerialExecutor,
    SimEngine,
    StandaloneJob,
    TraceSpec,
)
from repro.engine.store import encode_result
from repro.uarch.config import core_config

SPEC_A = TraceSpec("gcc", 300, seed=7)
SPEC_B = TraceSpec("gzip", 260, seed=9)


def make_batch():
    """The canonical mixed batch every chaos schedule runs: standalone,
    region-log and contest jobs over several core configs, small enough
    that a whole schedule (including injected hangs) settles in seconds."""
    return [
        StandaloneJob(core_config("gcc"), SPEC_A),
        StandaloneJob(core_config("vpr"), SPEC_A),
        RegionLogJob(core_config("mcf"), SPEC_B),
        StandaloneJob(core_config("crafty"), SPEC_B),
        ContestJob((core_config("gcc"), core_config("gzip")), SPEC_A),
        RegionLogJob(core_config("gzip"), SPEC_A),
        StandaloneJob(core_config("gcc"), SPEC_B),
        ContestJob((core_config("vpr"), core_config("mcf")), SPEC_B),
    ]


def canonical(results):
    """Bit-comparable form of a result list: canonical JSON per result.

    Tuples decode from the store as lists; canonical JSON maps both to the
    same array, so this is exactly the equality the store itself preserves.
    """
    return [
        json.dumps(encode_result(r), sort_keys=True, separators=(",", ":"))
        for r in results
    ]


@pytest.fixture(scope="session")
def clean_results():
    """The chaos-free baseline: the batch run serially, no store."""
    engine = SimEngine(executor=SerialExecutor())
    return canonical(engine.run_many(make_batch()))
