"""Documentation hygiene: every public item carries a docstring.

The deliverable includes doc comments on every public item; this test keeps
that true as the library evolves.  Private names (leading underscore) and
re-exports are exempt.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if "__main__" not in name
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its definition site
        if not inspect.getdoc(obj):
            missing.append(name)
        elif inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if inspect.isfunction(meth) and not inspect.getdoc(meth):
                    missing.append(f"{name}.{meth_name}")
    assert not missing, f"{module_name}: undocumented public items {missing}"
