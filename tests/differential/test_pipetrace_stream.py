"""Pipetrace event streams under skip-ahead: bit-identical timelines.

Skip-ahead jumps happen strictly between steps, so a traced run must
record every stage event at its true cycle — including completions whose
latency elapsed inside a skipped window, which are back-dated from the
in-flight record's own ``complete_cycle``.
"""

import pytest

from repro.uarch.config import core_config
from repro.uarch.core import Core
from repro.uarch.pipetrace import pipetrace

from .diffutil import PHASE_FACTORIES, phase_trace


@pytest.mark.parametrize("template", sorted(PHASE_FACTORIES))
def test_stream_identical(template):
    trace = phase_trace(template, length=1500, seed=21)
    config = core_config("mcf")
    fast = pipetrace(Core(config, trace), skip_ahead=True)
    slow = pipetrace(Core(config, trace), skip_ahead=False)
    assert fast.timelines.keys() == slow.timelines.keys()
    for seq in slow.timelines:
        assert fast.timelines[seq] == slow.timelines[seq], (
            f"timeline of instruction {seq} diverged under skip-ahead"
        )
    assert fast.first_cycle == slow.first_cycle
    assert fast.last_cycle == slow.last_cycle


def test_render_identical():
    """The rendered Gantt (a pure function of the timelines) matches too."""
    trace = phase_trace("pointer_chase", length=1200, seed=2)
    config = core_config("crafty")
    fast = pipetrace(Core(config, trace), skip_ahead=True)
    slow = pipetrace(Core(config, trace), skip_ahead=False)
    assert fast.render(0, 64) == slow.render(0, 64)
