"""Telemetry on vs. off: bit-identical simulation results.

Tracing is an observer layer — attaching a :class:`~repro.telemetry.Tracer`
must not change a single observable.  Every test here runs the same
workload twice, once plain and once fully instrumented (``detail="full"``
so even the per-transfer event path is exercised), and demands exact
equality of the complete result dataclass, fault diagnostics included.

A representative slice runs on every push; the full Appendix-A config
sweep over every phase template runs nightly (``slow``).
"""

import dataclasses

import pytest

from repro.core.system import ContestingSystem
from repro.faults import FaultPlan
from repro.telemetry import Tracer
from repro.uarch.config import APPENDIX_A_CORES, core_config
from repro.uarch.run import run_standalone

from .diffutil import PHASE_FACTORIES, _assert_dicts_equal, phase_trace

TEMPLATES = sorted(PHASE_FACTORIES)


def assert_standalone_unobserved(config, trace, **kwargs) -> None:
    """Standalone with and without a tracer: identical results."""
    plain = run_standalone(config, trace, **kwargs)
    traced = run_standalone(
        config, trace, tracer=Tracer(detail="full"), **kwargs
    )
    _assert_dicts_equal(
        dataclasses.asdict(traced),
        dataclasses.asdict(plain),
        f"traced standalone {config.name} on {trace.name}",
    )


def assert_contest_unobserved(configs, trace, **kwargs) -> None:
    """Contest with and without a tracer: identical observables."""
    plain_sys = ContestingSystem(list(configs), trace, **kwargs)
    traced_sys = ContestingSystem(
        list(configs), trace, tracer=Tracer(detail="full"), **kwargs
    )
    plain = plain_sys.run()
    traced = traced_sys.run()
    label = "traced contest " + "+".join(c.name for c in configs)
    _assert_dicts_equal(
        dataclasses.asdict(traced), dataclasses.asdict(plain), label
    )
    _assert_dicts_equal(
        dataclasses.asdict(traced_sys.fault_stats),
        dataclasses.asdict(plain_sys.fault_stats),
        label + " faults",
    )


class TestStandaloneUnobserved:
    @pytest.mark.parametrize("template", TEMPLATES)
    def test_template_identical(self, template):
        trace = phase_trace(template, length=2000, seed=11)
        assert_standalone_unobserved(core_config("crafty"), trace)

    def test_mixed_profile_identical(self, small_trace):
        assert_standalone_unobserved(core_config("gcc"), small_trace)

    def test_reference_stepping_identical(self):
        """The tracer must also be invisible on the no-skip slow path."""
        trace = phase_trace("windowed_mem", length=1500, seed=3)
        assert_standalone_unobserved(
            core_config("mcf"), trace, skip_ahead=False
        )


class TestContestUnobserved:
    def test_two_way_contest_identical(self, small_trace):
        configs = [core_config("gcc"), core_config("vpr")]
        assert_contest_unobserved(configs, small_trace)

    def test_three_way_contest_identical(self, small_trace):
        configs = [core_config(n) for n in ("mcf", "crafty", "vortex")]
        assert_contest_unobserved(configs, small_trace, grb_latency_ns=2.0)

    def test_faulted_contest_identical(self, small_trace):
        """Fault paths emit the densest event mix — still invisible."""
        configs = [core_config("gcc"), core_config("twolf")]
        faults = FaultPlan(
            drop_rate=0.02, corrupt_rate=0.01, delay_rate=0.02, seed=7
        )
        assert_contest_unobserved(configs, small_trace, faults=faults)


@pytest.mark.slow
class TestFullMatrix:
    """Nightly: every Appendix-A config, traced vs. plain, per template."""

    @pytest.mark.parametrize("config_name", sorted(APPENDIX_A_CORES))
    @pytest.mark.parametrize("template", TEMPLATES)
    def test_standalone_config_template_identical(
        self, config_name, template
    ):
        trace = phase_trace(template, length=2000, seed=17)
        assert_standalone_unobserved(core_config(config_name), trace)

    @pytest.mark.parametrize("config_name", sorted(APPENDIX_A_CORES))
    def test_contest_vs_gcc_identical(self, config_name, small_trace):
        if config_name == "gcc":
            pytest.skip("contest needs two distinct configs")
        configs = [core_config("gcc"), core_config(config_name)]
        assert_contest_unobserved(configs, small_trace)
