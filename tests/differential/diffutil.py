"""Shared machinery for the skip-ahead differential verification suite.

Every test here runs the same workload twice — once with the event-driven
skip-ahead fast path (the default) and once with reference cycle stepping —
and demands *exact* equality of every observable: retired counts, cycles,
picosecond clocks, full per-core stat dicts, fault diagnostics, store-queue
counters, pipetrace event streams.  Any approximation in the skip-ahead
horizon shows up as a first-divergence here, not as a silently wrong IPC.
"""

import dataclasses
from typing import Dict, Tuple

from repro.core.system import ContestingSystem
from repro.isa.generator import generate_trace
from repro.isa.phases import (
    PhaseMix,
    branchy_phase,
    compute_mul_phase,
    pointer_chase_phase,
    serial_chain_phase,
    stream_phase,
    wide_ilp_phase,
    windowed_mem_phase,
)
from repro.isa.trace import Trace
from repro.uarch.run import run_standalone

#: every phase template in the generator — the differential matrix covers
#: each one in isolation so a horizon bug tied to one behaviour class
#: (store pressure, mispredict redirects, long-latency misses, ...) cannot
#: hide behind a mixed profile
PHASE_FACTORIES = {
    "wide_ilp": wide_ilp_phase,
    "serial_chain": serial_chain_phase,
    "pointer_chase": pointer_chase_phase,
    "windowed_mem": windowed_mem_phase,
    "stream": stream_phase,
    "branchy": branchy_phase,
    "compute_mul": compute_mul_phase,
}


def phase_trace(template: str, length: int = 2500, seed: int = 0) -> Trace:
    """A randomized single-phase trace built from one template."""
    factory = PHASE_FACTORIES[template]
    mix = PhaseMix(template, [(factory(template), 1.0)])
    return generate_trace(mix, length, seed=seed)


def assert_standalone_identical(config, trace, **kwargs) -> None:
    """Run standalone both ways and require identical results.

    Reports the first stat that differs by name, so a regression reads as
    "branch_mispredicts moved", not as an opaque dict mismatch.
    """
    fast = run_standalone(config, trace, skip_ahead=True, **kwargs)
    slow = run_standalone(config, trace, skip_ahead=False, **kwargs)
    _assert_dicts_equal(
        dataclasses.asdict(fast),
        dataclasses.asdict(slow),
        f"standalone {config.name} on {trace.name}",
    )


def run_contest_both(
    configs, trace, **kwargs
) -> Tuple[ContestingSystem, ContestingSystem]:
    """Build and run one contest per mode; return both finished systems."""
    fast = ContestingSystem(list(configs), trace, skip_ahead=True, **kwargs)
    slow = ContestingSystem(list(configs), trace, skip_ahead=False, **kwargs)
    fast_result = fast.run()
    slow_result = slow.run()
    fast._diff_result = fast_result  # stash for the comparison helper
    slow._diff_result = slow_result
    return fast, slow


def assert_contest_identical(configs, trace, **kwargs) -> None:
    """Run a contest both ways and require identical observables."""
    fast, slow = run_contest_both(configs, trace, **kwargs)
    label = "contest " + "+".join(c.name for c in configs)
    _assert_dicts_equal(
        dataclasses.asdict(fast._diff_result),
        dataclasses.asdict(slow._diff_result),
        label,
    )
    _assert_dicts_equal(
        dataclasses.asdict(fast.fault_stats),
        dataclasses.asdict(slow.fault_stats),
        label + " faults",
    )
    assert fast.store_queue.stalls == slow.store_queue.stalls, label
    assert fast.store_queue.merged == slow.store_queue.merged, label
    assert fast.store_queue.occupancy == slow.store_queue.occupancy, label


def _assert_dicts_equal(fast: Dict, slow: Dict, label: str, path: str = ""):
    """Deep-compare, naming the first diverging key on failure."""
    assert fast.keys() == slow.keys(), (
        f"{label}: key sets differ at {path or '<root>'}: "
        f"{sorted(fast.keys() ^ slow.keys())}"
    )
    for key in fast:
        where = f"{path}.{key}" if path else str(key)
        a, b = fast[key], slow[key]
        if isinstance(a, dict) and isinstance(b, dict):
            _assert_dicts_equal(a, b, label, where)
        else:
            assert a == b, (
                f"{label}: stat {where!r} diverged under skip-ahead: "
                f"fast={a!r} reference={b!r}"
            )
