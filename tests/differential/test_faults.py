"""Faulted contests under skip-ahead: every fault path, exact equality.

Fault decisions are counter-based (pure hashes of transfer ordinals and
commit counts), so a skip that lands one cycle off immediately shifts a
kill/stall/flip point or a perturbed arrival timestamp and diverges the
whole run — these are the sharpest differential probes in the suite.
"""

import pytest

from repro.faults import FaultPlan
from repro.uarch.config import core_config

from .diffutil import assert_contest_identical, phase_trace

PAIR = lambda: [core_config("gcc"), core_config("vpr")]  # noqa: E731


def _trace():
    return phase_trace("windowed_mem", length=2500, seed=13)


class TestTransferFaults:
    def test_drops(self):
        assert_contest_identical(
            PAIR(), _trace(), faults=FaultPlan(seed=3, drop_rate=0.2),
        )

    def test_corruption(self):
        assert_contest_identical(
            PAIR(), _trace(), faults=FaultPlan(seed=5, corrupt_rate=0.15),
        )

    def test_delays(self):
        """Delayed transfers move arrival timestamps — the exact values the
        skip horizon reads from pending FIFO entries."""
        assert_contest_identical(
            PAIR(), _trace(),
            faults=FaultPlan(seed=7, delay_rate=0.3, delay_ns=6.0),
        )


class TestCoreFaults:
    def test_kill(self):
        assert_contest_identical(
            PAIR(), _trace(), faults=FaultPlan(kill_core=1, kill_at_commit=800),
        )

    def test_stall_window(self):
        """A stalled core advances its clock doing nothing; the window's
        first and last cycles are explicit horizon events."""
        assert_contest_identical(
            PAIR(), _trace(),
            faults=FaultPlan(
                stall_core=0, stall_at_cycle=500, stall_cycles=400,
            ),
        )

    def test_standalone_flip(self):
        assert_contest_identical(
            PAIR(), _trace(),
            faults=FaultPlan(standalone_core=1, standalone_at_commit=600),
        )


class TestCombined:
    def test_everything_at_once(self):
        plan = FaultPlan(
            seed=11,
            drop_rate=0.05, corrupt_rate=0.05,
            delay_rate=0.1, delay_ns=3.0,
            stall_core=1, stall_at_cycle=700, stall_cycles=250,
        )
        assert_contest_identical(PAIR(), _trace(), faults=plan)

    @pytest.mark.slow
    def test_fault_seed_sweep(self):
        """Nightly: many placements of the same mixed plan."""
        for seed in range(6):
            plan = FaultPlan(
                seed=seed, drop_rate=0.1, corrupt_rate=0.1,
                delay_rate=0.1, delay_ns=4.0,
            )
            assert_contest_identical(PAIR(), _trace(), faults=plan)
