"""Contested skip-ahead vs. reference cycle stepping: exact equality.

The system-level skipper only jumps when *no* active core has work at its
current clock edge, so every cross-core interaction — GRB transfers, early
branch resolution, store-queue backpressure, lagging-distance bookkeeping,
saturation, re-forks — must land on exactly the cycles the cycle-stepped
co-simulation produces.  These tests force each interaction and demand
identical results, per-core stat dicts, and store-queue counters.
"""

import pytest

from repro.uarch.cache import CacheConfig
from repro.uarch.config import core_config

from .diffutil import assert_contest_identical, phase_trace


class TestTwoWay:
    def test_heterogeneous_pair(self, small_trace):
        """The paper's canonical setup: two contrasting cores, mixed trace."""
        assert_contest_identical(
            [core_config("gcc"), core_config("vpr")], small_trace,
        )

    def test_memory_bound_pair(self, memory_trace):
        """Stall-heavy workload — where skip-ahead does the most jumping."""
        assert_contest_identical(
            [core_config("mcf"), core_config("crafty")], memory_trace,
        )

    def test_branchy_pair(self, branchy_trace):
        """Mispredict-dense: early branch resolution fires constantly."""
        assert_contest_identical(
            [core_config("gzip"), core_config("twolf")], branchy_trace,
        )

    def test_grb_latency_sweep(self):
        """Different bus latencies shift every arrival timestamp."""
        trace = phase_trace("serial_chain", length=2000, seed=6)
        for latency_ns in (0.5, 2.0, 8.0):
            assert_contest_identical(
                [core_config("gcc"), core_config("mcf")], trace,
                grb_latency_ns=latency_ns,
            )

    def test_early_branch_resolution_off(self, branchy_trace):
        """The Figure-5 ablation takes a different drain path."""
        assert_contest_identical(
            [core_config("gcc"), core_config("vpr")], branchy_trace,
            early_branch_resolution=False,
        )


class TestNWay:
    def test_three_way(self, small_trace):
        assert_contest_identical(
            [core_config("gcc"), core_config("mcf"), core_config("crafty")],
            small_trace,
        )

    @pytest.mark.slow
    def test_four_way_memory_bound(self, memory_trace):
        assert_contest_identical(
            [
                core_config("gcc"), core_config("mcf"),
                core_config("crafty"), core_config("vortex"),
            ],
            memory_trace,
        )


class TestPressurePaths:
    def test_store_queue_backpressure(self, store_trace):
        """A tiny queue keeps the leader blocked on commit: the blocked
        core must be stepped every cycle, never skipped past a release."""
        assert_contest_identical(
            [core_config("crafty"), core_config("mcf")], store_trace,
            store_queue_capacity=4,
        )

    def test_saturation_disable(self, memory_trace):
        """A tight lag bound plus short grace saturates the slow core; the
        grace-expiry deadline is one of the skip horizon's event sources."""
        assert_contest_identical(
            [core_config("crafty"), core_config("mcf")], memory_trace,
            max_lag=256, sat_grace_ns=5.0,
        )

    def test_resync_policy(self, memory_trace):
        """Saturated lagger re-forked at the leader's retirement point."""
        assert_contest_identical(
            [core_config("crafty"), core_config("mcf")], memory_trace,
            max_lag=256, sat_grace_ns=5.0, lagger_policy="resync",
        )

    def test_shared_l3(self, small_trace):
        """Merged stores write through to a shared level probed on miss."""
        assert_contest_identical(
            [core_config("gcc"), core_config("vpr")], small_trace,
            shared_l3=CacheConfig(assoc=8, block=64, sets=4096, latency=1),
        )
