"""Columnar-vs-reference differential verification.

The columnar backend's contract is *bit-identical* results: for any
standalone job — whether the vectorized fast path engages or a capability
certificate routes the run to the reference backend — every field of the
:class:`~repro.uarch.run.StandaloneResult` must match the reference
interpretation exactly, including per-region retire streams at
``region_size=1``.  The fast tests cover a representative slice on every
push; the ``slow``-marked full Appendix-A matrix runs nightly.
"""

import dataclasses

import pytest

from repro.backend import get_backend
from repro.isa.generator import generate_trace
from repro.isa.phases import PhaseMix, PhaseType
from repro.uarch.config import APPENDIX_A_CORES, core_config
from repro.uarch.run import run_standalone

from tests.differential.diffutil import (
    PHASE_FACTORIES,
    _assert_dicts_equal,
    phase_trace,
)

np = pytest.importorskip("numpy")


def compute_trace(seed=0, length=3000, **overrides):
    """A trace inside the columnar envelope: IALU/IMUL/IDIV/branches only."""
    knobs = dict(
        load_frac=0.0, store_frac=0.0, branch_frac=0.06, imul_frac=0.10,
        idiv_frac=0.01, dep1_frac=0.0, two_src_frac=0.0,
        branch_bias=0.95, n_static_branches=12,
    )
    knobs.update(overrides)
    phase = PhaseType(name="columnar_compute", **knobs)
    mix = PhaseMix("columnar_compute", [(phase, 1.0)])
    return generate_trace(mix, length, seed=seed)


def assert_backend_identical(config, trace, **kwargs):
    """Run both backends and require bit-identical results, naming the
    first diverging stat."""
    fast = run_standalone(config, trace, backend="columnar", **kwargs)
    slow = run_standalone(config, trace, backend="reference", **kwargs)
    _assert_dicts_equal(
        dataclasses.asdict(fast),
        dataclasses.asdict(slow),
        f"backend {config.name} on {trace.name}",
    )


def engaged(fn):
    """Run ``fn`` and assert the columnar fast path actually executed it
    (a fallback would make the parity assertion vacuous)."""
    stats = get_backend("columnar").stats
    before = stats.fast_runs
    fn()
    assert stats.fast_runs > before, "columnar fast path did not engage"


# a spread of Appendix-A microarchitectures: narrow/wide, deep/shallow
# frontends, and both awaken latencies (0 and 3)
FAST_CORES = ("gcc", "mcf", "crafty", "perl", "vortex")


@pytest.mark.parametrize("core", FAST_CORES)
def test_fast_path_parity_per_core(core):
    config = core_config(core)
    # light long-latency mix: even crafty's 64-entry ROB keeps up, so the
    # fast path engages on every core in the spread
    trace = compute_trace(seed=21, length=4000, imul_frac=0.05, idiv_frac=0.0)
    engaged(lambda: assert_backend_identical(
        config, trace, region_size=1, prewarm=True,
    ))


@pytest.mark.parametrize("prewarm", [True, False])
def test_fast_path_parity_predictor_replay(prewarm):
    # lower bias = denser mispredicts = more fetch-stall segments
    trace = compute_trace(seed=5, length=3000, branch_bias=0.80)
    engaged(lambda: assert_backend_identical(
        core_config("gcc"), trace, region_size=1, prewarm=prewarm,
    ))


def test_fast_path_parity_perfect_predictor():
    config = dataclasses.replace(
        core_config("crafty"), perfect_predictor=True
    )
    trace = compute_trace(seed=9, imul_frac=0.05, idiv_frac=0.0)
    engaged(lambda: assert_backend_identical(config, trace, region_size=1))


def test_parity_with_register_dependencies():
    # dependency-bearing traces: the dep-slack certificate decides whether
    # the fast path holds; parity is required on either route
    trace = compute_trace(
        seed=13, length=3000, dep1_frac=0.5, two_src_frac=0.3, dep_window=24
    )
    for core in ("gcc", "perl"):
        assert_backend_identical(core_config(core), trace, region_size=1)


@pytest.mark.parametrize("template", ["wide_ilp", "branchy", "compute_mul"])
def test_fallback_profile_parity(template):
    # standard generator profiles carry loads/stores: these route to the
    # reference backend, and the result must be bit-identical regardless
    trace = phase_trace(template, length=2000, seed=3)
    assert_backend_identical(core_config("gcc"), trace, region_size=1)


def test_region_streams_match_without_regions():
    # region_size=0 (no region log) is its own code path in both backends
    engaged(lambda: assert_backend_identical(
        core_config("vortex"), compute_trace(seed=2),
    ))


@pytest.mark.slow
@pytest.mark.parametrize("core", sorted(APPENDIX_A_CORES))
def test_full_matrix_parity(core):
    """Nightly: every Appendix-A core, multiple trace shapes, both
    prewarm settings, 1-instruction retire streams."""
    config = core_config(core)
    shapes = [
        compute_trace(seed=31, length=6000),
        compute_trace(seed=32, length=6000, branch_bias=0.85),
        compute_trace(seed=33, length=6000, dep1_frac=0.4, dep_window=16),
        compute_trace(seed=34, length=6000, imul_frac=0.25, idiv_frac=0.05),
    ]
    for trace in shapes:
        for prewarm in (True, False):
            assert_backend_identical(
                config, trace, region_size=1, prewarm=prewarm,
            )
