"""Standalone skip-ahead vs. reference cycle stepping: exact equality.

Covers every phase template in the generator at several seeds, a spread of
Appendix-A core configurations (fast/narrow through slow/wide, perfect and
realistic front ends), region-time logging, and the no-prewarm cold path.
The full template x config x seed matrix runs nightly (``slow``); a
representative slice runs on every push.
"""

import pytest

from repro.uarch.config import APPENDIX_A_CORES, core_config

from .diffutil import (
    PHASE_FACTORIES,
    assert_standalone_identical,
    phase_trace,
)

TEMPLATES = sorted(PHASE_FACTORIES)


class TestPhaseTemplates:
    """Each behaviour class in isolation, on contrasting cores."""

    @pytest.mark.parametrize("template", TEMPLATES)
    @pytest.mark.parametrize("config_name", ["crafty", "mcf"])
    def test_template_identical(self, template, config_name):
        trace = phase_trace(template, length=2500, seed=11)
        assert_standalone_identical(core_config(config_name), trace)

    @pytest.mark.parametrize("template", TEMPLATES)
    def test_template_seed_sweep(self, template):
        """Randomized trace content must not matter — three more seeds."""
        config = core_config("gcc")
        for seed in (0, 1, 2):
            trace = phase_trace(template, length=1500, seed=seed)
            assert_standalone_identical(config, trace)


class TestRunModes:
    def test_region_logging_identical(self):
        """Region-time logs are cycle-exact, not just the final totals."""
        trace = phase_trace("pointer_chase", length=3000, seed=4)
        assert_standalone_identical(
            core_config("mcf"), trace, region_size=160
        )

    def test_cold_caches_identical(self):
        """No prewarm: the long-miss-heavy path the skip loop must bridge."""
        trace = phase_trace("windowed_mem", length=2000, seed=9)
        assert_standalone_identical(
            core_config("vortex"), trace, prewarm=False
        )

    def test_mixed_profile_identical(self, small_trace):
        """A phase-diverse benchmark profile (gcc), not a pure template."""
        assert_standalone_identical(core_config("gcc"), small_trace)

    def test_syscall_drains_identical(self, syscall_trace):
        """Synchronous exceptions serialize the pipeline; the drained core
        reports its next event as 'now' and must be stepped exactly."""
        assert_standalone_identical(core_config("perl"), syscall_trace)


@pytest.mark.slow
class TestFullMatrix:
    """Nightly: every Appendix-A config against every phase template."""

    @pytest.mark.parametrize("config_name", sorted(APPENDIX_A_CORES))
    @pytest.mark.parametrize("template", TEMPLATES)
    def test_config_template_identical(self, config_name, template):
        trace = phase_trace(template, length=2000, seed=17)
        assert_standalone_identical(core_config(config_name), trace)
