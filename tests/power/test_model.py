import dataclasses

import pytest

from repro.core.system import run_contest
from repro.power.model import EnergyModel, contest_energy, standalone_energy
from repro.uarch.config import core_config
from repro.uarch.run import run_standalone


@pytest.fixture(scope="module")
def alone(request):
    small_trace = request.getfixturevalue("small_trace")
    return run_standalone(core_config("gcc"), small_trace)


class TestStandaloneEnergy:
    def test_positive_components(self, small_trace, gcc_core):
        result = run_standalone(gcc_core, small_trace)
        e = standalone_energy(result, gcc_core)
        assert e.dynamic_nj > 0
        assert e.leakage_nj > 0
        assert e.grb_nj == 0.0
        assert e.total_nj == pytest.approx(
            e.dynamic_nj + e.leakage_nj
        )

    def test_uses_real_cache_stats(self, small_trace, gcc_core):
        result = run_standalone(gcc_core, small_trace)
        assert result.stats.l1_accesses > 0
        with_real = standalone_energy(result, gcc_core)
        with_override = standalone_energy(
            result, gcc_core, l1_accesses=1, l1_misses=1, l2_misses=1
        )
        assert with_real.dynamic_nj != with_override.dynamic_nj

    def test_bigger_core_leaks_more(self, small_trace):
        big = core_config("mcf")      # ROB 1024 + 4MB L2
        small = core_config("gzip")   # ROB 64 + 512KB L2
        r_big = run_standalone(big, small_trace)
        r_small = run_standalone(small, small_trace)
        m = EnergyModel()
        per_ns_big = standalone_energy(r_big, big, m).leakage_nj / (r_big.time_ps / 1000)
        per_ns_small = standalone_energy(r_small, small, m).leakage_nj / (r_small.time_ps / 1000)
        assert per_ns_big > per_ns_small

    def test_energy_delay(self, small_trace, gcc_core):
        result = run_standalone(gcc_core, small_trace)
        e = standalone_energy(result, gcc_core)
        assert e.energy_delay(result.time_ps / 1000.0) > e.total_nj

    def test_model_coefficients_scale(self, small_trace, gcc_core):
        result = run_standalone(gcc_core, small_trace)
        base = standalone_energy(result, gcc_core)
        doubled = standalone_energy(
            result, gcc_core,
            model=EnergyModel(fetch_pj=4.0),
        )
        assert doubled.dynamic_nj > base.dynamic_nj


class TestContestEnergy:
    def test_costs_more_than_one_core(self, small_trace, gcc_core):
        vpr = core_config("vpr")
        alone = run_standalone(gcc_core, small_trace)
        both = run_contest(gcc_core, vpr, small_trace)
        e_alone = standalone_energy(alone, gcc_core)
        e_both = contest_energy(both, {"gcc": gcc_core, "vpr": vpr})
        assert 1.3 < e_both.total_nj / e_alone.total_nj < 3.5

    def test_grb_energy_scales_with_latency(self, small_trace, gcc_core):
        vpr = core_config("vpr")
        both = run_contest(gcc_core, vpr, small_trace)
        configs = {"gcc": gcc_core, "vpr": vpr}
        near = contest_energy(both, configs, grb_latency_ns=1.0)
        far = contest_energy(both, configs, grb_latency_ns=100.0)
        assert far.grb_nj > near.grb_nj
        assert far.dynamic_nj == near.dynamic_nj

    def test_injection_saves_execution_energy(self, small_trace, gcc_core):
        """A deeply trailing core pays no FU/wakeup energy for injected
        instructions, so its per-instruction pipeline energy is lower."""
        gap = core_config("gap")
        both = run_contest(gcc_core, gap, small_trace)
        gap_stats = both.per_core["1:gap"]
        assert gap_stats.injected > 0
        m = EnergyModel()
        with_inj = m._per_instr_pj(gap, gap_stats.injected / max(1, gap_stats.committed), 0.1)
        without = m._per_instr_pj(gap, 0.0, 0.1)
        assert with_inj < without

    def test_component_breakdown_keys(self, small_trace, gcc_core):
        vpr = core_config("vpr")
        both = run_contest(gcc_core, vpr, small_trace)
        e = contest_energy(both, {"gcc": gcc_core, "vpr": vpr})
        assert any(k.startswith("gcc.") for k in e.components)
        assert any(k.startswith("vpr.") for k in e.components)
