"""Executor equivalence: where a job runs must never change its result."""

import pytest

from repro.engine.executors import ParallelExecutor, SerialExecutor
from repro.engine.jobs import ContestJob, RegionLogJob, StandaloneJob
from repro.engine.jobs import TraceSpec
from repro.uarch.config import core_config

SPEC = TraceSpec("gcc", 1000, seed=11)
SPEC_B = TraceSpec("vpr", 1000, seed=11)

JOBS = [
    StandaloneJob(core_config("gcc"), SPEC),
    StandaloneJob(core_config("vpr"), SPEC),
    StandaloneJob(core_config("mcf"), SPEC_B),
    RegionLogJob(core_config("gcc"), SPEC),
    ContestJob((core_config("gcc"), core_config("vpr")), SPEC),
    ContestJob((core_config("bzip"), core_config("mcf")), SPEC_B),
]


class TestEquivalence:
    def test_parallel_results_bit_identical_to_serial(self):
        serial = [r for r, _ in SerialExecutor().run(JOBS)]
        parallel = [
            r for r, _ in ParallelExecutor(workers=2, chunk_size=2).run(JOBS)
        ]
        # dataclass equality is deep: every cycle count, per-region time,
        # and per-core RunStats must match exactly
        assert serial == parallel

    def test_order_preserved(self):
        results = [r for r, _ in ParallelExecutor(workers=2).run(JOBS[:3])]
        assert [r.config_name for r in results] == ["gcc", "vpr", "mcf"]
        assert results[2].trace_name == "vpr"


class TestHarness:
    def test_empty_batch(self):
        assert ParallelExecutor(workers=2).run([]) == []

    def test_single_worker_falls_back_to_serial(self):
        results = ParallelExecutor(workers=1).run(JOBS[:1])
        assert len(results) == 1

    def test_timings_reported(self):
        timed = SerialExecutor().run(JOBS[:2])
        assert all(seconds >= 0 for _, seconds in timed)

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=-1)

    def test_derived_worker_count(self):
        assert ParallelExecutor().workers >= 1
