"""Crash paths of the parallel executor: raise, SIGKILL, hang, torn writes.

The duck jobs below are module-level frozen dataclasses so the process
pool can pickle them; each misbehaves in exactly one way.
"""

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass

import pytest

from repro.analysis.regions import RegionLog
from repro.engine import (
    JobFailure,
    ParallelExecutor,
    ResultStore,
    RetryPolicy,
    SerialExecutor,
    SimEngine,
    StandaloneJob,
    TraceSpec,
    derive_chunk_size,
)
from repro.uarch.config import core_config

SPEC = TraceSpec("gcc", 1000, seed=11)

GOOD_JOBS = [
    StandaloneJob(core_config("gcc"), SPEC),
    StandaloneJob(core_config("vpr"), SPEC),
    StandaloneJob(core_config("mcf"), SPEC),
]


@dataclass(frozen=True)
class RaisingJob:
    """Raises in the worker on every attempt."""

    marker: str = "boom"
    kind = "raising"

    def cache_key(self):
        return f"raising-{self.marker}"

    def run(self):
        raise ValueError(self.marker)


@dataclass(frozen=True)
class SuicideJob:
    """SIGKILLs its worker process (an OOM kill's observable behaviour)."""

    kind = "suicide"

    def cache_key(self):
        return "suicide"

    def run(self):
        os.kill(os.getpid(), signal.SIGKILL)


@dataclass(frozen=True)
class HangingJob:
    """Never returns within any reasonable budget."""

    kind = "hanging"

    def cache_key(self):
        return "hanging"

    def run(self):
        time.sleep(300)


@dataclass(frozen=True)
class HangOnceJob:
    """Hangs on its first attempt, returns promptly ever after.

    The sentinel file is the cross-process attempt memory: the first
    worker to run the job creates it and then wedges; any later attempt
    sees it and succeeds.  This is the transiently-wedged-run shape (an
    I/O stall, a cold NFS mount) the timed-out retry path exists for.
    """

    sentinel: str
    kind = "hang_once"

    def cache_key(self):
        return f"hang-once-{self.sentinel}"

    def run(self):
        if os.path.exists(self.sentinel):
            return "recovered"
        with open(self.sentinel, "w") as handle:
            handle.write("attempt 1 hung here\n")
        time.sleep(300)


FAST_RETRY = RetryPolicy(max_attempts=2, backoff_s=0.01)


class TestRaisingJob:
    def test_failure_reported_others_succeed(self):
        jobs = GOOD_JOBS[:2] + [RaisingJob()] + GOOD_JOBS[2:]
        timed = ParallelExecutor(
            workers=2, chunk_size=2, retry=FAST_RETRY
        ).run(jobs)
        results = [r for r, _ in timed]
        failure = results[2]
        assert isinstance(failure, JobFailure)
        assert failure.error_type == "ValueError"
        assert "boom" in failure.message
        serial = [r for r, _ in SerialExecutor().run(GOOD_JOBS)]
        assert [results[0], results[1], results[3]] == serial

    def test_traceback_carried(self):
        (failure, _), = ParallelExecutor(
            workers=2, retry=FAST_RETRY
        ).run([RaisingJob(), RaisingJob("other")])[:1]
        assert isinstance(failure, JobFailure)
        assert "ValueError" in failure.traceback


class TestKilledWorker:
    def test_pool_survives_and_every_job_answers(self):
        # The acceptance scenario: a worker is SIGKILLed mid-batch.  The
        # batch must still return one entry per job — the poisoned job as
        # a JobFailure, every other job bit-identical to a serial run.
        jobs = [GOOD_JOBS[0], SuicideJob(), GOOD_JOBS[1], GOOD_JOBS[2]]
        timed = ParallelExecutor(
            workers=2, chunk_size=2, retry=FAST_RETRY
        ).run(jobs)
        assert len(timed) == len(jobs)
        results = [r for r, _ in timed]
        failure = results[1]
        assert isinstance(failure, JobFailure)
        assert failure.error_type == "WorkerDied"
        assert failure.attempts == FAST_RETRY.max_attempts
        serial = [r for r, _ in SerialExecutor().run(GOOD_JOBS)]
        assert [results[0], results[2], results[3]] == serial

    def test_chunk_mates_of_the_killed_job_still_succeed(self):
        # chunk_size=4 guarantees the killer shares a chunk with victims
        jobs = [SuicideJob()] + GOOD_JOBS
        results = [
            r for r, _ in ParallelExecutor(
                workers=2, chunk_size=4, retry=FAST_RETRY
            ).run(jobs)
        ]
        assert isinstance(results[0], JobFailure)
        assert [r for r in results[1:] if isinstance(r, JobFailure)] == []


class TestHangingJob:
    def test_watchdog_times_the_job_out(self):
        policy = RetryPolicy(
            max_attempts=1, backoff_s=0.01, job_timeout_s=0.5
        )
        started = time.monotonic()
        timed = ParallelExecutor(
            workers=2, chunk_size=1, retry=policy
        ).run([HangingJob(), GOOD_JOBS[0]])
        elapsed = time.monotonic() - started
        failure = timed[0][0]
        assert isinstance(failure, JobFailure)
        assert failure.error_type == "JobTimeout"
        assert not isinstance(timed[1][0], JobFailure)
        assert elapsed < 60  # the 300s sleep was interrupted


class TestTimedOutRetryPath:
    """The timed-out single-chunk path: a timeout spends an attempt and
    the job is *retried*, not failed outright (nor retried forever)."""

    def test_transient_hang_recovers_on_retry(self, tmp_path):
        policy = RetryPolicy(
            max_attempts=3, backoff_s=0.01, job_timeout_s=0.5
        )
        job = HangOnceJob(str(tmp_path / "first-attempt.sentinel"))
        timed = ParallelExecutor(
            workers=2, chunk_size=1, retry=policy
        ).run([job, GOOD_JOBS[0]])
        # the first attempt wedged (the sentinel proves it ran) but the
        # retry completed: no JobFailure anywhere
        assert timed[0][0] == "recovered"
        assert (tmp_path / "first-attempt.sentinel").exists()
        assert not isinstance(timed[1][0], JobFailure)

    def test_attempts_counted_to_budget_then_job_timeout(self):
        policy = RetryPolicy(
            max_attempts=2, backoff_s=0.01, job_timeout_s=0.4
        )
        timed = ParallelExecutor(
            workers=2, chunk_size=1, retry=policy
        ).run([HangingJob(), GOOD_JOBS[0]])
        failure = timed[0][0]
        assert isinstance(failure, JobFailure)
        assert failure.error_type == "JobTimeout"
        # every permitted attempt was spent on the timeout path — not
        # one (fail fast) and not more (retry forever)
        assert failure.attempts == policy.max_attempts
        assert "wall-clock" in failure.message
        assert not isinstance(timed[1][0], JobFailure)

    def test_timed_out_multi_job_chunk_splits_before_spending(self):
        # a multi-job chunk that overruns cannot tell which member is
        # wedged: it splits into singles at the SAME attempt, so the
        # innocent chunk-mate succeeds and the hanger still gets its
        # full per-attempt budget
        policy = RetryPolicy(
            max_attempts=2, backoff_s=0.01, job_timeout_s=0.4
        )
        timed = ParallelExecutor(
            workers=2, chunk_size=2, retry=policy
        ).run([HangingJob(), GOOD_JOBS[0], GOOD_JOBS[1], GOOD_JOBS[2]])
        failure = timed[0][0]
        assert isinstance(failure, JobFailure)
        assert failure.error_type == "JobTimeout"
        assert failure.attempts == policy.max_attempts
        serial = [r for r, _ in SerialExecutor().run(GOOD_JOBS)]
        assert [r for r, _ in timed[1:]] == serial

    def test_timeout_failures_are_never_cached(self, tmp_path):
        policy = RetryPolicy(
            max_attempts=2, backoff_s=0.01, job_timeout_s=0.4
        )
        engine = SimEngine(
            executor=ParallelExecutor(workers=2, chunk_size=1, retry=policy),
            store=ResultStore(tmp_path / "store"),
        )
        results = engine.run_many([HangingJob(), GOOD_JOBS[0]])
        assert isinstance(results[0], JobFailure)
        assert results[0].error_type == "JobTimeout"
        assert engine.stats.failures == 1
        # only the good job's record landed in the store
        assert len(engine.store) == 1
        assert engine.store.get("hanging", "hanging") is None
        # a re-run re-executes the timed-out job (no poisoned record),
        # while the good job is a pure cache hit; a second fresh job
        # rides along so the uncached remainder keeps the pool path
        # (a singleton batch would run serially, with no watchdog)
        again = engine.run_many([HangingJob(), GOOD_JOBS[0], GOOD_JOBS[1]])
        assert isinstance(again[0], JobFailure)
        assert engine.stats.failures == 2
        assert engine.stats.memory_hits == 1


class TestConcurrentStoreAppends:
    def test_two_processes_no_torn_lines(self, tmp_path):
        count = 150
        procs = [
            multiprocessing.Process(
                target=_append_records, args=(str(tmp_path), wid, count)
            )
            for wid in (1, 2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        store = ResultStore(tmp_path)
        assert store.corrupt_lines == 0
        assert len(store) == 2 * count
        sample = store.get("key-1-0", "region_log")
        assert isinstance(sample, RegionLog)


def _append_records(path: str, worker_id: int, count: int) -> None:
    store = ResultStore(path)
    for k in range(count):
        log = RegionLog(
            config_name=f"core-{worker_id}",
            trace_name="trace",
            region_size=20,
            times_ps=list(range(worker_id * 1000, worker_id * 1000 + 60)),
        )
        store.put(f"key-{worker_id}-{k}", "region_log", log)


class TestChunkDerivation:
    def test_small_batches_not_fragmented(self):
        # regression: 6 jobs on 4 workers used to chunk as ceil(6/16)=1
        # (maximum IPC overhead); one chunk per worker is as parallel
        assert derive_chunk_size(6, 4) == 2
        assert derive_chunk_size(16, 4) == 4

    def test_tiny_batches_stay_single(self):
        assert derive_chunk_size(3, 4) == 1
        assert derive_chunk_size(1, 8) == 1

    def test_large_batches_load_balance(self):
        assert derive_chunk_size(100, 4) == 7  # ~4 chunks per worker

    def test_requested_wins(self):
        assert derive_chunk_size(100, 4, requested=5) == 5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            derive_chunk_size(0, 4)
        with pytest.raises(ValueError):
            derive_chunk_size(4, 0)


class _AlwaysFailingExecutor:
    workers = 1

    def __init__(self):
        self.calls = 0

    def run(self, jobs):
        self.calls += 1
        return [
            (
                JobFailure(
                    job_kind="raising", error_type="ValueError", message="x"
                ),
                0.0,
            )
            for _ in jobs
        ]


class TestEngineFailureHandling:
    def test_failures_surface_but_are_never_cached(self, tmp_path):
        engine = SimEngine(
            executor=_AlwaysFailingExecutor(), store=ResultStore(tmp_path)
        )
        job = RaisingJob()
        first = engine.run(job)
        assert isinstance(first, JobFailure)
        assert engine.stats.failures == 1
        # a re-run misses both cache layers and executes again
        second = engine.run(job)
        assert isinstance(second, JobFailure)
        assert engine.executor.calls == 2
        assert len(engine.store) == 0

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(job_timeout_s=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
