"""Crash paths of the parallel executor: raise, SIGKILL, hang, torn writes.

The duck jobs below are module-level frozen dataclasses so the process
pool can pickle them; each misbehaves in exactly one way.
"""

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass

import pytest

from repro.analysis.regions import RegionLog
from repro.engine import (
    JobFailure,
    ParallelExecutor,
    ResultStore,
    RetryPolicy,
    SerialExecutor,
    SimEngine,
    StandaloneJob,
    TraceSpec,
    derive_chunk_size,
)
from repro.uarch.config import core_config

SPEC = TraceSpec("gcc", 1000, seed=11)

GOOD_JOBS = [
    StandaloneJob(core_config("gcc"), SPEC),
    StandaloneJob(core_config("vpr"), SPEC),
    StandaloneJob(core_config("mcf"), SPEC),
]


@dataclass(frozen=True)
class RaisingJob:
    """Raises in the worker on every attempt."""

    marker: str = "boom"
    kind = "raising"

    def cache_key(self):
        return f"raising-{self.marker}"

    def run(self):
        raise ValueError(self.marker)


@dataclass(frozen=True)
class SuicideJob:
    """SIGKILLs its worker process (an OOM kill's observable behaviour)."""

    kind = "suicide"

    def cache_key(self):
        return "suicide"

    def run(self):
        os.kill(os.getpid(), signal.SIGKILL)


@dataclass(frozen=True)
class HangingJob:
    """Never returns within any reasonable budget."""

    kind = "hanging"

    def cache_key(self):
        return "hanging"

    def run(self):
        time.sleep(300)


FAST_RETRY = RetryPolicy(max_attempts=2, backoff_s=0.01)


class TestRaisingJob:
    def test_failure_reported_others_succeed(self):
        jobs = GOOD_JOBS[:2] + [RaisingJob()] + GOOD_JOBS[2:]
        timed = ParallelExecutor(
            workers=2, chunk_size=2, retry=FAST_RETRY
        ).run(jobs)
        results = [r for r, _ in timed]
        failure = results[2]
        assert isinstance(failure, JobFailure)
        assert failure.error_type == "ValueError"
        assert "boom" in failure.message
        serial = [r for r, _ in SerialExecutor().run(GOOD_JOBS)]
        assert [results[0], results[1], results[3]] == serial

    def test_traceback_carried(self):
        (failure, _), = ParallelExecutor(
            workers=2, retry=FAST_RETRY
        ).run([RaisingJob(), RaisingJob("other")])[:1]
        assert isinstance(failure, JobFailure)
        assert "ValueError" in failure.traceback


class TestKilledWorker:
    def test_pool_survives_and_every_job_answers(self):
        # The acceptance scenario: a worker is SIGKILLed mid-batch.  The
        # batch must still return one entry per job — the poisoned job as
        # a JobFailure, every other job bit-identical to a serial run.
        jobs = [GOOD_JOBS[0], SuicideJob(), GOOD_JOBS[1], GOOD_JOBS[2]]
        timed = ParallelExecutor(
            workers=2, chunk_size=2, retry=FAST_RETRY
        ).run(jobs)
        assert len(timed) == len(jobs)
        results = [r for r, _ in timed]
        failure = results[1]
        assert isinstance(failure, JobFailure)
        assert failure.error_type == "WorkerDied"
        assert failure.attempts == FAST_RETRY.max_attempts
        serial = [r for r, _ in SerialExecutor().run(GOOD_JOBS)]
        assert [results[0], results[2], results[3]] == serial

    def test_chunk_mates_of_the_killed_job_still_succeed(self):
        # chunk_size=4 guarantees the killer shares a chunk with victims
        jobs = [SuicideJob()] + GOOD_JOBS
        results = [
            r for r, _ in ParallelExecutor(
                workers=2, chunk_size=4, retry=FAST_RETRY
            ).run(jobs)
        ]
        assert isinstance(results[0], JobFailure)
        assert [r for r in results[1:] if isinstance(r, JobFailure)] == []


class TestHangingJob:
    def test_watchdog_times_the_job_out(self):
        policy = RetryPolicy(
            max_attempts=1, backoff_s=0.01, job_timeout_s=0.5
        )
        started = time.monotonic()
        timed = ParallelExecutor(
            workers=2, chunk_size=1, retry=policy
        ).run([HangingJob(), GOOD_JOBS[0]])
        elapsed = time.monotonic() - started
        failure = timed[0][0]
        assert isinstance(failure, JobFailure)
        assert failure.error_type == "JobTimeout"
        assert not isinstance(timed[1][0], JobFailure)
        assert elapsed < 60  # the 300s sleep was interrupted


class TestConcurrentStoreAppends:
    def test_two_processes_no_torn_lines(self, tmp_path):
        count = 150
        procs = [
            multiprocessing.Process(
                target=_append_records, args=(str(tmp_path), wid, count)
            )
            for wid in (1, 2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        store = ResultStore(tmp_path)
        assert store.corrupt_lines == 0
        assert len(store) == 2 * count
        sample = store.get("key-1-0", "region_log")
        assert isinstance(sample, RegionLog)


def _append_records(path: str, worker_id: int, count: int) -> None:
    store = ResultStore(path)
    for k in range(count):
        log = RegionLog(
            config_name=f"core-{worker_id}",
            trace_name="trace",
            region_size=20,
            times_ps=list(range(worker_id * 1000, worker_id * 1000 + 60)),
        )
        store.put(f"key-{worker_id}-{k}", "region_log", log)


class TestChunkDerivation:
    def test_small_batches_not_fragmented(self):
        # regression: 6 jobs on 4 workers used to chunk as ceil(6/16)=1
        # (maximum IPC overhead); one chunk per worker is as parallel
        assert derive_chunk_size(6, 4) == 2
        assert derive_chunk_size(16, 4) == 4

    def test_tiny_batches_stay_single(self):
        assert derive_chunk_size(3, 4) == 1
        assert derive_chunk_size(1, 8) == 1

    def test_large_batches_load_balance(self):
        assert derive_chunk_size(100, 4) == 7  # ~4 chunks per worker

    def test_requested_wins(self):
        assert derive_chunk_size(100, 4, requested=5) == 5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            derive_chunk_size(0, 4)
        with pytest.raises(ValueError):
            derive_chunk_size(4, 0)


class _AlwaysFailingExecutor:
    workers = 1

    def __init__(self):
        self.calls = 0

    def run(self, jobs):
        self.calls += 1
        return [
            (
                JobFailure(
                    job_kind="raising", error_type="ValueError", message="x"
                ),
                0.0,
            )
            for _ in jobs
        ]


class TestEngineFailureHandling:
    def test_failures_surface_but_are_never_cached(self, tmp_path):
        engine = SimEngine(
            executor=_AlwaysFailingExecutor(), store=ResultStore(tmp_path)
        )
        job = RaisingJob()
        first = engine.run(job)
        assert isinstance(first, JobFailure)
        assert engine.stats.failures == 1
        # a re-run misses both cache layers and executes again
        second = engine.run(job)
        assert isinstance(second, JobFailure)
        assert engine.executor.calls == 2
        assert len(engine.store) == 0

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(job_timeout_s=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
