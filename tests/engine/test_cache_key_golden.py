"""Golden pinning of job cache keys (the engine's identity contract).

Failure here means job identity moved.  If that was intended, bump
``SCHEMA_VERSION`` (retiring the old store generation) and regenerate the
fixture — see ``tests/engine/cache_key_fixture.py`` — reviewing the diff
label by label.  If it was not intended: the change just orphaned every
previously cached result, and possibly aliased distinct jobs; fix the
regression instead.
"""

import re

from repro.engine.jobs import SCHEMA_VERSION, StandaloneJob

from tests.engine.cache_key_fixture import (
    SPEC,
    current_values,
    job_matrix,
    load_goldens,
)

REGENERATE = (
    "regenerate (after review!) with: "
    "PYTHONPATH=src python -m tests.engine.cache_key_fixture"
)


def test_cache_keys_match_golden_file():
    golden = load_goldens()
    current = current_values()
    assert current["schema_version"] == golden["schema_version"], (
        "SCHEMA_VERSION moved without regenerating the golden keys; "
        + REGENERATE
    )
    assert current["fingerprints"] == golden["fingerprints"], REGENERATE
    mismatched = {
        label: (golden["cache_keys"].get(label), key)
        for label, key in current["cache_keys"].items()
        if golden["cache_keys"].get(label) != key
    }
    assert not mismatched, (
        f"cache keys diverged from golden for {sorted(mismatched)}; "
        + REGENERATE
    )
    assert set(golden["cache_keys"]) == set(current["cache_keys"]), (
        "matrix labels changed; " + REGENERATE
    )


def test_matrix_keys_are_distinct_hex_digests():
    keys = {label: job.cache_key() for label, job in job_matrix().items()}
    for label, key in keys.items():
        assert re.fullmatch(r"[0-9a-f]{64}", key), (label, key)
    # every matrix entry describes a *different* simulation: no aliasing
    assert len(set(keys.values())) == len(keys)


def test_reference_backend_is_key_neutral():
    # 'reference' is the default and must hash identically to leaving the
    # field alone — otherwise every pre-backend-layer record would orphan
    from repro.uarch.config import core_config

    job = StandaloneJob(core_config("gcc"), SPEC)
    explicit = StandaloneJob(core_config("gcc"), SPEC, backend="reference")
    assert job.cache_key() == explicit.cache_key()


def test_schema_version_joins_every_key():
    # the golden file itself records the generation it pins
    assert load_goldens()["schema_version"] == SCHEMA_VERSION
