"""SimEngine layering: memory cache, persistent store, executor, counters."""

from repro.engine import ParallelExecutor, ResultStore, SimEngine
from repro.engine.jobs import ContestJob, StandaloneJob, TraceSpec
from repro.uarch.config import core_config

SPEC = TraceSpec("gcc", 1000, seed=11)


def _job(core="gcc"):
    return StandaloneJob(core_config(core), SPEC)


class TestMemoryLayer:
    def test_hit_returns_same_object(self):
        engine = SimEngine()
        assert engine.run(_job()) is engine.run(_job())
        assert engine.stats.memory_hits == 1
        assert engine.stats.misses == 1

    def test_batch_deduplicates(self):
        engine = SimEngine()
        results = engine.run_many([_job(), _job(), _job("vpr")])
        assert results[0] is results[1]
        assert engine.stats.misses == 2  # gcc once, vpr once

    def test_distinct_jobs_not_aliased(self):
        engine = SimEngine()
        a = engine.run(_job("gcc"))
        b = engine.run(_job("vpr"))
        assert a.config_name != b.config_name


class TestStoreLayer:
    def test_cross_engine_persistence(self, tmp_path):
        first = SimEngine(store=ResultStore(tmp_path))
        cold = first.run(_job())
        second = SimEngine(store=ResultStore(tmp_path))
        warm = second.run(_job())
        assert warm == cold
        assert second.stats.store_hits == 1
        assert second.stats.misses == 0
        assert second.stats.sim_seconds == 0.0

    def test_corrupt_store_falls_back_to_recompute(self, tmp_path):
        engine = SimEngine(store=ResultStore(tmp_path))
        expected = engine.run(_job())
        # clobber the store file wholesale
        store_path = engine.store.path
        store_path.write_bytes(b"\x00garbage\nnot even json\n")
        fresh = SimEngine(store=ResultStore(tmp_path))
        recomputed = fresh.run(_job())
        assert recomputed == expected
        assert fresh.stats.misses == 1  # recomputed, no crash

    def test_no_store_means_no_persistence(self, tmp_path):
        SimEngine().run(_job())
        assert list(tmp_path.iterdir()) == []


class TestExecutorLayer:
    def test_parallel_engine_matches_serial(self, tmp_path):
        jobs = [
            _job("gcc"), _job("vpr"),
            ContestJob((core_config("gcc"), core_config("vpr")), SPEC),
        ]
        serial = SimEngine().run_many(jobs)
        parallel = SimEngine(
            executor=ParallelExecutor(workers=2)
        ).run_many(jobs)
        assert serial == parallel

    def test_executed_counts_by_kind(self):
        engine = SimEngine()
        engine.run_many([
            _job(),
            ContestJob((core_config("gcc"), core_config("vpr")), SPEC),
        ])
        assert engine.stats.executed == {"standalone": 1, "contest": 1}


class TestReporting:
    def test_stats_line_mentions_counters(self, tmp_path):
        engine = SimEngine(store=ResultStore(tmp_path))
        engine.run(_job())
        engine.run(_job())
        line = engine.stats_line()
        assert "1 memory hits" in line
        assert "1 misses" in line
        assert "store:" in line

    def test_jobs_total(self):
        engine = SimEngine()
        engine.run(_job())
        engine.run(_job())
        assert engine.stats.jobs == 2
