"""The golden cache-key matrix: pinned job identities.

A job's :meth:`cache_key` is the engine's *wire format with the past*:
every store record, every dedup decision, and every cross-session cache
hit keys on it.  An accidental change — a reordered repr field, an int
drifting to float, a renamed knob — silently orphans every cached result
and (worse) can alias two different jobs.  This fixture freezes the keys
of a representative job matrix — every job kind, both concrete backends,
faults on and off, spec- and value-identity traces — in a checked-in
JSON file that ``tests/engine/test_cache_key_golden.py`` compares against
on every run.

After an **intended** identity change (which must come with a
``SCHEMA_VERSION`` bump — the version is part of every key, so bumping it
retires the old store generation wholesale), regenerate with::

    PYTHONPATH=src python -m tests.engine.cache_key_fixture

and review the diff label by label: each changed digest is a claim that
that job's identity was supposed to move.
"""

import json
from pathlib import Path
from typing import Dict

from repro.engine.jobs import (
    SCHEMA_VERSION,
    ContestJob,
    RegionLogJob,
    StandaloneJob,
    TraceSpec,
    trace_fingerprint,
)
from repro.faults import FaultPlan
from repro.uarch.config import core_config

GOLDEN_PATH = Path(__file__).with_name("golden_cache_keys.json")

SPEC = TraceSpec("gcc", 300, seed=7)
ALT_SPEC = TraceSpec("gzip", 260, seed=9)
FAULTS = FaultPlan(seed=3, drop_rate=0.01, kill_core=1, kill_at_commit=150)


def job_matrix():
    """Label → job: every kind × backend × fault arrangement that joins
    the key, plus the knobs that must perturb it."""
    gcc, gzip_, vpr, mcf = (
        core_config(name) for name in ("gcc", "gzip", "vpr", "mcf")
    )
    return {
        "standalone/gcc": StandaloneJob(gcc, SPEC),
        "standalone/gcc/alt-trace": StandaloneJob(gcc, ALT_SPEC),
        "standalone/gcc/cold": StandaloneJob(gcc, SPEC, prewarm=False),
        "standalone/gcc/region-40": StandaloneJob(gcc, SPEC, region_size=40),
        "standalone/gcc/columnar": StandaloneJob(gcc, SPEC, backend="columnar"),
        "standalone/vpr": StandaloneJob(vpr, SPEC),
        "region_log/mcf": RegionLogJob(mcf, SPEC),
        "region_log/gzip/region-40": RegionLogJob(gzip_, ALT_SPEC,
                                                  region_size=40),
        "contest/gcc-gzip": ContestJob((gcc, gzip_), SPEC),
        "contest/gcc-gzip/columnar": ContestJob((gcc, gzip_), SPEC,
                                                backend="columnar"),
        "contest/gcc-gzip/faults": ContestJob((gcc, gzip_), SPEC,
                                              faults=FAULTS),
        "contest/gcc-gzip/resync": ContestJob(
            (gcc, gzip_), SPEC, lagger_policy="resync",
            resync_penalty_cycles=80,
        ),
        "contest/gcc-gzip/lag-64": ContestJob((gcc, gzip_), SPEC, max_lag=64),
        "contest/gcc-gzip/grb-3ns": ContestJob((gcc, gzip_), SPEC,
                                               grb_latency_ns=3.0),
        "contest/gcc-vpr-mcf": ContestJob((gcc, vpr, mcf), ALT_SPEC),
        "contest/order-swapped": ContestJob((gzip_, gcc), SPEC),
    }


def current_values() -> Dict[str, object]:
    """Everything the golden file pins, freshly computed."""
    values: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "cache_keys": {
            label: job.cache_key() for label, job in job_matrix().items()
        },
        "fingerprints": {
            "trace-spec/gcc": SPEC.fingerprint(),
            "trace-spec/gzip": ALT_SPEC.fingerprint(),
            "trace/materialised": trace_fingerprint(SPEC.materialise()),
            "faults": FAULTS.fingerprint(),
        },
    }
    return values


def load_goldens() -> Dict[str, object]:
    with GOLDEN_PATH.open(encoding="utf-8") as handle:
        return json.load(handle)


def save_goldens() -> Path:
    GOLDEN_PATH.write_text(
        json.dumps(current_values(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return GOLDEN_PATH


if __name__ == "__main__":
    print(f"wrote {save_goldens()}")
