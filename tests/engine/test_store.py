"""Persistent store: round-trips, corruption tolerance, eviction."""

import json

from repro.engine.jobs import SCHEMA_VERSION, ContestJob, RegionLogJob, StandaloneJob
from repro.engine.jobs import TraceSpec
from repro.engine.store import ResultStore, decode_result, encode_result
from repro.uarch.config import core_config

SPEC = TraceSpec("gcc", 1000, seed=11)


def _results():
    alone = StandaloneJob(core_config("gcc"), SPEC).run()
    log = RegionLogJob(core_config("gcc"), SPEC).run()
    contest = ContestJob((core_config("gcc"), core_config("vpr")), SPEC).run()
    return alone, log, contest


class TestRoundTrip:
    def test_codec_all_kinds(self):
        alone, log, contest = _results()
        for kind, obj in (
            ("standalone", alone), ("region_log", log), ("contest", contest)
        ):
            assert decode_result(kind, encode_result(obj)) == obj

    def test_survives_reload(self, tmp_path):
        alone, log, contest = _results()
        store = ResultStore(tmp_path)
        store.put("k1", "standalone", alone)
        store.put("k2", "region_log", log)
        store.put("k3", "contest", contest)

        fresh = ResultStore(tmp_path)
        assert fresh.get("k1", "standalone") == alone
        assert fresh.get("k2", "region_log") == log
        assert fresh.get("k3", "contest") == contest
        assert fresh.hits == 3

    def test_kind_mismatch_is_miss(self, tmp_path):
        alone, _, _ = _results()
        store = ResultStore(tmp_path)
        store.put("k", "standalone", alone)
        assert store.get("k", "contest") is None
        assert store.misses == 1

    def test_missing_key_is_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("nope", "standalone") is None


class TestCorruption:
    def test_garbage_file_loads_empty(self, tmp_path):
        path = tmp_path / f"results-v{SCHEMA_VERSION}.jsonl"
        path.write_bytes(b"\x00\xffnot json at all\n{malformed\n")
        store = ResultStore(tmp_path)
        assert len(store) == 0
        assert store.corrupt_lines == 2
        assert store.get("k", "standalone") is None  # recompute, no crash

    def test_truncated_tail_skipped(self, tmp_path):
        alone, _, _ = _results()
        store = ResultStore(tmp_path)
        store.put("good", "standalone", alone)
        # simulate a crash mid-append: final line cut short
        with open(store.path, "a") as fh:
            fh.write('{"key": "bad", "kind": "standalone", "val')
        fresh = ResultStore(tmp_path)
        assert fresh.get("good", "standalone") == alone
        assert fresh.corrupt_lines == 1

    def test_bad_payload_shape_is_miss(self, tmp_path):
        path = tmp_path / f"results-v{SCHEMA_VERSION}.jsonl"
        path.write_text(json.dumps(
            {"key": "k", "kind": "standalone", "value": {"nonsense": 1}}
        ) + "\n")
        store = ResultStore(tmp_path)
        assert store.get("k", "standalone") is None
        assert store.corrupt_lines == 1

    def test_later_lines_supersede(self, tmp_path):
        alone, log, _ = _results()
        store = ResultStore(tmp_path)
        store.put("k", "region_log", log)
        store.put("k", "standalone", alone)
        fresh = ResultStore(tmp_path)
        assert fresh.get("k", "standalone") == alone


class TestEviction:
    def test_oldest_evicted(self, tmp_path):
        alone, _, _ = _results()
        store = ResultStore(tmp_path, max_entries=2)
        store.put("a", "standalone", alone)
        store.put("b", "standalone", alone)
        store.put("c", "standalone", alone)
        assert store.evictions == 1
        assert store.get("a", "standalone") is None
        assert store.get("c", "standalone") == alone
        # the compacted file respects the bound too
        fresh = ResultStore(tmp_path, max_entries=2)
        assert len(fresh) == 2

    def test_capacity_enforced_at_load(self, tmp_path):
        alone, _, _ = _results()
        big = ResultStore(tmp_path, max_entries=10)
        for i in range(5):
            big.put(f"k{i}", "standalone", alone)
        small = ResultStore(tmp_path, max_entries=2)
        assert len(small) == 2
        assert small.evictions == 3

    def test_counters_dict(self, tmp_path):
        store = ResultStore(tmp_path)
        counters = store.counters()
        assert set(counters) >= {"hits", "misses", "evictions", "entries"}


class TestStreamingLoad:
    def test_load_never_reads_the_whole_file(self, tmp_path, monkeypatch):
        # the regression this pins: _load once did path.read_bytes(),
        # holding the entire store in memory; it must stream lines now
        alone, _, _ = _results()
        seeded = ResultStore(tmp_path)
        for i in range(5):
            seeded.put(f"k{i}", "standalone", alone)

        def no_slurp(self):
            raise AssertionError("store load must stream, not slurp")

        monkeypatch.setattr(type(seeded.path), "read_bytes", no_slurp)
        fresh = ResultStore(tmp_path)
        assert len(fresh) == 5
        assert fresh.get("k3", "standalone") == alone

    def test_records_are_crc_framed_on_disk(self, tmp_path):
        from repro.engine.store import STATUS_OK, STORE_FORMAT, scan_store

        alone, _, _ = _results()
        store = ResultStore(tmp_path)
        store.put("k", "standalone", alone)
        (record,) = scan_store(store.path)
        assert record.status == STATUS_OK
        raw = json.loads(store.path.read_bytes().splitlines()[0])
        assert raw["v"] == STORE_FORMAT
        assert isinstance(raw["crc"], int)

    def test_legacy_unframed_lines_still_load(self, tmp_path):
        alone, _, _ = _results()
        store = ResultStore(tmp_path)
        line = json.dumps(
            {"key": "old", "kind": "standalone",
             "value": encode_result(alone)}
        )
        store.path.parent.mkdir(parents=True, exist_ok=True)
        store.path.write_text(line + "\n")
        fresh = ResultStore(tmp_path)
        assert fresh.legacy_lines == 1
        assert fresh.corrupt_lines == 0
        assert fresh.get("old", "standalone") == alone
