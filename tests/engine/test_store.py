"""Persistent store: round-trips, corruption tolerance, eviction."""

import json

from repro.engine.jobs import ContestJob, RegionLogJob, StandaloneJob
from repro.engine.jobs import TraceSpec
from repro.engine.store import ResultStore, decode_result, encode_result
from repro.uarch.config import core_config

SPEC = TraceSpec("gcc", 1000, seed=11)


def _results():
    alone = StandaloneJob(core_config("gcc"), SPEC).run()
    log = RegionLogJob(core_config("gcc"), SPEC).run()
    contest = ContestJob((core_config("gcc"), core_config("vpr")), SPEC).run()
    return alone, log, contest


class TestRoundTrip:
    def test_codec_all_kinds(self):
        alone, log, contest = _results()
        for kind, obj in (
            ("standalone", alone), ("region_log", log), ("contest", contest)
        ):
            assert decode_result(kind, encode_result(obj)) == obj

    def test_survives_reload(self, tmp_path):
        alone, log, contest = _results()
        store = ResultStore(tmp_path)
        store.put("k1", "standalone", alone)
        store.put("k2", "region_log", log)
        store.put("k3", "contest", contest)

        fresh = ResultStore(tmp_path)
        assert fresh.get("k1", "standalone") == alone
        assert fresh.get("k2", "region_log") == log
        assert fresh.get("k3", "contest") == contest
        assert fresh.hits == 3

    def test_kind_mismatch_is_miss(self, tmp_path):
        alone, _, _ = _results()
        store = ResultStore(tmp_path)
        store.put("k", "standalone", alone)
        assert store.get("k", "contest") is None
        assert store.misses == 1

    def test_missing_key_is_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("nope", "standalone") is None


class TestCorruption:
    def test_garbage_file_loads_empty(self, tmp_path):
        path = tmp_path / "results-v1.jsonl"
        path.write_bytes(b"\x00\xffnot json at all\n{malformed\n")
        store = ResultStore(tmp_path)
        assert len(store) == 0
        assert store.corrupt_lines == 2
        assert store.get("k", "standalone") is None  # recompute, no crash

    def test_truncated_tail_skipped(self, tmp_path):
        alone, _, _ = _results()
        store = ResultStore(tmp_path)
        store.put("good", "standalone", alone)
        # simulate a crash mid-append: final line cut short
        with open(store.path, "a") as fh:
            fh.write('{"key": "bad", "kind": "standalone", "val')
        fresh = ResultStore(tmp_path)
        assert fresh.get("good", "standalone") == alone
        assert fresh.corrupt_lines == 1

    def test_bad_payload_shape_is_miss(self, tmp_path):
        path = tmp_path / "results-v1.jsonl"
        path.write_text(json.dumps(
            {"key": "k", "kind": "standalone", "value": {"nonsense": 1}}
        ) + "\n")
        store = ResultStore(tmp_path)
        assert store.get("k", "standalone") is None
        assert store.corrupt_lines == 1

    def test_later_lines_supersede(self, tmp_path):
        alone, log, _ = _results()
        store = ResultStore(tmp_path)
        store.put("k", "region_log", log)
        store.put("k", "standalone", alone)
        fresh = ResultStore(tmp_path)
        assert fresh.get("k", "standalone") == alone


class TestEviction:
    def test_oldest_evicted(self, tmp_path):
        alone, _, _ = _results()
        store = ResultStore(tmp_path, max_entries=2)
        store.put("a", "standalone", alone)
        store.put("b", "standalone", alone)
        store.put("c", "standalone", alone)
        assert store.evictions == 1
        assert store.get("a", "standalone") is None
        assert store.get("c", "standalone") == alone
        # the compacted file respects the bound too
        fresh = ResultStore(tmp_path, max_entries=2)
        assert len(fresh) == 2

    def test_capacity_enforced_at_load(self, tmp_path):
        alone, _, _ = _results()
        big = ResultStore(tmp_path, max_entries=10)
        for i in range(5):
            big.put(f"k{i}", "standalone", alone)
        small = ResultStore(tmp_path, max_entries=2)
        assert len(small) == 2
        assert small.evictions == 3

    def test_counters_dict(self, tmp_path):
        store = ResultStore(tmp_path)
        counters = store.counters()
        assert set(counters) >= {"hits", "misses", "evictions", "entries"}
