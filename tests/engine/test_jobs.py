"""Job identity: cache keys must track exactly the result-relevant inputs."""

import pytest

from repro.engine.jobs import (
    ContestJob,
    RegionLogJob,
    StandaloneJob,
    TraceSpec,
    resolve_trace,
    trace_fingerprint,
)
from repro.isa.generator import generate_trace
from repro.isa.workloads import workload_profile
from repro.uarch.config import core_config

SPEC = TraceSpec("gcc", 1200, seed=11)


class TestTraceSpec:
    def test_materialise_matches_generate(self):
        direct = generate_trace(workload_profile("gcc"), 1200, seed=11)
        assert SPEC.materialise().fingerprint() == direct.fingerprint()

    def test_resolve_memoised(self):
        assert resolve_trace(SPEC) is resolve_trace(SPEC)

    def test_resolve_passthrough(self, small_trace):
        assert resolve_trace(small_trace) is small_trace

    def test_spec_and_value_key_spaces_disjoint(self):
        # a recipe fingerprint must never collide with a content fingerprint
        assert trace_fingerprint(SPEC).startswith("spec/")
        assert trace_fingerprint(SPEC.materialise()).startswith("trace/")


class TestCacheKeys:
    def test_deterministic(self):
        job = StandaloneJob(core_config("gcc"), SPEC)
        assert job.cache_key() == StandaloneJob(
            core_config("gcc"), SPEC
        ).cache_key()

    def test_config_distinguishes(self):
        a = StandaloneJob(core_config("gcc"), SPEC)
        b = StandaloneJob(core_config("vpr"), SPEC)
        assert a.cache_key() != b.cache_key()

    @pytest.mark.parametrize("other", [
        TraceSpec("vpr", 1200, 11),     # profile
        TraceSpec("gcc", 1300, 11),     # length
        TraceSpec("gcc", 1200, 12),     # seed
    ])
    def test_trace_recipe_distinguishes(self, other):
        a = StandaloneJob(core_config("gcc"), SPEC)
        b = StandaloneJob(core_config("gcc"), other)
        assert a.cache_key() != b.cache_key()

    def test_kind_distinguishes(self):
        alone = StandaloneJob(core_config("gcc"), SPEC, region_size=20)
        log = RegionLogJob(core_config("gcc"), SPEC, region_size=20)
        assert alone.cache_key() != log.cache_key()

    def test_contest_knobs_distinguish(self):
        cfgs = (core_config("gcc"), core_config("vpr"))
        base = ContestJob(cfgs, SPEC)
        assert base.cache_key() != ContestJob(
            cfgs, SPEC, grb_latency_ns=5.0
        ).cache_key()
        assert base.cache_key() != ContestJob(
            cfgs, SPEC, max_lag=128
        ).cache_key()
        assert base.cache_key() != ContestJob(
            cfgs, SPEC, lagger_policy="resync"
        ).cache_key()

    def test_config_order_distinguishes(self):
        a = ContestJob((core_config("gcc"), core_config("vpr")), SPEC)
        b = ContestJob((core_config("vpr"), core_config("gcc")), SPEC)
        assert a.cache_key() != b.cache_key()


class TestExecution:
    def test_standalone_runs(self):
        result = StandaloneJob(core_config("gcc"), SPEC).run()
        assert result.instructions == 1200
        assert result.ipt > 0

    def test_region_log_runs(self):
        log = RegionLogJob(core_config("gcc"), SPEC, region_size=20).run()
        assert log.region_size == 20
        assert sum(log.times_ps) > 0

    def test_contest_runs(self):
        result = ContestJob(
            (core_config("gcc"), core_config("vpr")), SPEC
        ).run()
        assert result.instructions == 1200
