import pytest

from repro.cmp.queueing import (
    CmpQueueSimulator,
    JobStream,
    compare_designs_under_load,
)

MATRIX = {
    "b1": {"x": 2.0, "y": 1.0},
    "b2": {"x": 1.0, "y": 2.0},
    "b3": {"x": 1.8, "y": 0.6},
}


def _stream(rate=0.001, jobs=300, length=10_000):
    return JobStream(arrival_rate=rate, job_length=length, jobs=jobs)


class TestValidation:
    def test_stream_validation(self):
        with pytest.raises(ValueError):
            JobStream(arrival_rate=0)
        with pytest.raises(ValueError):
            JobStream(arrival_rate=1, jobs=0)

    def test_simulator_validation(self):
        with pytest.raises(ValueError):
            CmpQueueSimulator(MATRIX, [])
        with pytest.raises(ValueError):
            CmpQueueSimulator(MATRIX, ["x"], cores_per_type=0)
        with pytest.raises(ValueError):
            CmpQueueSimulator(MATRIX, ["x"], policy="random")


class TestBasicBehaviour:
    def test_deterministic(self):
        sim = CmpQueueSimulator(MATRIX, ["x", "y"])
        a = sim.run(_stream(), seed=3)
        b = sim.run(_stream(), seed=3)
        assert a.mean_turnaround_ns == b.mean_turnaround_ns

    def test_all_jobs_served(self):
        result = CmpQueueSimulator(MATRIX, ["x", "y"]).run(_stream(jobs=50))
        assert sum(result.dispatched.values()) == 50

    def test_turnaround_at_least_service(self):
        result = CmpQueueSimulator(MATRIX, ["x", "y"]).run(_stream())
        assert result.mean_turnaround_ns >= result.mean_service_ns
        assert result.mean_turnaround_ns == pytest.approx(
            result.mean_service_ns + result.mean_wait_ns
        )

    def test_utilization_bounded(self):
        result = CmpQueueSimulator(MATRIX, ["x", "y"]).run(_stream())
        for u in result.utilization.values():
            assert 0.0 <= u <= 1.0

    def test_preferred_policy_routes_by_matrix(self):
        # light load: every b1/b3 job must land on x, b2 on y
        result = CmpQueueSimulator(MATRIX, ["x", "y"]).run(
            _stream(rate=1e-6, jobs=60)
        )
        assert result.dispatched["x"] > result.dispatched["y"]


class TestLoadBehaviour:
    def test_wait_grows_with_load(self):
        sim = CmpQueueSimulator(MATRIX, ["x", "y"])
        light = sim.run(_stream(rate=1e-6))
        heavy = sim.run(_stream(rate=1e-3))
        assert heavy.mean_wait_ns > light.mean_wait_ns

    def test_more_instances_reduce_wait(self):
        one = CmpQueueSimulator(MATRIX, ["x", "y"], cores_per_type=1).run(
            _stream(rate=5e-4)
        )
        four = CmpQueueSimulator(MATRIX, ["x", "y"], cores_per_type=4).run(
            _stream(rate=5e-4)
        )
        assert four.mean_wait_ns < one.mean_wait_ns

    def test_policies_see_identical_arrivals(self):
        stream = _stream(rate=2e-3, jobs=200)
        pref = CmpQueueSimulator(MATRIX, ["x", "y"], policy="preferred").run(stream)
        avail = CmpQueueSimulator(MATRIX, ["x", "y"], policy="best-available").run(stream)
        # same arrival stream: identical total jobs, different routing
        assert sum(pref.dispatched.values()) == sum(avail.dispatched.values())

    def test_best_available_spreads_load(self):
        # under heavy load the greedy policy uses the unpreferred type more
        # than strict preference routing does (the robustness trade-off
        # Section 7.1 discusses)
        stream = _stream(rate=4e-3, jobs=400)
        pref = CmpQueueSimulator(MATRIX, ["x", "y"], policy="preferred").run(stream)
        avail = CmpQueueSimulator(MATRIX, ["x", "y"], policy="best-available").run(stream)
        spread_p = min(pref.dispatched.values()) / max(pref.dispatched.values())
        spread_a = min(avail.dispatched.values()) / max(avail.dispatched.values())
        assert spread_a >= spread_p


class TestLittlesLawArgument:
    def test_queue_length_tracks_preference_count(self):
        """The cw-har premise: under the preferred policy, load per core
        type is proportional to how many benchmark types prefer it."""
        lopsided = {
            "b1": {"x": 2.0, "y": 1.9},
            "b2": {"x": 2.0, "y": 1.9},
            "b3": {"x": 2.0, "y": 1.9},
            "b4": {"x": 1.0, "y": 1.9},
        }
        result = CmpQueueSimulator(lopsided, ["x", "y"]).run(
            _stream(rate=1e-3, jobs=600)
        )
        # three of four types prefer x
        assert result.dispatched["x"] > 2 * result.dispatched["y"] * 0.7

    def test_cw_har_ranking_matches_measured_turnaround(self):
        """A balanced design should beat a lopsided one under heavy load,
        as the cw-har merit predicts."""
        from repro.cmp.merit import contention_weighted_harmonic_ipt

        matrix = {
            "b1": {"x": 2.0, "y": 0.5, "z": 1.6},
            "b2": {"x": 1.9, "y": 0.5, "z": 1.6},
            "b3": {"x": 0.6, "y": 1.8, "z": 1.6},
            "b4": {"x": 0.6, "y": 1.8, "z": 1.55},
        }
        balanced = ("x", "y")
        lopsided = ("x", "z")
        merit_b = contention_weighted_harmonic_ipt(matrix, balanced)
        merit_l = contention_weighted_harmonic_ipt(matrix, lopsided)
        stream = _stream(rate=1.2e-3, jobs=600)
        result_b = CmpQueueSimulator(matrix, balanced).run(stream)
        result_l = CmpQueueSimulator(matrix, lopsided).run(stream)
        # merit and measurement must agree on the ordering
        assert (merit_b > merit_l) == (
            result_b.mean_turnaround_ns < result_l.mean_turnaround_ns
        )


class TestCompareDesigns:
    def test_returns_per_design(self):
        results = compare_designs_under_load(
            MATRIX,
            {"A": ("x", "y"), "B": ("x",)},
            _stream(jobs=100),
        )
        assert set(results) == {"A", "B"}
        assert results["A"].design_cores == ("x", "y")
