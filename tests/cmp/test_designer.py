import itertools

import pytest

from repro.cmp.designer import CmpDesign, best_combination, design_suite, design_table_rows
from repro.cmp.merit import design_merit

MATRIX = {
    "b1": {"x": 2.0, "y": 1.0, "z": 1.5, "w": 0.5},
    "b2": {"x": 1.0, "y": 2.0, "z": 1.5, "w": 0.5},
    "b3": {"x": 1.8, "y": 0.5, "z": 1.0, "w": 2.5},
    "b4": {"x": 0.9, "y": 1.1, "z": 1.9, "w": 0.4},
}


class TestBestCombination:
    def test_matches_exhaustive(self):
        for merit in ("avg", "har", "cw-har"):
            combo, value = best_combination(MATRIX, 2, merit)
            brute = max(
                itertools.combinations(sorted(MATRIX["b1"]), 2),
                key=lambda c: design_merit(MATRIX, c, merit),
            )
            assert design_merit(MATRIX, brute, merit) == pytest.approx(value)

    def test_single_core(self):
        combo, _ = best_combination(MATRIX, 1, "avg")
        assert len(combo) == 1

    def test_bad_n_types(self):
        with pytest.raises(ValueError):
            best_combination(MATRIX, 0, "avg")
        with pytest.raises(ValueError):
            best_combination(MATRIX, 9, "avg")

    def test_candidate_restriction(self):
        combo, _ = best_combination(MATRIX, 2, "har", candidates=["y", "z", "w"])
        assert "x" not in combo


class TestDesignSuite:
    def test_all_designs_present(self):
        designs = design_suite(MATRIX)
        assert set(designs) == {
            "HET-A", "HET-B", "HET-C", "HET-D", "HOM", "HET-ALL",
        }

    def test_sizes(self):
        designs = design_suite(MATRIX)
        assert len(designs["HET-A"].core_types) == 2
        assert len(designs["HET-B"].core_types) == 2
        assert len(designs["HET-C"].core_types) == 2
        assert len(designs["HET-D"].core_types) == 3
        assert len(designs["HOM"].core_types) == 1
        assert len(designs["HET-ALL"].core_types) == 4

    def test_het_all_har_dominates(self):
        designs = design_suite(MATRIX)
        for name, d in designs.items():
            assert designs["HET-ALL"].harmonic_mean_ipt >= d.harmonic_mean_ipt - 1e-9

    def test_het_b_best_two_type_har(self):
        designs = design_suite(MATRIX)
        assert designs["HET-B"].harmonic_mean_ipt >= designs["HET-A"].harmonic_mean_ipt - 1e-9
        assert designs["HET-B"].harmonic_mean_ipt >= designs["HET-C"].harmonic_mean_ipt - 1e-9

    def test_het_d_beats_het_b(self):
        designs = design_suite(MATRIX)
        assert designs["HET-D"].harmonic_mean_ipt >= designs["HET-B"].harmonic_mean_ipt - 1e-9

    def test_best_core_for(self):
        designs = design_suite(MATRIX)
        core = designs["HET-ALL"].best_core_for(MATRIX, "b3")
        assert core == "w"

    def test_table_rows(self):
        rows = design_table_rows(design_suite(MATRIX))
        assert len(rows) == 6
        assert rows[0][0] == "HET-A"
        assert rows[-1][0] == "HET-ALL"
