import pytest

from repro.cmp.merit import (
    MERITS,
    best_ipts,
    contention_weighted_harmonic_ipt,
    design_merit,
    harmonic_ipt,
    mean_ipt,
    preferred_core,
)

#: three benchmarks, three core types
MATRIX = {
    "b1": {"x": 2.0, "y": 1.0, "z": 1.5},
    "b2": {"x": 1.0, "y": 2.0, "z": 1.5},
    "b3": {"x": 1.8, "y": 0.5, "z": 1.0},
}


class TestPreferredCore:
    def test_picks_max(self):
        assert preferred_core(MATRIX, "b1", ["x", "y"]) == "x"
        assert preferred_core(MATRIX, "b2", ["x", "y"]) == "y"

    def test_restricted_pool(self):
        assert preferred_core(MATRIX, "b1", ["y", "z"]) == "z"


class TestBestIpts:
    def test_values(self):
        assert best_ipts(MATRIX, ["x", "y"]) == {
            "b1": 2.0, "b2": 2.0, "b3": 1.8,
        }

    def test_missing_core(self):
        with pytest.raises(KeyError):
            best_ipts(MATRIX, ["nope"])

    def test_empty_design(self):
        with pytest.raises(ValueError):
            best_ipts(MATRIX, [])


class TestMeanIpt:
    def test_known(self):
        assert mean_ipt(MATRIX, ["x", "y"]) == pytest.approx(
            (2.0 + 2.0 + 1.8) / 3
        )

    def test_more_cores_never_worse(self):
        assert mean_ipt(MATRIX, ["x", "y", "z"]) >= mean_ipt(MATRIX, ["x"])


class TestHarmonicIpt:
    def test_known(self):
        expected = 3 / (1 / 2.0 + 1 / 2.0 + 1 / 1.8)
        assert harmonic_ipt(MATRIX, ["x", "y"]) == pytest.approx(expected)

    def test_single_core(self):
        expected = 3 / (1 / 2.0 + 1 / 1.0 + 1 / 1.8)
        assert harmonic_ipt(MATRIX, ["x"]) == pytest.approx(expected)


class TestContentionWeighted:
    def test_balanced_assignment(self):
        # with x and y, preferences are b1->x, b2->y, b3->x: x is shared by
        # two benchmarks, so their IPTs are halved
        value = contention_weighted_harmonic_ipt(MATRIX, ["x", "y"])
        expected = 3 / (1 / (2.0 / 2) + 1 / (2.0 / 1) + 1 / (1.8 / 2))
        assert value == pytest.approx(expected)

    def test_homogeneous_design_divides_by_all(self):
        value = contention_weighted_harmonic_ipt(MATRIX, ["x"])
        expected = 3 / (1 / (2.0 / 3) + 1 / (1.0 / 3) + 1 / (1.8 / 3))
        assert value == pytest.approx(expected)

    def test_prefers_balanced_over_lopsided(self):
        # a matrix where one core dominates: cw-har punishes the pile-up
        lopsided = {
            "b1": {"x": 2.0, "y": 1.9},
            "b2": {"x": 2.0, "y": 1.9},
            "b3": {"x": 2.0, "y": 1.9},
            "b4": {"x": 1.0, "y": 1.9},
        }
        plain = harmonic_ipt(lopsided, ["x", "y"])
        weighted = contention_weighted_harmonic_ipt(lopsided, ["x", "y"])
        assert weighted < plain

    def test_importance_weights(self):
        uniform = contention_weighted_harmonic_ipt(MATRIX, ["x", "y"])
        weighted = contention_weighted_harmonic_ipt(
            MATRIX, ["x", "y"], weights={"b1": 10.0, "b2": 1.0, "b3": 1.0}
        )
        assert weighted != pytest.approx(uniform)


class TestRegistry:
    def test_names(self):
        assert set(MERITS) == {"avg", "har", "cw-har"}

    def test_design_merit_dispatch(self):
        assert design_merit(MATRIX, ["x"], "avg") == mean_ipt(MATRIX, ["x"])

    def test_unknown_merit(self):
        with pytest.raises(ValueError):
            design_merit(MATRIX, ["x"], "median")
