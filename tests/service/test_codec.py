"""The job wire codec: lossless round-trips and strict rejection.

The codec is the cache's immune system — the round-trip half pins that a
job travelling over HTTP reconstructs with the **identical cache key**,
and the rejection half pins that anything else (unknown fields, coerced
types, out-of-palette names) is refused with a :class:`CodecError`
instead of silently becoming a different job.
"""

import json

import pytest

from repro.engine.jobs import ContestJob, StandaloneJob, TraceSpec
from repro.faults import FaultPlan
from repro.service.codec import (
    CodecError,
    decode_core_config,
    decode_job,
    decode_jobs,
    decode_trace_spec,
    encode_job,
)
from repro.uarch.config import core_config

from tests.service.conftest import SPEC_A, job_pool


def wire_round_trip(job):
    """Encode → JSON bytes → decode, as the client/server pair does."""
    return decode_job(json.loads(json.dumps(encode_job(job))))


# --------------------------------------------------------------- round-trips


@pytest.mark.parametrize(
    "job", job_pool(), ids=lambda j: f"{j.kind}-{j.cache_key()[:8]}"
)
def test_pool_round_trips_with_identical_cache_key(job):
    decoded = wire_round_trip(job)
    assert decoded == job
    assert decoded.cache_key() == job.cache_key()


def test_contest_with_faults_round_trips():
    job = ContestJob(
        (core_config("gcc"), core_config("gzip")),
        SPEC_A,
        faults=FaultPlan(seed=3, drop_rate=0.01, kill_core=1,
                         kill_at_commit=100),
    )
    decoded = wire_round_trip(job)
    assert decoded == job
    assert decoded.cache_key() == job.cache_key()


def test_config_by_name_matches_palette():
    assert decode_core_config("gcc") == core_config("gcc")


def test_trace_spec_seed_defaults():
    assert decode_trace_spec({"profile": "gcc", "length": 50}) == TraceSpec(
        "gcc", 50
    )


# ----------------------------------------------------------------- rejection


def rejects(payload):
    with pytest.raises(CodecError):
        decode_job(payload)


def test_rejects_non_object_and_unknown_kind():
    rejects(["standalone"])
    rejects({"kind": "warmup"})
    rejects({"config": "gcc"})  # kind missing entirely


def test_rejects_unknown_field():
    payload = encode_job(StandaloneJob(core_config("gcc"), SPEC_A))
    payload["nice_to_have"] = True
    rejects(payload)


def test_rejects_bool_in_numeric_slot():
    # JSON true is not a number; silently coercing it would repr() into a
    # different cache key than the submitter intended
    payload = encode_job(StandaloneJob(core_config("gcc"), SPEC_A))
    payload["region_size"] = True
    rejects(payload)


def test_rejects_unknown_core_name_and_bad_trace():
    rejects({"kind": "standalone", "config": "spice",
             "trace": {"profile": "gcc", "length": 50}})
    rejects({"kind": "standalone", "config": "gcc",
             "trace": {"profile": "gcc", "length": 0}})
    rejects({"kind": "standalone", "config": "gcc",
             "trace": {"profile": "gcc"}})


def test_rejects_partial_inline_config():
    payload = encode_job(StandaloneJob(core_config("gcc"), SPEC_A))
    del payload["config"]["l2"]
    rejects(payload)


def test_rejects_auto_backend_on_the_wire():
    payload = encode_job(StandaloneJob(core_config("gcc"), SPEC_A))
    payload["backend"] = "auto"
    rejects(payload)


def test_rejects_short_contest_and_bad_policy():
    contest = encode_job(
        ContestJob((core_config("gcc"), core_config("gzip")), SPEC_A)
    )
    solo = dict(contest, configs=contest["configs"][:1])
    rejects(solo)
    rejects(dict(contest, lagger_policy="shrug"))


def test_rejects_unknown_fault_field():
    contest = encode_job(
        ContestJob((core_config("gcc"), core_config("gzip")), SPEC_A)
    )
    rejects(dict(contest, faults={"drop_rate": 0.1, "spite": 1}))


def test_submission_shape_is_strict():
    with pytest.raises(CodecError):
        decode_jobs([])
    with pytest.raises(CodecError):
        decode_jobs({"jobs": []})
    with pytest.raises(CodecError):
        decode_jobs({"jobs": "all of them"})
    with pytest.raises(CodecError):
        decode_jobs({"jobs": [], "priority": "high"})
    jobs = decode_jobs(
        {"jobs": [encode_job(StandaloneJob(core_config("gcc"), SPEC_A))]}
    )
    assert jobs == [StandaloneJob(core_config("gcc"), SPEC_A)]


def test_by_value_traces_are_not_encodable():
    # jobs constructed with a concrete trace (not a TraceSpec recipe)
    # cannot travel over the wire — the codec refuses loudly
    job = StandaloneJob(core_config("gcc"), SPEC_A)
    object.__setattr__(job, "trace", ("not", "a", "spec"))
    with pytest.raises(CodecError):
        encode_job(job)
