"""Admission control over HTTP: quotas, capacity, and graceful drain.

Rejections must be *deterministic*: with a zero refill rate a tenant's
bucket is a pure counter, so which submission in a sequence draws the 429
depends only on the sequence — pinned here by replaying the same sequence
against a fresh service and by a pure-Python bucket model (the slow
matrix).  Capacity 503s must refund the quota they charged, and a
draining service must refuse new work while finishing every admitted job.
"""

import asyncio

import pytest

from repro.service import ServiceError
from repro.service.server import DONE

from tests.service.conftest import run, service_config, serving, tiny_job


async def submit_sizes(client, tenant, sizes, seed_start=0):
    """Submit a sequence of batches (all-unique tiny jobs); returns the
    per-batch outcome: ``True`` (admitted) or the :class:`ServiceError`."""
    outcomes = []
    seed = seed_start
    for size in sizes:
        jobs = [tiny_job(seed + i) for i in range(size)]
        seed += size
        try:
            await client.submit(jobs, tenant=tenant)
            outcomes.append(True)
        except ServiceError as error:
            outcomes.append(error)
    return outcomes


def test_quota_rejection_is_deterministic(tmp_path):
    sizes = (2, 2, 1, 1)

    async def scenario(store):
        config = service_config(
            tmp_path / store, workers=1,
            quota_rate_per_s=0.0, quota_burst=4.0,
        )
        async with serving(config) as (service, client):
            outcomes = await submit_sizes(client, "alice", sizes)
            # an unrelated tenant has its own full bucket
            bob = await submit_sizes(client, "bob", (3,), seed_start=50)
            stats = (await client.stats())["service"]
            return outcomes, bob, stats

    for store in ("first", "second"):  # same sequence, fresh service
        outcomes, bob, stats = run(scenario(store))
        assert outcomes[0] is True and outcomes[1] is True
        for rejected in outcomes[2:]:
            assert isinstance(rejected, ServiceError)
            assert rejected.status == 429
            # zero refill: this submission can never be admitted
            assert rejected.retry_after == "inf"
        assert bob == [True]
        assert stats["service.rejected_quota"] == 2
        assert stats["service.admitted"] == 7
        assert stats["service.submitted"] == 9


def test_quota_charges_cache_hits_too(tmp_path):
    # quota outranks dedup on purpose: rejection behaviour must be a pure
    # function of the submission sequence, not of cache state
    job = tiny_job(900)

    async def scenario():
        config = service_config(
            tmp_path, workers=1, quota_rate_per_s=0.0, quota_burst=2.0,
        )
        async with serving(config) as (service, client):
            rows = await client.submit([job], tenant="alice")
            await client.wait(rows[0]["id"])
            assert (await client.submit([job], tenant="alice"))[0][
                "state"] == "done"
            with pytest.raises(ServiceError) as excinfo:
                await client.submit([job], tenant="alice")
            assert excinfo.value.status == 429

    run(scenario())


def test_capacity_rejection_refunds_quota(tmp_path):
    async def scenario():
        config = service_config(
            tmp_path, workers=1, queue_limit=2, batch_window_s=0.8,
            quota_rate_per_s=0.0, quota_burst=100.0,
        )
        async with serving(config) as (service, client):
            admitted = await client.submit(
                [tiny_job(0), tiny_job(1)], tenant="alice"
            )
            # still inside the gather window: the queue is full
            with pytest.raises(ServiceError) as excinfo:
                await client.submit(
                    [tiny_job(2), tiny_job(3)], tenant="alice"
                )
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after == "1"
            # the rejected submission's quota charge was refunded: alice
            # has paid for exactly the two admitted jobs
            assert service.quotas.bucket("alice").tokens == pytest.approx(98.0)
            # duplicates of queued jobs need no slot, so they still land
            dup = await client.submit([tiny_job(0)], tenant="bob")
            assert dup[0]["state"] == "queued"
            for row in admitted:
                assert (await client.wait(row["id"]))["state"] == "done"
            stats = (await client.stats())["service"]
            assert stats["service.rejected_capacity"] == 1
            assert stats["service.admitted"] == 2

    run(scenario())


def test_drain_finishes_admitted_work_and_refuses_new(tmp_path):
    async def scenario():
        config = service_config(tmp_path, batch_window_s=0.3)
        async with serving(config) as (service, client):
            rows = await client.submit(
                [tiny_job(i) for i in range(4)], tenant="alice"
            )
            drain = asyncio.get_running_loop().create_task(service.drain())
            await asyncio.sleep(0.02)
            assert service.draining
            health = await client.request("GET", "/v1/healthz")
            assert health["status"] == "draining"
            # a draining service admits nothing, whatever the quota says
            with pytest.raises(ServiceError) as excinfo:
                await client.submit([tiny_job(99)], tenant="alice")
            assert excinfo.value.status == 503
            await client.close()  # the listener is about to go away
            await drain
            # drain lost nothing: every admitted job reached done
            states = {
                row["id"]: service._records[row["id"]].state for row in rows
            }
            assert set(states.values()) == {DONE}
            stats = service.registry.snapshot()
            assert stats["service.completed"] == 4
            assert stats["service.failed"] == 0

    run(scenario())


@pytest.mark.slow
@pytest.mark.parametrize("burst", (1.0, 2.0, 3.0, 5.0, 8.0))
def test_quota_matrix_matches_pure_counter_model(tmp_path, burst):
    """The nightly matrix: HTTP rejections == a pure bucket simulation."""
    sizes = (1, 2, 1, 3, 1, 1, 2, 1, 4, 1)

    def model(burst_tokens):
        balance = burst_tokens
        expected = []
        for size in sizes:
            if size <= balance:
                balance -= size
                expected.append(True)
            else:
                expected.append(False)
        return expected

    async def scenario():
        config = service_config(
            tmp_path, workers=1,
            quota_rate_per_s=0.0, quota_burst=burst,
        )
        async with serving(config) as (service, client):
            outcomes = await submit_sizes(client, "alice", sizes)
            return [o is True for o in outcomes]

    assert run(scenario()) == model(burst)
