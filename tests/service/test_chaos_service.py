"""Chaos under the service: serve through faults, converge bit-identical.

The PR-7 :class:`HarnessChaos` runtime is threaded into a live
:class:`SimService` — the same instance reaches the
:class:`ParallelExecutor` (worker kills, benign slow-downs, pool breaks
at submit) and the :class:`ResultStore` (failed, torn, and bit-flipped
appends) — while two tenants submit the shared chaos batch over real
sockets.  The convergence invariant carries over from ``tests/chaos``
verbatim: every admitted job must end **done** with a result
bit-identical to the chaos-free serial baseline, and the store must be
``repro-store fsck``-clean after drain.

Crash and hang schedules stay out on purpose: ``crash_after_writes``
``os._exit``-s the harness process (here: the test process), and hangs
need a watchdog budget that would slow every push; the forked-harness
soak in ``tests/chaos/test_convergence.py`` owns both.

The 4-seed slice runs on every push; the 50-seed soak rides nightly CI.
"""

import asyncio
import json

import pytest

from repro.chaos import ChaosPlan, HarnessChaos
from repro.engine import store_cli
from repro.service import ServiceClient

from tests.chaos.conftest import clean_results, make_batch
from tests.service.conftest import run, service_config, serving

__all__ = ["clean_results"]  # re-exported session fixture from tests.chaos

#: seeds of the fast, every-push slice
FAST_SEEDS = tuple(range(4))
#: seeds of the nightly soak (``-m slow``)
SOAK_SEEDS = tuple(range(4, 54))


def service_plan(seed):
    """One seeded schedule of every in-process-safe fault site."""
    return ChaosPlan(
        seed=seed,
        kill_worker_rate=0.25,
        slow_worker_rate=0.15,
        slow_s=0.02,
        pool_break_rate=0.1,
        write_fail_rate=0.15,
        torn_write_rate=0.35,
        bitflip_rate=0.2,
        max_per_site=2,
    )


def serve_batch_under_chaos(tmp_path, seed):
    """One schedule: serve the chaos batch through a chaotic service.

    Returns ``(results-by-id, chaos counters, store path)``.
    """
    chaos = HarnessChaos(service_plan(seed))
    config = service_config(
        tmp_path, batch_window_s=0.02, max_attempts=3,
    )

    async def tenant(host, port, name, jobs):
        client = ServiceClient(host, port)
        try:
            rows = await client.submit(jobs, tenant=name)
            values = {}
            for row in rows:
                status = await client.wait(row["id"], timeout_s=120)
                assert status["state"] == "done", (
                    f"seed {seed}: job {row['id']} ended {status!r} "
                    f"(injections: {chaos.counters()})"
                )
                values[row["id"]] = (await client.result(row["id"]))["value"]
            return values
        finally:
            await client.close()

    async def scenario():
        async with serving(config, chaos=chaos) as (service, client):
            batch = make_batch()
            # two tenants, overlapping halves: dedup stays exercised
            # while the faults fire
            outcomes = await asyncio.gather(
                tenant(config.host, service.port, "left", batch[:5]),
                tenant(config.host, service.port, "right", batch[4:]),
            )
            stats = service.registry.snapshot()
            assert stats["service.failed"] == 0
            return outcomes, service.store.path

    outcomes, store_path = run(scenario())
    values = {}
    for mapping in outcomes:
        values.update(mapping)
    return values, chaos.counters(), store_path


def assert_schedule_converges(tmp_path, seed, clean):
    batch = make_batch()
    expected = dict(zip((job.cache_key() for job in batch), clean))
    values, counters, store_path = serve_batch_under_chaos(tmp_path, seed)
    assert set(values) == set(expected)
    for job_id, value in values.items():
        assert json.dumps(
            value, sort_keys=True, separators=(",", ":")
        ) == expected[job_id], (
            f"seed {seed}: HTTP result diverged from the chaos-free "
            f"baseline (injections: {counters})"
        )
    # the store ends fsck-clean: repair anything the final appends left
    # behind (e.g. a torn last write), then verify
    assert store_cli.main(
        ["--path", str(store_path), "fsck", "--repair"]
    ) == 0
    assert store_cli.main(["--path", str(store_path), "fsck"]) == 0
    return counters


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_fast_slice_converges_under_service(tmp_path, seed, clean_results):
    assert_schedule_converges(tmp_path, seed, clean_results)


def test_fast_slice_actually_injects(tmp_path, clean_results):
    # convergence proves nothing if the schedules are quiet: across the
    # fast slice, faults must fire on both the worker and store paths
    totals = {}
    for seed in FAST_SEEDS:
        counters = assert_schedule_converges(
            tmp_path / f"s{seed}", seed, clean_results
        )
        for name, count in counters.items():
            totals[name] = totals.get(name, 0) + count
    assert totals.get("kills", 0) + totals.get("slows", 0) > 0, totals
    store_faults = (
        totals.get("write_fails", 0)
        + totals.get("torn_writes", 0)
        + totals.get("bitflips", 0)
    )
    assert store_faults > 0, totals


@pytest.mark.slow
@pytest.mark.parametrize("seed", SOAK_SEEDS)
def test_soak_converges_under_service(tmp_path, seed, clean_results):
    assert_schedule_converges(tmp_path, seed, clean_results)
