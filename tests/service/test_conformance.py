"""End-to-end service conformance: a real listener, real sockets.

Every test binds a :class:`SimService` on an ephemeral 127.0.0.1 port and
drives it with the stdlib :class:`ServiceClient`.  The acceptance
scenario (:func:`test_hundred_jobs_eight_tenants`) is the suite's
centrepiece: 100 mixed submissions by 8 concurrent tenants must complete
with exact dedup accounting — the engine simulates each unique job
exactly once — and every result fetched over HTTP must be canonically
bit-identical to a direct serial :class:`SimEngine` run of the same job.
"""

import asyncio

import pytest

from repro.engine.jobs import StandaloneJob, TraceSpec
from repro.service import ServiceClient, ServiceError
from repro.uarch.config import core_config

from tests.service.conftest import (
    SPEC_A,
    canonical,
    job_pool,
    run,
    service_config,
    serving,
)


def snapshot(stats):
    """The ``service.*`` counter block of a ``/v1/stats`` payload."""
    return stats["service"]


# ------------------------------------------------------------------ lifecycle


def test_single_job_lifecycle(tmp_path, direct_results):
    job = job_pool()[0]

    async def scenario():
        async with serving(service_config(tmp_path)) as (service, client):
            rows = await client.submit([job], tenant="alice")
            assert [row["kind"] for row in rows] == ["standalone"]
            assert rows[0]["state"] == "queued"
            job_id = rows[0]["id"]
            # the job id IS the engine cache key: dedup is structural
            assert job_id == job.cache_key()

            status = await client.wait(job_id)
            assert status["state"] == "done"
            assert status["tenants"] == ["alice"]

            fetched = await client.result(job_id)
            assert fetched["id"] == job_id
            assert fetched["kind"] == "standalone"
            return fetched["value"], await client.stats()

    value, stats = run(scenario())
    # the HTTP-fetched result is canonically identical to a direct run
    assert canonical_of_payload(value) == direct_results[job.cache_key()]
    service_stats = snapshot(stats)
    assert service_stats["service.submitted"] == 1
    assert service_stats["service.admitted"] == 1
    assert service_stats["service.completed"] == 1
    assert service_stats["service.failed"] == 0


def canonical_of_payload(value):
    """Canonical JSON of an already-encoded result payload."""
    import json

    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def test_resubmission_is_a_cache_hit(tmp_path):
    job = job_pool()[1]

    async def scenario():
        async with serving(service_config(tmp_path)) as (service, client):
            first = await client.submit([job], tenant="alice")
            await client.wait(first[0]["id"])
            # same job, different tenant: served straight from the record
            second = await client.submit([job], tenant="bob")
            assert second[0]["id"] == first[0]["id"]
            assert second[0]["state"] == "done"
            status = await client.status(first[0]["id"])
            assert status["tenants"] == ["alice", "bob"]
            stats = snapshot(await client.stats())
            assert stats["service.admitted"] == 1
            assert stats["service.cache_hits"] == 1
            assert stats["service.dedup_inflight"] == 0
            # a warm persistent store also answers a fresh service: the
            # second submission here must not re-simulate
            assert service.engine.stats.misses == 1
        # same store directory, brand-new service instance
        async with serving(service_config(tmp_path)) as (service, client):
            rows = await client.submit([job], tenant="carol")
            assert rows[0]["state"] == "done"
            assert snapshot(await client.stats())["service.cache_hits"] == 1
            assert service.engine.stats.misses == 0

    run(scenario())


def test_inflight_duplicates_coalesce(tmp_path):
    job = job_pool()[2]

    async def scenario():
        config = service_config(tmp_path, batch_window_s=0.3)
        async with serving(config) as (service, client):
            rows = await client.submit([job], tenant="alice")
            # still inside the gather window: the duplicate coalesces
            # onto the queued record instead of queueing again
            duplicate = await client.submit([job, job], tenant="bob")
            assert {row["id"] for row in duplicate} == {rows[0]["id"]}
            assert all(row["state"] == "queued" for row in duplicate)
            await client.wait(rows[0]["id"])
            stats = snapshot(await client.stats())
            assert stats["service.admitted"] == 1
            assert stats["service.dedup_inflight"] == 2
            assert stats["service.completed"] == 1

    run(scenario())


def test_result_before_completion_is_409(tmp_path):
    job = job_pool()[3]

    async def scenario():
        config = service_config(tmp_path, batch_window_s=0.5)
        async with serving(config) as (service, client):
            rows = await client.submit([job])
            with pytest.raises(ServiceError) as excinfo:
                await client.result(rows[0]["id"])
            assert excinfo.value.status == 409
            await client.wait(rows[0]["id"])
            fetched = await client.result(rows[0]["id"])
            assert fetched["id"] == rows[0]["id"]

    run(scenario())


# ----------------------------------------------------------------- streaming


def test_sse_stream_reaches_terminal_end(tmp_path):
    job = job_pool()[4]

    async def scenario():
        config = service_config(tmp_path, batch_window_s=0.1)
        async with serving(config) as (service, client):
            rows = await client.submit([job])
            frames = []
            async for event, payload in client.events(rows[0]["id"]):
                frames.append((event, payload))
            return rows[0]["id"], frames

    job_id, frames = run(scenario())
    events = [event for event, _ in frames]
    assert events[-1] == "end"
    assert set(events[:-1]) == {"status"}
    states = [payload["state"] for event, payload in frames[:-1]]
    # monotone lifecycle: whatever prefix the stream caught, it ends done
    assert states[-1] == "done"
    assert states == sorted(
        states, key=["queued", "running", "done"].index
    )
    assert frames[-1][1] == {"id": job_id}


def test_sse_unknown_job_is_404(tmp_path):
    async def scenario():
        async with serving(service_config(tmp_path)) as (service, client):
            with pytest.raises(ServiceError) as excinfo:
                async for _ in client.events("f" * 64):
                    pass
            assert excinfo.value.status == 404

    run(scenario())


# -------------------------------------------------------------------- errors


def test_error_statuses(tmp_path):
    async def scenario():
        async with serving(service_config(tmp_path)) as (service, client):
            for method, path, payload, expected in (
                ("GET", "/v1/jobs/" + "e" * 64, None, 404),
                ("GET", "/v1/nope", None, 404),
                ("GET", "/v1/jobs", None, 405),
                ("POST", "/v1/stats", {}, 405),
                ("POST", "/v1/jobs", {"jobs": [{"kind": "warmup"}]}, 400),
                ("POST", "/v1/jobs", ["not", "an", "object"], 400),
            ):
                with pytest.raises(ServiceError) as excinfo:
                    await client.request(method, path, payload=payload)
                assert excinfo.value.status == expected, (method, path)
            stats = snapshot(await client.stats())
            # client errors are not service errors, and a malformed
            # submission admits nothing
            assert stats["service.errors"] == 0
            assert stats["service.submitted"] == 0
            assert stats["service.requests"] >= 6

    run(scenario())


def test_health_manifest_and_keepalive(tmp_path):
    async def scenario():
        async with serving(service_config(tmp_path)) as (service, client):
            health = await client.request("GET", "/v1/healthz")
            assert health["status"] == "ok"
            rows = await client.submit([job_pool()[5]])
            await client.wait(rows[0]["id"])
            manifest = await client.request("GET", "/v1/manifest")
            # every exchange above shared one keep-alive connection
            assert client._writer is not None
            return manifest

    manifest = run(scenario())
    stats = manifest["engine_stats"]
    assert stats["service.submitted"] == 1.0
    assert stats["service.completed"] == 1.0
    assert stats["misses"] == 1.0
    assert manifest["scale"] == "service"
    assert any(key.startswith("store_") for key in stats)


# ------------------------------------------------------------------ failures


def test_failed_job_is_reported_never_cached_and_retryable(tmp_path):
    # a job far slower than the watchdog budget, with a one-attempt
    # retry policy: deterministic JobTimeout failure.  Each submission
    # pairs it with a cheap companion so the batch takes the pool path
    # (a singleton batch runs serially, where no watchdog applies).
    slow_job = StandaloneJob(
        core_config("gcc"), TraceSpec("gcc", 150_000, seed=5)
    )
    fast = [
        StandaloneJob(core_config("gzip"), TraceSpec("gzip", 120, seed=s))
        for s in (1, 2)
    ]

    async def scenario():
        config = service_config(
            tmp_path, chunk_size=1, job_timeout_s=0.25, max_attempts=1,
        )
        async with serving(config) as (service, client):
            rows = await client.submit([slow_job, fast[0]])
            status = await client.wait(rows[0]["id"], timeout_s=60)
            assert status["state"] == "failed"
            assert status["failure"]["error_type"] == "JobTimeout"
            assert status["failure"]["attempts"] == 1
            assert (await client.wait(rows[1]["id"]))["state"] == "done"
            with pytest.raises(ServiceError) as excinfo:
                await client.result(rows[0]["id"])
            assert excinfo.value.status == 409
            # engine discipline holds through the service: the failure
            # was never written to the persistent store
            assert service.store.get(slow_job.cache_key(), "standalone") is None
            # resubmitting a failed job retries it (no poisoned record)
            retry = await client.submit([slow_job, fast[1]])
            assert retry[0]["state"] == "queued"
            status = await client.wait(rows[0]["id"], timeout_s=60)
            assert status["state"] == "failed"
            stats = snapshot(await client.stats())
            assert stats["service.failed"] == 2
            assert stats["service.admitted"] == 4
            assert stats["service.completed"] == 2

    run(scenario())


# ------------------------------------------------- the acceptance scenario


def test_hundred_jobs_eight_tenants(tmp_path, direct_results):
    """100 mixed jobs, 8 concurrent tenants, exact dedup accounting."""
    pool = job_pool()
    tenants = [f"tenant-{i}" for i in range(8)]
    # 4 tenants submit 13 jobs, 4 submit 12: 100 total, every pool entry
    # covered, heavy overlap across tenants (the dedup pressure)
    assignments = {
        tenant: [pool[(5 * i + k) % len(pool)]
                 for k in range(13 if i < 4 else 12)]
        for i, tenant in enumerate(tenants)
    }
    assert sum(len(jobs) for jobs in assignments.values()) == 100

    async def one_tenant(host, port, tenant, jobs):
        client = ServiceClient(host, port)
        try:
            rows = []
            # a few separate submissions per tenant, interleaved with
            # every other tenant's on the loop
            for start in range(0, len(jobs), 5):
                rows.extend(await client.submit(
                    jobs[start:start + 5], tenant=tenant
                ))
                await asyncio.sleep(0)
            terminal = {}
            for row in rows:
                status = await client.wait(row["id"], timeout_s=120)
                terminal[row["id"]] = status["state"]
            values = {
                job_id: (await client.result(job_id))["value"]
                for job_id in terminal
            }
            return rows, terminal, values
        finally:
            await client.close()

    async def scenario():
        config = service_config(tmp_path, batch_window_s=0.02)
        async with serving(config) as (service, client):
            outcomes = await asyncio.gather(*(
                one_tenant(config.host, service.port, tenant, jobs)
                for tenant, jobs in assignments.items()
            ))
            stats = await client.stats()
            return outcomes, stats, service.engine.stats.misses

    outcomes, stats, misses = run(scenario())

    all_rows = [row for rows, _, _ in outcomes for row in rows]
    assert len(all_rows) == 100
    assert {row["id"] for row in all_rows} == set(direct_results)
    for rows, terminal, values in outcomes:
        assert set(terminal.values()) == {"done"}
        for job_id, value in values.items():
            # every fetched result is bit-identical to the direct run
            assert canonical_of_payload(value) == direct_results[job_id]

    service_stats = snapshot(stats)
    assert service_stats["service.submitted"] == 100
    # each unique job was admitted exactly once; every other submission
    # resolved to a cache hit or coalesced onto the in-flight record
    assert service_stats["service.admitted"] == len(pool)
    assert (
        service_stats["service.admitted"]
        + service_stats["service.cache_hits"]
        + service_stats["service.dedup_inflight"]
    ) == 100
    assert service_stats["service.completed"] == len(pool)
    assert service_stats["service.failed"] == 0
    assert service_stats["service.rejected_quota"] == 0
    assert service_stats["service.rejected_capacity"] == 0
    # the engine simulated each unique job exactly once
    assert misses == len(pool)
    assert stats["tenants"] == 8
    assert stats["jobs_by_state"] == {"done": len(pool)}
