"""Shared machinery for the service conformance suite.

The dependency set has no async pytest plugin, so every test owns its
event loop explicitly: :func:`run` wraps ``asyncio.run``, and
:func:`serving` is an async context manager that binds a **real**
:class:`~repro.service.server.SimService` listener on an ephemeral
127.0.0.1 port, hands the test a connected
:class:`~repro.service.client.ServiceClient`, and guarantees a graceful
drain on the way out.  Each test passes its own ``cache_dir`` (via
:func:`service_config`), so dedup and cache-hit counters start from an
empty store every time.

The bit-identity baseline (:func:`direct_results`) runs the shared job
pool through a serial, store-less :class:`~repro.engine.engine.SimEngine`
once per session: the conformance suite's core claim is that a result
fetched over HTTP is canonically equal to that direct run.
"""

import asyncio
import contextlib
import json

import pytest

from repro.engine import SerialExecutor, SimEngine
from repro.engine.jobs import (
    ContestJob,
    RegionLogJob,
    StandaloneJob,
    TraceSpec,
)
from repro.engine.store import encode_result
from repro.service import ServiceClient, ServiceConfig, SimService
from repro.uarch.config import core_config

SPEC_A = TraceSpec("gcc", 260, seed=7)
SPEC_B = TraceSpec("gzip", 240, seed=9)


def job_pool():
    """Twelve unique mixed jobs — every kind, several cores, both traces.

    Small enough that the whole pool simulates in well under a second;
    diverse enough that dedup accounting over it is meaningful.
    """
    return [
        StandaloneJob(core_config("gcc"), SPEC_A),
        StandaloneJob(core_config("vpr"), SPEC_A),
        StandaloneJob(core_config("mcf"), SPEC_B),
        StandaloneJob(core_config("crafty"), SPEC_B, prewarm=False),
        StandaloneJob(core_config("gcc"), SPEC_B, region_size=40),
        StandaloneJob(core_config("gzip"), SPEC_B),
        RegionLogJob(core_config("gzip"), SPEC_A),
        RegionLogJob(core_config("mcf"), SPEC_A, region_size=40),
        ContestJob((core_config("gcc"), core_config("gzip")), SPEC_A),
        ContestJob((core_config("vpr"), core_config("mcf")), SPEC_B),
        ContestJob(
            (core_config("gcc"), core_config("vpr")), SPEC_B,
            lagger_policy="resync",
        ),
        ContestJob(
            (core_config("crafty"), core_config("gcc")), SPEC_A, max_lag=64,
        ),
    ]


def tiny_job(seed):
    """A near-instant unique job (quota/backpressure tests submit many)."""
    return StandaloneJob(core_config("gzip"), TraceSpec("gzip", 120, seed=seed))


def canonical(result):
    """One result in the store's canonical JSON form (bit-comparable)."""
    return json.dumps(
        encode_result(result), sort_keys=True, separators=(",", ":")
    )


def run(coro):
    """Drive one test scenario on a fresh event loop."""
    return asyncio.run(coro)


@contextlib.asynccontextmanager
async def serving(config, **service_kwargs):
    """A started service + connected client; drains on exit."""
    service = SimService(config, **service_kwargs)
    await service.start()
    client = ServiceClient(config.host, service.port)
    try:
        yield service, client
    finally:
        await client.close()
        await service.drain()


def service_config(tmp_path, **overrides):
    """A test-sized :class:`ServiceConfig` with an isolated store."""
    settings = {
        "workers": 2,
        "chunk_size": 2,
        "batch_window_s": 0.005,
        "cache_dir": str(tmp_path / "svc-store"),
    }
    settings.update(overrides)
    return ServiceConfig(**settings)


@pytest.fixture(scope="session")
def direct_results():
    """Key → canonical result of the job pool run directly (no service)."""
    engine = SimEngine(executor=SerialExecutor())
    jobs = job_pool()
    return {
        job.cache_key(): canonical(result)
        for job, result in zip(jobs, engine.run_many(jobs))
    }
