"""Unit tests for the stdlib HTTP/1.1 framing layer.

These feed byte streams straight into an ``asyncio.StreamReader`` — no
sockets — so every parse path (clean EOF, malformed lines, the header and
body size caps) is exercised deterministically.
"""

import asyncio
import json

import pytest

from repro.service.http import (
    MAX_BODY_BYTES,
    MAX_HEADER_BYTES,
    HttpError,
    json_body,
    parse_sse_frame,
    read_request,
    render_response,
    sse_event,
    sse_preamble,
)


def parse(data):
    """Run :func:`read_request` over a canned byte stream."""
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


def parse_error(data):
    with pytest.raises(HttpError) as excinfo:
        parse(data)
    return excinfo.value


# ------------------------------------------------------------------ requests


def test_parses_request_with_body():
    request = parse(
        b"POST /v1/jobs?x=1 HTTP/1.1\r\n"
        b"Host: localhost\r\n"
        b"X-Tenant: alice\r\n"
        b"Content-Length: 2\r\n\r\n"
        b"{}"
    )
    assert request.method == "POST"
    assert request.path == "/v1/jobs"
    assert request.query == "x=1"
    assert request.headers["x-tenant"] == "alice"
    assert request.body == b"{}"
    assert request.json() == {}
    assert request.keep_alive  # HTTP/1.1 default


def test_method_uppercased_and_connection_close():
    request = parse(
        b"get /v1/stats HTTP/1.1\r\nConnection: Close\r\n\r\n"
    )
    assert request.method == "GET"
    assert not request.keep_alive


def test_clean_eof_returns_none():
    assert parse(b"") is None


def test_truncated_head_is_400():
    assert parse_error(b"GET /v1/stats HTT").status == 400


def test_malformed_request_line_is_400():
    assert parse_error(b"GET /v1/stats\r\n\r\n").status == 400
    assert parse_error(b"GET /v1/stats SMTP/1.1\r\n\r\n").status == 400


def test_malformed_header_line_is_400():
    error = parse_error(b"GET / HTTP/1.1\r\nnot-a-header\r\n\r\n")
    assert error.status == 400


@pytest.mark.parametrize("length", ["nope", "-5"])
def test_bad_content_length_is_400(length):
    raw = f"POST / HTTP/1.1\r\nContent-Length: {length}\r\n\r\n".encode()
    assert parse_error(raw).status == 400


def test_declared_body_over_cap_is_413():
    raw = (
        f"POST / HTTP/1.1\r\nContent-Length: {MAX_BODY_BYTES + 1}\r\n\r\n"
    ).encode()
    assert parse_error(raw).status == 413


def test_oversized_header_block_is_413():
    filler = b"X-Filler: " + b"a" * MAX_HEADER_BYTES
    raw = b"GET / HTTP/1.1\r\n" + filler + b"\r\n\r\n"
    assert parse_error(raw).status == 413


def test_header_block_beyond_reader_limit_is_413():
    # five times the cap and no terminator in sight: the reader's own
    # buffer limit trips first and must still surface as a 413
    assert parse_error(b"GET / HTTP/1.1\r\n" + b"a" * (5 * MAX_HEADER_BYTES)
                       ).status == 413


def test_missing_body_json_is_400():
    request = parse(b"POST /v1/jobs HTTP/1.1\r\n\r\n")
    with pytest.raises(HttpError) as excinfo:
        request.json()
    assert excinfo.value.status == 400


def test_invalid_body_json_is_400():
    request = parse(
        b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\nnope"
    )
    with pytest.raises(HttpError) as excinfo:
        request.json()
    assert excinfo.value.status == 400


# ----------------------------------------------------------------- responses


def test_render_response_shape():
    body = json_body({"b": 1, "a": 2})
    raw = render_response(
        429, body, headers={"Retry-After": "3"}, keep_alive=False
    ).decode()
    head, _, rendered_body = raw.partition("\r\n\r\n")
    lines = head.split("\r\n")
    assert lines[0] == "HTTP/1.1 429 Too Many Requests"
    assert f"Content-Length: {len(body)}" in lines
    assert "Connection: close" in lines
    assert "Retry-After: 3" in lines
    # canonical JSON: key-sorted, tight separators
    assert rendered_body == '{"a":2,"b":1}'


def test_render_response_keep_alive_default():
    raw = render_response(200, b"{}").decode()
    assert "Connection: keep-alive" in raw


def test_json_body_is_canonical():
    payload = {"z": [1.5, None], "a": {"y": 1, "x": 2}}
    assert json_body(payload) == json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode()


# ----------------------------------------------------------------------- SSE


def test_sse_preamble_always_closes():
    head = sse_preamble().decode()
    assert "Content-Type: text/event-stream" in head
    assert "Connection: close" in head
    assert "Content-Length" not in head


def test_sse_event_round_trips():
    payload = {"id": "abc", "state": "running"}
    frame = sse_event("status", payload).decode()
    assert frame.endswith("\n\n")
    event, decoded = parse_sse_frame(frame.strip("\n"))
    assert event == "status"
    assert decoded == payload
