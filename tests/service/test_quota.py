"""Token-bucket quota unit tests, driven by a manual clock.

With an injectable clock a bucket is a pure function of the take/refund
sequence — exactly the determinism the service's 429 behaviour leans on
(``tests/service/test_backpressure.py`` pins the HTTP side).
"""

import math

import pytest

from repro.service.quota import QuotaManager, TokenBucket


class ManualClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_take_and_exact_retry_after():
    clock = ManualClock()
    bucket = TokenBucket(rate_per_s=1.0, burst=4.0, clock=clock)
    assert bucket.try_take(3) == (True, 0.0)
    admitted, retry_after = bucket.try_take(2)
    assert not admitted
    assert retry_after == pytest.approx(1.0)  # (2 - 1 remaining) / 1 per s
    clock.advance(1.0)
    assert bucket.try_take(2) == (True, 0.0)
    assert bucket.tokens == pytest.approx(0.0)


def test_refill_caps_at_burst():
    clock = ManualClock()
    bucket = TokenBucket(rate_per_s=10.0, burst=5.0, clock=clock)
    assert bucket.try_take(5)[0]
    clock.advance(100.0)
    assert bucket.tokens == pytest.approx(5.0)


def test_zero_rate_is_a_pure_counter():
    clock = ManualClock()
    bucket = TokenBucket(rate_per_s=0.0, burst=3.0, clock=clock)
    assert bucket.try_take(2)[0]
    assert bucket.try_take(1)[0]
    admitted, retry_after = bucket.try_take(1)
    assert not admitted
    assert math.isinf(retry_after)
    clock.advance(1e6)  # never refills
    assert bucket.tokens == pytest.approx(0.0)


def test_oversized_take_can_never_be_admitted():
    bucket = TokenBucket(rate_per_s=100.0, burst=4.0, clock=ManualClock())
    admitted, retry_after = bucket.try_take(5)
    assert not admitted
    assert math.isinf(retry_after)
    # and the failed take charged nothing
    assert bucket.tokens == pytest.approx(4.0)


def test_refund_restores_up_to_burst():
    clock = ManualClock()
    bucket = TokenBucket(rate_per_s=0.0, burst=4.0, clock=clock)
    assert bucket.try_take(3)[0]
    bucket.refund(2)
    assert bucket.tokens == pytest.approx(3.0)
    bucket.refund(10)  # a refund can never manufacture quota
    assert bucket.tokens == pytest.approx(4.0)


def test_argument_validation():
    with pytest.raises(ValueError):
        TokenBucket(rate_per_s=-1.0, burst=1.0)
    with pytest.raises(ValueError):
        TokenBucket(rate_per_s=1.0, burst=0.0)
    bucket = TokenBucket(rate_per_s=1.0, burst=1.0, clock=ManualClock())
    with pytest.raises(ValueError):
        bucket.try_take(0)
    with pytest.raises(ValueError):
        bucket.refund(-1)


def test_manager_isolates_tenants():
    clock = ManualClock()
    quotas = QuotaManager(rate_per_s=0.0, burst=2.0, clock=clock)
    assert quotas.admit("alice", 2)[0]
    assert not quotas.admit("alice", 1)[0]
    # bob's bucket is untouched by alice going broke
    assert quotas.admit("bob", 2)[0]
    assert quotas.tenants == 2
    assert quotas.bucket("alice") is quotas.bucket("alice")
