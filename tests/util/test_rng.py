from repro.util.rng import SeedSequence, substream


class TestSubstream:
    def test_same_name_same_stream(self):
        a = substream(42, "trace", "gcc")
        b = substream(42, "trace", "gcc")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_differ(self):
        a = substream(42, "trace", "gcc")
        b = substream(42, "trace", "gzip")
        assert a.random() != b.random()

    def test_different_roots_differ(self):
        a = substream(1, "x")
        b = substream(2, "x")
        assert a.random() != b.random()

    def test_int_and_str_parts(self):
        # mixed part types are hashed through their string form
        a = substream(0, 1, "a")
        b = substream(0, "1", "a")
        assert a.random() == b.random()


class TestSeedSequence:
    def test_stream_determinism(self):
        ss = SeedSequence(7)
        assert ss.stream("a").random() == ss.stream("a").random()

    def test_derive_is_stable_int(self):
        ss = SeedSequence(7)
        d1 = ss.derive("x", "y")
        d2 = ss.derive("x", "y")
        assert isinstance(d1, int)
        assert d1 == d2

    def test_matches_substream(self):
        ss = SeedSequence("root")
        assert ss.stream("n").random() == substream("root", "n").random()

    def test_repr(self):
        assert "root_seed=5" in repr(SeedSequence(5))
