from hypothesis import given
from hypothesis import strategies as st

from repro.util.sparkline import labelled_sparkline, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant(self):
        out = sparkline([5, 5, 5])
        assert len(out) == 3
        assert len(set(out)) == 1

    def test_extremes(self):
        out = sparkline([0, 10])
        assert out[0] == "▁"
        assert out[1] == "█"

    def test_monotone_series(self):
        out = sparkline(list(range(8)))
        assert out == "▁▂▃▄▅▆▇█"

    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), max_size=50))
    def test_length_preserved(self, values):
        assert len(sparkline(values)) == len(values)


class TestLabelled:
    def test_contains_range(self):
        out = labelled_sparkline("x", [1.0, 2.0])
        assert "1.00..2.00" in out
        assert out.startswith("x")

    def test_empty(self):
        assert "(empty)" in labelled_sparkline("x", [])
