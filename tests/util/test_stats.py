import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
    percent_change,
    speedup,
    weighted_harmonic_mean,
)

positive_lists = st.lists(
    st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=30,
)


class TestArithmeticMean:
    def test_single(self):
        assert arithmetic_mean([3.0]) == 3.0

    def test_known(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            arithmetic_mean([])

    def test_accepts_generator(self):
        assert arithmetic_mean(x for x in (2.0, 4.0)) == pytest.approx(3.0)


class TestHarmonicMean:
    def test_known(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4.0 / 3.0)

    def test_equal_values(self):
        assert harmonic_mean([5.0, 5.0, 5.0]) == pytest.approx(5.0)

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, -2.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    @given(positive_lists)
    def test_dominated_by_small_values(self, values):
        assert harmonic_mean(values) <= max(values) + 1e-9
        assert harmonic_mean(values) >= min(values) - 1e-9


class TestMeanInequality:
    @given(positive_lists)
    def test_harmonic_le_geometric_le_arithmetic(self, values):
        h = harmonic_mean(values)
        g = geometric_mean(values)
        a = arithmetic_mean(values)
        assert h <= g * (1 + 1e-9)
        assert g <= a * (1 + 1e-9)


class TestWeightedHarmonicMean:
    def test_uniform_weights_match_plain(self):
        values = [1.0, 2.0, 4.0]
        assert weighted_harmonic_mean(values, [1, 1, 1]) == pytest.approx(
            harmonic_mean(values)
        )

    def test_zero_weight_removes_value(self):
        assert weighted_harmonic_mean([1.0, 100.0], [1.0, 0.0]) == pytest.approx(1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_harmonic_mean([1.0], [1.0, 2.0])

    def test_all_zero_weights(self):
        with pytest.raises(ValueError):
            weighted_harmonic_mean([1.0, 2.0], [0.0, 0.0])

    def test_negative_weight(self):
        with pytest.raises(ValueError):
            weighted_harmonic_mean([1.0], [-1.0])

    def test_nonpositive_value(self):
        with pytest.raises(ValueError):
            weighted_harmonic_mean([0.0], [1.0])


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            geometric_mean([0.0, 1.0])

    def test_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    @given(positive_lists)
    def test_log_identity(self, values):
        expected = math.exp(sum(math.log(v) for v in values) / len(values))
        assert geometric_mean(values) == pytest.approx(expected, rel=1e-9)


class TestSpeedup:
    def test_ratio(self):
        assert speedup(3.0, 2.0) == pytest.approx(1.5)

    def test_zero_baseline(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_percent_change(self):
        assert percent_change(1.15, 1.0) == pytest.approx(15.0)

    def test_percent_change_negative(self):
        assert percent_change(0.9, 1.0) == pytest.approx(-10.0)
