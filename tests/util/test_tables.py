import pytest

from repro.util.tables import format_series, format_table


class TestFormatTable:
    def test_alignment_and_floats(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = out.splitlines()
        assert lines[0].endswith("bb")
        assert "2.500" in out
        assert "30" in out

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = format_table(["col"], [])
        assert "col" in out

    def test_column_widths_consistent(self):
        out = format_table(["h"], [[123456], [1]])
        lines = out.splitlines()
        assert len(lines[1]) == len(lines[2]) == len(lines[3])


class TestFormatSeries:
    def test_pairs(self):
        out = format_series("s", [1, 2], [0.5, 1.25])
        assert out == "s: 1=0.500, 2=1.250"

    def test_unit(self):
        out = format_series("s", [1], [2.0], unit="ns")
        assert "2.000 ns" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1, 2], [1.0])
