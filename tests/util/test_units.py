import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.units import NS, PS_PER_NS, ns_to_ps, ps_to_ns


class TestUnits:
    def test_constants(self):
        assert PS_PER_NS == 1000
        assert NS == 1000

    def test_ns_to_ps_exact(self):
        assert ns_to_ps(0.49) == 490
        assert ns_to_ps(1.0) == 1000
        assert ns_to_ps(0.01) == 10  # the paper's handshake unit

    def test_rounding(self):
        assert ns_to_ps(0.0006) == 1  # rounds to nearest
        assert ns_to_ps(0.0004) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ns_to_ps(-1.0)

    def test_ps_to_ns(self):
        assert ps_to_ns(1500) == pytest.approx(1.5)

    @given(st.floats(min_value=0.001, max_value=1e6))
    def test_roundtrip_within_half_ps(self, ns):
        assert abs(ps_to_ns(ns_to_ps(ns)) - ns) <= 0.0005 + 1e-12
