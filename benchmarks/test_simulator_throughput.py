"""Raw simulator throughput (cycles/second), for performance regressions,
plus engine-level speedups: cold-vs-warm persistent cache and 1-vs-N-worker
execution of one job batch."""

import os
import time

from conftest import run_once

from repro.engine import (
    ParallelExecutor,
    ResultStore,
    SimEngine,
    StandaloneJob,
    TraceSpec,
)
from repro.isa.generator import generate_trace
from repro.isa.workloads import workload_profile
from repro.uarch.config import core_config
from repro.uarch.run import run_standalone


def test_standalone_throughput(benchmark, capsys):
    trace = generate_trace(workload_profile("gcc"), 20_000, seed=11)
    result = run_once(benchmark, run_standalone, core_config("gcc"), trace)
    with capsys.disabled():
        print(f"\nstandalone: {result.cycles} cycles simulated")


def test_contest_throughput(benchmark, capsys):
    from repro.core.system import run_contest

    trace = generate_trace(workload_profile("gcc"), 20_000, seed=11)
    result = run_once(
        benchmark, run_contest, core_config("gcc"), core_config("vpr"), trace
    )
    with capsys.disabled():
        print(f"\ncontest: finished at {result.time_ps} ps, "
              f"{result.lead_changes} lead changes")


def _engine_jobs():
    """A representative batch: three benchmarks on three cores each."""
    return [
        StandaloneJob(core_config(core), TraceSpec(bench, 6_000, seed=11))
        for bench in ("gcc", "vpr", "twolf")
        for core in ("gcc", "mcf", "crafty")
    ]


def test_cold_vs_warm_cache(benchmark, tmp_path, capsys):
    """Second engine over the same persistent store must replay, not
    resimulate — the warm/cold ratio is the repeat-run speedup."""
    jobs = _engine_jobs()
    cold_engine = SimEngine(store=ResultStore(tmp_path))
    started = time.perf_counter()
    cold = cold_engine.run_many(jobs)
    cold_s = time.perf_counter() - started

    def warm_run():
        return SimEngine(store=ResultStore(tmp_path)).run_many(jobs)

    warm = run_once(benchmark, warm_run)
    warm_s = benchmark.stats.stats.mean
    assert warm == cold  # replayed results are bit-identical
    with capsys.disabled():
        print(f"\ncache: cold {cold_s:.2f}s, warm {warm_s:.4f}s "
              f"({cold_s / max(warm_s, 1e-9):.0f}x), "
              f"{len(jobs)} jobs")


def test_parallel_scaling(benchmark, capsys):
    """One worker vs. all cores over the same batch (equal results; the
    ratio shows how simulation scales with core count on this host)."""
    jobs = _engine_jobs()
    workers = os.cpu_count() or 1
    started = time.perf_counter()
    one = ParallelExecutor(workers=1).run(jobs)
    one_s = time.perf_counter() - started

    def many_run():
        return ParallelExecutor(workers=workers).run(jobs)

    many = run_once(benchmark, many_run)
    many_s = benchmark.stats.stats.mean
    assert [r for r, _ in one] == [r for r, _ in many]
    with capsys.disabled():
        print(f"\nscaling: 1 worker {one_s:.2f}s, {workers} workers "
              f"{many_s:.2f}s ({one_s / max(many_s, 1e-9):.1f}x), "
              f"{len(jobs)} jobs")
