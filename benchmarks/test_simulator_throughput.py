"""Raw simulator throughput (cycles/second), for performance regressions."""

from conftest import run_once

from repro.isa.generator import generate_trace
from repro.isa.workloads import workload_profile
from repro.uarch.config import core_config
from repro.uarch.run import run_standalone


def test_standalone_throughput(benchmark, capsys):
    trace = generate_trace(workload_profile("gcc"), 20_000, seed=11)
    result = run_once(benchmark, run_standalone, core_config("gcc"), trace)
    with capsys.disabled():
        print(f"\nstandalone: {result.cycles} cycles simulated")


def test_contest_throughput(benchmark, capsys):
    from repro.core.system import run_contest

    trace = generate_trace(workload_profile("gcc"), 20_000, seed=11)
    result = run_once(
        benchmark, run_contest, core_config("gcc"), core_config("vpr"), trace
    )
    with capsys.disabled():
        print(f"\ncontest: finished at {result.time_ps} ps, "
              f"{result.lead_changes} lead changes")
