"""Raw simulator throughput (cycles/second), for performance regressions,
plus engine-level speedups: cold-vs-warm persistent cache, 1-vs-N-worker
execution of one job batch, and the event-driven skip-ahead fast path
against reference cycle stepping."""

import dataclasses
import os
import time

from conftest import run_once

from repro.engine import (
    ParallelExecutor,
    ResultStore,
    SimEngine,
    StandaloneJob,
    TraceSpec,
)
from repro.isa.generator import generate_trace
from repro.isa.phases import PhaseMix, pointer_chase_phase
from repro.isa.workloads import workload_profile
from repro.uarch.config import core_config
from repro.uarch.run import run_standalone


def test_standalone_throughput(benchmark, capsys):
    trace = generate_trace(workload_profile("gcc"), 20_000, seed=11)
    result = run_once(benchmark, run_standalone, core_config("gcc"), trace)
    with capsys.disabled():
        print(f"\nstandalone: {result.cycles} cycles simulated")


def test_contest_throughput(benchmark, capsys):
    from repro.core.system import run_contest

    trace = generate_trace(workload_profile("gcc"), 20_000, seed=11)
    result = run_once(
        benchmark, run_contest, core_config("gcc"), core_config("vpr"), trace
    )
    with capsys.disabled():
        print(f"\ncontest: finished at {result.time_ps} ps, "
              f"{result.lead_changes} lead changes")


def _stall_heavy_trace():
    """Serially dependent loads over a footprint no cache holds: the core
    spends most cycles waiting on memory, which is exactly the regime the
    event-driven skipper collapses."""
    phase = pointer_chase_phase(
        "chase", footprint=32 * 1024 * 1024, obj_words=2, zipf_skew=1.02,
        load_frac=0.55, chain_frac=0.85, dep1_frac=0.9,
        branch_frac=0.02, store_frac=0.02, mean_dwell=10**9,
    )
    return generate_trace(PhaseMix("chase", [(phase, 1.0)]), 12_000, seed=3)


def _best_of(n, fn, *args, **kwargs):
    best = float("inf")
    result = None
    for _ in range(n):
        started = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - started)
    return result, best


def _skip_ahead_speedup(benchmark, config, trace):
    """Time both run modes (best of three — single runs of a few tens of
    milliseconds are noise-dominated), assert bit-identical results, and
    record simulated-instructions/second for both in the benchmark JSON."""
    reference, ref_s = _best_of(
        3, run_standalone, config, trace, skip_ahead=False
    )

    benchmark.pedantic(
        run_standalone, args=(config, trace), rounds=3, iterations=1
    )
    fast_s = benchmark.stats.stats.min
    fast = run_standalone(config, trace)
    assert dataclasses.asdict(fast) == dataclasses.asdict(reference)

    speedup = ref_s / max(fast_s, 1e-9)
    benchmark.extra_info["instructions"] = fast.instructions
    benchmark.extra_info["instrs_per_sec"] = fast.instructions / fast_s
    benchmark.extra_info["instrs_per_sec_reference"] = (
        reference.instructions / ref_s
    )
    benchmark.extra_info["skip_ahead_speedup"] = speedup
    return fast, speedup


def test_skip_ahead_stall_heavy(benchmark, capsys):
    """Acceptance: >=2x simulated-instructions/sec where stalls dominate."""
    trace = _stall_heavy_trace()
    result, speedup = _skip_ahead_speedup(benchmark, core_config("crafty"), trace)
    with capsys.disabled():
        print(f"\nskip-ahead (stall-heavy): {speedup:.2f}x, "
              f"{result.cycles} cycles for {result.instructions} instrs")
    assert speedup >= 2.0


def test_skip_ahead_compute_bound(benchmark, capsys):
    """A compute-bound core rarely idles, so there is little to skip; the
    fast path must still not cost anything material (threshold leaves
    headroom for timer noise on shared CI runners)."""
    trace = generate_trace(workload_profile("gcc"), 20_000, seed=11)
    result, speedup = _skip_ahead_speedup(benchmark, core_config("gcc"), trace)
    with capsys.disabled():
        print(f"\nskip-ahead (compute-bound): {speedup:.2f}x, "
              f"{result.cycles} cycles for {result.instructions} instrs")
    assert speedup >= 0.8


def _compute_bound_trace():
    """No memory operations, mild mispredict rate: the regime the columnar
    backend vectorizes end to end (see docs/backends.md)."""
    from repro.isa.phases import PhaseType

    phase = PhaseType(
        name="columnar_compute",
        load_frac=0.0, store_frac=0.0, branch_frac=0.03, imul_frac=0.08,
        dep1_frac=0.0, two_src_frac=0.0, branch_bias=0.97,
        mean_dwell=10**9,
    )
    return generate_trace(
        PhaseMix("columnar_compute", [(phase, 1.0)]), 50_000, seed=11
    )


def test_columnar_speedup(benchmark, capsys):
    """Acceptance: the columnar backend is >=5x the reference interpreter
    on a compute-bound workload, bit-identically, with the fast path
    actually engaged (a silent fallback would benchmark the reference
    against itself)."""
    from repro.backend import get_backend

    trace = _compute_bound_trace()
    config = core_config("gcc")
    reference, ref_s = _best_of(
        3, run_standalone, config, trace, backend="reference"
    )

    benchmark.pedantic(
        run_standalone, args=(config, trace),
        kwargs={"backend": "columnar"}, rounds=3, iterations=1,
    )
    fast_s = benchmark.stats.stats.min
    stats = get_backend("columnar").stats
    engaged_before = stats.fast_runs
    fast = run_standalone(config, trace, backend="columnar")
    assert stats.fast_runs == engaged_before + 1, (
        f"columnar fast path fell back: {stats.fallback_reasons}"
    )
    assert dataclasses.asdict(fast) == dataclasses.asdict(reference)

    speedup = ref_s / max(fast_s, 1e-9)
    benchmark.extra_info["instructions"] = fast.instructions
    benchmark.extra_info["instrs_per_sec"] = fast.instructions / fast_s
    benchmark.extra_info["instrs_per_sec_reference"] = (
        reference.instructions / ref_s
    )
    benchmark.extra_info["columnar_speedup"] = speedup
    with capsys.disabled():
        print(f"\ncolumnar (compute-bound): {speedup:.2f}x, "
              f"{fast.cycles} cycles for {fast.instructions} instrs")
    assert speedup >= 5.0


def test_telemetry_overhead(benchmark, capsys):
    """Tracing must be free when off and cheap when on.

    The disabled cost is structural — every telemetry hook is a hoisted
    ``is not None`` check on a per-retirement-or-rarer path — so the
    plain-run numbers recorded by the other benchmarks *are* the disabled
    numbers; the ≤2 %-vs-seed gate rides on those.  Here we measure the
    *enabled* cost on a contest (the densest hook mix: GRB transfers,
    lead changes, occupancy sampling) and record it in the benchmark
    JSON, asserting the traced run is bit-identical and the overhead is
    bounded (generous: shared CI runners are noisy)."""
    from repro.core.system import ContestingSystem
    from repro.telemetry import Tracer

    trace = generate_trace(workload_profile("gcc"), 20_000, seed=11)
    configs = [core_config("gcc"), core_config("vpr")]

    plain, plain_s = _best_of(
        3, lambda: ContestingSystem(list(configs), trace).run()
    )

    def traced_run():
        return ContestingSystem(
            list(configs), trace, tracer=Tracer()
        ).run()

    benchmark.pedantic(traced_run, rounds=3, iterations=1)
    traced_s = benchmark.stats.stats.min
    traced = traced_run()
    assert dataclasses.asdict(traced) == dataclasses.asdict(plain)

    ratio = traced_s / max(plain_s, 1e-9)
    benchmark.extra_info["plain_seconds"] = plain_s
    benchmark.extra_info["traced_seconds"] = traced_s
    benchmark.extra_info["telemetry_overhead_ratio"] = ratio
    with capsys.disabled():
        print(f"\ntelemetry: plain {plain_s:.3f}s, traced {traced_s:.3f}s "
              f"({(ratio - 1) * 100:+.1f}% enabled cost)")
    assert ratio < 1.5  # enabled tracing must stay cheap


def _engine_jobs():
    """A representative batch: three benchmarks on three cores each."""
    return [
        StandaloneJob(core_config(core), TraceSpec(bench, 6_000, seed=11))
        for bench in ("gcc", "vpr", "twolf")
        for core in ("gcc", "mcf", "crafty")
    ]


def test_cold_vs_warm_cache(benchmark, tmp_path, capsys):
    """Second engine over the same persistent store must replay, not
    resimulate — the warm/cold ratio is the repeat-run speedup."""
    jobs = _engine_jobs()
    cold_engine = SimEngine(store=ResultStore(tmp_path))
    started = time.perf_counter()
    cold = cold_engine.run_many(jobs)
    cold_s = time.perf_counter() - started

    def warm_run():
        return SimEngine(store=ResultStore(tmp_path)).run_many(jobs)

    warm = run_once(benchmark, warm_run)
    warm_s = benchmark.stats.stats.mean
    assert warm == cold  # replayed results are bit-identical
    with capsys.disabled():
        print(f"\ncache: cold {cold_s:.2f}s, warm {warm_s:.4f}s "
              f"({cold_s / max(warm_s, 1e-9):.0f}x), "
              f"{len(jobs)} jobs")


def test_parallel_scaling(benchmark, capsys):
    """One worker vs. all cores over the same batch (equal results; the
    ratio shows how simulation scales with core count on this host)."""
    jobs = _engine_jobs()
    workers = os.cpu_count() or 1
    started = time.perf_counter()
    one = ParallelExecutor(workers=1).run(jobs)
    one_s = time.perf_counter() - started

    def many_run():
        return ParallelExecutor(workers=workers).run(jobs)

    many = run_once(benchmark, many_run)
    many_s = benchmark.stats.stats.mean
    assert [r for r, _ in one] == [r for r, _ in many]
    with capsys.disabled():
        print(f"\nscaling: 1 worker {one_s:.2f}s, {workers} workers "
              f"{many_s:.2f}s ({one_s / max(many_s, 1e-9):.1f}x), "
              f"{len(jobs)} jobs")
