"""Regenerate Figure 12 HET-C contesting (see repro.experiments.fig12)."""

from repro.experiments import fig12
from conftest import run_once


def test_fig12(benchmark, ctx, capsys):
    result = run_once(benchmark, fig12.run, ctx)
    with capsys.disabled():
        print()
        print(fig12.render(result))
