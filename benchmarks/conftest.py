"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures and prints the
same rows/series the paper reports.  The default scale keeps a full
``pytest benchmarks/ --benchmark-only`` run to a few minutes; set
``REPRO_BENCH_SCALE=default`` (or ``full``) to regenerate at the scale used
for EXPERIMENTS.md.
"""

import os

import pytest

from repro.experiments.common import ExperimentContext

SCALE = os.environ.get("REPRO_BENCH_SCALE", "tiny")


@pytest.fixture(scope="session")
def ctx():
    """One shared context so artefacts (traces, logs, runs) are reused the
    way the experiment runner reuses them."""
    return ExperimentContext(scale=SCALE)


def run_once(benchmark, fn, *args, **kwargs):
    """Time a single invocation (experiments are deterministic and heavy;
    repeated rounds would only measure the context cache)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
