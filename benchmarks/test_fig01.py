"""Regenerate Figure 1 oracle switching curves (see repro.experiments.fig01)."""

from repro.experiments import fig01
from conftest import run_once


def test_fig01(benchmark, ctx, capsys):
    result = run_once(benchmark, fig01.run, ctx)
    with capsys.disabled():
        print()
        print(result.render())
