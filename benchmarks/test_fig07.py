"""Regenerate Figure 7 L2-heterogeneity isolation (see repro.experiments.fig07)."""

from repro.experiments import fig07
from conftest import run_once


def test_fig07(benchmark, ctx, capsys):
    result = run_once(benchmark, fig07.run, ctx)
    with capsys.disabled():
        print()
        print(result.render())
