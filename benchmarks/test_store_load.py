"""Load-time guard for the persistent result store.

Not a paper figure — this pins the cost of ``ResultStore._load`` after
the streaming + CRC-framing rewrite: a store of tens of thousands of
records must load in well under a second, line by line, with no
whole-file slurp.  Run with ``pytest benchmarks/test_store_load.py
--benchmark-only``.
"""

from conftest import run_once

from repro.engine.store import ResultStore, frame_record

N_RECORDS = 20_000


def _populate(path):
    value = {"stats": {"cycles": 123456, "committed": 20000}, "ipc": 1.61}
    with open(path, "wb") as fh:
        for i in range(N_RECORDS):
            fh.write(frame_record(f"key-{i:06d}", "standalone", value))
    return path


def test_store_load_streams(benchmark, tmp_path):
    path = _populate(tmp_path / "results-v1.jsonl")

    def load():
        return ResultStore(path)

    store = run_once(benchmark, load)
    assert len(store) == N_RECORDS
    assert store.counters()["corrupt_lines"] == 0
