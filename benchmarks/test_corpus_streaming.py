"""Streaming-generation throughput, with a materialised no-regression gate.

``corpus_streaming_throughput`` records simulated-instructions/second for
a corpus workload consumed region by region (generation interleaved with
simulation, nothing fully resident).  The gates pin the two properties
streaming must keep: results stay bit-identical to the materialised path,
and the legacy materialised path keeps its throughput — streaming rides
on the same generator and scheduler, so a slowdown on either side is a
regression, not a trade.
"""

import dataclasses
import time

from repro.corpus import PhaseSpec, WorkloadSpec
from repro.isa.generator import generate_trace
from repro.isa.stream import StreamingTrace
from repro.uarch.config import core_config
from repro.uarch.run import run_standalone

LENGTH = 200_000
SEED = 11


def _compute_only_mix():
    """A corpus-grammar workload inside the columnar envelope, so the
    vectorized fast path carries both resident forms."""
    spec = WorkloadSpec(
        name="corpus/bench-compute",
        phases=(
            PhaseSpec("compute_mul", params=(
                ("branch_bias", 0.95),
                ("branch_frac", 0.06),
                ("dep1_frac", 0.0),
                ("idiv_frac", 0.0),
                ("imul_frac", 0.05),
                ("load_frac", 0.0),
                ("store_frac", 0.0),
                ("two_src_frac", 0.0),
            )),
        ),
    )
    return spec.build_mix()


def _best_of(n, fn, *args, **kwargs):
    best = float("inf")
    result = None
    for _ in range(n):
        started = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - started)
    return result, best


def _streamed_run(mix, config):
    """Generation + simulation end to end, nothing resident up front."""
    trace = StreamingTrace(mix, LENGTH, seed=SEED)
    return run_standalone(config, trace, backend="columnar")


def _materialised_run(mix, config):
    trace = generate_trace(mix, LENGTH, seed=SEED)
    return run_standalone(config, trace, backend="columnar")


def test_corpus_streaming_throughput(benchmark, capsys):
    """Acceptance: streamed execution costs <=1.5x the materialised path
    end to end (it redoes no work — same generator, same scheduler, plus
    a bounded chunk window), bit-identically."""
    mix = _compute_only_mix()
    config = core_config("gcc")

    materialised, mat_s = _best_of(3, _materialised_run, mix, config)

    benchmark.pedantic(
        _streamed_run, args=(mix, config), rounds=3, iterations=1
    )
    stream_s = benchmark.stats.stats.min
    streamed = _streamed_run(mix, config)
    assert dataclasses.asdict(streamed) == dataclasses.asdict(materialised)

    overhead = stream_s / max(mat_s, 1e-9)
    benchmark.extra_info["instructions"] = streamed.instructions
    benchmark.extra_info["instrs_per_sec"] = streamed.instructions / stream_s
    benchmark.extra_info["instrs_per_sec_materialised"] = (
        materialised.instructions / mat_s
    )
    benchmark.extra_info["streaming_overhead"] = overhead
    with capsys.disabled():
        print(f"\ncorpus streaming: {streamed.instructions} instrs, "
              f"{streamed.instructions / stream_s:,.0f}/s streamed vs "
              f"{materialised.instructions / mat_s:,.0f}/s materialised "
              f"({overhead:.2f}x)")
    assert overhead <= 1.5
    # the no-regression gate for the legacy materialised path: generation
    # plus simulation throughput must stay in its historical band
    assert materialised.instructions / mat_s >= 50_000
