"""Regenerate Figure 10 HET-A contesting (see repro.experiments.fig10)."""

from repro.experiments import fig10
from conftest import run_once


def test_fig10(benchmark, ctx, capsys):
    result = run_once(benchmark, fig10.run, ctx)
    with capsys.disabled():
        print()
        print(fig10.render(result))
