"""Regenerate Figure 11 HET-B contesting (see repro.experiments.fig11)."""

from repro.experiments import fig11
from conftest import run_once


def test_fig11(benchmark, ctx, capsys):
    result = run_once(benchmark, fig11.run, ctx)
    with capsys.disabled():
        print()
        print(fig11.render(result))
