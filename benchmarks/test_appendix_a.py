"""Regenerate Appendix A IPT matrix (see repro.experiments.appendix_a)."""

from repro.experiments import appendix_a
from conftest import run_once


def test_appendix_a(benchmark, ctx, capsys):
    result = run_once(benchmark, appendix_a.run, ctx)
    with capsys.disabled():
        print()
        print(result.render())
