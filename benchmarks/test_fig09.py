"""Regenerate Figure 9 per-benchmark IPT across designs (see repro.experiments.fig09)."""

from repro.experiments import fig09
from conftest import run_once


def test_fig09(benchmark, ctx, capsys):
    result = run_once(benchmark, fig09.run, ctx)
    with capsys.disabled():
        print()
        print(result.render())
