"""Ablations of the contesting design choices DESIGN.md calls out.

Not figures from the paper — these quantify the contribution of individual
mechanisms on a fixed (benchmark, pair): result injection (via an
effectively-infinite GRB latency), the Figure-5 early-branch-resolution
corner case, the synchronizing store-queue capacity, the maximum lagging
distance, and 2-way vs 3-way contesting.
"""

from conftest import run_once

from repro.core.system import ContestingSystem
from repro.uarch.config import core_config

BENCH = "vpr"
PAIR = ("bzip", "vpr")


def _contest(ctx, **kwargs):
    trace = ctx.trace(BENCH)
    configs = [core_config(n) for n in kwargs.pop("pair", PAIR)]
    return ContestingSystem(configs, trace, **kwargs).run()


def test_ablation_injection(benchmark, ctx, capsys):
    """Injection off == results arrive far too late to pair."""
    def run():
        on = _contest(ctx)
        off = _contest(ctx, grb_latency_ns=10_000.0)
        return on, off

    on, off = run_once(benchmark, run)
    with capsys.disabled():
        print(f"\nablation: injection  on={on.ipt:.3f} IPT "
              f"off(10us GRB)={off.ipt:.3f} IPT "
              f"(injected {sum(s.injected for s in on.per_core.values())} vs "
              f"{sum(s.injected for s in off.per_core.values())})")


def test_ablation_early_branch_resolution(benchmark, ctx, capsys):
    def run():
        on = _contest(ctx, early_branch_resolution=True)
        off = _contest(ctx, early_branch_resolution=False)
        return on, off

    on, off = run_once(benchmark, run)
    with capsys.disabled():
        early = sum(s.early_resolved for s in on.per_core.values())
        print(f"\nablation: Figure-5 early resolution  on={on.ipt:.3f} "
              f"off={off.ipt:.3f} (events when on: {early})")


def test_ablation_store_queue_capacity(benchmark, ctx, capsys):
    def run():
        return {
            cap: _contest(ctx, store_queue_capacity=cap)
            for cap in (8, 64, 512)
        }

    results = run_once(benchmark, run)
    with capsys.disabled():
        print("\nablation: store-queue capacity  " + "  ".join(
            f"{cap}:{r.ipt:.3f}IPT/{r.store_stalls}stalls"
            for cap, r in results.items()
        ))


def test_ablation_max_lag(benchmark, ctx, capsys):
    def run():
        return {
            lag: _contest(ctx, max_lag=lag)
            for lag in (64, 512, 4096)
        }

    results = run_once(benchmark, run)
    with capsys.disabled():
        print("\nablation: max lagging distance  " + "  ".join(
            f"{lag}:{r.ipt:.3f}IPT/sat={','.join(r.saturated) or '-'}"
            for lag, r in results.items()
        ))


def test_ablation_nway(benchmark, ctx, capsys):
    def run():
        two = _contest(ctx)
        three = _contest(ctx, pair=("bzip", "vpr", "gcc"))
        return two, three

    two, three = run_once(benchmark, run)
    with capsys.disabled():
        print(f"\nablation: N-way  2-way={two.ipt:.3f} IPT "
              f"3-way={three.ipt:.3f} IPT")


def test_ablation_limit_study(benchmark, ctx, capsys):
    """Split the contesting gain: perfect predictors isolate memory-system
    heterogeneity; perfect caches isolate branch/pipeline heterogeneity."""
    import dataclasses

    def run():
        base = _contest(ctx)
        pp = [dataclasses.replace(core_config(n), perfect_predictor=True) for n in PAIR]
        pc = [dataclasses.replace(core_config(n), perfect_caches=True) for n in PAIR]
        perfect_pred = ContestingSystem(pp, ctx.trace(BENCH)).run()
        perfect_cache = ContestingSystem(pc, ctx.trace(BENCH)).run()
        return base, perfect_pred, perfect_cache

    base, pred, cache = run_once(benchmark, run)
    with capsys.disabled():
        print(f"\nablation: limit study  real={base.ipt:.3f}  "
              f"perfect-predictors={pred.ipt:.3f}  perfect-caches={cache.ipt:.3f}")


def test_ablation_lagger_policy(benchmark, ctx, capsys):
    def run():
        kw = dict(max_lag=256, sat_grace_ns=20.0)
        disable = ContestingSystem(
            [core_config(n) for n in PAIR], ctx.trace(BENCH),
            lagger_policy="disable", **kw,
        ).run()
        resync = ContestingSystem(
            [core_config(n) for n in PAIR], ctx.trace(BENCH),
            lagger_policy="resync", **kw,
        ).run()
        return disable, resync

    disable, resync = run_once(benchmark, run)
    with capsys.disabled():
        print(f"\nablation: lagger policy  disable={disable.ipt:.3f} "
              f"(sat={disable.saturated})  resync={resync.ipt:.3f}")
