"""Regenerate Table 1 CMP designs (see repro.experiments.table1)."""

from repro.experiments import table1
from conftest import run_once


def test_table1(benchmark, ctx, capsys):
    result = run_once(benchmark, table1.run, ctx)
    with capsys.disabled():
        print()
        print(result.render())
