"""Regenerate Figure 13 contesting vs more core types (see repro.experiments.fig13)."""

from repro.experiments import fig13
from conftest import run_once


def test_fig13(benchmark, ctx, capsys):
    result = run_once(benchmark, fig13.run, ctx)
    with capsys.disabled():
        print()
        print(result.render())
