"""Service-level performance gates: submit→result latency, warm throughput.

Not a paper figure — this pins the overhead the simulation-as-a-service
layer adds on top of the engine: the full HTTP round trip (submit, poll
to terminal, fetch result) per cold job, and the warm-cache path where
every submission resolves to a stored record without touching a worker.
The measured numbers are persisted to the repo-root ``BENCH_service.json``
(and into the pytest-benchmark ``extra_info``), so service-perf history
is inspectable per commit next to ``BENCH_simulator.json``.

Run with ``pytest benchmarks/test_service_latency.py --benchmark-only``.
"""

import asyncio
import json
import math
from pathlib import Path

from conftest import run_once

from repro.engine.jobs import StandaloneJob, TraceSpec
from repro.service import ServiceClient, ServiceConfig, SimService
from repro.uarch.config import core_config

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_service.json"

#: cold jobs measured one full HTTP lifecycle at a time
N_JOBS = 32

#: generous CI-runner gates — catching order-of-magnitude regressions
#: (an accidental sleep in the poll path, a batch that stopped batching),
#: not micro-drift
GATE_P99_S = 2.0
GATE_WARM_JOBS_PER_S = 100.0


def _jobs():
    return [
        StandaloneJob(core_config("gzip"), TraceSpec("gzip", 150, seed=s))
        for s in range(N_JOBS)
    ]


def _percentile(samples, q):
    ordered = sorted(samples)
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[rank]


async def _measure(cache_dir):
    config = ServiceConfig(
        workers=2,
        chunk_size=4,
        batch_window_s=0.002,
        quota_rate_per_s=100_000.0,
        quota_burst=100_000.0,
        cache_dir=str(cache_dir),
    )
    service = SimService(config)
    await service.start()
    client = ServiceClient(config.host, service.port)
    loop = asyncio.get_running_loop()
    try:
        latencies = []
        for job in _jobs():
            started = loop.time()
            row = (await client.submit([job]))[0]
            await client.wait(row["id"], timeout_s=120.0, poll_s=0.002)
            await client.result(row["id"])
            latencies.append(loop.time() - started)
        # warm path: one submission of the full batch, every job already
        # terminal, every result served from the record/store
        started = loop.time()
        rows = await client.submit(_jobs())
        assert all(row["state"] == "done" for row in rows)
        for row in rows:
            await client.result(row["id"])
        warm_seconds = loop.time() - started
    finally:
        await client.close()
        await service.drain()
    return latencies, warm_seconds


def test_service_latency_and_warm_throughput(benchmark, tmp_path):
    latencies, warm_seconds = run_once(
        benchmark, lambda: asyncio.run(_measure(tmp_path / "store"))
    )
    assert len(latencies) == N_JOBS
    payload = {
        "jobs": N_JOBS,
        "submit_to_result_p50_s": round(_percentile(latencies, 0.50), 6),
        "submit_to_result_p99_s": round(_percentile(latencies, 0.99), 6),
        "warm_cache_jobs_per_s": round(N_JOBS / warm_seconds, 2),
        "gates": {
            "submit_to_result_p99_s_max": GATE_P99_S,
            "warm_cache_jobs_per_s_min": GATE_WARM_JOBS_PER_S,
        },
    }
    benchmark.extra_info.update(payload)
    BENCH_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    assert payload["submit_to_result_p99_s"] < GATE_P99_S
    assert payload["warm_cache_jobs_per_s"] > GATE_WARM_JOBS_PER_S
