"""Regenerate Figure 8 core-to-core latency sweep (see repro.experiments.fig08)."""

from repro.experiments import fig08
from conftest import run_once


def test_fig08(benchmark, ctx, capsys):
    result = run_once(benchmark, fig08.run, ctx)
    with capsys.disabled():
        print()
        print(result.render())
