"""Regenerate Figure 6 contesting vs own core (see repro.experiments.fig06)."""

from repro.experiments import fig06
from conftest import run_once


def test_fig06(benchmark, ctx, capsys):
    result = run_once(benchmark, fig06.run, ctx)
    with capsys.disabled():
        print()
        print(result.render())
