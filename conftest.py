"""Repo-wide pytest configuration.

Lives at the repository root so it applies to *every* collected suite —
``tests/`` and ``benchmarks/`` alike.  The cache isolation below used to
sit in ``tests/conftest.py`` only, which let benchmark runs read and
pollute the user's real ``~/.cache/repro`` (and leak state between runs
on CI); hoisting it here gives both suites the same hermetic store.
"""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_store(tmp_path_factory):
    """Point the engine's persistent store at a throwaway directory.

    The store resolves ``REPRO_CACHE_DIR`` lazily (at
    ``default_cache_dir()`` call time), so setting it here — before any
    test or benchmark constructs a store — isolates every suite.
    """
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
