#!/usr/bin/env python3
"""Design constrained heterogeneous CMPs from a measured IPT matrix.

Reproduces the Section-6 flow end to end at a reduced scale:

1. simulate every benchmark on every Appendix-A core type (the IPT matrix),
2. search all two-type combinations under the three figures of merit
   (avg / har / cw-har) to obtain HET-A/B/C, plus HOM and HET-ALL,
3. print the Table-1 style summary and each benchmark's core assignment.
"""

from repro import BENCHMARKS, core_config, design_suite, generate_trace, run_standalone, workload_profile
from repro.cmp.designer import design_table_rows
from repro.cmp.merit import preferred_core
from repro.util.tables import format_table


def main():
    trace_len = 20_000  # reduced scale; the experiment harness uses 60k+
    print(f"building the IPT matrix ({len(BENCHMARKS)} benchmarks x "
          f"{len(BENCHMARKS)} core types, {trace_len} instructions each)...")
    matrix = {}
    for bench in BENCHMARKS:
        trace = generate_trace(workload_profile(bench), trace_len, seed=11)
        matrix[bench] = {
            core: run_standalone(core_config(core), trace).ipt
            for core in BENCHMARKS
        }

    designs = design_suite(matrix)
    print()
    print(format_table(
        ["design", "merit", "core types", "harmonic-mean IPT"],
        design_table_rows(designs),
        title="Table-1 style summary (our measured matrix)",
    ))

    print("\nper-benchmark core assignment on HET-C "
          f"({' & '.join(designs['HET-C'].core_types)}):")
    for bench in BENCHMARKS:
        core = preferred_core(matrix, bench, designs["HET-C"].core_types)
        print(f"  {bench:8s} -> {core:8s} core  "
              f"({matrix[bench][core]:.3f} IPT vs "
              f"{max(matrix[bench].values()):.3f} unconstrained)")


if __name__ == "__main__":
    main()
