#!/usr/bin/env python3
"""Quickstart: run 2-way architectural contesting on a synthetic workload.

Generates a gcc-like phase-structured trace, runs it standalone on the gcc
and vpr customised cores, then contests the two cores and reports the
emergent leader-follower behaviour (lead changes, injected results, early
branch resolutions).
"""

from repro import core_config, generate_trace, run_contest, run_standalone, workload_profile


def main():
    trace = generate_trace(workload_profile("gcc"), 40_000, seed=11)
    print(f"trace: {trace.name}, {len(trace)} instructions, "
          f"{len(trace.phase_starts)} fine-grain phase changes")

    gcc = core_config("gcc")
    vpr = core_config("vpr")
    alone_gcc = run_standalone(gcc, trace)
    alone_vpr = run_standalone(vpr, trace)
    print(f"standalone gcc core: {alone_gcc.ipt:.3f} IPT "
          f"(IPC {alone_gcc.ipc:.2f}, mispredict {alone_gcc.stats.mispredict_rate:.1%})")
    print(f"standalone vpr core: {alone_vpr.ipt:.3f} IPT "
          f"(IPC {alone_vpr.ipc:.2f})")

    contest = run_contest(gcc, vpr, trace, grb_latency_ns=1.0)
    best_alone = max(alone_gcc.ipt, alone_vpr.ipt)
    print(f"\n2-way contesting (1 ns GRB latency): {contest.ipt:.3f} IPT "
          f"({(contest.ipt / best_alone - 1) * 100:+.1f}% vs best single core)")
    print(f"finishing core: {contest.winner}; lead changes: {contest.lead_changes}")
    for name, stats in contest.per_core.items():
        print(f"  {name}: injected {stats.injected} results, "
              f"early-resolved {stats.early_resolved} branches, "
              f"{stats.mispredicts} own mispredicts")
    if contest.saturated:
        print(f"saturated laggers: {contest.saturated}")
    print(f"merged stores through the synchronizing store queue: "
          f"{contest.merged_stores} (stalls: {contest.store_stalls})")


if __name__ == "__main__":
    main()
