#!/usr/bin/env python3
"""Figure-8 style study: how the GRB propagation latency erodes contesting.

Contests one benchmark's pair across a sweep of core-to-core latencies and
shows the follower's injection/early-resolution activity shrinking as
results arrive too late to matter.
"""

from repro import core_config, generate_trace, run_contest, run_standalone, workload_profile


def main():
    bench = "vpr"
    pair = ("bzip", "vpr")
    trace = generate_trace(workload_profile(bench), 40_000, seed=11)
    own = run_standalone(core_config(bench), trace).ipt
    print(f"{bench} on its own core: {own:.3f} IPT; contesting {pair}:")
    print(f"{'latency':>9s} {'IPT':>7s} {'speedup':>8s} {'leadchg':>8s} "
          f"{'injected':>9s} {'early-resolved':>14s}")
    for latency_ns in (0.5, 1, 2, 5, 10, 25, 50, 100):
        r = run_contest(
            core_config(pair[0]), core_config(pair[1]), trace,
            grb_latency_ns=latency_ns,
        )
        injected = sum(s.injected for s in r.per_core.values())
        early = sum(s.early_resolved for s in r.per_core.values())
        print(f"{latency_ns:>7.1f}ns {r.ipt:7.3f} "
              f"{(r.ipt / own - 1) * 100:+7.1f}% {r.lead_changes:8d} "
              f"{injected:9d} {early:14d}")


if __name__ == "__main__":
    main()
