#!/usr/bin/env python3
"""Characterise the synthetic benchmark suite.

Prints, for every benchmark profile, the model-free trace statistics the
calibration reasons about: instruction mix, ideal ILP, branch entropy,
footprint and locality — a compact configurational workload
characterisation of the SPEC2000int stand-ins.
"""

from repro import BENCHMARKS, characterize, generate_trace, workload_profile
from repro.isa.stats import working_set_curve
from repro.util.tables import format_table


def main():
    rows = []
    for bench in BENCHMARKS:
        trace = generate_trace(workload_profile(bench), 20_000, seed=11)
        ch = characterize(trace)
        ws = working_set_curve(trace, (1024,))
        rows.append([
            bench,
            round(ch.ilp_ideal, 1),
            round(ch.dep_frac, 2),
            round(ch.branch_entropy_bits, 2),
            round(ch.mix.get("LOAD", 0) + ch.mix.get("STORE", 0), 2),
            ch.footprint_blocks,
            round(ws[1024], 0),
            round(ch.reuse_short, 2),
            ch.phase_transitions,
        ])
    print(format_table(
        ["bench", "ILP", "dep", "br-entropy", "mem-frac",
         "footprint(64B)", "ws@1k", "reuse", "phases"],
        rows,
        title="Synthetic SPEC2000int stand-ins: trace characterisation (20k instructions)",
    ))


if __name__ == "__main__":
    main()
