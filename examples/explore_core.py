#!/usr/bin/env python3
"""Customise a core for a workload with simulated annealing (XpScalar-style).

The paper's Appendix-A cores were found by annealing over width, window
sizes, cache geometry and clock frequency with depths consistent with the
clock.  This example customises a core for the parser workload at a small
annealing budget and compares it against the published parser core.
"""

from repro import core_config, generate_trace, run_standalone, workload_profile
from repro.explore import simulated_annealing, workload_objective
from repro.explore.space import derive_config


def main():
    trace = generate_trace(workload_profile("parser"), 12_000, seed=11)
    objective = workload_objective(trace)

    published = core_config("parser")
    published_ipt = run_standalone(published, trace).ipt
    print(f"published parser core: {published_ipt:.3f} IPT "
          f"(width {published.width}, ROB {published.rob_size}, "
          f"{published.clock_period_ns} ns clock)")

    print("annealing (60 steps; the paper's exploration used far larger budgets)...")
    result = simulated_annealing(objective, steps=60, seed=7, name="custom")
    custom = result.best_config("custom")
    print(f"annealed core: {result.best_score:.3f} IPT after "
          f"{result.evaluations} evaluations")
    print(f"  width {custom.width}, ROB {custom.rob_size}, IQ {custom.iq_size}, "
          f"clock {custom.clock_period_ns} ns, "
          f"L1 {custom.l1.size_bytes // 1024}KB/{custom.l1.latency}cyc, "
          f"L2 {custom.l2.size_bytes // 1024}KB/{custom.l2.latency}cyc")
    ratio = result.best_score / published_ipt
    print(f"annealed/published IPT ratio: {ratio:.2f} "
          "(a small budget typically lands within ~20% of the published core)")


if __name__ == "__main__":
    main()
