#!/usr/bin/env python3
"""Section 6.1 in action: job streams on constrained CMP designs.

Builds the IPT matrix at a reduced scale, designs the HET CMPs, then
simulates the same Poisson job stream on each under the preferred-core
scheduling policy — showing how the contention-weighted merit's preferred
design behaves under light vs heavy load.
"""

from repro import BENCHMARKS, core_config, design_suite, generate_trace, run_standalone, workload_profile
from repro.cmp.queueing import CmpQueueSimulator, JobStream
from repro.util.tables import format_table


def main():
    print("building the IPT matrix (reduced scale)...")
    matrix = {}
    for bench in BENCHMARKS:
        trace = generate_trace(workload_profile(bench), 10_000, seed=11)
        matrix[bench] = {
            core: run_standalone(core_config(core), trace).ipt
            for core in BENCHMARKS
        }
    designs = design_suite(matrix)

    streams = {
        "light": JobStream(arrival_rate=1e-6, job_length=200_000, jobs=150),
        "heavy": JobStream(arrival_rate=3e-4, job_length=200_000, jobs=400),
    }
    rows = []
    for name in ("HET-A", "HET-B", "HET-C", "HOM"):
        design = designs[name]
        row = [name, " & ".join(design.core_types)]
        for label in ("light", "heavy"):
            sim = CmpQueueSimulator(matrix, design.core_types)
            result = sim.run(streams[label], seed=7)
            row.append(round(result.mean_turnaround_ns / 1000, 1))
        rows.append(row)
    print(format_table(
        ["design", "core types", "light turnaround (us)", "heavy (us)"],
        rows,
        title="Job-stream turnaround on the designed CMPs (preferred-core policy)",
    ))


if __name__ == "__main__":
    main()
