#!/usr/bin/env python3
"""Section 7.2: customise cores *for contesting*, not for applications.

Compares three ways of building a two-core system for one workload:

1. the benchmark's own application-customised core, alone,
2. that core plus the best contesting *partner* from the Appendix-A palette
   (picked by actually contesting each candidate), and
3. a pair found by joint simulated annealing over both cores' designs
   (tiny budget here; the paper notes this search is intrinsically slow
   because every evaluation is a co-simulation).
"""

from repro import BENCHMARKS, core_config, generate_trace, run_standalone, workload_profile
from repro.explore import best_partner_from_palette, explore_contesting_pair


def main():
    bench = "vpr"
    trace = generate_trace(workload_profile(bench), 15_000, seed=11)

    own = core_config(bench)
    alone = run_standalone(own, trace).ipt
    print(f"1) {bench} core alone: {alone:.3f} IPT")

    candidates = [core_config(n) for n in BENCHMARKS]
    partner, paired = best_partner_from_palette(own, candidates, trace)
    print(f"2) best palette partner: {partner.name} -> {paired:.3f} IPT "
          f"({(paired / alone - 1) * 100:+.1f}%)")

    print("3) joint pair annealing (30 steps, ~60 co-simulations)...")
    result = explore_contesting_pair(trace, steps=30, seed=5)
    a, b = result.best_configs()
    print(f"   annealed pair: {result.best_score:.3f} IPT")
    print(f"   core A: width {a.width}, ROB {a.rob_size}, {a.clock_period_ns} ns, "
          f"L1 {a.l1.size_bytes // 1024}KB, L2 {a.l2.size_bytes // 1024}KB")
    print(f"   core B: width {b.width}, ROB {b.rob_size}, {b.clock_period_ns} ns, "
          f"L1 {b.l1.size_bytes // 1024}KB, L2 {b.l2.size_bytes // 1024}KB")
    print("\n(the paper's point: 2 and 3 optimise different objectives — a pair"
          "\n that loses standalone can win contested; larger budgets widen the gap)")


if __name__ == "__main__":
    main()
