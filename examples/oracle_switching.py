#!/usr/bin/env python3
"""Section-2 motivation: how fast does the best microarchitecture change?

Logs per-20-instruction region times for one benchmark on every customised
core, then computes the oracle pairwise-switching speedup at doubling
granularities (the paper's Figure 1) and locates the knee.
"""

import sys

from repro import BENCHMARKS, core_config, generate_trace, oracle_switching_curve, region_log, workload_profile


def main():
    bench = sys.argv[1] if len(sys.argv) > 1 else "vpr"
    if bench not in BENCHMARKS:
        raise SystemExit(f"unknown benchmark {bench!r}; pick from {BENCHMARKS}")
    trace = generate_trace(workload_profile(bench), 30_000, seed=11)
    print(f"logging 20-instruction regions of {bench} on all "
          f"{len(BENCHMARKS)} cores...")
    logs = {
        core: region_log(core_config(core), trace) for core in BENCHMARKS
    }
    curve = oracle_switching_curve(bench, logs)
    print(f"\noracle switching speedup over the {bench} core:")
    for granularity, pair, speedup in curve.points:
        print(f"  {granularity:>7d} instructions: {speedup:+6.2f}%  "
              f"(best pair {pair[0]}+{pair[1]})")
    print(f"\nknee: ~{curve.knee_granularity()} instructions "
          "(the paper reports most benefit gone by ~1280)")


if __name__ == "__main__":
    main()
