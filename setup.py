"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works in offline environments that lack the ``wheel``
package (pip then falls back to the legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
