"""Figure 13 — contesting between two core types vs. more core types.

Paper result: contesting between the two HET-C core types matches or exceeds
running each benchmark on the best of HET-D's *three* core types (selected
by har), and on average matches HET-ALL (all eleven types); contesting is
therefore a more cost-effective path to single-thread performance than
adding core types.
"""

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.experiments.common import ExperimentContext
from repro.experiments.table1 import Table1Result
from repro.experiments.table1 import run as run_table1
from repro.uarch.config import core_config
from repro.util.stats import arithmetic_mean
from repro.util.tables import format_table


@dataclass
class Fig13Result:
    het_c_types: Tuple[str, ...]
    het_d_types: Tuple[str, ...]
    #: per benchmark: (HET-C contesting IPT, HET-D best-core IPT,
    #:                 HET-ALL own/best-core IPT)
    rows: Dict[str, Tuple[float, float, float]]

    def averages(self) -> Tuple[float, float, float]:
        """(HET-C contesting, HET-D, HET-ALL) average IPTs."""
        return (
            arithmetic_mean(v[0] for v in self.rows.values()),
            arithmetic_mean(v[1] for v in self.rows.values()),
            arithmetic_mean(v[2] for v in self.rows.values()),
        )

    def render(self) -> str:
        """The Figure-13 comparison table with averages."""
        table = format_table(
            ["bench", "HET-C contesting", "HET-D no-contest", "HET-ALL no-contest"],
            [[b, c, d, a] for b, (c, d, a) in self.rows.items()],
            title=(
                "Figure 13: 2-type contesting "
                f"({' & '.join(self.het_c_types)}) vs 3 core types "
                f"({' & '.join(self.het_d_types)}) vs all core types"
            ),
        )
        c, d, a = self.averages()
        wins_d = sum(1 for v in self.rows.values() if v[0] >= v[1])
        return (
            f"{table}\n"
            f"averages: HET-C contesting {c:.3f} | HET-D {d:.3f} | HET-ALL {a:.3f}"
            f"   (contesting beats-or-matches 3 types on {wins_d}/{len(self.rows)} benchmarks)"
        )


def run(ctx: ExperimentContext, table1: Table1Result = None) -> Fig13Result:
    """Contest HET-C's types; compare against HET-D and HET-ALL."""
    table1 = table1 or run_table1(ctx)
    matrix = table1.matrix
    het_c = table1.designs["HET-C"]
    het_d = table1.designs["HET-D"]
    configs = [core_config(n) for n in het_c.core_types]
    rows = {}
    for bench in ctx.benchmarks:
        contested = ctx.contest(bench, configs).ipt
        d_best = max(matrix[bench][n] for n in het_d.core_types)
        all_best = max(matrix[bench].values())
        rows[bench] = (contested, d_best, all_best)
    return Fig13Result(
        het_c_types=het_c.core_types,
        het_d_types=het_d.core_types,
        rows=rows,
    )
