"""Figure 9 — per-benchmark IPT on the five CMP designs.

Each benchmark runs on the most suitable core type available in each design;
the figure shows how constraining the set of core types impacts individual
benchmarks (some drop below HOM on HET designs whose types don't suit them).
"""

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.common import ExperimentContext
from repro.experiments.table1 import Table1Result
from repro.experiments.table1 import run as run_table1
from repro.util.tables import format_table

DESIGN_ORDER = ["HET-A", "HET-B", "HET-C", "HOM", "HET-ALL"]


@dataclass
class Fig09Result:
    table1: Table1Result
    #: ipt[bench][design] -> IPT on the design's most suitable core
    ipt: Dict[str, Dict[str, float]]

    def render(self) -> str:
        """The Figure-9 per-design IPT table."""
        rows: List[List[object]] = []
        for bench, per_design in self.ipt.items():
            rows.append([bench] + [per_design[d] for d in DESIGN_ORDER])
        return format_table(
            ["bench"] + DESIGN_ORDER,
            rows,
            title="Figure 9: IPT per benchmark on the most suitable core of each CMP design",
        )


def run(ctx: ExperimentContext, table1: Table1Result = None) -> Fig09Result:
    """Look up each benchmark's best-available IPT per design."""
    table1 = table1 or run_table1(ctx)
    matrix = table1.matrix
    ipt: Dict[str, Dict[str, float]] = {}
    for bench in ctx.benchmarks:
        per_design = {}
        for name in DESIGN_ORDER:
            design = table1.designs[name]
            core = design.best_core_for(matrix, bench)
            per_design[name] = matrix[bench][core]
        ipt[bench] = per_design
    return Fig09Result(table1=table1, ipt=ipt)
