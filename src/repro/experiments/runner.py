"""CLI runner: regenerate every table and figure.

Usage::

    python -m repro.experiments                 # all experiments, default scale
    python -m repro.experiments --scale small   # faster, noisier
    python -m repro.experiments fig06 table1    # a subset
    python -m repro.experiments --jobs 4        # parallel simulation
    python -m repro.experiments --no-cache      # ignore the persistent store
    python -m repro.experiments --list

Experiments share one :class:`ExperimentContext`, so e.g. the region logs
computed for fig01 are reused by fig06's pair pruning and the matrix behind
table1 feeds fig09-13.  All simulation goes through
:class:`repro.engine.SimEngine`: results persist in an on-disk store under
``~/.cache/repro`` (override with ``--cache-dir`` or ``$REPRO_CACHE_DIR``),
so a repeat invocation replays from cache, and ``--jobs N`` fans cold
simulations out over N worker processes.  Cache counters go to stderr so
rendered output stays byte-identical across cache states and job counts.
"""

import argparse
import logging
import sys
import time
import traceback
from types import ModuleType
from typing import Any, Callable, Dict, List, Optional, Sequence, TextIO

from repro.backend import BACKEND_CHOICES
from repro.engine import ParallelExecutor, ResultStore, SimEngine
from repro.telemetry import (
    StatRegistry,
    build_manifest,
    metrics_snapshot,
    write_manifest,
)
from repro.experiments import fig01, fig06, fig07, fig08, fig09, fig10
from repro.experiments import fig11, fig12, fig13, appendix_a, table1
from repro.experiments import ext_corpus, ext_energy, ext_faults, ext_nway
from repro.experiments import ext_queueing, ext_resync, ext_robustness
from repro.experiments.common import SCALES, ExperimentContext

_log = logging.getLogger("repro.experiments")


class SuiteFailure(RuntimeError):
    """Raised by :func:`run_all` under ``keep_going`` when any experiment
    failed; carries the per-experiment tracebacks."""

    def __init__(self, errors: Dict[str, str]) -> None:
        super().__init__(
            f"{len(errors)} experiment(s) failed: {', '.join(errors)}"
        )
        self.errors = errors


def _render(module: ModuleType, result: Any) -> str:
    if hasattr(module, "render"):
        return module.render(result)
    return result.render()


#: Registry in the paper's presentation order.
EXPERIMENTS: Dict[str, Callable[[ExperimentContext], Any]] = {
    "fig01": fig01.run,
    "appendix_a": appendix_a.run,
    "fig06": fig06.run,
    "fig07": fig07.run,
    "fig08": fig08.run,
    "table1": table1.run,
    "fig09": fig09.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    # extensions beyond the paper's figures (see each module's docstring)
    "ext_queueing": ext_queueing.run,
    "ext_nway": ext_nway.run,
    "ext_resync": ext_resync.run,
    "ext_energy": ext_energy.run,
    "ext_robustness": ext_robustness.run,
    "ext_faults": ext_faults.run,
    "ext_corpus": ext_corpus.run,
}

_MODULES = {
    "fig01": fig01, "appendix_a": appendix_a, "fig06": fig06,
    "fig07": fig07, "fig08": fig08, "table1": table1, "fig09": fig09,
    "fig10": fig10, "fig11": fig11, "fig12": fig12, "fig13": fig13,
    "ext_queueing": ext_queueing, "ext_nway": ext_nway,
    "ext_resync": ext_resync,
    "ext_energy": ext_energy,
    "ext_robustness": ext_robustness,
    "ext_faults": ext_faults,
    "ext_corpus": ext_corpus,
}


def build_engine(
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    no_cache: bool = False,
) -> SimEngine:
    """Assemble the engine the runner uses.

    ``jobs > 1`` selects the process-pool executor; ``cache_dir`` (or the
    default ``~/.cache/repro`` when it is the string ``"default"``) attaches
    the persistent result store unless ``no_cache`` is set.
    """
    executor = ParallelExecutor(workers=jobs) if jobs > 1 else None
    store = None
    if not no_cache and cache_dir is not None:
        store = ResultStore(None if cache_dir == "default" else cache_dir)
    return SimEngine(executor=executor, store=store)


def run_all(
    scale: str = "default",
    names: Optional[Sequence[str]] = None,
    stream: Optional[Any] = None,  # anything with write(); see _Tee below
    engine: Optional[SimEngine] = None,
    keep_going: bool = False,
    backend: str = "reference",
) -> Dict[str, Any]:
    """Run the selected experiments, print each, return the result dict.

    ``engine`` defaults to a serial, memory-cache-only
    :class:`~repro.engine.SimEngine`; pass :func:`build_engine`'s product
    for parallel execution and/or persistent caching.  With ``keep_going``
    a failing experiment is recorded (traceback and all) and the rest still
    run; a :class:`SuiteFailure` is raised at the end instead of on the
    first error.
    """
    stream = stream if stream is not None else sys.stdout
    ctx = ExperimentContext(scale=scale, engine=engine, backend=backend)
    selected = list(names) if names else list(EXPERIMENTS)
    results: Dict[str, Any] = {}
    errors: Dict[str, str] = {}
    for name in selected:
        if name not in EXPERIMENTS:
            raise ValueError(
                f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
            )
    if ctx.engine.executor.workers > 1:
        # fan the shared artefact frontier out before the serial figure loop
        ctx.prefetch()
    for name in selected:
        started = time.time()
        try:
            result = EXPERIMENTS[name](ctx)
        except Exception:
            if not keep_going:
                raise
            errors[name] = traceback.format_exc()
            _log.error("%s failed (continuing):\n%s", name, errors[name])
            continue
        results[name] = result
        # the rendered stream carries no timings, so it is byte-identical
        # across cache states and worker counts; timing goes to the
        # ``repro.experiments`` logger (stderr under the CLI)
        print(f"\n=== {name} ===", file=stream)
        print(_render(_MODULES[name], result), file=stream)
        _log.info("%s: %.1fs", name, time.time() - started)
    _log.info("%s", ctx.engine.stats_line())
    if errors:
        raise SuiteFailure(errors)
    return results


def _engine_registry(engine: SimEngine, wall_seconds: float) -> StatRegistry:
    """Typed registry view of one runner invocation's engine counters."""
    registry = StatRegistry()
    stats = engine.stats
    registry.counter(
        "engine.memory_hits", "jobs", "jobs served from the in-memory cache"
    ).inc(stats.memory_hits)
    registry.counter(
        "engine.store_hits", "jobs", "jobs served from the persistent store"
    ).inc(stats.store_hits)
    registry.counter(
        "engine.misses", "jobs", "jobs simulated cold this invocation"
    ).inc(stats.misses)
    registry.counter(
        "engine.failures", "jobs", "jobs that resolved to a JobFailure"
    ).inc(stats.failures)
    registry.gauge(
        "engine.sim_seconds", "s", "wall time spent inside simulations"
    ).set(stats.sim_seconds)
    registry.gauge(
        "runner.wall_seconds", "s", "wall time of the whole invocation"
    ).set(wall_seconds)
    if engine.store is not None:
        for name, value in engine.store.counters().items():
            registry.counter(
                f"store.{name}", "records",
                f"persistent result store '{name}' counter",
            ).inc(value)
    return registry


def _emit_run_records(
    engine: SimEngine,
    scale: str,
    names: List[str],
    jobs: int,
    cache_dir: Optional[str],
    no_cache: bool,
    wall_seconds: float,
    manifest_path: Optional[str],
) -> None:
    """Provenance side-channel of one finished invocation: a metrics
    snapshot appended to the store sidecar (when a store is attached) and
    an optional :class:`~repro.telemetry.manifest.RunManifest` file.

    Both are observability artefacts — the rendered experiment output
    stays byte-identical whether or not they are emitted.
    """
    manifest = build_manifest(
        scale=scale,
        experiments=names or list(EXPERIMENTS),
        jobs=jobs,
        cache_dir=cache_dir,
        no_cache=no_cache,
        seed=SCALES[scale].seed,
        wall_seconds=wall_seconds,
        engine=engine,
    )
    if engine.store is not None:
        registry = _engine_registry(engine, wall_seconds)
        engine.store.append_metrics(metrics_snapshot(registry, meta={
            "source": "repro-experiments",
            "config_hash": manifest.config_hash,
            "scale": scale,
            "experiments": list(manifest.experiments),
        }))
    if manifest_path:
        write_manifest(manifest_path, manifest)
        _log.info("manifest written to %s", manifest_path)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (see module docstring for usage)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures",
    )
    parser.add_argument(
        "names", nargs="*", help="experiments to run (default: all)"
    )
    parser.add_argument(
        "--scale", default="default", choices=sorted(SCALES),
        help="trace scale / candidate budget preset",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="also write the rendered results to FILE",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="simulate cold jobs over N worker processes (default: 1)",
    )
    parser.add_argument(
        "--cache-dir", default="default", metavar="DIR",
        help="persistent result store location "
             "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent result store",
    )
    parser.add_argument(
        "--backend", choices=BACKEND_CHOICES, default="reference",
        help="execution engine for simulation jobs (see docs/backends.md); "
             "'auto' picks the columnar fast path when NumPy is importable "
             "(default: reference)",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="per-experiment timing and engine/store counters on stderr",
    )
    parser.add_argument(
        "--keep-going", "-k", action="store_true",
        help="on an experiment failure, record it and run the rest "
             "(exit non-zero at the end)",
    )
    parser.add_argument(
        "--manifest", default=None, metavar="FILE",
        help="write a run manifest (config hash, seed, wall time, cache "
             "hit/miss counters) to FILE; see docs/observability.md",
    )
    args = parser.parse_args(argv)
    logging.basicConfig(
        stream=sys.stderr,
        level=logging.INFO if args.verbose else logging.WARNING,
        format="[%(name)s] %(message)s",
    )
    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    engine = build_engine(
        jobs=args.jobs, cache_dir=args.cache_dir, no_cache=args.no_cache
    )
    started = time.time()

    def emit_records() -> None:
        _emit_run_records(
            engine, args.scale, args.names, args.jobs, args.cache_dir,
            args.no_cache, time.time() - started, args.manifest,
        )

    if args.output:
        class _Tee:
            def __init__(self, *streams: TextIO) -> None:
                self._streams = streams

            def write(self, text: str) -> None:
                for s in self._streams:
                    s.write(text)

            def flush(self) -> None:
                for s in self._streams:
                    s.flush()

        try:
            with open(args.output, "w") as fh:
                run_all(
                    scale=args.scale,
                    names=args.names or None,
                    stream=_Tee(sys.stdout, fh),
                    engine=engine,
                    keep_going=args.keep_going,
                    backend=args.backend,
                )
        except SuiteFailure as failure:
            print(f"[runner] {failure}", file=sys.stderr)
            return 1
        finally:
            # emitted even on failure: the manifest records what was
            # attempted and how the cache behaved up to the error
            emit_records()
        return 0
    try:
        run_all(
            scale=args.scale, names=args.names or None, engine=engine,
            keep_going=args.keep_going, backend=args.backend,
        )
    except SuiteFailure as failure:
        print(f"[runner] {failure}", file=sys.stderr)
        return 1
    finally:
        emit_records()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
