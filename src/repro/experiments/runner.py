"""CLI runner: regenerate every table and figure.

Usage::

    python -m repro.experiments                 # all experiments, default scale
    python -m repro.experiments --scale small   # faster, noisier
    python -m repro.experiments fig06 table1    # a subset
    python -m repro.experiments --list

Experiments share one :class:`ExperimentContext`, so e.g. the region logs
computed for fig01 are reused by fig06's pair pruning and the matrix behind
table1 feeds fig09-13.
"""

import argparse
import sys
import time
from typing import Callable, Dict

from repro.experiments import fig01, fig06, fig07, fig08, fig09, fig10
from repro.experiments import fig11, fig12, fig13, appendix_a, table1
from repro.experiments import ext_energy, ext_nway, ext_queueing, ext_resync
from repro.experiments import ext_robustness
from repro.experiments.common import SCALES, ExperimentContext


def _render(module, result) -> str:
    if hasattr(module, "render"):
        return module.render(result)
    return result.render()


#: Registry in the paper's presentation order.
EXPERIMENTS: Dict[str, Callable] = {
    "fig01": fig01.run,
    "appendix_a": appendix_a.run,
    "fig06": fig06.run,
    "fig07": fig07.run,
    "fig08": fig08.run,
    "table1": table1.run,
    "fig09": fig09.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    # extensions beyond the paper's figures (see each module's docstring)
    "ext_queueing": ext_queueing.run,
    "ext_nway": ext_nway.run,
    "ext_resync": ext_resync.run,
    "ext_energy": ext_energy.run,
    "ext_robustness": ext_robustness.run,
}

_MODULES = {
    "fig01": fig01, "appendix_a": appendix_a, "fig06": fig06,
    "fig07": fig07, "fig08": fig08, "table1": table1, "fig09": fig09,
    "fig10": fig10, "fig11": fig11, "fig12": fig12, "fig13": fig13,
    "ext_queueing": ext_queueing, "ext_nway": ext_nway,
    "ext_resync": ext_resync,
    "ext_energy": ext_energy,
    "ext_robustness": ext_robustness,
}


def run_all(scale: str = "default", names=None, stream=None):
    """Run the selected experiments, print each, return the result dict."""
    stream = stream if stream is not None else sys.stdout
    ctx = ExperimentContext(scale=scale)
    selected = list(names) if names else list(EXPERIMENTS)
    results = {}
    for name in selected:
        if name not in EXPERIMENTS:
            raise ValueError(
                f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
            )
        started = time.time()
        result = EXPERIMENTS[name](ctx)
        results[name] = result
        print(f"\n=== {name} ({time.time() - started:.1f}s) ===", file=stream)
        print(_render(_MODULES[name], result), file=stream)
    return results


def main(argv=None) -> int:
    """CLI entry point (see module docstring for usage)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures",
    )
    parser.add_argument(
        "names", nargs="*", help="experiments to run (default: all)"
    )
    parser.add_argument(
        "--scale", default="default", choices=sorted(SCALES),
        help="trace scale / candidate budget preset",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="also write the rendered results to FILE",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    if args.output:
        class _Tee:
            def __init__(self, *streams):
                self._streams = streams

            def write(self, text):
                for s in self._streams:
                    s.write(text)

            def flush(self):
                for s in self._streams:
                    s.flush()

        with open(args.output, "w") as fh:
            run_all(
                scale=args.scale,
                names=args.names or None,
                stream=_Tee(sys.stdout, fh),
            )
    else:
        run_all(scale=args.scale, names=args.names or None)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
