"""Extension experiment: contesting as a need-to-have mode (Section 7.1).

The paper argues HET-C *with contesting as an available-but-optional mode*
is the most robust design point: designed for heavy loading (cw-har), it
uses idle partner cores for contested single-thread execution when load is
light.  This experiment quantifies that with the job-stream simulator: the
same Poisson streams run on HET-C under the plain best-available policy and
under contest-when-idle (contested service rates measured by the actual
contesting co-simulation), across a sweep of arrival rates.

Expected shape: contest-when-idle wins at light load (idle partners exist;
jobs finish at contested speed) and converges to the plain policy as load
grows (no idle partners to gang up with).
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cmp.queueing import CmpQueueSimulator, JobStream
from repro.experiments.common import ExperimentContext
from repro.experiments.table1 import Table1Result
from repro.experiments.table1 import run as run_table1
from repro.uarch.config import core_config
from repro.util.tables import format_table

ARRIVAL_RATES = (1e-6, 5e-5, 2e-4, 8e-4)


@dataclass
class ExtRobustnessResult:
    design_types: Tuple[str, ...]
    #: per arrival rate: (plain turnaround us, contest-mode turnaround us,
    #:                    contested job fraction)
    rows: Dict[float, Tuple[float, float, float]]

    def render(self) -> str:
        """Turnaround-vs-load table for both scheduling policies."""
        table = format_table(
            ["arrival rate (/ns)", "plain (us)", "contest-when-idle (us)",
             "gain %", "contested jobs"],
            [
                [
                    f"{rate:g}",
                    plain / 1000.0,
                    contest / 1000.0,
                    (plain / contest - 1.0) * 100.0,
                    f"{frac:.0%}",
                ]
                for rate, (plain, contest, frac) in self.rows.items()
            ],
            title=(
                "Extension: contesting as a need-to-have mode on HET-C "
                f"({' & '.join(self.design_types)})"
            ),
        )
        return (
            f"{table}\n"
            "(contesting engages only while partners are idle; its gain at "
            "light load trades against blocking the partner core for "
            "arrivals that land mid-gang — the mode pays off exactly when "
            "per-job contesting speedups exceed that blocking cost)"
        )


def run(ctx: ExperimentContext, table1: Table1Result = None) -> ExtRobustnessResult:
    """Sweep arrival rates on HET-C under plain and contest-when-idle."""
    table1 = table1 or run_table1(ctx)
    design = table1.designs["HET-C"]
    types = design.core_types
    matrix = table1.matrix
    configs = [core_config(n) for n in types]
    # the mode is *optional*: the scheduler engages contesting only when it
    # is predicted to help, so the ganged service rate is never below the
    # best single available core
    contest_ipt = {
        bench: max(
            ctx.contest(bench, configs).ipt,
            max(matrix[bench][t] for t in types),
        )
        for bench in ctx.benchmarks
    }
    rows: Dict[float, Tuple[float, float, float]] = {}
    for rate in ARRIVAL_RATES:
        stream = JobStream(arrival_rate=rate, job_length=100_000, jobs=250)
        plain = CmpQueueSimulator(
            matrix, types, policy="best-available"
        ).run(stream, seed=7)
        contest_sim = CmpQueueSimulator(
            matrix, types, policy="contest-when-idle",
            contest_ipt=contest_ipt,
        )
        contested = contest_sim.run(stream, seed=7)
        rows[rate] = (
            plain.mean_turnaround_ns,
            contested.mean_turnaround_ns,
            contest_sim.contested_jobs / stream.jobs,
        )
    return ExtRobustnessResult(design_types=types, rows=rows)
