"""Experiment harness: one module per table/figure of the paper.

Every experiment is a function taking an :class:`ExperimentContext` (which
fixes the trace scale, seed and GRB latency, and caches simulation results
shared between experiments) and returning a result object with a
``render()`` method that prints the same rows/series the paper reports.

| Module       | Paper artefact                                              |
|--------------|-------------------------------------------------------------|
| ``fig01``    | Figure 1 — oracle switching speedup vs. granularity         |
| ``fig06``    | Figure 6 — 2-way contesting vs. own customised core         |
| ``fig07``    | Figure 7 — isolating L2-cache heterogeneity                 |
| ``fig08``    | Figure 8 — speedup vs. core-to-core latency                 |
| ``table1``   | Table 1 — five CMP designs and their harmonic-mean IPT      |
| ``fig09``    | Figure 9 — per-benchmark IPT on the five designs            |
| ``fig10``    | Figure 10 — HOM vs HET-A (no contesting / contesting)       |
| ``fig11``    | Figure 11 — HOM vs HET-B (no contesting / contesting)       |
| ``fig12``    | Figure 12 — HOM vs HET-C (no contesting / contesting)       |
| ``fig13``    | Figure 13 — 2-type contesting vs 3 core types vs HET-ALL    |
| ``appendix_a``| Appendix A — the 11x11 benchmark-on-core IPT matrix        |

Run everything: ``python -m repro.experiments`` (see ``runner.py``).
"""

from repro.experiments.common import ExperimentContext, SCALES

__all__ = ["ExperimentContext", "SCALES"]
