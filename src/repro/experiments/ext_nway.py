"""Extension experiment: N-way contesting.

The paper's implementation section is written for N-way contesting but the
evaluation stops at 2-way.  This extension contests *three* core types
(HET-D's selection) and compares against 2-way contesting of HET-C's types
and the best single core — quantifying whether a third GRB buys anything
once two well-chosen types are already contesting.
"""

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.experiments.common import ExperimentContext
from repro.experiments.table1 import Table1Result
from repro.experiments.table1 import run as run_table1
from repro.uarch.config import core_config
from repro.util.stats import arithmetic_mean
from repro.util.tables import format_table


@dataclass
class ExtNwayResult:
    two_way_types: Tuple[str, ...]
    three_way_types: Tuple[str, ...]
    #: per benchmark: (best single IPT, 2-way contest IPT, 3-way contest IPT)
    rows: Dict[str, Tuple[float, float, float]]

    def averages(self) -> Tuple[float, float, float]:
        """(best single, 2-way, 3-way) average IPTs."""
        return (
            arithmetic_mean(v[0] for v in self.rows.values()),
            arithmetic_mean(v[1] for v in self.rows.values()),
            arithmetic_mean(v[2] for v in self.rows.values()),
        )

    def render(self) -> str:
        """The 2-way vs 3-way comparison table."""
        table = format_table(
            ["bench", "best single", "2-way contest", "3-way contest"],
            [[b, s, two, three] for b, (s, two, three) in self.rows.items()],
            title=(
                f"Extension: 2-way ({' & '.join(self.two_way_types)}) vs "
                f"3-way ({' & '.join(self.three_way_types)}) contesting"
            ),
        )
        s, two, three = self.averages()
        return (
            f"{table}\n"
            f"averages: single {s:.3f} | 2-way {two:.3f} | 3-way {three:.3f}"
        )


def run(ctx: ExperimentContext, table1: Table1Result = None) -> ExtNwayResult:
    """Contest HET-C's pair and HET-D's trio on every benchmark."""
    table1 = table1 or run_table1(ctx)
    matrix = table1.matrix
    two_types = table1.designs["HET-C"].core_types
    three_types = table1.designs["HET-D"].core_types
    two_cfgs = [core_config(n) for n in two_types]
    three_cfgs = [core_config(n) for n in three_types]
    rows = {}
    for bench in ctx.benchmarks:
        best_single = max(matrix[bench].values())
        two = ctx.contest(bench, two_cfgs).ipt
        three = ctx.contest(bench, three_cfgs).ipt
        rows[bench] = (best_single, two, three)
    return ExtNwayResult(
        two_way_types=two_types, three_way_types=three_types, rows=rows
    )
