"""Extension experiment: saturated-lagger policy comparison.

The paper's remedy for a saturated lagger is to disable its contesting
mode, which permanently forfeits the lagger's contribution to later code
regions it would have won.  The "resync" extension re-forks the lagger at
the leader's retirement point instead (the same machinery Section 4.3 uses
for exceptions).  This experiment contests a rate-mismatched pair — the
fastest-peak-rate core against each benchmark's own core — under both
policies, with a deliberately tight lagging distance so saturation actually
occurs.
"""

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.experiments.common import ExperimentContext
from repro.uarch.config import APPENDIX_A_CORES, core_config
from repro.util.stats import arithmetic_mean
from repro.util.tables import format_table


@dataclass
class ExtResyncResult:
    partner: str
    max_lag: int
    #: per benchmark: (disable-policy IPT, resync-policy IPT, resync count)
    rows: Dict[str, Tuple[float, float, int]]

    def render(self) -> str:
        """Disable-vs-resync table with the mean gain."""
        table = format_table(
            ["bench", "disable IPT", "resync IPT", "resyncs"],
            [[b, d, r, n] for b, (d, r, n) in self.rows.items()],
            title=(
                f"Extension: saturated-lagger policy, pair (own, {self.partner}), "
                f"max_lag={self.max_lag}"
            ),
        )
        mean_gain = arithmetic_mean(
            (r / d - 1) * 100 for d, r, _ in self.rows.values()
        )
        return f"{table}\nmean resync-over-disable gain: {mean_gain:+.1f}%"


def run(
    ctx: ExperimentContext,
    max_lag: int = 256,
    sat_grace_ns: float = 20.0,
) -> ExtResyncResult:
    """Contest each benchmark against the fastest-peak core, both policies."""
    # the partner with the highest peak retirement rate saturates slower
    # cores most readily (crafty's 8-wide 0.19ns core in the palette)
    partner = max(
        APPENDIX_A_CORES, key=lambda n: APPENDIX_A_CORES[n].peak_ips
    )
    rows = {}
    for bench in ctx.benchmarks:
        if bench == partner:
            continue
        configs = [core_config(bench), core_config(partner)]
        disable = ctx.contest(
            bench, configs, max_lag=max_lag, sat_grace_ns=sat_grace_ns,
            lagger_policy="disable",
        )
        resync = ctx.contest(
            bench, configs, max_lag=max_lag, sat_grace_ns=sat_grace_ns,
            lagger_policy="resync",
        )
        rows[bench] = (disable.ipt, resync.ipt, resync.resyncs)
    return ExtResyncResult(partner=partner, max_lag=max_lag, rows=rows)
