"""Shared machinery for Figures 10-12: contesting on a constrained CMP.

For a two-core-type design (HET-A/B/C), each benchmark is evaluated three
ways: on the HOM core, on the design's most suitable core without
contesting, and contested between the design's two core types.  The paper's
headline: contesting recovers (and often exceeds) the per-benchmark
performance sacrificed by constraining the core types, with saturated
laggers appearing when one type's peak retirement rate cannot be sustained
by the other (mcf's core on HET-B).
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import ExperimentContext
from repro.experiments.table1 import Table1Result
from repro.experiments.table1 import run as run_table1
from repro.uarch.config import core_config
from repro.util.stats import arithmetic_mean, percent_change
from repro.util.tables import format_table


@dataclass
class HetContestResult:
    design_name: str
    core_types: Tuple[str, ...]
    #: per benchmark: (HOM IPT, best-available IPT, contested IPT)
    rows: Dict[str, Tuple[float, float, float]]
    #: benchmarks for which a core type was disabled as a saturated lagger
    saturated: Dict[str, List[str]]

    def contest_speedup(self, bench: str) -> float:
        """Contesting vs not contesting on the same design (%)."""
        _, avail, contested = self.rows[bench]
        return percent_change(contested, avail)

    @property
    def average_speedup(self) -> float:
        return arithmetic_mean(
            self.contest_speedup(b) for b in self.rows
        )

    @property
    def max_speedup(self) -> Tuple[str, float]:
        bench = max(self.rows, key=self.contest_speedup)
        return bench, self.contest_speedup(bench)

    def average_vs_hom(self, contested: bool) -> float:
        """Average speedup of the design over HOM, with/without contesting."""
        index = 2 if contested else 1
        return arithmetic_mean(
            percent_change(values[index], values[0])
            for values in self.rows.values()
        )

    def render(self, figure: str) -> str:
        """The figure's table plus contesting-vs-HOM summary lines."""
        table = format_table(
            ["bench", "HOM", f"{self.design_name} no-contest",
             f"{self.design_name} contest", "contest speedup %", "saturated"],
            [
                [
                    b,
                    hom,
                    avail,
                    contested,
                    self.contest_speedup(b),
                    ",".join(self.saturated.get(b, [])) or "-",
                ]
                for b, (hom, avail, contested) in self.rows.items()
            ],
            title=(
                f"{figure}: {self.design_name} "
                f"({' & '.join(self.core_types)} cores) vs HOM"
            ),
        )
        bench, mx = self.max_speedup
        return (
            f"{table}\n"
            f"contesting vs no-contesting on {self.design_name}: "
            f"avg {self.average_speedup:+.1f}%, max {mx:+.1f}% ({bench})\n"
            f"{self.design_name} vs HOM: {self.average_vs_hom(False):+.1f}% "
            f"without contesting, {self.average_vs_hom(True):+.1f}% with"
        )


def run_design(
    ctx: ExperimentContext, design_name: str, table1: Table1Result = None
) -> HetContestResult:
    """Evaluate one two-core-type design with and without contesting."""
    table1 = table1 or run_table1(ctx)
    design = table1.designs[design_name]
    if len(design.core_types) != 2:
        raise ValueError(
            f"{design_name} has {len(design.core_types)} core types; "
            "figures 10-12 evaluate two-type designs"
        )
    matrix = table1.matrix
    hom_core = table1.designs["HOM"].core_types[0]
    configs = [core_config(n) for n in design.core_types]
    rows = {}
    saturated = {}
    for bench in ctx.benchmarks:
        hom_ipt = matrix[bench][hom_core]
        avail = max(matrix[bench][n] for n in design.core_types)
        result = ctx.contest(bench, configs)
        rows[bench] = (hom_ipt, avail, result.ipt)
        if result.saturated:
            saturated[bench] = list(result.saturated)
    return HetContestResult(
        design_name=design_name,
        core_types=design.core_types,
        rows=rows,
        saturated=saturated,
    )
