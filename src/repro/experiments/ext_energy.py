"""Extension experiment: the energy cost of contesting.

Section 1 positions contesting as a need-to-have mode trading power for
single-thread performance.  For each benchmark's best contesting pair this
experiment reports the energy ratio (contested vs the benchmark's own core
alone), the speedup, and the resulting energy-delay-product ratio — the
quantitative form of the paper's "how performance and power are balanced"
robustness claim.
"""

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.experiments.common import ExperimentContext
from repro.experiments.fig06 import Fig06Result
from repro.experiments.fig06 import run as run_fig06
from repro.power.model import contest_energy, standalone_energy
from repro.uarch.config import core_config
from repro.util.stats import arithmetic_mean
from repro.util.tables import format_table


@dataclass
class ExtEnergyResult:
    #: per benchmark: (speedup %, energy ratio, EDP ratio)
    rows: Dict[str, Tuple[float, float, float]]

    def render(self) -> str:
        """Per-benchmark energy/EDP ratios with means."""
        table = format_table(
            ["bench", "speedup %", "energy ratio", "EDP ratio"],
            [[b, s, e, d] for b, (s, e, d) in self.rows.items()],
            title="Extension: energy cost of 2-way contesting (vs own core alone)",
        )
        mean_e = arithmetic_mean(v[1] for v in self.rows.values())
        mean_d = arithmetic_mean(v[2] for v in self.rows.values())
        return (
            f"{table}\n"
            f"mean energy ratio: {mean_e:.2f}x   mean EDP ratio: {mean_d:.2f}x\n"
            "(redundant execution roughly doubles energy; the speedup claws "
            "back part of the delay term)"
        )


def run(ctx: ExperimentContext, fig06: Fig06Result = None) -> ExtEnergyResult:
    """Account the energy of each benchmark's best contesting pair."""
    fig06 = fig06 or run_fig06(ctx)
    rows = {}
    for bench, (pair, _, _) in fig06.rows.items():
        own_cfg = core_config(bench)
        alone = ctx.standalone(bench, own_cfg)
        contest = ctx.contest(
            bench, [core_config(pair[0]), core_config(pair[1])]
        )
        e_alone = standalone_energy(alone, own_cfg)
        e_contest = contest_energy(
            contest,
            {pair[0]: core_config(pair[0]), pair[1]: core_config(pair[1])},
            grb_latency_ns=ctx.grb_latency_ns,
        )
        speedup = (contest.ipt / alone.ipt - 1.0) * 100.0
        energy_ratio = e_contest.total_nj / e_alone.total_nj
        edp_ratio = e_contest.energy_delay(contest.time_ps / 1000.0) / (
            e_alone.energy_delay(alone.time_ps / 1000.0)
        )
        rows[bench] = (speedup, energy_ratio, edp_ratio)
    return ExtEnergyResult(rows=rows)
