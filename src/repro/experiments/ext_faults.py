"""Extension experiment: graceful degradation under GRB and core faults.

Architectural contesting is naturally fail-soft: the GRB result transfers
are *hints* (injections and early branch resolutions), so losing them can
slow the gang down but never corrupt architectural state, and a dead core
is handled by the same machinery that removes a saturated lagger.  This
experiment quantifies both claims with the :mod:`repro.faults` harness:

* **Drop sweep** — contest each benchmark's first candidate pair while a
  seeded :class:`~repro.faults.FaultPlan` drops a growing fraction of GRB
  transfers.  Expected shape: contested IPT degrades monotonically from
  the fault-free gang toward (and never materially below) the best
  standalone core — hints lost, correctness kept.
* **Leader kill** — kill the fault-free winner at several points through
  the run.  The run must still complete, with the surviving core taking
  over as leader; reported IPT shows the cost of losing the fast core
  early versus late.
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import ExperimentContext
from repro.faults import FaultPlan
from repro.uarch.config import core_config
from repro.util.tables import format_table

#: fraction of GRB transfers dropped in the sweep
DROP_RATES = (0.0, 0.10, 0.25, 0.50)
#: points (fraction of the trace retired) at which the leader is killed
KILL_FRACTIONS = (0.25, 0.50, 0.75)
#: seed for every fault plan (decisions are hash-based; see repro.faults)
FAULT_SEED = 1009


@dataclass
class ExtFaultsResult:
    drop_rates: Tuple[float, ...]
    kill_fractions: Tuple[float, ...]
    #: per benchmark: the contested pair the sweep ran on
    pairs: Dict[str, Tuple[str, str]]
    #: per benchmark: IPT of the best standalone core (the fail-soft floor)
    standalone: Dict[str, float]
    #: per benchmark: contested IPT per drop rate (same order as drop_rates)
    drop_ipt: Dict[str, List[float]]
    #: per benchmark: winner of the fault-free contest (the kill target)
    winners: Dict[str, str]
    #: per benchmark: (winner after the kill, IPT) per kill fraction
    kills: Dict[str, List[Tuple[str, float]]]

    def render(self) -> str:
        """Drop-sweep and leader-kill tables."""
        drop_table = format_table(
            ["benchmark", "pair", "standalone"]
            + [f"drop {rate:.0%}" for rate in self.drop_rates],
            [
                [bench, "+".join(self.pairs[bench]), self.standalone[bench]]
                + list(self.drop_ipt[bench])
                for bench in sorted(self.pairs)
            ],
            title="Extension: contested IPT under GRB transfer drops",
        )
        kill_table = format_table(
            ["benchmark", "clean winner"]
            + [f"kill @{frac:.0%}" for frac in self.kill_fractions],
            [
                [bench, self.winners[bench]]
                + [
                    f"{winner} ({ipt:.2f})"
                    for winner, ipt in self.kills[bench]
                ]
                for bench in sorted(self.kills)
            ],
            title="Extension: leader killed mid-run (survivor finishes)",
        )
        return (
            f"{drop_table}\n\n{kill_table}\n"
            "(dropped transfers cost hints, never correctness: IPT decays "
            "from the fault-free gang toward the best standalone core; a "
            "killed leader is removed like a saturated lagger and the "
            "survivor completes the run)"
        )


def run(ctx: ExperimentContext) -> ExtFaultsResult:
    """Sweep GRB drop rates and leader-kill points per benchmark."""
    pairs: Dict[str, Tuple[str, str]] = {}
    standalone: Dict[str, float] = {}
    drop_ipt: Dict[str, List[float]] = {}
    kills: Dict[str, List[Tuple[str, float]]] = {}
    winners: Dict[str, str] = {}
    trace_len = ctx.scale.trace_len
    for bench in ctx.benchmarks:
        pair = ctx.candidate_pairs(bench)[0]
        pairs[bench] = pair
        configs = [core_config(pair[0]), core_config(pair[1])]
        standalone[bench] = max(
            ctx.standalone_ipt(bench, name) for name in pair
        )
        sweep: List[float] = []
        for rate in DROP_RATES:
            plan = (
                FaultPlan(seed=FAULT_SEED, drop_rate=rate) if rate else None
            )
            sweep.append(ctx.contest(bench, configs, faults=plan).ipt)
        drop_ipt[bench] = sweep
        clean_winner = ctx.contest(bench, configs).winner
        winners[bench] = clean_winner
        winner_id = 0 if configs[0].name == clean_winner else 1
        killed: List[Tuple[str, float]] = []
        for frac in KILL_FRACTIONS:
            plan = FaultPlan(
                seed=FAULT_SEED,
                kill_core=winner_id,
                kill_at_commit=int(frac * trace_len),
            )
            result = ctx.contest(bench, configs, faults=plan)
            killed.append((result.winner, result.ipt))
        kills[bench] = killed
    return ExtFaultsResult(
        drop_rates=DROP_RATES,
        kill_fractions=KILL_FRACTIONS,
        pairs=pairs,
        standalone=standalone,
        drop_ipt=drop_ipt,
        winners=winners,
        kills=kills,
    )
