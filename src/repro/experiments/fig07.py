"""Figure 7 — isolating the contribution of L2-cache heterogeneity.

Methodology (Section 5.2.1): re-run each benchmark's best contesting pair,
but replace the pair with two copies of one of its cores where one copy gets
the *other* core's L2 (configuration and access latency).  Both assignments
are tried; the better trial is the L2-only bar.  The paper finds that for
most benchmarks only a minor portion of the gain is attributable to L2
heterogeneity alone (gcc and parser being the exceptions) — the bulk comes
from heterogeneity in the core microarchitecture.
"""

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.experiments.common import ExperimentContext
from repro.experiments.fig06 import Fig06Result
from repro.experiments.fig06 import run as run_fig06
from repro.uarch.config import core_config
from repro.util.stats import arithmetic_mean, percent_change
from repro.util.tables import format_table


@dataclass
class Fig07Result:
    #: per benchmark: (total contesting speedup %, L2-only speedup %)
    rows: Dict[str, Tuple[float, float]]

    def l2_fraction(self, bench: str) -> float:
        """Share of the total gain attributable to L2 heterogeneity."""
        total, l2_only = self.rows[bench]
        if total <= 0:
            return 0.0
        return max(0.0, min(1.0, l2_only / total))

    def render(self) -> str:
        """The Figure-7 stacked-bar table."""
        table = format_table(
            ["bench", "total speedup %", "L2-only speedup %", "L2 share"],
            [
                [b, total, l2, f"{self.l2_fraction(b):.2f}"]
                for b, (total, l2) in self.rows.items()
            ],
            title="Figure 7: contribution of L2-cache heterogeneity to the contesting speedup",
        )
        mean_share = arithmetic_mean(
            self.l2_fraction(b) for b in self.rows
        )
        return f"{table}\nmean L2-only share of the gain: {mean_share:.2f}"


def run(ctx: ExperimentContext, fig06: Fig06Result = None) -> Fig07Result:
    """Run the L2-swap isolation experiment for every best pair."""
    fig06 = fig06 or run_fig06(ctx)
    rows = {}
    for bench, (pair, _, own) in fig06.rows.items():
        total = fig06.speedup(bench)
        a, b = core_config(pair[0]), core_config(pair[1])
        best_l2_ipt = 0.0
        for base, donor in ((a, b), (b, a)):
            hybrid = base.with_l2(donor)
            result = ctx.contest(bench, [base, hybrid])
            if result.ipt > best_l2_ipt:
                best_l2_ipt = result.ipt
        l2_only = percent_change(best_l2_ipt, own)
        rows[bench] = (total, l2_only)
    return Fig07Result(rows=rows)
