"""Shared experiment infrastructure: scales, the engine façade, pair selection.

The paper simulates 100M-instruction SimPoints; we scale traces down (see
DESIGN.md).  All experiments share one :class:`ExperimentContext`, a thin
façade over :class:`repro.engine.SimEngine`: every simulation an experiment
asks for becomes a declarative job whose result is resolved through the
engine's in-memory cache, optional persistent store, and executor.  The
expensive artefacts — traces, standalone runs, 20-instruction region logs,
contested runs — are therefore computed once per (trace recipe, config,
knobs) and reused across figures, exactly as the paper's region logs feed
both Figure 1 and the pair selection of Figure 6; with a parallel executor
the batched accessors (:meth:`ExperimentContext.ipt_matrix`,
:meth:`ExperimentContext.prefetch`) fan the whole frontier out at once.
"""

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.regions import BASE_REGION, RegionLog
from repro.analysis.switching import pair_switch_time
from repro.backend import resolve_backend_name
from repro.core.system import ContestResult
from repro.faults import FaultPlan
from repro.engine import (
    ContestJob,
    RegionLogJob,
    SimEngine,
    StandaloneJob,
    TraceSpec,
)
from repro.isa.trace import Trace
from repro.isa.workloads import BENCHMARKS
from repro.uarch.config import APPENDIX_A_CORES, CoreConfig, core_config
from repro.uarch.run import StandaloneResult


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs trading fidelity for wall-clock time."""

    name: str
    trace_len: int
    #: how many candidate pairs (by oracle pruning) to actually contest per
    #: benchmark when searching for the best contesting pair
    pair_candidates: int
    seed: int = 11


SCALES: Dict[str, ExperimentScale] = {
    "tiny": ExperimentScale("tiny", 6_000, 3),
    "small": ExperimentScale("small", 20_000, 4),
    "default": ExperimentScale("default", 60_000, 6),
    "full": ExperimentScale("full", 100_000, 8),
}


class ExperimentContext:
    """Resolves traces and simulation results shared across experiments.

    A façade over :class:`repro.engine.SimEngine`: accessors build jobs
    keyed by the full (config fingerprint, trace fingerprint, knobs)
    identity — never by benchmark name alone, so a changed seed or scale
    can never alias a stale cache entry — and repeated requests return the
    engine's cached object.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.SimEngine` to resolve jobs through; by
        default a serial, memory-cache-only engine (no persistence).
    """

    def __init__(
        self,
        scale: str = "default",
        grb_latency_ns: float = 1.0,
        benchmarks: Sequence[str] = BENCHMARKS,
        seed: Optional[int] = None,
        engine: Optional[SimEngine] = None,
        backend: str = "reference",
    ) -> None:
        try:
            preset = SCALES[scale]
        except KeyError:
            raise ValueError(
                f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
            ) from None
        # accept "auto" here (the runner's --backend forwards verbatim) but
        # store only a concrete name: jobs and cache keys never see "auto"
        self.backend = resolve_backend_name(backend)
        if seed is not None:
            preset = ExperimentScale(
                name=preset.name,
                trace_len=preset.trace_len,
                pair_candidates=preset.pair_candidates,
                seed=seed,
            )
        self.scale = preset
        self.grb_latency_ns = grb_latency_ns
        self.benchmarks: Tuple[str, ...] = tuple(benchmarks)
        self.core_names: Tuple[str, ...] = tuple(APPENDIX_A_CORES)
        self.engine = engine or SimEngine()
        self._traces: Dict[str, Trace] = {}

    # --- primitives ----------------------------------------------------

    def trace_spec(self, bench: str) -> TraceSpec:
        """The benchmark's trace recipe at this context's scale/seed (the
        identity every cache key is derived from)."""
        return TraceSpec(
            profile=bench, length=self.scale.trace_len, seed=self.scale.seed
        )

    def trace(self, bench: str) -> Trace:
        """The benchmark's materialised trace (cached per context)."""
        if bench not in self._traces:
            self._traces[bench] = self.trace_spec(bench).materialise()
        return self._traces[bench]

    def standalone(self, bench: str, config: CoreConfig) -> StandaloneResult:
        """Standalone run of the benchmark on a config (engine-cached)."""
        return self.engine.run(StandaloneJob(
            config, self.trace_spec(bench), backend=self.backend,
        ))

    def standalone_ipt(self, bench: str, core_name: str) -> float:
        """IPT of the benchmark on a named Appendix-A core."""
        return self.standalone(bench, core_config(core_name)).ipt

    def region_logs(self, bench: str) -> Dict[str, RegionLog]:
        """20-instruction region logs of ``bench`` on every core type,
        resolved as one engine batch."""
        spec = self.trace_spec(bench)
        jobs = [
            RegionLogJob(core_config(name), spec, BASE_REGION)
            for name in self.core_names
        ]
        logs = self.engine.run_many(jobs)
        return dict(zip(self.core_names, logs))

    def contest(
        self,
        bench: str,
        configs: Sequence[CoreConfig],
        grb_latency_ns: Optional[float] = None,
        max_lag: int = 0,
        sat_grace_ns: float = 400.0,
        lagger_policy: str = "disable",
        faults: Optional[FaultPlan] = None,
    ) -> ContestResult:
        """Contested run of the benchmark on the given cores (engine-cached).

        ``max_lag`` / ``sat_grace_ns`` / ``lagger_policy`` / ``faults``
        forward to :class:`~repro.core.system.ContestingSystem` and
        participate in the cache key.
        """
        latency = (
            self.grb_latency_ns if grb_latency_ns is None else grb_latency_ns
        )
        return self.engine.run(self._contest_job(
            bench, configs, latency, max_lag, sat_grace_ns, lagger_policy,
            faults,
        ))

    def _contest_job(
        self,
        bench: str,
        configs: Sequence[CoreConfig],
        latency: float,
        max_lag: int = 0,
        sat_grace_ns: float = 400.0,
        lagger_policy: str = "disable",
        faults: Optional[FaultPlan] = None,
    ) -> ContestJob:
        return ContestJob(
            configs=tuple(configs),
            trace=self.trace_spec(bench),
            grb_latency_ns=latency,
            max_lag=max_lag,
            sat_grace_ns=sat_grace_ns,
            lagger_policy=lagger_policy,
            faults=faults,
            backend=self.backend,
        )

    # --- derived artefacts ----------------------------------------------

    def ipt_matrix(self) -> Dict[str, Dict[str, float]]:
        """The Appendix-A matrix: matrix[benchmark][core_type] -> IPT.

        All |benchmarks| x |cores| standalone jobs are submitted as one
        engine batch, so a parallel executor fills the matrix concurrently.
        """
        cells = [
            (bench, name)
            for bench in self.benchmarks
            for name in self.core_names
        ]
        results = self.engine.run_many([
            StandaloneJob(
                core_config(name), self.trace_spec(bench),
                backend=self.backend,
            )
            for bench, name in cells
        ])
        matrix: Dict[str, Dict[str, float]] = {
            bench: {} for bench in self.benchmarks
        }
        for (bench, name), result in zip(cells, results):
            matrix[bench][name] = result.ipt
        return matrix

    def prefetch(self, contests: bool = True) -> None:
        """Batch-submit the artefacts every figure shares — the standalone
        matrix, all region logs, and (optionally) the candidate contests —
        so a parallel executor computes them with full fan-out before the
        figures run serially over warm caches."""
        jobs: List = []
        for bench in self.benchmarks:
            spec = self.trace_spec(bench)
            for name in self.core_names:
                jobs.append(StandaloneJob(
                    core_config(name), spec, backend=self.backend,
                ))
                jobs.append(RegionLogJob(core_config(name), spec, BASE_REGION))
        self.engine.run_many(jobs)
        if contests:
            contest_jobs = [
                self._contest_job(
                    bench, [core_config(a), core_config(b)],
                    self.grb_latency_ns,
                )
                for bench in self.benchmarks
                for a, b in self.candidate_pairs(bench)
            ]
            self.engine.run_many(contest_jobs)

    def candidate_pairs(self, bench: str) -> List[Tuple[str, str]]:
        """Candidate contesting pairs for a benchmark, by oracle pruning.

        The paper contests the pair giving the highest performance; we prune
        the 55 pairs with the Section-2 oracle (which we already compute for
        Figure 1): the top pairs by oracle switching at a systematic
        granularity (640 instructions) and at the finest (20), deduplicated,
        capped at ``scale.pair_candidates``.  The oracle is a strict upper
        bound on contesting, so the true best pair is in this set for any
        realistic realisation ratio.
        """
        logs = self.region_logs(bench)
        ranked: List[Tuple[int, Tuple[str, str]]] = []
        coarse = {n: log.coarsen(32) for n, log in logs.items()}
        for a, b in itertools.combinations(sorted(logs), 2):
            t640 = pair_switch_time(coarse[a], coarse[b])
            ranked.append((t640, (a, b)))
        ranked.sort()
        fine: List[Tuple[int, Tuple[str, str]]] = []
        for a, b in itertools.combinations(sorted(logs), 2):
            t20 = pair_switch_time(logs[a], logs[b])
            fine.append((t20, (a, b)))
        fine.sort()
        seen: List[Tuple[str, str]] = []
        budget = self.scale.pair_candidates
        for _, pair in itertools.chain(
            ranked[: (budget + 1) // 2], fine
        ):
            if pair not in seen:
                seen.append(pair)
            if len(seen) >= budget:
                break
        return seen

    def best_contest(
        self, bench: str
    ) -> Tuple[Tuple[str, str], ContestResult]:
        """Contest the candidate pairs (one engine batch); return the best
        pair and its result."""
        pairs = self.candidate_pairs(bench)
        results = self.engine.run_many([
            self._contest_job(
                bench, [core_config(a), core_config(b)], self.grb_latency_ns
            )
            for a, b in pairs
        ])
        best: Optional[Tuple[Tuple[str, str], ContestResult]] = None
        for pair, result in zip(pairs, results):
            if best is None or result.ipt > best[1].ipt:
                best = (pair, result)
        assert best is not None
        return best
