"""Shared experiment infrastructure: scales, caching, pair selection.

The paper simulates 100M-instruction SimPoints; we scale traces down (see
DESIGN.md).  All experiments share one :class:`ExperimentContext` so that
the expensive artefacts — traces, standalone runs, 20-instruction region
logs, contested runs — are computed once per scale and reused across
figures, exactly as the paper's region logs feed both Figure 1 and the pair
selection of Figure 6.
"""

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.regions import BASE_REGION, RegionLog, region_log
from repro.analysis.switching import pair_switch_time
from repro.core.system import ContestingSystem, ContestResult
from repro.isa.generator import generate_trace
from repro.isa.trace import Trace
from repro.isa.workloads import BENCHMARKS, workload_profile
from repro.uarch.config import APPENDIX_A_CORES, CoreConfig, core_config
from repro.uarch.run import StandaloneResult, run_standalone


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs trading fidelity for wall-clock time."""

    name: str
    trace_len: int
    #: how many candidate pairs (by oracle pruning) to actually contest per
    #: benchmark when searching for the best contesting pair
    pair_candidates: int
    seed: int = 11


SCALES: Dict[str, ExperimentScale] = {
    "tiny": ExperimentScale("tiny", 6_000, 3),
    "small": ExperimentScale("small", 20_000, 4),
    "default": ExperimentScale("default", 60_000, 6),
    "full": ExperimentScale("full", 100_000, 8),
}


class ExperimentContext:
    """Caches traces and simulation results shared across experiments."""

    def __init__(
        self,
        scale: str = "default",
        grb_latency_ns: float = 1.0,
        benchmarks: Sequence[str] = BENCHMARKS,
        seed: Optional[int] = None,
    ):
        try:
            preset = SCALES[scale]
        except KeyError:
            raise ValueError(
                f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
            ) from None
        if seed is not None:
            preset = ExperimentScale(
                name=preset.name,
                trace_len=preset.trace_len,
                pair_candidates=preset.pair_candidates,
                seed=seed,
            )
        self.scale = preset
        self.grb_latency_ns = grb_latency_ns
        self.benchmarks: Tuple[str, ...] = tuple(benchmarks)
        self.core_names: Tuple[str, ...] = tuple(APPENDIX_A_CORES)
        self._traces: Dict[str, Trace] = {}
        self._standalone: Dict[Tuple, StandaloneResult] = {}
        self._logs: Dict[Tuple[str, str], RegionLog] = {}
        self._contests: Dict[Tuple, ContestResult] = {}

    # --- primitives ----------------------------------------------------

    def trace(self, bench: str) -> Trace:
        """The benchmark's trace at this context's scale (cached)."""
        if bench not in self._traces:
            self._traces[bench] = generate_trace(
                workload_profile(bench),
                self.scale.trace_len,
                seed=self.scale.seed,
            )
        return self._traces[bench]

    def standalone(self, bench: str, config: CoreConfig) -> StandaloneResult:
        """Standalone run of the benchmark on a config (cached)."""
        key = (bench, config.fingerprint())
        if key not in self._standalone:
            self._standalone[key] = run_standalone(config, self.trace(bench))
        return self._standalone[key]

    def standalone_ipt(self, bench: str, core_name: str) -> float:
        """IPT of the benchmark on a named Appendix-A core."""
        return self.standalone(bench, core_config(core_name)).ipt

    def region_logs(self, bench: str) -> Dict[str, RegionLog]:
        """20-instruction region logs of ``bench`` on every core type."""
        logs = {}
        for name in self.core_names:
            key = (bench, name)
            if key not in self._logs:
                self._logs[key] = region_log(
                    core_config(name), self.trace(bench), BASE_REGION
                )
            logs[name] = self._logs[key]
        return logs

    def contest(
        self,
        bench: str,
        configs: Sequence[CoreConfig],
        grb_latency_ns: Optional[float] = None,
    ) -> ContestResult:
        """Contested run of the benchmark on the given cores (cached)."""
        latency = (
            self.grb_latency_ns if grb_latency_ns is None else grb_latency_ns
        )
        key = (
            bench,
            tuple(c.fingerprint() for c in configs),
            latency,
        )
        if key not in self._contests:
            system = ContestingSystem(
                list(configs), self.trace(bench), grb_latency_ns=latency
            )
            self._contests[key] = system.run()
        return self._contests[key]

    # --- derived artefacts ----------------------------------------------

    def ipt_matrix(self) -> Dict[str, Dict[str, float]]:
        """The Appendix-A matrix: matrix[benchmark][core_type] -> IPT."""
        return {
            bench: {
                name: self.standalone_ipt(bench, name)
                for name in self.core_names
            }
            for bench in self.benchmarks
        }

    def candidate_pairs(self, bench: str) -> List[Tuple[str, str]]:
        """Candidate contesting pairs for a benchmark, by oracle pruning.

        The paper contests the pair giving the highest performance; we prune
        the 55 pairs with the Section-2 oracle (which we already compute for
        Figure 1): the top pairs by oracle switching at a systematic
        granularity (640 instructions) and at the finest (20), deduplicated,
        capped at ``scale.pair_candidates``.  The oracle is a strict upper
        bound on contesting, so the true best pair is in this set for any
        realistic realisation ratio.
        """
        logs = self.region_logs(bench)
        ranked: List[Tuple[int, Tuple[str, str]]] = []
        coarse = {n: log.coarsen(32) for n, log in logs.items()}
        for a, b in itertools.combinations(sorted(logs), 2):
            t640 = pair_switch_time(coarse[a], coarse[b])
            ranked.append((t640, (a, b)))
        ranked.sort()
        fine: List[Tuple[int, Tuple[str, str]]] = []
        for a, b in itertools.combinations(sorted(logs), 2):
            t20 = pair_switch_time(logs[a], logs[b])
            fine.append((t20, (a, b)))
        fine.sort()
        seen: List[Tuple[str, str]] = []
        budget = self.scale.pair_candidates
        for _, pair in itertools.chain(
            ranked[: (budget + 1) // 2], fine
        ):
            if pair not in seen:
                seen.append(pair)
            if len(seen) >= budget:
                break
        return seen

    def best_contest(
        self, bench: str
    ) -> Tuple[Tuple[str, str], ContestResult]:
        """Contest the candidate pairs; return the best pair and its result."""
        best: Optional[Tuple[Tuple[str, str], ContestResult]] = None
        for a, b in self.candidate_pairs(bench):
            result = self.contest(bench, [core_config(a), core_config(b)])
            if best is None or result.ipt > best[1].ipt:
                best = ((a, b), result)
        assert best is not None
        return best
