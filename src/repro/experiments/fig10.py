"""Figure 10 — HOM vs HET-A without and with contesting.

Thin wrapper over :mod:`repro.experiments.het_contest` for the HET-A
design.  Paper headline for this figure: see `het_contest` and
EXPERIMENTS.md for the paper-vs-measured comparison.
"""

from repro.experiments.common import ExperimentContext
from repro.experiments.het_contest import HetContestResult, run_design
from repro.experiments.table1 import Table1Result


def run(ctx: ExperimentContext, table1: Table1Result = None) -> HetContestResult:
    """Evaluate this figure's design with and without contesting."""
    return run_design(ctx, "HET-A", table1)


def render(result: HetContestResult) -> str:
    """Render the figure's table."""
    return result.render("Figure 10")
