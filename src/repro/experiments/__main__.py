"""``python -m repro.experiments`` — regenerate the paper's tables/figures."""

from repro.experiments.runner import main

raise SystemExit(main())
