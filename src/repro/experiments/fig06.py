"""Figure 6 — 2-way contesting vs. each benchmark's own customised core.

Paper result: average speedup 15%, maximum 25% (gcc); four of eleven
benchmarks exceed 18%; the contested pair differs per benchmark and is
labelled on each bar.
"""

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.system import ContestResult
from repro.experiments.common import ExperimentContext
from repro.util.stats import arithmetic_mean, percent_change
from repro.util.tables import format_table


@dataclass
class Fig06Result:
    #: per benchmark: (pair, contested IPT, own-core IPT)
    rows: Dict[str, Tuple[Tuple[str, str], float, float]]
    results: Dict[str, ContestResult]

    def speedup(self, bench: str) -> float:
        """Contesting speedup over the benchmark's own core (%)."""
        _, contested, own = self.rows[bench]
        return percent_change(contested, own)

    @property
    def average_speedup(self) -> float:
        return arithmetic_mean(self.speedup(b) for b in self.rows)

    @property
    def max_speedup(self) -> Tuple[str, float]:
        bench = max(self.rows, key=self.speedup)
        return bench, self.speedup(bench)

    def render(self) -> str:
        """The Figure-6 table with the average/max summary line."""
        table = format_table(
            ["bench", "contest pair", "contest IPT", "own-core IPT", "speedup %"],
            [
                [b, f"{p[0]}+{p[1]}", ipt, own, self.speedup(b)]
                for b, (p, ipt, own) in self.rows.items()
            ],
            title="Figure 6: 2-way contesting vs own customised core",
        )
        bench, mx = self.max_speedup
        return (
            f"{table}\n"
            f"average speedup: {self.average_speedup:+.1f}%   "
            f"max: {mx:+.1f}% ({bench})"
        )


def run(ctx: ExperimentContext) -> Fig06Result:
    """Find and contest the best pair per benchmark."""
    rows = {}
    results = {}
    for bench in ctx.benchmarks:
        pair, result = ctx.best_contest(bench)
        own = ctx.standalone_ipt(bench, bench)
        rows[bench] = (pair, result.ipt, own)
        results[bench] = result
    return Fig06Result(rows=rows, results=results)
