"""Figure 8 — the effect of core-to-core latency on contesting.

Paper result: average speedup of contesting (best pair per benchmark, over
the benchmark's own customised core) decreases as the GRB propagation
latency grows from 1 ns; at 100 ns the average benefit drops to ~6%.
Sensitivity is benchmark-dependent (bzip degrades <1% from 1->2 ns while
gzip loses >35%).
"""

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.common import ExperimentContext
from repro.experiments.fig06 import Fig06Result
from repro.experiments.fig06 import run as run_fig06
from repro.uarch.config import core_config
from repro.util.stats import arithmetic_mean, percent_change
from repro.util.sparkline import sparkline
from repro.util.tables import format_series

#: The sweep points (ns); the paper plots 1 through 100 ns.
DEFAULT_LATENCIES = (1.0, 2.0, 5.0, 10.0, 50.0, 100.0)


@dataclass
class Fig08Result:
    latencies_ns: Tuple[float, ...]
    #: speedups[bench][i] = speedup % over own core at latencies_ns[i]
    speedups: Dict[str, List[float]]

    def average(self) -> List[float]:
        """Mean speedup per latency point across benchmarks."""
        return [
            arithmetic_mean(v[i] for v in self.speedups.values())
            for i in range(len(self.latencies_ns))
        ]

    def render(self) -> str:
        """Per-benchmark latency series plus the average."""
        lines = ["Figure 8: contesting speedup (%) vs core-to-core latency (ns)"]
        for bench, values in self.speedups.items():
            lines.append(
                format_series(f"  {bench:8s}", self.latencies_ns, values)
                + f"   {sparkline(values)}"
            )
        lines.append(
            format_series("  average ", self.latencies_ns, self.average())
        )
        return "\n".join(lines)


def run(
    ctx: ExperimentContext,
    latencies_ns: Sequence[float] = DEFAULT_LATENCIES,
    fig06: Fig06Result = None,
) -> Fig08Result:
    """Sweep the GRB latency for every benchmark's best pair."""
    fig06 = fig06 or run_fig06(ctx)
    speedups: Dict[str, List[float]] = {}
    for bench, (pair, _, own) in fig06.rows.items():
        configs = [core_config(pair[0]), core_config(pair[1])]
        row = []
        for latency in latencies_ns:
            result = ctx.contest(bench, configs, grb_latency_ns=latency)
            row.append(percent_change(result.ipt, own))
        speedups[bench] = row
    return Fig08Result(latencies_ns=tuple(latencies_ns), speedups=speedups)
