"""Appendix A — the benchmark-on-core IPT matrix.

The paper's appendix publishes both the eleven customised configurations
(adopted verbatim in :mod:`repro.uarch.config`) and the 11x11 IPT matrix.
We regenerate the matrix on our substrate; its calibrated properties
(diagonal dominance, a balanced large-cache core as overall best) are
asserted by ``tests/calibration``.
"""

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.common import ExperimentContext
from repro.util.stats import arithmetic_mean, harmonic_mean
from repro.util.tables import format_table


@dataclass
class AppendixAResult:
    matrix: Dict[str, Dict[str, float]]

    def diagonal_best(self) -> Dict[str, bool]:
        """Whether each benchmark is best on its own customised core."""
        return {
            b: max(row, key=row.get) == b for b, row in self.matrix.items()
        }

    def best_overall_core(self, merit: str = "har") -> str:
        """The core type maximising the given aggregate over benchmarks."""
        cores = next(iter(self.matrix.values())).keys()
        if merit == "avg":
            score = {
                c: arithmetic_mean(self.matrix[b][c] for b in self.matrix)
                for c in cores
            }
        else:
            score = {
                c: harmonic_mean(self.matrix[b][c] for b in self.matrix)
                for c in cores
            }
        return max(score, key=score.get)

    def render(self) -> str:
        """The matrix table plus diagonal/overall-best summary."""
        cores = list(next(iter(self.matrix.values())).keys())
        rows: List[List[object]] = [
            [b] + [self.matrix[b][c] for c in cores] for b in self.matrix
        ]
        table = format_table(
            ["bench \\ core"] + cores,
            rows,
            title="Appendix A: IPT of each benchmark (row) on each customised core type (column)",
        )
        diag = self.diagonal_best()
        return (
            f"{table}\n"
            f"diagonal best-in-row: {sum(diag.values())}/{len(diag)}   "
            f"best overall core: {self.best_overall_core('avg')} (avg), "
            f"{self.best_overall_core('har')} (har)"
        )


def run(ctx: ExperimentContext) -> AppendixAResult:
    """Simulate the full benchmark-on-core matrix."""
    return AppendixAResult(matrix=ctx.ipt_matrix())
