"""Extension experiment: sweep a corpus sample through streaming traces.

Not a paper figure — this exercises the trace-corpus registry
(:mod:`repro.corpus`) end to end: a deterministic sample of named corpus
workloads is resolved to streaming :class:`~repro.engine.TraceSpec`
recipes (``stream=True``), simulated standalone on a small set of
Appendix-A cores through the engine (so every run is cached under the
workload's content-hashed profile key), and rolled up per workload into a
typed :class:`~repro.telemetry.StatRegistry`.

The sweep doubles as a living conformance check: the engine resolves each
spec to a :class:`~repro.isa.stream.StreamingTrace`, so these IPCs are
produced without any workload ever being fully resident — the parity
suite (``tests/corpus``) pins that they equal the materialised numbers.
"""

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.corpus import corpus_names, corpus_spec, profile_key
from repro.engine import StandaloneJob, TraceSpec
from repro.experiments.common import ExperimentContext
from repro.telemetry import StatRegistry
from repro.uarch.config import core_config
from repro.util.tables import format_table

#: Appendix-A cores each sampled workload is measured on: the widest
#: machine, a mid-width one, and the narrowest — enough spread to rank
#: workloads by core sensitivity without sweeping all ten.
SWEEP_CORES: Tuple[str, ...] = ("gcc", "crafty", "mcf")


def sample_workloads(seed: int, count: int) -> List[str]:
    """A deterministic sample of registered corpus workload names.

    Seeded so the same scale resolves the same workloads run over run
    (and therefore replays from the engine cache); sampling without
    replacement over the sorted registry keeps the choice stable under
    registry *growth* only when the seed changes, which is exactly the
    cache-invalidation behaviour a content-addressed sweep wants.
    """
    names = list(corpus_names())
    if count >= len(names):
        return names
    return sorted(random.Random(seed).sample(names, count))


@dataclass
class ExtCorpusResult:
    """Per-workload IPCs plus the typed rollup registry."""

    #: workload name -> core name -> IPC (all via streaming traces)
    ipcs: Dict[str, Dict[str, float]]
    #: workload name -> 12-hex content-hash prefix (the cache-key suffix)
    keys: Dict[str, str]
    #: typed per-workload and aggregate rollups
    registry: StatRegistry

    def render(self) -> str:
        """IPC table plus the aggregate rollup lines."""
        rows: List[List[object]] = []
        for name in sorted(self.ipcs):
            per_core = self.ipcs[name]
            best = max(per_core, key=lambda c: per_core[c])
            rows.append(
                [name.removeprefix("corpus/"), self.keys[name]]
                + [per_core[core] for core in SWEEP_CORES]
                + [best]
            )
        table = format_table(
            ["workload", "key", *(f"ipc@{c}" for c in SWEEP_CORES), "best"],
            rows,
            title="Extension: streaming sweep over a corpus sample",
        )
        lines = [table, "corpus sweep rollups:"]
        for stat in self.registry:
            if stat.name.startswith("corpus.workload."):
                continue  # per-workload detail; the table above shows it
            lines.append(f"  {stat.name}: {stat.snapshot_value()} {stat.unit}")
        return "\n".join(lines)


def run(
    ctx: ExperimentContext, workloads_to_run: int = 8
) -> ExtCorpusResult:
    """Sweep a deterministic corpus sample on the sweep cores."""
    workloads = sample_workloads(ctx.scale.seed, workloads_to_run)
    specs = {
        name: TraceSpec(
            profile=name, length=ctx.scale.trace_len,
            seed=ctx.scale.seed, stream=True,
        )
        for name in workloads
    }

    # one engine batch: |workloads| x |cores| streaming standalone jobs
    cells = [(name, core) for name in workloads for core in SWEEP_CORES]
    results = ctx.engine.run_many([
        StandaloneJob(core_config(core), specs[name], backend=ctx.backend)
        for name, core in cells
    ])

    ipcs: Dict[str, Dict[str, float]] = {name: {} for name in workloads}
    for (name, core), result in zip(cells, results):
        ipcs[name][core] = result.ipc

    registry = StatRegistry()
    registry.counter(
        "corpus.workloads", "workloads", "corpus workloads swept"
    ).inc(len(workloads))
    registry.counter(
        "corpus.jobs", "jobs", "streaming standalone jobs resolved"
    ).inc(len(cells))
    registry.counter(
        "corpus.instructions", "instructions",
        "dynamic instructions simulated (streamed, never resident)",
    ).inc(len(cells) * ctx.scale.trace_len)
    templates = registry.histogram(
        "corpus.templates", "workloads",
        "sampled workloads per phase template",
    )
    for name in workloads:
        spec = corpus_spec(name)
        for phase in spec.phases:
            templates.add(phase.template)
        per_core = ipcs[name]
        short = name.removeprefix("corpus/")
        for core in SWEEP_CORES:
            registry.gauge(
                f"corpus.workload.{short}.ipc.{core}", "ipc",
                f"streamed IPC of {name} on the {core} core",
            ).set(per_core[core])
        registry.gauge(
            f"corpus.workload.{short}.spread", "ratio",
            f"best/worst IPC ratio of {name} across the sweep cores",
        ).set(max(per_core.values()) / min(per_core.values()))
    all_ipcs = [v for per_core in ipcs.values() for v in per_core.values()]
    registry.gauge(
        "corpus.ipc.mean", "ipc", "mean IPC over the whole sweep"
    ).set(sum(all_ipcs) / len(all_ipcs))
    registry.gauge(
        "corpus.ipc.best", "ipc", "best single (workload, core) IPC"
    ).set(max(all_ipcs))

    return ExtCorpusResult(
        ipcs=ipcs,
        keys={
            name: profile_key(name).rsplit("@", 1)[1] for name in workloads
        },
        registry=registry,
    )
