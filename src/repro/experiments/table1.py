"""Table 1 — five CMP designs and their harmonic-mean IPT.

Paper result (on the authors' matrix): HET-A = parser & twolf (avg), HET-B =
gcc & mcf (har), HET-C = bzip & crafty (cw-har), HOM = the gcc core,
HET-ALL = all eleven; HET-ALL improves harmonic-mean IPT by 34% over HOM and
HET-C by 19%.  We recompute the designs on *our* measured matrix — the
methodology (exhaustive 2-of-11 search per figure of merit) is identical,
the selected core types may differ and are reported side by side in
EXPERIMENTS.md.
"""

from dataclasses import dataclass
from typing import Dict

from repro.cmp.designer import CmpDesign, design_suite, design_table_rows
from repro.experiments.common import ExperimentContext
from repro.util.stats import percent_change
from repro.util.tables import format_table


@dataclass
class Table1Result:
    matrix: Dict[str, Dict[str, float]]
    designs: Dict[str, CmpDesign]

    def het_all_vs_hom(self) -> float:
        """HET-ALL's harmonic-mean-IPT gain over HOM (%)."""
        return percent_change(
            self.designs["HET-ALL"].harmonic_mean_ipt,
            self.designs["HOM"].harmonic_mean_ipt,
        )

    def het_c_vs_hom(self) -> float:
        """HET-C's harmonic-mean-IPT gain over HOM (%)."""
        return percent_change(
            self.designs["HET-C"].harmonic_mean_ipt,
            self.designs["HOM"].harmonic_mean_ipt,
        )

    def render(self) -> str:
        """The Table-1 design table with headline ratios."""
        table = format_table(
            ["design", "merit", "core types", "harmonic-mean IPT"],
            design_table_rows(self.designs),
            title="Table 1: CMP designs and their performance",
        )
        return (
            f"{table}\n"
            f"HET-ALL vs HOM: {self.het_all_vs_hom():+.1f}%   "
            f"HET-C vs HOM: {self.het_c_vs_hom():+.1f}%"
        )


def run(ctx: ExperimentContext) -> Table1Result:
    """Design the CMP suite from the measured matrix."""
    matrix = ctx.ipt_matrix()
    return Table1Result(matrix=matrix, designs=design_suite(matrix))
