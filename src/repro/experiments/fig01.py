"""Figure 1 — oracle switching speedup vs. granularity.

Paper result: the largest potential of adjusting the microarchitecture lies
at granularities under ~a thousand instructions; the average curve shows up
to ~25% at the finest granularities falling to ~5% near the 1280-instruction
knee; the best pair of cores is granularity-dependent for some benchmarks
(perl) and stable for others (bzip); at the coarsest granularity every
benchmark is best on its own customised configuration (no speedup).
"""

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.switching import OracleCurve, oracle_switching_curve
from repro.experiments.common import ExperimentContext
from repro.util.stats import arithmetic_mean
from repro.util.sparkline import sparkline
from repro.util.tables import format_series


@dataclass
class Fig01Result:
    curves: Dict[str, OracleCurve]

    def average_curve(self) -> List[float]:
        """Mean speedup per granularity across benchmarks (truncated to the
        granularities every curve covers)."""
        depth = min(len(c.points) for c in self.curves.values())
        return [
            arithmetic_mean(c.points[i][2] for c in self.curves.values())
            for i in range(depth)
        ]

    def render(self) -> str:
        """Per-benchmark series, knees and the average curve."""
        lines = ["Figure 1: oracle pairwise switching speedup (%) vs granularity (instructions)"]
        for bench, curve in self.curves.items():
            lines.append(
                format_series(
                    f"  {bench:8s}",
                    curve.granularities(),
                    curve.speedups(),
                )
                + f"   {sparkline(curve.speedups())}"
            )
            finest_pair = curve.points[0][1]
            lines.append(
                f"           best pair at finest grain: {finest_pair[0]}+{finest_pair[1]};"
                f" knee at ~{curve.knee_granularity()} instructions"
            )
        some = next(iter(self.curves.values()))
        grans = some.granularities()[: len(self.average_curve())]
        lines.append(format_series("  average ", grans, self.average_curve()))
        return "\n".join(lines)


def run(ctx: ExperimentContext) -> Fig01Result:
    """Compute the oracle curve for every benchmark."""
    curves = {}
    for bench in ctx.benchmarks:
        logs = ctx.region_logs(bench)
        curves[bench] = oracle_switching_curve(bench, logs)
    return Fig01Result(curves=curves)
