"""Extension experiment: validate the figures of merit under load.

Not a paper figure — this checks the *reasoning* behind Section 6.1 with
the discrete-event job-stream simulator: rank the candidate two-type
designs by each figure of merit, simulate the same Poisson job stream on
them under the preferred-core scheduling policy, and report how measured
mean turnaround orders them at light and heavy load.

Expected outcome (and the paper's argument): ``har`` predicts light-load
behaviour (no queueing, pure service time) while ``cw-har`` is the better
predictor under heavy load, where queue imbalance dominates.
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cmp.designer import best_combination
from repro.cmp.merit import design_merit
from repro.cmp.queueing import CmpQueueSimulator, JobStream
from repro.experiments.common import ExperimentContext
from repro.util.tables import format_table


def _rank_agreement(
    merit_scores: Dict[Tuple[str, ...], float],
    turnarounds: Dict[Tuple[str, ...], float],
) -> float:
    """Fraction of design pairs ordered identically by merit (higher =
    better) and by measured turnaround (lower = better)."""
    designs = list(merit_scores)
    agree = 0
    total = 0
    for i in range(len(designs)):
        for j in range(i + 1, len(designs)):
            a, b = designs[i], designs[j]
            if merit_scores[a] == merit_scores[b]:
                continue
            total += 1
            merit_says = merit_scores[a] > merit_scores[b]
            measured_says = turnarounds[a] < turnarounds[b]
            if merit_says == measured_says:
                agree += 1
    return agree / total if total else 1.0


@dataclass
class ExtQueueingResult:
    #: (merit, load) -> rank agreement between merit and measured turnaround
    agreement: Dict[Tuple[str, str], float]
    #: per design: (light turnaround us, heavy turnaround us)
    turnarounds: Dict[str, Tuple[float, float]]

    def render(self) -> str:
        """Turnaround table plus merit-agreement lines."""
        rows: List[List[object]] = [
            [k, light / 1000.0, heavy / 1000.0]
            for k, (light, heavy) in self.turnarounds.items()
        ]
        table = format_table(
            ["design", "light-load turnaround (us)", "heavy-load (us)"],
            rows,
            title="Extension: job-stream simulation of candidate two-type designs",
        )
        lines = [table, "merit-vs-measured rank agreement:"]
        for (merit, load), value in self.agreement.items():
            lines.append(f"  {merit:7s} @ {load:5s} load: {value:.2f}")
        return "\n".join(lines)


def run(ctx: ExperimentContext, designs_to_test: int = 5) -> ExtQueueingResult:
    """Simulate job streams on candidate designs; score merit agreement."""
    matrix = ctx.ipt_matrix()

    # candidate designs: the best two-type combination under each merit,
    # plus a few fixed contrasts for rank diversity
    candidates = set()
    for merit in ("avg", "har", "cw-har"):
        combo, _ = best_combination(matrix, 2, merit)
        candidates.add(combo)
    fixed = [("bzip", "crafty"), ("gcc", "mcf"), ("parser", "twolf")]
    for pair in fixed:
        candidates.add(tuple(sorted(pair)))
        if len(candidates) >= designs_to_test:
            break
    designs = sorted(candidates)

    light = JobStream(arrival_rate=1e-6, job_length=100_000, jobs=150)
    heavy = JobStream(arrival_rate=5e-4, job_length=100_000, jobs=400)

    turnarounds_light = {}
    turnarounds_heavy = {}
    for design in designs:
        sim = CmpQueueSimulator(matrix, design, policy="preferred")
        turnarounds_light[design] = sim.run(light, seed=7).mean_turnaround_ns
        turnarounds_heavy[design] = sim.run(heavy, seed=7).mean_turnaround_ns

    agreement = {}
    for merit in ("avg", "har", "cw-har"):
        scores = {d: design_merit(matrix, d, merit) for d in designs}
        agreement[(merit, "light")] = _rank_agreement(scores, turnarounds_light)
        agreement[(merit, "heavy")] = _rank_agreement(scores, turnarounds_heavy)

    return ExtQueueingResult(
        agreement=agreement,
        turnarounds={
            " & ".join(d): (turnarounds_light[d], turnarounds_heavy[d])
            for d in designs
        },
    )
