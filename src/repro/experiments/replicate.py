"""Multi-seed replication of experiments.

Our traces are synthetic samples; a single seed is one draw from each
workload's phase process.  This module reruns an experiment metric across
several seeds and reports mean ± sample standard deviation, so headline
numbers (e.g. Figure 6's average contesting speedup) carry confidence
information rather than a point estimate.
"""

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.experiments.common import ExperimentContext
from repro.util.tables import format_table

#: a metric maps a fresh per-seed context to {row_name: value}
Metric = Callable[[ExperimentContext], Dict[str, float]]


@dataclass
class Replication:
    """Per-row mean and sample standard deviation across seeds."""

    seeds: List[int]
    samples: Dict[str, List[float]]

    def mean(self, row: str) -> float:
        """Mean of the row's samples."""
        values = self.samples[row]
        return sum(values) / len(values)

    def std(self, row: str) -> float:
        """Sample standard deviation of the row's samples."""
        values = self.samples[row]
        if len(values) < 2:
            return 0.0
        mu = self.mean(row)
        return math.sqrt(
            sum((v - mu) ** 2 for v in values) / (len(values) - 1)
        )

    def render(self, title: str, unit: str = "") -> str:
        """Render mean/stddev per row as a table."""
        rows = [
            [name, self.mean(name), self.std(name)]
            for name in self.samples
        ]
        suffix = f" ({unit})" if unit else ""
        return format_table(
            ["row", f"mean{suffix}", "stddev"], rows, title=title
        )


def replicate(
    metric: Metric,
    scale: str = "tiny",
    seeds: Sequence[int] = (11, 23, 47),
    grb_latency_ns: float = 1.0,
) -> Replication:
    """Evaluate ``metric`` on a fresh context per seed and aggregate."""
    if not seeds:
        raise ValueError("need at least one seed")
    samples: Dict[str, List[float]] = {}
    for seed in seeds:
        ctx = ExperimentContext(
            scale=scale, grb_latency_ns=grb_latency_ns, seed=seed
        )
        values = metric(ctx)
        for name, value in values.items():
            samples.setdefault(name, []).append(value)
    incomplete = [k for k, v in samples.items() if len(v) != len(seeds)]
    if incomplete:
        raise ValueError(
            f"metric rows missing for some seeds: {incomplete[:5]}"
        )
    return Replication(seeds=list(seeds), samples=samples)


def fig06_speedups(ctx: ExperimentContext) -> Dict[str, float]:
    """The Figure-6 metric: contesting speedup (%) per benchmark."""
    from repro.experiments.fig06 import run as run_fig06

    result = run_fig06(ctx)
    values = {bench: result.speedup(bench) for bench in result.rows}
    values["AVERAGE"] = result.average_speedup
    return values


def matrix_diagonal_margin(ctx: ExperimentContext) -> Dict[str, float]:
    """Own-core margin over the row's best rival, per benchmark (ratio)."""
    matrix = ctx.ipt_matrix()
    margins = {}
    for bench, row in matrix.items():
        own = row[bench]
        rival = max(v for c, v in row.items() if c != bench)
        margins[bench] = own / rival
    return margins
