"""Generic parameter sweeps with CSV output.

Research workflows around this library are mostly "run the same contest
across a grid of knobs and plot the result".  ``sweep`` runs a cartesian
grid of named parameters through a user function and collects rows;
``write_csv`` serialises them without any dependency.

Example::

    from repro.experiments.sweep import sweep, write_csv
    from repro import core_config, generate_trace, workload_profile
    from repro.core import ContestingSystem

    trace = generate_trace(workload_profile("vpr"), 30_000, seed=11)

    def run(latency_ns, max_lag):
        result = ContestingSystem(
            [core_config("bzip"), core_config("vpr")], trace,
            grb_latency_ns=latency_ns, max_lag=max_lag,
        ).run()
        return {"ipt": result.ipt, "saturated": len(result.saturated)}

    rows = sweep(run, latency_ns=[1, 10, 100], max_lag=[256, 2048])
    write_csv(rows, "latency_lag.csv")
"""

import itertools
from pathlib import Path
from typing import Callable, Dict, List, Sequence, Union


def sweep(
    fn: Callable[..., Dict[str, object]],
    **grid: Sequence,
) -> List[Dict[str, object]]:
    """Run ``fn`` over the cartesian product of the keyword grids.

    ``fn`` receives one value per grid as keyword arguments and returns a
    dict of result columns; each output row carries the grid point's
    parameters plus the result columns.  Parameter names shadowed by result
    columns raise, so rows stay unambiguous.
    """
    if not grid:
        raise ValueError("sweep needs at least one parameter grid")
    names = sorted(grid)
    for name, values in grid.items():
        if not values:
            raise ValueError(f"grid {name!r} is empty")
    rows: List[Dict[str, object]] = []
    for point in itertools.product(*(grid[n] for n in names)):
        params = dict(zip(names, point))
        result = fn(**params)
        if not isinstance(result, dict):
            raise TypeError("the sweep function must return a dict of columns")
        clash = set(result) & set(params)
        if clash:
            raise ValueError(
                f"result columns shadow sweep parameters: {sorted(clash)}"
            )
        row = dict(params)
        row.update(result)
        rows.append(row)
    return rows


def write_csv(rows: Sequence[Dict[str, object]], path: Union[str, Path]) -> None:
    """Write sweep rows as CSV (header = union of keys, insertion order)."""
    if not rows:
        raise ValueError("no rows to write")
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def cell(value: object) -> str:
        text = "" if value is None else str(value)
        if any(ch in text for ch in ",\"\n"):
            text = '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(cell(row.get(c)) for c in columns))
    Path(path).write_text("\n".join(lines) + "\n")
