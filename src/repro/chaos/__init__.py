"""``repro.chaos`` — deterministic fault injection for the harness.

``repro.faults`` breaks the *simulated* machine; this package breaks the
machinery running it: worker processes, the process pool, persistent
store writes, and backend dispatch.  A seeded
:class:`~repro.chaos.plan.ChaosPlan` drives a
:class:`~repro.chaos.engine.HarnessChaos` runtime whose hooks hang off
``ParallelExecutor(chaos=...)``, ``ResultStore(chaos=...)`` and the
backend registry — hoisted ``is not None`` checks, zero cost when absent
(the same observer pattern as telemetry).  ``tests/chaos`` pins the
convergence invariant: under any schedule, a batch ends bit-identical to
a chaos-free run with an fsck-clean store.  See ``docs/robustness.md``.
"""

from repro.chaos.engine import CRASH_EXIT_STATUS, ChaosStats, HarnessChaos
from repro.chaos.hooks import (
    Action,
    ChaosBackendError,
    KILL_EXIT_STATUS,
    apply_action,
    arm_backend_failure,
    disarm_backend_failure,
)
from repro.chaos.plan import SITES, ChaosPlan

__all__ = [
    "Action",
    "CRASH_EXIT_STATUS",
    "ChaosBackendError",
    "ChaosPlan",
    "ChaosStats",
    "HarnessChaos",
    "KILL_EXIT_STATUS",
    "SITES",
    "apply_action",
    "arm_backend_failure",
    "disarm_backend_failure",
]
