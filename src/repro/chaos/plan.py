"""Seeded fault plans for the *harness* (complementing ``repro.faults``).

A :class:`~repro.faults.FaultPlan` perturbs the simulated machine; a
:class:`ChaosPlan` perturbs the machinery that runs it — worker processes,
the process pool, the persistent :class:`~repro.engine.store.ResultStore`,
and the backend dispatch layer.  The two layers share one methodology
(*Validating Simplified Processor Models in Architectural Studies*): keep
a complex, failure-prone path honest by differencing it against a trusted
clean path.  Here the invariant under test is **convergence**: a batch run
under any chaos schedule must end with results bit-identical to a
chaos-free run, with no job lost, no corrupt record served, and no write
silently dropped (``tests/chaos``).

Like ``FaultPlan``, decisions are **counter-based**: whether the ``tick``-th
visit to an injection *site* fires is a pure ``blake2b`` hash of
``(seed, site, tick)`` — no RNG state, no wall clock — so a schedule is a
pure decision function.  Site ticks are advanced by the
:class:`~repro.chaos.engine.HarnessChaos` runtime in hook-invocation
order; under a serial executor that order is fully reproducible, under a
parallel executor it is reproducible up to completion interleaving (the
convergence invariant is interleaving-independent by design).

Two properties make every schedule *convergent by construction*:

* **budgets** — each site fires at most ``max_per_site`` times per
  :class:`~repro.chaos.engine.HarnessChaos` instance, so retries cannot
  be starved forever (collateral chunk re-runs spend no attempts, and an
  unbounded kill rate would otherwise re-kill them indefinitely);
* **a clean last attempt** — destructive worker actions are never
  scheduled on a chunk's final permitted attempt (the executor passes the
  attempt counter to the runtime), so the retry budget always has one
  clean shot left.

Store faults need neither guard: a failed or torn write degrades a cached
record to a recompute and a bit-flipped record is rejected by the CRC
frame at load (``docs/robustness.md``), so they can never change a
result, only its cost.
"""

import hashlib
from dataclasses import dataclass, fields
from typing import Dict, Tuple

#: Injection sites, each with its own tick stream and budget.
SITE_WORKER_KILL = "worker-kill"
SITE_WORKER_HANG = "worker-hang"
SITE_WORKER_SLOW = "worker-slow"
SITE_POOL_BREAK = "pool-break"
SITE_WRITE_FAIL = "write-fail"
SITE_WRITE_TORN = "write-torn"
SITE_WRITE_BITFLIP = "write-bitflip"
SITE_BACKEND_FAIL = "backend-fail"

#: Every site, in a stable order (counter surfacing, docs, tests).
SITES: Tuple[str, ...] = (
    SITE_WORKER_KILL,
    SITE_WORKER_HANG,
    SITE_WORKER_SLOW,
    SITE_POOL_BREAK,
    SITE_WRITE_FAIL,
    SITE_WRITE_TORN,
    SITE_WRITE_BITFLIP,
    SITE_BACKEND_FAIL,
)


def _unit(seed: int, *parts: object) -> float:
    """Deterministic uniform [0, 1) from a seed and a counter tuple
    (same construction as :func:`repro.faults._unit`)."""
    payload = "/".join(str(p) for p in (seed,) + parts).encode()
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, declarative description of harness faults to inject.

    All fields default to "no fault"; a default-constructed plan is a
    no-op.  Rates are per site visit (one chunk-job slot, one pool
    submit, one store append, one backend dispatch) and each site fires
    at most ``max_per_site`` times per runtime instance.
    """

    seed: int = 0
    #: per-job-slot probability the worker process SIGKILLs itself
    kill_worker_rate: float = 0.0
    #: per-job-slot probability the worker sleeps ``hang_s`` (watchdog bait)
    hang_worker_rate: float = 0.0
    hang_s: float = 2.0
    #: per-job-slot probability of a benign ``slow_s`` sleep
    slow_worker_rate: float = 0.0
    slow_s: float = 0.01
    #: per-submit probability of an injected ``BrokenProcessPool``
    pool_break_rate: float = 0.0
    #: per-append probability the store write raises ``OSError``
    write_fail_rate: float = 0.0
    #: per-append probability only a prefix of the record reaches disk
    torn_write_rate: float = 0.0
    #: per-append probability one bit of the framed record is flipped
    bitflip_rate: float = 0.0
    #: per-dispatch probability the backend raises mid-job
    backend_fail_rate: float = 0.0
    #: hard-exit the process after this many completed store writes
    #: (0 = never).  Simulates a harness crash mid-batch; the soak
    #: harness restarts against the same store and must converge.
    crash_after_writes: int = 0
    #: per-site injection budget (see the module docstring)
    max_per_site: int = 2

    def __post_init__(self) -> None:
        for name in (
            "kill_worker_rate", "hang_worker_rate", "slow_worker_rate",
            "pool_break_rate", "write_fail_rate", "torn_write_rate",
            "bitflip_rate", "backend_fail_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        if self.hang_s < 0 or self.slow_s < 0:
            raise ValueError("hang_s and slow_s must be >= 0")
        if self.crash_after_writes < 0:
            raise ValueError("crash_after_writes must be >= 0")
        if self.max_per_site < 1:
            raise ValueError("max_per_site must be >= 1")

    def rate_for(self, site: str) -> float:
        """The firing rate of one injection site."""
        try:
            return self._rates()[site]
        except KeyError:
            raise ValueError(f"unknown chaos site {site!r}") from None

    def _rates(self) -> Dict[str, float]:
        return {
            SITE_WORKER_KILL: self.kill_worker_rate,
            SITE_WORKER_HANG: self.hang_worker_rate,
            SITE_WORKER_SLOW: self.slow_worker_rate,
            SITE_POOL_BREAK: self.pool_break_rate,
            SITE_WRITE_FAIL: self.write_fail_rate,
            SITE_WRITE_TORN: self.torn_write_rate,
            SITE_WRITE_BITFLIP: self.bitflip_rate,
            SITE_BACKEND_FAIL: self.backend_fail_rate,
        }

    @property
    def perturbs_anything(self) -> bool:
        """Whether any hook can ever fire under this plan."""
        return bool(
            any(rate > 0.0 for rate in self._rates().values())
            or self.crash_after_writes
        )

    def fires(self, site: str, tick: int) -> bool:
        """Whether the ``tick``-th visit to ``site`` injects a fault.

        Pure in its arguments and the plan — the budget bound is the
        runtime's job (:class:`~repro.chaos.engine.HarnessChaos`), not
        part of the decision function.
        """
        rate = self.rate_for(site)
        if rate <= 0.0:
            return False
        return _unit(self.seed, site, tick) < rate

    def fingerprint(self) -> str:
        """Stable identity (field order is part of it), for logs/tests."""
        return "chaosplan/" + "/".join(
            f"{f.name}={getattr(self, f.name)!r}" for f in fields(self)
        )

    @classmethod
    def sample(cls, seed: int) -> "ChaosPlan":
        """A deterministic pseudo-random plan for the convergence soak.

        Draws, from ``seed`` alone, a subset of active sites and their
        rates; every fourth seed also crashes the harness mid-batch.
        Sampled plans keep ``max_per_site`` at 2 and moderate hang/slow
        windows so a schedule is aggressive but terminates quickly.
        """
        active = {
            site: _unit(seed, "sample-active", site) < 0.45 for site in SITES
        }
        if not any(active.values()):
            active[SITE_WRITE_TORN] = True

        def rate(site: str) -> float:
            if not active[site]:
                return 0.0
            return 0.25 + 0.5 * _unit(seed, "sample-rate", site)

        return cls(
            seed=seed,
            kill_worker_rate=rate(SITE_WORKER_KILL),
            hang_worker_rate=rate(SITE_WORKER_HANG),
            hang_s=2.5,
            slow_worker_rate=rate(SITE_WORKER_SLOW),
            slow_s=0.02,
            pool_break_rate=rate(SITE_POOL_BREAK),
            write_fail_rate=rate(SITE_WRITE_FAIL),
            torn_write_rate=rate(SITE_WRITE_TORN),
            bitflip_rate=rate(SITE_WRITE_BITFLIP),
            backend_fail_rate=rate(SITE_BACKEND_FAIL),
            crash_after_writes=2 + seed // 4 % 3 if seed % 4 == 0 else 0,
            max_per_site=2,
        )
