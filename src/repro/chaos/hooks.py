"""Worker-side chaos action application and the backend failure arm.

The parent-side :class:`~repro.chaos.engine.HarnessChaos` runtime makes
every injection *decision*; worker processes receive explicit, picklable
:data:`Action` directives and execute them blindly through
:func:`apply_action`.  Keeping workers decision-free is what makes
schedules convergent: a respawned worker holds no chaos state, so a lost
chunk can never be re-killed by a stale counter — the parent's monotone
site ticks alone decide, and their budgets bound total injections.

``backend-fail`` directives arm a process-global one-shot hook in
:mod:`repro.backend.base` (the same hoisted ``is not None`` pattern as
telemetry): the next backend dispatch in that worker raises
:class:`ChaosBackendError`, the job errors, and the executor's ordinary
retry path re-runs it clean.
"""

import os
import time
from typing import Tuple

#: One worker-side directive: ``(kind, arg)`` with kinds ``"kill"``
#: (SIGKILL-equivalent hard exit), ``"hang"`` / ``"slow"`` (sleep ``arg``
#: seconds), ``"backend-fail"`` (arm a one-shot backend dispatch failure).
Action = Tuple[str, float]

#: exit status of a chaos-killed worker (distinguishable in core dumps /
#: logs from a real OOM kill, identical to one for the executor)
KILL_EXIT_STATUS = 113


class ChaosBackendError(RuntimeError):
    """Injected mid-job failure of the simulation backend layer."""


#: one-shot arm count consumed by :func:`_backend_hook`
_backend_armed = 0


def _backend_hook(name: str) -> None:
    """Installed into ``repro.backend.base``; raises while armed."""
    global _backend_armed
    if _backend_armed > 0:
        _backend_armed -= 1
        raise ChaosBackendError(
            f"chaos: injected backend failure dispatching {name!r}"
        )


def arm_backend_failure(count: int = 1) -> None:
    """Make the next ``count`` backend dispatches in this process raise."""
    global _backend_armed
    from repro.backend.base import install_backend_chaos_hook

    _backend_armed = count
    install_backend_chaos_hook(_backend_hook)


def disarm_backend_failure() -> None:
    """Clear the backend failure hook (tests)."""
    global _backend_armed
    from repro.backend.base import install_backend_chaos_hook

    _backend_armed = 0
    install_backend_chaos_hook(None)


def apply_action(action: Action) -> None:
    """Execute one directive in the current (worker) process.

    ``kill`` must bypass every ``finally``/atexit path — a real OOM kill
    gives no chance to clean up, and the executor's recovery machinery is
    exactly what is under test — hence ``os._exit``.
    """
    kind, arg = action
    if kind == "kill":
        os._exit(KILL_EXIT_STATUS)
    elif kind == "hang" or kind == "slow":
        time.sleep(arg)
    elif kind == "backend-fail":
        arm_backend_failure()
    else:
        raise ValueError(f"unknown chaos action {kind!r}")
