"""The parent-side chaos runtime: site ticks, budgets, injected faults.

One :class:`HarnessChaos` instance is shared by every component under
test — typically a :class:`~repro.engine.executors.ParallelExecutor` and
a :class:`~repro.engine.store.ResultStore` built over the same instance —
so its per-site tick counters advance in hook-invocation order and its
budgets bound the *total* injections across the whole harness.  All
hooks are behind hoisted ``is not None`` checks at their call sites
(executors, store, backend dispatch), so a harness without a runtime
attached pays a single pointer comparison per site.
"""

import os
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.chaos.hooks import Action
from repro.chaos.plan import (
    SITE_BACKEND_FAIL,
    SITE_POOL_BREAK,
    SITE_WORKER_HANG,
    SITE_WORKER_KILL,
    SITE_WORKER_SLOW,
    SITE_WRITE_BITFLIP,
    SITE_WRITE_FAIL,
    SITE_WRITE_TORN,
    SITES,
    ChaosPlan,
    _unit,
)

if TYPE_CHECKING:  # telemetry is optional at runtime; typing only here
    from repro.telemetry.registry import StatRegistry

#: exit status of a chaos-crashed harness process (``crash_after_writes``)
CRASH_EXIT_STATUS = 86


@dataclass
class ChaosStats:
    """Injection counters for one :class:`HarnessChaos` instance."""

    #: worker processes hard-killed mid-chunk
    kills: int = 0
    #: worker hangs injected (watchdog bait)
    hangs: int = 0
    #: benign worker slowdowns injected
    slows: int = 0
    #: ``BrokenProcessPool`` raised at submit
    pool_breaks: int = 0
    #: store appends failed with an injected ``OSError``
    write_fails: int = 0
    #: store appends truncated to a prefix (torn tail)
    torn_writes: int = 0
    #: store appends with one payload bit flipped
    bitflips: int = 0
    #: backend dispatch failures armed
    backend_fails: int = 0
    #: harness crashes fired (``crash_after_writes``)
    crashes: int = 0

    def as_dict(self) -> Dict[str, int]:
        """All counters as a plain name→count dict."""
        return {f.name: int(getattr(self, f.name)) for f in fields(self)}

    @property
    def total_injections(self) -> int:
        """Sum over every counter."""
        return sum(self.as_dict().values())


#: site → ChaosStats field charged when that site fires
_SITE_COUNTER = {
    SITE_WORKER_KILL: "kills",
    SITE_WORKER_HANG: "hangs",
    SITE_WORKER_SLOW: "slows",
    SITE_POOL_BREAK: "pool_breaks",
    SITE_WRITE_FAIL: "write_fails",
    SITE_WRITE_TORN: "torn_writes",
    SITE_WRITE_BITFLIP: "bitflips",
    SITE_BACKEND_FAIL: "backend_fails",
}


class HarnessChaos:
    """Drives one :class:`~repro.chaos.plan.ChaosPlan` (see module doc)."""

    def __init__(self, plan: ChaosPlan) -> None:
        self.plan = plan
        self.stats = ChaosStats()
        self._ticks: Dict[str, int] = {site: 0 for site in SITES}
        self._writes_completed = 0

    def _draw(self, site: str) -> bool:
        """Advance ``site``'s tick; True when it fires within budget."""
        tick = self._ticks[site]
        self._ticks[site] = tick + 1
        counter = _SITE_COUNTER[site]
        if getattr(self.stats, counter) >= self.plan.max_per_site:
            return False
        if not self.plan.fires(site, tick):
            return False
        setattr(self.stats, counter, getattr(self.stats, counter) + 1)
        return True

    # ---------------------------------------------------------- executor

    def chunk_actions(
        self, n_jobs: int, attempt: int, max_attempts: int
    ) -> Optional[Tuple[Optional[Action], ...]]:
        """Directives for one chunk submission, one slot per job.

        Destructive actions (kill, hang) are never scheduled on the
        chunk's final permitted attempt — the structural guarantee that
        every job retains a clean shot within its retry budget (see
        :mod:`repro.chaos.plan`).  Returns ``None`` when every slot is
        clean, so the worker-side fast path stays untouched.
        """
        last_chance = attempt >= max_attempts
        actions: List[Optional[Action]] = []
        for _ in range(n_jobs):
            action: Optional[Action] = None
            if not last_chance and self._draw(SITE_WORKER_KILL):
                action = ("kill", 0.0)
            elif not last_chance and self._draw(SITE_WORKER_HANG):
                action = ("hang", self.plan.hang_s)
            elif not last_chance and self._draw(SITE_BACKEND_FAIL):
                action = ("backend-fail", 0.0)
            elif self._draw(SITE_WORKER_SLOW):
                action = ("slow", self.plan.slow_s)
            actions.append(action)
        if all(a is None for a in actions):
            return None
        return tuple(actions)

    def before_submit(self) -> None:
        """Pool-submit hook: may raise an injected ``BrokenProcessPool``.

        The executor's existing recovery path requeues the chunk with no
        attempt spent and respawns the pool, exactly as for a real break
        detected at submit time.
        """
        if self._draw(SITE_POOL_BREAK):
            raise BrokenProcessPool("chaos: injected pool break at submit")

    # ------------------------------------------------------------- store

    def store_write_bytes(self, data: bytes) -> bytes:
        """Store-append hook: fail, tear, or bit-flip one framed record.

        Raises ``OSError`` for an injected write failure; returns a
        newline-less prefix for a torn write (a crash mid-``write(2)``);
        returns the record with one payload bit flipped for latent media
        corruption (CRC32 framing detects every single-bit flip at load).
        """
        if self._draw(SITE_WRITE_FAIL):
            raise OSError("chaos: injected store write failure")
        if self._draw(SITE_WRITE_TORN) and len(data) > 2:
            cut = 1 + int(
                _unit(self.plan.seed, "torn-cut", self._ticks[SITE_WRITE_TORN])
                * (len(data) - 2)
            )
            return data[:cut]
        if self._draw(SITE_WRITE_BITFLIP) and len(data) > 1:
            tick = self._ticks[SITE_WRITE_BITFLIP]
            # never the trailing newline: the line must stay a line
            index = int(
                _unit(self.plan.seed, "flip-byte", tick) * (len(data) - 1)
            )
            bit = int(_unit(self.plan.seed, "flip-bit", tick) * 8)
            flipped = bytes([data[index] ^ (1 << bit)])
            return data[:index] + flipped + data[index + 1:]
        return data

    def after_store_write(self) -> None:
        """Post-append hook: fires the mid-batch harness crash.

        ``os._exit`` — no atexit, no flushing, no executor shutdown —
        because that is what a SIGKILL'd or power-cut harness looks like
        to the store and to the next run.
        """
        self._writes_completed += 1
        crash_at = self.plan.crash_after_writes
        if crash_at and self._writes_completed >= crash_at:
            self.stats.crashes += 1
            os._exit(CRASH_EXIT_STATUS)

    # -------------------------------------------------------- reporting

    def counters(self) -> Dict[str, int]:
        """Injection counters as a plain dict (manifest / assertions)."""
        return self.stats.as_dict()

    def register_into(self, registry: "StatRegistry") -> None:
        """Declare every injection counter on a telemetry registry as
        ``chaos.<name>`` (idempotent, like all registry declaration)."""
        for name, value in self.counters().items():
            registry.counter(
                f"chaos.{name}", "injections",
                f"harness-chaos '{name}' injections this run",
            ).inc(value)
