"""An event-based energy model in the Wattch tradition.

Per-event energies (picojoules) scale with the capacity of the structure
involved; dynamic totals are computed from run statistics, and a leakage
term charges area × time.  Constants are 70nm-plausible round numbers —
the *ratios* between configurations (and between contesting and standalone
execution) are the quantities of interest, as with the timing model.

Event inventory per committed instruction:

* front end: fetch + decode + predictor read (per instruction),
* rename/dispatch: ROB and IQ write (scaled by their sizes),
* issue/execute: IQ wakeup+select (size- and width-scaled), FU energy by
  op class, bypass network (width-squared),
* memory: L1/L2/DRAM access energies by capacity, per the cache statistics,
* commit: ROB read, architectural state update.

Contesting adds: GRB drivers per broadcast result, result-FIFO pushes and
pops at the receivers, and the redundant work of every active core.
Injected instructions skip execution (no FU, no IQ wakeup, no cache access)
but still pay front-end, rename and commit energy — exactly the paper's
"completed early in the fetch/rename stage" semantics.
"""

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.core.system import ContestResult
from repro.uarch.config import CoreConfig
from repro.uarch.core import RunStats
from repro.uarch.run import StandaloneResult


@dataclass(frozen=True)
class EnergyModel:
    """Tunable per-event energy coefficients (picojoules)."""

    fetch_pj: float = 2.0            # per instruction through the front end
    predictor_pj: float = 0.8        # per branch lookup/update
    rename_pj_base: float = 1.0      # ROB/IQ insertion, scaled by sizes
    wakeup_pj_base: float = 0.6      # IQ wakeup/select, scaled by size*width
    fu_pj: float = 3.0               # per executed (non-injected) instruction
    bypass_pj_per_width2: float = 0.08
    l1_pj_per_kb_log: float = 1.2    # per access, scaled by log2(KB)
    l2_pj_per_kb_log: float = 2.5
    dram_pj: float = 220.0           # per DRAM access
    commit_pj: float = 1.2
    grb_pj_per_ns_latency: float = 0.5   # wire energy grows with distance
    fifo_pj: float = 0.4             # per result-FIFO push or pop
    #: leakage power per core in mW per "area unit" (see _area_units)
    leakage_mw_per_unit: float = 0.04

    def _area_units(self, config: CoreConfig) -> float:
        """Relative core area: windows + caches + width-quadratic logic."""
        cache_kb = (config.l1.size_bytes + config.l2.size_bytes) / 1024.0
        return (
            config.rob_size / 64.0
            + config.iq_size / 32.0
            + config.lsq_size / 64.0
            + cache_kb / 64.0
            + config.width ** 2 / 4.0
        )

    def _per_instr_pj(self, config: CoreConfig, injected_fraction: float,
                      branch_fraction: float) -> float:
        rename = self.rename_pj_base * (
            1.0 + 0.15 * math.log2(config.rob_size / 32.0)
        )
        wakeup = self.wakeup_pj_base * (config.iq_size / 32.0) * config.width
        bypass = self.bypass_pj_per_width2 * config.width ** 2
        executed = 1.0 - injected_fraction
        return (
            self.fetch_pj
            + self.predictor_pj * branch_fraction
            + rename
            + executed * (wakeup + self.fu_pj + bypass)
            + self.commit_pj
        )

@dataclass
class EnergyBreakdown:
    """Energy totals (nanojoules) with a per-component split."""

    dynamic_nj: float
    leakage_nj: float
    grb_nj: float = 0.0
    components: Dict[str, float] = field(default_factory=dict)

    @property
    def total_nj(self) -> float:
        return self.dynamic_nj + self.leakage_nj + self.grb_nj

    def energy_delay(self, time_ns: float) -> float:
        """Energy-delay product (nJ·ns)."""
        return self.total_nj * time_ns


def _core_energy(
    model: EnergyModel,
    config: CoreConfig,
    stats: RunStats,
    l1_accesses: int,
    l1_misses: int,
    l2_misses: int,
    time_ns: float,
) -> EnergyBreakdown:
    committed = max(1, stats.committed)
    injected_fraction = stats.injected / committed
    branch_fraction = stats.branches / committed
    per_instr = model._per_instr_pj(config, injected_fraction, branch_fraction)

    l1_kb = max(1.0, config.l1.size_bytes / 1024.0)
    l2_kb = max(1.0, config.l2.size_bytes / 1024.0)
    l1_pj = model.l1_pj_per_kb_log * math.log2(1 + l1_kb)
    l2_pj = model.l2_pj_per_kb_log * math.log2(1 + l2_kb)

    pipeline_pj = per_instr * committed
    memory_pj = (
        l1_pj * l1_accesses + l2_pj * l1_misses + model.dram_pj * l2_misses
    )
    leakage_nj = (
        model.leakage_mw_per_unit * model._area_units(config) * time_ns
    ) / 1000.0  # mW * ns = pJ; /1000 -> nJ

    return EnergyBreakdown(
        dynamic_nj=(pipeline_pj + memory_pj) / 1000.0,
        leakage_nj=leakage_nj,
        components={
            "pipeline_nj": pipeline_pj / 1000.0,
            "memory_nj": memory_pj / 1000.0,
        },
    )


def standalone_energy(
    result: StandaloneResult,
    config: CoreConfig,
    model: EnergyModel = EnergyModel(),
    l1_accesses: int = 0,
    l1_misses: int = 0,
    l2_misses: int = 0,
) -> EnergyBreakdown:
    """Energy of one standalone run.

    Cache event counts default to mix-derived estimates when not supplied
    (the runner does not retain the hierarchy object).
    """
    if l1_accesses == 0:
        stats = result.stats
        if stats.l1_accesses:
            l1_accesses = stats.l1_accesses
            l1_misses = stats.l1_misses
            l2_misses = stats.l2_misses
        else:
            l1_accesses = int(0.3 * result.instructions)  # mix estimate
            l1_misses = int(0.1 * l1_accesses)
            l2_misses = int(0.3 * l1_misses)
    return _core_energy(
        model, config, result.stats,
        l1_accesses, l1_misses, l2_misses,
        result.time_ps / 1000.0,
    )


def contest_energy(
    result: ContestResult,
    configs: Dict[str, CoreConfig],
    model: EnergyModel = EnergyModel(),
    grb_latency_ns: float = 1.0,
) -> EnergyBreakdown:
    """Energy of a contested run: every core's work plus the GRBs/FIFOs.

    ``configs`` maps the ``per_core`` keys (``"<id>:<name>"`` or plain
    names) to their configurations.
    """
    time_ns = result.time_ps / 1000.0
    total = EnergyBreakdown(dynamic_nj=0.0, leakage_nj=0.0)
    broadcasts = 0
    for key, stats in result.per_core.items():
        name = key.split(":", 1)[-1]
        config = configs.get(key) or configs[name]
        if stats.l1_accesses:
            l1_accesses = stats.l1_accesses
            l1_misses = stats.l1_misses
            l2_misses = stats.l2_misses
        else:
            l1_accesses = int(0.3 * stats.committed)  # mix estimate
            l1_misses = int(0.1 * l1_accesses)
            l2_misses = int(0.3 * l1_misses)
        core = _core_energy(
            model, config, stats, l1_accesses, l1_misses, l2_misses, time_ns
        )
        total.dynamic_nj += core.dynamic_nj
        total.leakage_nj += core.leakage_nj
        for comp, value in core.components.items():
            total.components[f"{name}.{comp}"] = value
        broadcasts += stats.committed
    # each broadcast drives one GRB to (n-1) sinks and enters their FIFOs
    sinks = max(1, len(result.per_core) - 1)
    grb_pj = broadcasts * sinks * (
        model.grb_pj_per_ns_latency * grb_latency_ns + 2 * model.fifo_pj
    )
    total.grb_nj = grb_pj / 1000.0
    return total
