"""Energy accounting for standalone and contested execution.

The paper positions contesting as a *need-to-have* mode: "like other
redundant threading architectures, it can be employed on a need-to-have
basis, providing robustness in how resources are employed (throughput or
single-thread performance) and how performance and power are balanced"
(Section 1).  Quantifying that balance needs an energy model; this package
provides an event-based one in the Wattch tradition: per-event energies
scale with the sizes of the structures involved (and quadratically with
issue width for the bypass/scheduling logic), plus a leakage term
proportional to area and time.

Nothing here affects timing — the model consumes the statistics a run
already produces.  The headline derived metrics are the energy ratio of
contesting vs the best single core and the energy-delay product, reported
by the ``ext_energy`` extension experiment.
"""

from repro.power.model import (
    EnergyBreakdown,
    EnergyModel,
    contest_energy,
    standalone_energy,
)

__all__ = [
    "EnergyBreakdown",
    "EnergyModel",
    "contest_energy",
    "standalone_energy",
]
