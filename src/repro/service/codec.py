"""JSON wire format for simulation jobs (submission side of the API).

A submission payload describes one :data:`~repro.engine.jobs.SimJob` as a
plain JSON object; the codec validates it field by field and constructs
the frozen job dataclass the engine runs.  Decoding is strict — unknown
keys, wrong types, and out-of-range values raise :class:`CodecError`
(rendered as 400), because a silently coerced field would change the
job's cache key and poison the shared result cache with a mislabelled
entry.

Shapes (full reference in ``docs/service.md``)::

    {"kind": "standalone",
     "config": "gcc" | {<CoreConfig fields, l1/l2 as objects>},
     "trace": {"profile": "gcc", "length": 300, "seed": 7},
     "region_size": 0, "prewarm": true, "backend": "reference"}

    {"kind": "region_log", "config": ..., "trace": ..., "region_size": 20}

    {"kind": "contest", "configs": [..., ...], "trace": ...,
     "grb_latency_ns": 1.0, "max_lag": 0, "sat_grace_ns": 400.0,
     "lagger_policy": "disable", "resync_penalty_cycles": 100,
     "faults": null | {<FaultPlan fields>}, "backend": "reference"}

Core configurations come **by name** (the Appendix-A palette) or **by
value** (every :class:`~repro.uarch.config.CoreConfig` field inline).
Traces come only **by recipe** (:class:`~repro.engine.jobs.TraceSpec`):
by-value traces would make submissions megabytes large and are exactly
what the spec-keyed cache identity exists to avoid.
"""

import dataclasses
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Type

from repro.backend.base import CONCRETE_BACKENDS
from repro.corpus.registry import profile_key
from repro.engine.jobs import (
    ContestJob,
    RegionLogJob,
    SimJob,
    StandaloneJob,
    TraceSpec,
)
from repro.faults import FaultPlan
from repro.uarch.cache import CacheConfig
from repro.uarch.config import APPENDIX_A_CORES, CoreConfig, core_config

#: job kinds the service accepts, mapped to their dataclass
JOB_KINDS: Dict[str, type] = {
    "standalone": StandaloneJob,
    "region_log": RegionLogJob,
    "contest": ContestJob,
}


class CodecError(ValueError):
    """A submission payload that does not describe a valid job."""


def _require_mapping(payload: object, what: str) -> Mapping[str, Any]:
    if not isinstance(payload, Mapping):
        raise CodecError(f"{what} must be a JSON object, got {type(payload).__name__}")
    return payload


def _check_keys(
    payload: Mapping[str, Any], allowed: Sequence[str], what: str
) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise CodecError(
            f"unknown {what} field(s): {', '.join(unknown)} "
            f"(allowed: {', '.join(sorted(allowed))})"
        )


def _typed(
    payload: Mapping[str, Any],
    key: str,
    types: Tuple[Type[Any], ...],
    what: str,
    default: object = dataclasses.MISSING,
) -> Any:
    """Fetch ``payload[key]`` checking its JSON type (bool never passes
    for a numeric slot — JSON ``true`` is not a number)."""
    if key not in payload:
        if default is dataclasses.MISSING:
            raise CodecError(f"{what} is missing required field {key!r}")
        return default
    value = payload[key]
    if isinstance(value, bool) and bool not in types:
        raise CodecError(f"{what}.{key} must not be a boolean")
    if not isinstance(value, types):
        names = "/".join(t.__name__ for t in types)
        raise CodecError(
            f"{what}.{key} must be {names}, got {type(value).__name__}"
        )
    return value


# ------------------------------------------------------------- components


def decode_trace_spec(payload: object) -> TraceSpec:
    """A :class:`TraceSpec` from
    ``{"profile", "length", "seed"?, "stream"?}``.

    ``profile`` accepts legacy benchmark names and corpus workload names
    alike, validated eagerly — a request naming a profile that cannot
    resolve fails at decode time, not inside a worker.  ``stream`` opts
    the job into streaming generation (bounded-memory, bit-identical
    results; see :class:`repro.engine.jobs.TraceSpec`).
    """
    spec = _require_mapping(payload, "trace")
    _check_keys(spec, ("profile", "length", "seed", "stream"), "trace")
    profile = _typed(spec, "profile", (str,), "trace")
    length = _typed(spec, "length", (int,), "trace")
    seed = _typed(spec, "seed", (int,), "trace", default=11)
    stream = _typed(spec, "stream", (bool,), "trace", default=False)
    if length < 1:
        raise CodecError(f"trace.length must be >= 1, got {length}")
    try:
        profile_key(profile)  # reject unresolvable profiles at the edge
        return TraceSpec(profile, length, seed=seed, stream=stream)
    except (KeyError, ValueError) as exc:
        raise CodecError(f"bad trace spec: {exc}")


def _decode_cache(payload: object, what: str) -> CacheConfig:
    cache = _require_mapping(payload, what)
    fields = tuple(f.name for f in dataclasses.fields(CacheConfig))
    _check_keys(cache, fields, what)
    kwargs = {
        name: _typed(cache, name, (int,), what) for name in fields
    }
    try:
        return CacheConfig(**kwargs)
    except ValueError as exc:
        raise CodecError(f"bad {what}: {exc}")


def decode_core_config(payload: object) -> CoreConfig:
    """A :class:`CoreConfig` by Appendix-A name or by full value."""
    if isinstance(payload, str):
        try:
            return core_config(payload)
        except KeyError:
            raise CodecError(
                f"unknown core type {payload!r}; expected one of "
                f"{', '.join(sorted(APPENDIX_A_CORES))} or a full config "
                "object"
            )
    config = _require_mapping(payload, "config")
    fields = {f.name: f for f in dataclasses.fields(CoreConfig)}
    _check_keys(config, tuple(fields), "config")
    kwargs: Dict[str, Any] = {}
    for name, field in fields.items():
        if name in ("l1", "l2"):
            if name not in config:
                raise CodecError(f"config is missing required field {name!r}")
            kwargs[name] = _decode_cache(config[name], f"config.{name}")
            continue
        types: Tuple[Type[Any], ...]
        if field.type in ("float", float):
            types = (int, float)
        elif field.type in ("bool", bool):
            types = (bool,)
        elif field.type in ("str", str):
            types = (str,)
        else:
            types = (int,)
        default: object = dataclasses.MISSING
        if field.default is not dataclasses.MISSING:
            default = field.default
        kwargs[name] = _typed(config, name, types, "config", default=default)
    try:
        return CoreConfig(**kwargs)
    except (TypeError, ValueError) as exc:
        raise CodecError(f"bad config: {exc}")


def decode_fault_plan(payload: object) -> Optional[FaultPlan]:
    """A :class:`FaultPlan` from a JSON object (``None`` passes through)."""
    if payload is None:
        return None
    plan = _require_mapping(payload, "faults")
    fields = {f.name: f for f in dataclasses.fields(FaultPlan)}
    _check_keys(plan, tuple(fields), "faults")
    kwargs: Dict[str, Any] = {}
    for name, value in plan.items():
        if name in ("kill_core", "stall_core", "standalone_core"):
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, int)
            ):
                raise CodecError(f"faults.{name} must be an int or null")
            kwargs[name] = value
        elif name.endswith(("_rate", "_ns")):
            kwargs[name] = _typed(plan, name, (int, float), "faults")
        else:
            kwargs[name] = _typed(plan, name, (int,), "faults")
    try:
        return FaultPlan(**kwargs)
    except ValueError as exc:
        raise CodecError(f"bad fault plan: {exc}")


# ------------------------------------------------------------------- jobs


def _decode_backend(payload: Mapping[str, Any], what: str) -> str:
    backend = _typed(payload, "backend", (str,), what, default="reference")
    if backend not in CONCRETE_BACKENDS:
        raise CodecError(
            f"{what}.backend must be one of {', '.join(CONCRETE_BACKENDS)} "
            f"(never 'auto' over the wire), got {backend!r}"
        )
    return backend


def decode_job(payload: object) -> SimJob:
    """One :data:`SimJob` from its JSON description (see module doc)."""
    job = _require_mapping(payload, "job")
    kind = _typed(job, "kind", (str,), "job")
    if kind == "standalone":
        _check_keys(
            job,
            ("kind", "config", "trace", "region_size", "prewarm", "backend"),
            "standalone job",
        )
        return StandaloneJob(
            config=decode_core_config(job.get("config")),
            trace=decode_trace_spec(job.get("trace")),
            region_size=_typed(job, "region_size", (int,), "job", default=0),
            prewarm=_typed(job, "prewarm", (bool,), "job", default=True),
            backend=_decode_backend(job, "job"),
        )
    if kind == "region_log":
        _check_keys(job, ("kind", "config", "trace", "region_size"), "region_log job")
        return RegionLogJob(
            config=decode_core_config(job.get("config")),
            trace=decode_trace_spec(job.get("trace")),
            region_size=_typed(job, "region_size", (int,), "job", default=20),
        )
    if kind == "contest":
        _check_keys(
            job,
            ("kind", "configs", "trace", "grb_latency_ns", "max_lag",
             "sat_grace_ns", "lagger_policy", "resync_penalty_cycles",
             "faults", "backend"),
            "contest job",
        )
        raw_configs = job.get("configs")
        if not isinstance(raw_configs, list) or len(raw_configs) < 2:
            raise CodecError("job.configs must be a list of >= 2 core configs")
        policy = _typed(job, "lagger_policy", (str,), "job", default="disable")
        if policy not in ("disable", "resync"):
            raise CodecError(
                f"job.lagger_policy must be 'disable' or 'resync', got {policy!r}"
            )
        try:
            return ContestJob(
                configs=tuple(decode_core_config(c) for c in raw_configs),
                trace=decode_trace_spec(job.get("trace")),
                grb_latency_ns=float(
                    _typed(job, "grb_latency_ns", (int, float), "job", default=1.0)
                ),
                max_lag=_typed(job, "max_lag", (int,), "job", default=0),
                sat_grace_ns=float(
                    _typed(job, "sat_grace_ns", (int, float), "job", default=400.0)
                ),
                lagger_policy=policy,
                resync_penalty_cycles=_typed(
                    job, "resync_penalty_cycles", (int,), "job", default=100
                ),
                faults=decode_fault_plan(job.get("faults")),
                backend=_decode_backend(job, "job"),
            )
        except ValueError as exc:
            raise CodecError(f"bad contest job: {exc}")
    raise CodecError(
        f"job.kind must be one of {', '.join(sorted(JOB_KINDS))}, got {kind!r}"
    )


def decode_jobs(payload: object) -> List[SimJob]:
    """The submission body: ``{"jobs": [<job>, ...]}`` (non-empty)."""
    body = _require_mapping(payload, "submission")
    _check_keys(body, ("jobs",), "submission")
    raw = body.get("jobs")
    if not isinstance(raw, list) or not raw:
        raise CodecError("submission.jobs must be a non-empty list")
    return [decode_job(item) for item in raw]


# ----------------------------------------------------------- round-tripping


def encode_job(job: SimJob) -> Dict[str, Any]:
    """The JSON description of a job (inverse of :func:`decode_job`).

    Used by the client helper and the key-schema tooling; decoding the
    result reconstructs an equal job (round-trip pinned in
    ``tests/service/test_codec.py``).  Core configs are always encoded by
    value — a name round-trips to the identical palette entry anyway.
    """
    def cache(c: CacheConfig) -> Dict[str, Any]:
        return dataclasses.asdict(c)

    def core(c: CoreConfig) -> Dict[str, Any]:
        data = dataclasses.asdict(c)
        data["l1"], data["l2"] = cache(c.l1), cache(c.l2)
        return data

    if not isinstance(job.trace, TraceSpec):
        raise CodecError("only TraceSpec-based jobs are encodable on the wire")
    trace: Dict[str, Any] = {
        "profile": job.trace.profile,
        "length": job.trace.length,
        "seed": job.trace.seed,
    }
    # encoded only when set, so pre-existing wire forms stay byte-identical
    if job.trace.stream:
        trace["stream"] = True
    if isinstance(job, StandaloneJob):
        return {
            "kind": "standalone", "config": core(job.config), "trace": trace,
            "region_size": job.region_size, "prewarm": job.prewarm,
            "backend": job.backend,
        }
    if isinstance(job, RegionLogJob):
        return {
            "kind": "region_log", "config": core(job.config), "trace": trace,
            "region_size": job.region_size,
        }
    return {
        "kind": "contest",
        "configs": [core(c) for c in job.configs],
        "trace": trace,
        "grb_latency_ns": job.grb_latency_ns,
        "max_lag": job.max_lag,
        "sat_grace_ns": job.sat_grace_ns,
        "lagger_policy": job.lagger_policy,
        "resync_penalty_cycles": job.resync_penalty_cycles,
        "faults": (
            None if job.faults is None else dataclasses.asdict(job.faults)
        ),
        "backend": job.backend,
    }
