"""Simulation-as-a-service: the asyncio job API over the engine.

The service promotes :mod:`repro.engine` from a library into a
long-running shared resource (ROADMAP open item 2):

* :mod:`repro.service.server` — :class:`SimService`: submission, dedup
  against the content-addressed result store, per-tenant token-bucket
  quotas, a bounded admission queue with 429/503 backpressure, batching
  into the fault-tolerant parallel executor off the event loop,
  poll/SSE status, and graceful drain;
* :mod:`repro.service.http` — the minimal stdlib HTTP/1.1 framing;
* :mod:`repro.service.codec` — the JSON wire format for jobs;
* :mod:`repro.service.quota` — per-tenant token buckets;
* :mod:`repro.service.client` — the small asyncio client the
  conformance suite (``tests/service/``) drives;
* :mod:`repro.service.cli` — the ``repro-serve`` console script.

See ``docs/service.md`` for the API reference and the conformance-suite
methodology.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.codec import CodecError, decode_job, decode_jobs, encode_job
from repro.service.http import HttpError
from repro.service.quota import QuotaManager, TokenBucket
from repro.service.server import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    ServiceConfig,
    SimService,
)

__all__ = [
    "CodecError",
    "DONE",
    "FAILED",
    "HttpError",
    "QUEUED",
    "QuotaManager",
    "RUNNING",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SimService",
    "TokenBucket",
    "decode_job",
    "decode_jobs",
    "encode_job",
]
