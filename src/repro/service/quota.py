"""Per-tenant token-bucket quotas for the job API.

Each tenant owns one :class:`TokenBucket`: a capacity of ``burst`` tokens
refilled continuously at ``rate_per_s``.  Submitting ``n`` jobs takes
``n`` tokens atomically — either the whole submission is admitted or none
of it is (a partially admitted batch would make rejection behaviour
depend on job ordering inside the request).  An insufficient balance
yields a 429 with a ``Retry-After`` computed from the exact refill time,
so clients can back off precisely instead of hammering.

The clock is injectable (any ``() -> float`` monotonic-seconds callable).
Production uses ``time.monotonic``; the conformance suite pins rejection
*determinism* by driving a manual clock — with a frozen clock a bucket is
a pure counter, so which submissions are rejected depends only on the
submission sequence, never on scheduling (and a ``rate_per_s`` of 0 gives
the same determinism under the real clock: exactly ``burst`` jobs per
tenant, ever).

This is harness-side machinery, not timing-model code: reading the host
clock here is sanctioned (the ``no-wallclock`` lint rule scopes to model
packages), and nothing in this module can influence a simulation result —
only whether one is admitted.
"""

import time
from typing import Callable, Dict, Optional, Tuple

#: the clock signature: monotonic seconds
Clock = Callable[[], float]


class TokenBucket:
    """One tenant's refillable budget (see the module docstring)."""

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        clock: Optional[Clock] = None,
    ) -> None:
        if rate_per_s < 0:
            raise ValueError("rate_per_s must be >= 0")
        if burst <= 0:
            raise ValueError("burst must be > 0")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._clock: Clock = clock if clock is not None else time.monotonic
        self._tokens = burst
        self._updated = self._clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        if self.rate_per_s:
            self._tokens = min(
                self.burst, self._tokens + elapsed * self.rate_per_s
            )

    @property
    def tokens(self) -> float:
        """The current balance (after refill)."""
        self._refill()
        return self._tokens

    def try_take(self, n: int) -> Tuple[bool, float]:
        """Atomically take ``n`` tokens.

        Returns ``(True, 0.0)`` on success, or ``(False, retry_after_s)``
        where ``retry_after_s`` is when the balance will next cover ``n``
        (``inf`` for a zero refill rate or ``n`` beyond the burst
        capacity — that submission can never be admitted whole).
        """
        if n < 1:
            raise ValueError("must take at least one token")
        self._refill()
        if n <= self._tokens:
            self._tokens -= n
            return True, 0.0
        if not self.rate_per_s or n > self.burst:
            return False, float("inf")
        return False, (n - self._tokens) / self.rate_per_s

    def refund(self, n: int) -> None:
        """Return ``n`` tokens (a submission charged, then rejected by a
        later admission stage — capacity — gives its quota back)."""
        if n < 0:
            raise ValueError("cannot refund a negative amount")
        self._refill()
        self._tokens = min(self.burst, self._tokens + n)


class QuotaManager:
    """Lazily materialised per-tenant buckets sharing one policy."""

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        clock: Optional[Clock] = None,
    ) -> None:
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}

    def bucket(self, tenant: str) -> TokenBucket:
        """The tenant's bucket, created full on first sight."""
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.rate_per_s, self.burst, self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str, n_jobs: int) -> Tuple[bool, float]:
        """Charge a submission of ``n_jobs`` against the tenant's bucket."""
        return self.bucket(tenant).try_take(n_jobs)

    @property
    def tenants(self) -> int:
        """Distinct tenants seen so far."""
        return len(self._buckets)
