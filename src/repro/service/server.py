"""``SimService`` — the asyncio job API over the simulation engine.

One service instance owns one :class:`~repro.engine.engine.SimEngine`
(persistent :class:`~repro.engine.store.ResultStore` + fault-tolerant
:class:`~repro.engine.executors.ParallelExecutor`) and serves it over a
minimal HTTP/1.1 API (:mod:`repro.service.http`):

========================== ===========================================
``POST /v1/jobs``          submit ``{"jobs": [...]}`` (``X-Tenant``)
``GET /v1/jobs/<id>``      poll one job's status
``GET /v1/jobs/<id>/result`` fetch the finished result (canonical JSON)
``GET /v1/jobs/<id>/events`` server-sent-event stream of status changes
``GET /v1/stats``          service/engine/store counters
``GET /v1/manifest``       a live :class:`~repro.telemetry.manifest.RunManifest`
``GET /v1/healthz``        liveness + drain state
========================== ===========================================

**Content-addressed job ids.**  A job's id *is* its engine cache key, so
deduplication is structural: resubmitting a job — same tenant or not —
lands on the same record.  At submit time each job resolves through three
layers, cheapest first: a completed in-service record (``service.cache_hits``),
the persistent store (``service.cache_hits``), an in-flight record
(``service.dedup_inflight``); only genuinely new work is admitted to the
queue.  The batch executor then deduplicates once more inside
``SimEngine.run_many`` — the same key discipline end to end.

**Admission control.**  A submission is charged against its tenant's
token bucket first (429 + ``Retry-After`` when broke — quota outranks
capacity so rejections are a pure function of the submission sequence),
then its new jobs must fit the bounded admission queue whole (503 +
``Retry-After`` otherwise, with the quota tokens refunded — the tenant
paid for nothing).  A draining service rejects every submission with 503.

**Execution off the event loop.**  Admitted jobs queue in submission
order; a single batcher task gathers up to ``batch_max`` of them (after a
short ``batch_window_s`` gather window) and runs the batch through
``SimEngine.run_many`` on a dedicated worker thread, so the event loop
keeps serving polls and streams while simulations run.  Every admitted
job reaches a terminal state — ``done`` or ``failed`` — even under
drain: :meth:`SimService.drain` stops admissions, lets the queue empty,
then closes the listener (pinned by the conformance suite).

All ``service.*`` telemetry flows through the PR-5
:class:`~repro.telemetry.registry.StatRegistry` and is folded into the
run manifest (``GET /v1/manifest``, and ``repro-serve`` writes one on
exit).  A :class:`~repro.chaos.engine.HarnessChaos` runtime passed as
``chaos=`` is threaded into both the executor and the store, which is how
the chaos-under-service suite kills workers and tears store writes while
the service is serving (``tests/service/test_chaos_service.py``).
"""

import asyncio
import dataclasses
import logging
import math
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import (
    Deque,
    Dict,
    List,
    Optional,
    Set,
    Tuple,
    TYPE_CHECKING,
)

from repro.engine.engine import SimEngine
from repro.engine.executors import ParallelExecutor, RetryPolicy
from repro.engine.failures import JobFailure
from repro.engine.jobs import SimJob
from repro.engine.store import ResultStore, encode_result
from repro.service.codec import CodecError, decode_jobs
from repro.service.http import (
    HttpError,
    Request,
    json_body,
    read_request,
    render_response,
    sse_event,
    sse_preamble,
)
from repro.service.quota import Clock, QuotaManager
from repro.telemetry.manifest import RunManifest, build_manifest
from repro.telemetry.registry import StatRegistry

if TYPE_CHECKING:  # chaos is an observer layer, never a load-bearing import
    from repro.chaos.engine import HarnessChaos

_log = logging.getLogger("repro.service")

#: job lifecycle states
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: ``X-Tenant`` default when a client sends none
DEFAULT_TENANT = "public"

#: batch-latency histogram bucket upper bounds (seconds → label)
_LATENCY_BUCKETS: Tuple[Tuple[float, str], ...] = (
    (0.001, "<=1ms"),
    (0.01, "<=10ms"),
    (0.1, "<=100ms"),
    (1.0, "<=1s"),
    (10.0, "<=10s"),
    (math.inf, ">10s"),
)


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one service instance (all bounded, all explicit)."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (read it back from ``SimService.port``)
    port: int = 0
    #: parallel-executor worker processes (0 derives from the CPU count)
    workers: int = 2
    #: jobs per worker task (0 derives; see ``derive_chunk_size``)
    chunk_size: int = 0
    #: executor retry budget per chunk
    max_attempts: int = 3
    #: per-job wall-clock watchdog budget (None disables)
    job_timeout_s: Optional[float] = None
    #: admission-queue capacity in jobs; a submission whose new jobs do
    #: not fit whole is rejected with 503
    queue_limit: int = 256
    #: most jobs handed to one executor batch
    batch_max: int = 32
    #: gather window after the first admitted job before a batch launches
    batch_window_s: float = 0.01
    #: per-tenant token-bucket refill rate (jobs/second; 0 never refills)
    quota_rate_per_s: float = 50.0
    #: per-tenant burst capacity (bucket size, in jobs)
    quota_burst: float = 200.0
    #: result-store location (None: ``$REPRO_CACHE_DIR``/``~/.cache/repro``)
    cache_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers < 0 or self.chunk_size < 0:
            raise ValueError("workers and chunk_size must be >= 0")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.queue_limit < 1 or self.batch_max < 1:
            raise ValueError("queue_limit and batch_max must be >= 1")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if self.quota_rate_per_s < 0 or self.quota_burst <= 0:
            raise ValueError("quota_rate_per_s >= 0, quota_burst > 0")


class JobRecord:
    """Mutable service-side state of one content-addressed job.

    All mutation happens on the event loop (batch results are applied
    after the ``run_in_executor`` await resumes), so no locking: pollers
    and SSE streams read a consistent snapshot between awaits.
    """

    __slots__ = ("key", "job", "state", "result", "tenants", "_changed")

    def __init__(self, key: str, job: SimJob, state: str, tenant: str) -> None:
        self.key = key
        self.job = job
        self.state = state
        self.result: Optional[object] = None
        #: tenants that have submitted this job (dedup audit trail)
        self.tenants: List[str] = [tenant]
        self._changed = asyncio.Event()

    @property
    def terminal(self) -> bool:
        return self.state in (DONE, FAILED)

    def transition(self, state: str, result: Optional[object] = None) -> None:
        """Move to ``state`` and wake every waiter."""
        self.state = state
        if result is not None:
            self.result = result
        changed, self._changed = self._changed, asyncio.Event()
        changed.set()

    async def wait_changed(self) -> None:
        """Block until the next :meth:`transition` (terminal or not)."""
        await self._changed.wait()

    def status_payload(self) -> Dict[str, object]:
        """The JSON the status endpoint and SSE stream emit."""
        payload: Dict[str, object] = {
            "id": self.key,
            "kind": self.job.kind,
            "state": self.state,
            "tenants": sorted(set(self.tenants)),
        }
        if self.state == FAILED and isinstance(self.result, JobFailure):
            payload["failure"] = {
                "error_type": self.result.error_type,
                "message": self.result.message,
                "attempts": self.result.attempts,
            }
        return payload


class SimService:
    """The running service: engine + admission control + HTTP front end.

    Parameters
    ----------
    config:
        The :class:`ServiceConfig`.
    registry:
        Telemetry registry to declare ``service.*`` stats on (a private
        one is created when omitted).
    chaos:
        Optional :class:`~repro.chaos.engine.HarnessChaos`, threaded into
        the executor and the store (tests only).
    quota_clock:
        Injectable monotonic clock for the quota buckets (tests pin
        rejection determinism with a manual clock).
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        registry: Optional[StatRegistry] = None,
        chaos: Optional["HarnessChaos"] = None,
        quota_clock: Optional[Clock] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.registry = registry if registry is not None else StatRegistry()
        self.store = ResultStore(self.config.cache_dir, chaos=chaos)
        self.engine = SimEngine(
            executor=ParallelExecutor(
                workers=self.config.workers,
                chunk_size=self.config.chunk_size,
                retry=RetryPolicy(
                    max_attempts=self.config.max_attempts,
                    job_timeout_s=self.config.job_timeout_s,
                ),
                chaos=chaos,
            ),
            store=self.store,
        )
        self.quotas = QuotaManager(
            self.config.quota_rate_per_s,
            self.config.quota_burst,
            clock=quota_clock,
        )
        self._records: Dict[str, JobRecord] = {}
        self._queue: Deque[JobRecord] = deque()
        self._work = asyncio.Event()
        self._inflight = 0
        self._draining = False
        self._started_at = time.monotonic()
        self._server: Optional[asyncio.Server] = None
        self._batcher: Optional["asyncio.Task[None]"] = None
        self._batch_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service-batch"
        )
        self._declare_stats()

    # ------------------------------------------------------------ telemetry

    def _declare_stats(self) -> None:
        reg = self.registry
        self._stat_submitted = reg.counter(
            "service.submitted", "jobs", "jobs received in submissions"
        )
        self._stat_admitted = reg.counter(
            "service.admitted", "jobs", "new jobs admitted to the queue"
        )
        self._stat_cache_hits = reg.counter(
            "service.cache_hits", "jobs",
            "submitted jobs served from a completed record or the store",
        )
        self._stat_dedup = reg.counter(
            "service.dedup_inflight", "jobs",
            "submitted jobs coalesced onto an in-flight record",
        )
        self._stat_rej_quota = reg.counter(
            "service.rejected_quota", "submissions",
            "submissions rejected 429 by a tenant token bucket",
        )
        self._stat_rej_capacity = reg.counter(
            "service.rejected_capacity", "submissions",
            "submissions rejected 503 by the bounded admission queue",
        )
        self._stat_batches = reg.counter(
            "service.batches", "batches", "executor batches dispatched"
        )
        self._stat_completed = reg.counter(
            "service.completed", "jobs", "jobs reaching the done state"
        )
        self._stat_failed = reg.counter(
            "service.failed", "jobs", "jobs reaching the failed state"
        )
        self._stat_requests = reg.counter(
            "service.requests", "requests", "HTTP requests handled"
        )
        self._stat_errors = reg.counter(
            "service.errors", "requests", "requests answered 5xx by a bug"
        )
        self._stat_depth = reg.gauge(
            "service.queue_depth", "jobs", "admission-queue depth"
        )
        self._stat_latency = reg.histogram(
            "service.batch_latency", "batches",
            "executor batch wall latency, bucketed",
        )

    def _observe_latency(self, seconds: float) -> None:
        for bound, label in _LATENCY_BUCKETS:
            if seconds <= bound:
                self._stat_latency.add(label)
                return

    # ------------------------------------------------------------ lifecycle

    @property
    def port(self) -> int:
        """The bound port (valid once started)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("service is not listening")
        sock = self._server.sockets[0]
        return int(sock.getsockname()[1])

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        """Bind the listener and start the batcher task."""
        if self._server is not None:
            raise RuntimeError("service already started")
        self._batcher = asyncio.get_running_loop().create_task(
            self._batch_loop()
        )
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host,
            port=self.config.port,
        )
        _log.info(
            "repro service listening on %s:%d (store: %s)",
            self.config.host, self.port, self.store.path,
        )

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish everything admitted.

        Order matters: submissions are refused first, the queue and the
        in-flight batch then run dry (no admitted job is ever dropped),
        and only then do the batcher, the listener, and the worker thread
        go away.
        """
        self._draining = True
        while self._queue or self._inflight:
            await asyncio.sleep(0.005)
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # shutdown(wait=True) joins the worker thread — off-loop, so a
        # long final batch cannot stall health checks while we drain
        await asyncio.get_running_loop().run_in_executor(
            None, self._batch_pool.shutdown
        )

    def manifest(self) -> RunManifest:
        """A live provenance manifest: engine + store + service counters."""
        return build_manifest(
            scale="service",
            experiments=("service",),
            jobs=self.engine.executor.workers,
            cache_dir=str(self.store.path),
            no_cache=False,
            seed=0,
            wall_seconds=time.monotonic() - self._started_at,
            engine=self.engine,
            registry=self.registry,
        )

    # ------------------------------------------------------------- batching

    async def _batch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._work.wait()
            if self.config.batch_window_s:
                # gather window: let a burst of submissions coalesce into
                # one executor batch instead of many single-job ones
                await asyncio.sleep(self.config.batch_window_s)
            if not self._queue:
                self._work.clear()
                continue
            batch: List[JobRecord] = []
            while self._queue and len(batch) < self.config.batch_max:
                batch.append(self._queue.popleft())
            if not self._queue:
                self._work.clear()
            self._stat_depth.set(float(len(self._queue)))
            self._inflight = len(batch)
            for record in batch:
                record.transition(RUNNING)
            self._stat_batches.inc()
            started = time.monotonic()
            try:
                results = await loop.run_in_executor(
                    self._batch_pool,
                    self.engine.run_many,
                    [record.job for record in batch],
                )
            except Exception as exc:
                # the engine itself failing (not a job) must not strand
                # records in "running" — fail them loudly instead
                _log.exception("batch execution raised")
                for record in batch:
                    record.transition(
                        FAILED,
                        JobFailure(
                            job_kind=record.job.kind,
                            error_type=type(exc).__name__,
                            message=str(exc),
                        ),
                    )
                self._stat_failed.inc(len(batch))
                self._inflight = 0
                continue
            self._observe_latency(time.monotonic() - started)
            for record, result in zip(batch, results):
                if isinstance(result, JobFailure):
                    record.transition(FAILED, result)
                    self._stat_failed.inc()
                else:
                    record.transition(DONE, result)
                    self._stat_completed.inc()
            self._inflight = 0

    # ------------------------------------------------------------ admission

    def _submit(self, tenant: str, jobs: List[SimJob]) -> Tuple[int, object]:
        """Admission control + dedup for one submission (loop thread)."""
        if self._draining:
            raise HttpError(
                503, "service is draining; resubmit elsewhere",
                headers={"Retry-After": "1"},
            )
        self._stat_submitted.inc(len(jobs))
        admitted, retry_after = self.quotas.admit(tenant, len(jobs))
        if not admitted:
            self._stat_rej_quota.inc()
            after = "inf" if math.isinf(retry_after) else str(
                max(1, math.ceil(retry_after))
            )
            raise HttpError(
                429,
                f"tenant {tenant!r} is over quota for {len(jobs)} job(s)",
                headers={"Retry-After": after},
            )
        # classify before creating anything, so a 503 leaves no half-batch;
        # a FAILED record counts as new work — failures are never cached
        # (engine discipline), a resubmission retries the job
        plan: List[Tuple[str, SimJob, Optional[JobRecord], Optional[object]]] = []
        new_jobs = 0
        seen_new: Set[str] = set()
        for job in jobs:
            key = job.cache_key()
            record = self._records.get(key)
            cached: Optional[object] = None
            if record is None:
                cached = self.store.get(key, job.kind)
            needs_slot = (
                cached is None if record is None else record.state == FAILED
            )
            if needs_slot and key not in seen_new:
                seen_new.add(key)
                new_jobs += 1
            plan.append((key, job, record, cached))
        if new_jobs > self.config.queue_limit - len(self._queue):
            self.quotas.bucket(tenant).refund(len(jobs))
            self._stat_rej_capacity.inc()
            raise HttpError(
                503,
                f"admission queue full ({len(self._queue)}/"
                f"{self.config.queue_limit}); retry later",
                headers={"Retry-After": "1"},
            )
        out: List[Dict[str, object]] = []
        any_queued = False
        for key, job, record, cached in plan:
            if record is None and cached is not None:
                record = JobRecord(key, job, DONE, tenant)
                record.result = cached
                self._records[key] = record
                self._stat_cache_hits.inc()
            elif record is None:
                record = JobRecord(key, job, QUEUED, tenant)
                self._records[key] = record
                self._queue.append(record)
                self._stat_admitted.inc()
                any_queued = True
            else:
                record.tenants.append(tenant)
                if record.state == FAILED:
                    record.result = None
                    record.transition(QUEUED)
                    self._queue.append(record)
                    self._stat_admitted.inc()
                    any_queued = True
                elif record.state == DONE:
                    self._stat_cache_hits.inc()
                else:
                    self._stat_dedup.inc()
            out.append({"id": key, "kind": job.kind, "state": record.state})
        if any_queued:
            self._stat_depth.set(float(len(self._queue)))
            self._work.set()
        return (202 if any_queued else 200), {"jobs": out}

    # ----------------------------------------------------------------- HTTP

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(render_response(
                        exc.status,
                        json_body({"error": exc.message}),
                        headers=exc.headers, keep_alive=False,
                    ))
                    await writer.drain()
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if request is None:
                    break
                if not await self._serve_one(request, writer):
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_one(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> bool:
        """Dispatch one request; returns whether to keep the connection."""
        self._stat_requests.inc()
        try:
            if request.method == "GET" and request.path.startswith(
                "/v1/jobs/"
            ) and request.path.endswith("/events"):
                await self._stream_events(request, writer)
                return False  # SSE always closes
            status, payload, headers = await self._route(request)
        except HttpError as exc:
            status, payload, headers = (
                exc.status, {"error": exc.message}, exc.headers
            )
        except Exception:
            _log.exception("request handler raised")
            self._stat_errors.inc()
            status, payload, headers = (
                500, {"error": "internal service error"}, {}
            )
        writer.write(render_response(
            status, json_body(payload), headers=headers,
            keep_alive=request.keep_alive,
        ))
        await writer.drain()
        return request.keep_alive

    async def _route(
        self, request: Request
    ) -> Tuple[int, object, Dict[str, str]]:
        path, method = request.path, request.method
        if path == "/v1/jobs":
            if method != "POST":
                raise HttpError(405, f"{method} not allowed on {path}")
            tenant = request.headers.get("x-tenant", DEFAULT_TENANT)[:64]
            try:
                jobs = decode_jobs(request.json())
            except CodecError as exc:
                raise HttpError(400, str(exc))
            status, payload = self._submit(tenant or DEFAULT_TENANT, jobs)
            return status, payload, {}
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                raise HttpError(405, f"{method} not allowed on {path}")
            suffix = path[len("/v1/jobs/"):]
            key, _, tail = suffix.partition("/")
            record = self._records.get(key)
            if record is None:
                raise HttpError(404, f"unknown job id {key!r}")
            if tail == "":
                return 200, record.status_payload(), {}
            if tail == "result":
                return 200, self._result_payload(record), {}
            raise HttpError(404, f"unknown job endpoint {tail!r}")
        if path == "/v1/stats":
            if method != "GET":
                raise HttpError(405, f"{method} not allowed on {path}")
            return 200, self._stats_payload(), {}
        if path == "/v1/manifest":
            if method != "GET":
                raise HttpError(405, f"{method} not allowed on {path}")
            return 200, dataclasses.asdict(self.manifest()), {}
        if path == "/v1/healthz":
            if method != "GET":
                raise HttpError(405, f"{method} not allowed on {path}")
            return 200, {
                "status": "draining" if self._draining else "ok",
                "queue_depth": len(self._queue),
                "inflight": self._inflight,
            }, {}
        raise HttpError(404, f"no route for {path}")

    def _result_payload(self, record: JobRecord) -> Dict[str, object]:
        if record.state == FAILED:
            raise HttpError(
                409, f"job {record.key} failed; see its status for details"
            )
        if record.state != DONE or record.result is None:
            raise HttpError(
                409, f"job {record.key} is not finished (state: "
                f"{record.state})"
            )
        return {
            "id": record.key,
            "kind": record.job.kind,
            "value": encode_result(record.result),
        }

    def _stats_payload(self) -> Dict[str, object]:
        states: Dict[str, int] = {}
        for record in self._records.values():
            states[record.state] = states.get(record.state, 0) + 1
        submitted = self._stat_submitted.value
        hits = self._stat_cache_hits.value
        return {
            "service": self.registry.snapshot(),
            "engine": {
                "memory_hits": self.engine.stats.memory_hits,
                "store_hits": self.engine.stats.store_hits,
                "misses": self.engine.stats.misses,
                "failures": self.engine.stats.failures,
                "sim_seconds": self.engine.stats.sim_seconds,
            },
            "store": self.store.counters(),
            "jobs_by_state": states,
            "queue_depth": len(self._queue),
            "tenants": self.quotas.tenants,
            "cache_hit_ratio": (hits / submitted) if submitted else 0.0,
            "draining": self._draining,
        }

    async def _stream_events(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        suffix = request.path[len("/v1/jobs/"):]
        key = suffix[: -len("/events")].rstrip("/")
        record = self._records.get(key)
        if record is None:
            writer.write(render_response(
                404, json_body({"error": f"unknown job id {key!r}"}),
                keep_alive=False,
            ))
            await writer.drain()
            return
        writer.write(sse_preamble())
        writer.write(sse_event("status", record.status_payload()))
        await writer.drain()
        while not record.terminal:
            await record.wait_changed()
            writer.write(sse_event("status", record.status_payload()))
            await writer.drain()
        writer.write(sse_event("end", {"id": record.key}))
        await writer.drain()
