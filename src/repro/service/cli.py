"""``repro-serve`` — run the simulation service as a long-lived process.

Binds the asyncio job API (:mod:`repro.service.server`) on a host/port,
serves until SIGINT/SIGTERM, then drains gracefully: no new submissions,
every admitted job finished, and (with ``--manifest``) a provenance
:class:`~repro.telemetry.manifest.RunManifest` — engine cache counters,
store integrity counters, and every ``service.*`` stat — written on the
way out.  See ``docs/service.md`` for the API and deployment notes.
"""

import argparse
import asyncio
import logging
import signal
import sys
from typing import List, Optional

from repro.service.server import ServiceConfig, SimService
from repro.telemetry.manifest import RunManifest, write_manifest


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro-serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve simulation jobs over an asyncio HTTP API.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8750,
        help="listen port (0 binds an ephemeral one and prints it)",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="parallel-executor worker processes (0: derive from CPUs)",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=0,
        help="jobs per worker task (0: derive)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=256,
        help="admission-queue capacity in jobs (beyond it: 503)",
    )
    parser.add_argument(
        "--batch-max", type=int, default=32,
        help="most jobs per executor batch",
    )
    parser.add_argument(
        "--batch-window", type=float, default=0.01, metavar="SECONDS",
        help="gather window before a batch launches",
    )
    parser.add_argument(
        "--quota-rate", type=float, default=50.0, metavar="JOBS_PER_S",
        help="per-tenant token refill rate (0 never refills)",
    )
    parser.add_argument(
        "--quota-burst", type=float, default=200.0, metavar="JOBS",
        help="per-tenant token-bucket capacity",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job watchdog budget (default: none)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="result-store directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    parser.add_argument(
        "--manifest", default=None, metavar="PATH",
        help="write a RunManifest JSON here on graceful shutdown",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log at INFO level"
    )
    return parser


async def serve(
    config: ServiceConfig, want_manifest: bool = False
) -> Optional[RunManifest]:
    """Run one service until a termination signal, then drain.

    Returns the post-drain provenance manifest when asked for one; the
    caller writes it *after* the loop exits — file I/O from a coroutine
    would block the loop (and trips the ``blocking-in-async`` lint).
    """
    service = SimService(config)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stop.set)
    await service.start()
    print(
        f"repro-serve: listening on {config.host}:{service.port} "
        f"(store: {service.store.path})",
        flush=True,
    )
    await stop.wait()
    print("repro-serve: draining", flush=True)
    await service.drain()
    manifest = service.manifest() if want_manifest else None
    print("repro-serve: drained cleanly", flush=True)
    return manifest


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (the ``repro-serve`` console script)."""
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=logging.INFO if args.verbose else logging.WARNING,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        chunk_size=args.chunk_size,
        queue_limit=args.queue_limit,
        batch_max=args.batch_max,
        batch_window_s=args.batch_window,
        quota_rate_per_s=args.quota_rate,
        quota_burst=args.quota_burst,
        job_timeout_s=args.job_timeout,
        cache_dir=args.cache_dir,
    )
    try:
        manifest = asyncio.run(
            serve(config, want_manifest=args.manifest is not None)
        )
    except KeyboardInterrupt:
        return 130
    if manifest is not None and args.manifest is not None:
        write_manifest(args.manifest, manifest)
        print(
            f"repro-serve: manifest written to {args.manifest}", flush=True
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
