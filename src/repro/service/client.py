"""A minimal asyncio client for the simulation service (stdlib only).

One :class:`ServiceClient` talks to one service over plain HTTP/1.1,
reusing a single keep-alive connection for request/response exchanges and
opening a dedicated connection per server-sent-event stream (an SSE
response occupies its connection until the stream ends).

This is the client the conformance suite and the service benchmark
drive; it is deliberately small — submit, poll, wait, fetch, stream —
and raises :class:`ServiceError` on any non-2xx response, carrying the
status and the server's JSON error payload.
"""

import asyncio
import json
from typing import (
    AsyncIterator,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.engine.jobs import SimJob
from repro.service.codec import encode_job
from repro.service.http import parse_sse_frame

#: statuses the client treats as success
_OK = (200, 202)


class ServiceError(Exception):
    """A non-2xx response from the service."""

    def __init__(
        self, status: int, payload: object, headers: Mapping[str, str]
    ) -> None:
        message = payload.get("error") if isinstance(payload, dict) else None
        super().__init__(f"HTTP {status}: {message or payload!r}")
        self.status = status
        self.payload = payload
        self.headers = dict(headers)

    @property
    def retry_after(self) -> Optional[str]:
        """The ``Retry-After`` header, when the server sent one."""
        return self.headers.get("retry-after")


class ServiceClient:
    """One client connection to a running :class:`SimService`."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    # ------------------------------------------------------------ transport

    async def _connection(
        self,
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        assert self._reader is not None and self._writer is not None
        return self._reader, self._writer

    async def close(self) -> None:
        """Close the keep-alive connection (idempotent)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    @staticmethod
    def _render(
        method: str,
        path: str,
        host: str,
        body: Optional[bytes],
        headers: Mapping[str, str],
    ) -> bytes:
        lines = [f"{method} {path} HTTP/1.1", f"Host: {host}"]
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        if body is not None:
            lines.append("Content-Type: application/json")
            lines.append(f"Content-Length: {len(body)}")
        return (
            ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + (body or b"")
        )

    @staticmethod
    async def _read_response(
        reader: asyncio.StreamReader,
    ) -> Tuple[int, Dict[str, str], bytes]:
        head = (await reader.readuntil(b"\r\n\r\n")).decode("latin-1")
        lines = head.split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            body = await reader.readexactly(int(length))
        return status, headers, body

    async def request(
        self,
        method: str,
        path: str,
        payload: Optional[object] = None,
        headers: Optional[Mapping[str, str]] = None,
    ) -> object:
        """One request/response exchange; returns the decoded JSON body.

        Raises :class:`ServiceError` on a non-2xx status.  The keep-alive
        connection is re-opened transparently if the server closed it.
        """
        body = (
            None if payload is None
            else json.dumps(payload, sort_keys=True).encode()
        )
        raw = self._render(method, path, self.host, body, headers or {})
        reader, writer = await self._connection()
        try:
            writer.write(raw)
            await writer.drain()
            status, resp_headers, resp_body = await self._read_response(reader)
        except (ConnectionError, asyncio.IncompleteReadError):
            # stale keep-alive connection: reconnect and retry once
            await self.close()
            reader, writer = await self._connection()
            writer.write(raw)
            await writer.drain()
            status, resp_headers, resp_body = await self._read_response(reader)
        if resp_headers.get("connection", "").lower() == "close":
            await self.close()
        decoded = json.loads(resp_body) if resp_body else None
        if status not in _OK:
            raise ServiceError(status, decoded, resp_headers)
        return decoded

    # ------------------------------------------------------------------ API

    async def submit(
        self,
        jobs: Sequence[SimJob],
        tenant: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        """Submit jobs; returns the per-job ``{"id", "kind", "state"}``
        rows (dataclass jobs are encoded onto the wire by the codec)."""
        headers = {} if tenant is None else {"X-Tenant": tenant}
        payload = {"jobs": [encode_job(job) for job in jobs]}
        response = await self.request(
            "POST", "/v1/jobs", payload=payload, headers=headers
        )
        assert isinstance(response, dict)
        rows = response["jobs"]
        assert isinstance(rows, list)
        return rows

    async def status(self, job_id: str) -> Dict[str, object]:
        """One job's status payload."""
        response = await self.request("GET", f"/v1/jobs/{job_id}")
        assert isinstance(response, dict)
        return response

    async def result(self, job_id: str) -> Dict[str, object]:
        """A finished job's ``{"id", "kind", "value"}`` payload."""
        response = await self.request("GET", f"/v1/jobs/{job_id}/result")
        assert isinstance(response, dict)
        return response

    async def stats(self) -> Dict[str, object]:
        """The service's counter snapshot."""
        response = await self.request("GET", "/v1/stats")
        assert isinstance(response, dict)
        return response

    async def wait(
        self,
        job_id: str,
        timeout_s: float = 60.0,
        poll_s: float = 0.01,
    ) -> Dict[str, object]:
        """Poll until the job reaches a terminal state; returns it.

        Polling (rather than SSE) on purpose: this is the path most
        clients take, and the conformance suite exercises SSE separately
        through :meth:`events`.
        """
        deadline = asyncio.get_running_loop().time() + timeout_s
        while True:
            status = await self.status(job_id)
            if status["state"] in ("done", "failed"):
                return status
            if asyncio.get_running_loop().time() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']!r} after "
                    f"{timeout_s}s"
                )
            await asyncio.sleep(poll_s)

    async def events(
        self, job_id: str
    ) -> AsyncIterator[Tuple[str, object]]:
        """Stream the job's SSE frames as ``(event, payload)`` pairs.

        Opens a dedicated connection; the stream ends when the server
        sends its terminal ``end`` event and closes.
        """
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write(self._render(
                "GET", f"/v1/jobs/{job_id}/events", self.host, None, {}
            ))
            await writer.drain()
            head = (await reader.readuntil(b"\r\n\r\n")).decode("latin-1")
            status = int(head.split("\r\n")[0].split(" ", 2)[1])
            if status != 200:
                length = 0
                for line in head.split("\r\n"):
                    if line.lower().startswith("content-length:"):
                        length = int(line.split(":", 1)[1])
                body = await reader.readexactly(length) if length else b""
                raise ServiceError(
                    status, json.loads(body) if body else None, {}
                )
            buffer = b""
            while True:
                chunk = await reader.read(4096)
                if not chunk:
                    return
                buffer += chunk
                while b"\n\n" in buffer:
                    frame, buffer = buffer.split(b"\n\n", 1)
                    event, payload = parse_sse_frame(frame.decode())
                    yield event, payload
                    if event == "end":
                        return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
