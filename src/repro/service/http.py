"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

The service speaks just enough HTTP for its JSON API: request-line +
headers + ``Content-Length`` bodies in, status + headers + JSON (or
server-sent-event streams) out.  No chunked transfer encoding, no
pipelining beyond sequential keep-alive, no TLS — the service is designed
to sit behind whatever terminates those (``docs/service.md``).

Hard limits keep a misbehaving client from ballooning server memory:
request lines and header blocks are capped at :data:`MAX_HEADER_BYTES`,
bodies at :data:`MAX_BODY_BYTES` (413 beyond it).  Parse failures raise
:class:`HttpError`, which the connection handler renders as a JSON error
response with the carried status code.
"""

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

#: cap on the request line plus the whole header block
MAX_HEADER_BYTES = 16 * 1024
#: cap on a request body (jobs are a few hundred bytes each; a maximal
#: batch of full inline configs stays far under this)
MAX_BODY_BYTES = 4 * 1024 * 1024

#: reason phrases for the statuses the service emits
REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request that cannot be served; rendered as a JSON error body.

    ``headers`` lets a raiser attach response headers — quota rejections
    carry ``Retry-After`` this way.
    """

    def __init__(
        self,
        status: int,
        message: str,
        headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers: Dict[str, str] = dict(headers or {})


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    #: path with the query string split off
    path: str
    #: raw query string ("" when absent; the service's API needs no
    #: structured query parsing)
    query: str
    #: header names lower-cased; last occurrence wins
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        """The body parsed as JSON (400 on absence or syntax errors)."""
        if not self.body:
            raise HttpError(400, "request body must be JSON (got none)")
        try:
            return json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")

    @property
    def keep_alive(self) -> bool:
        """Whether the connection survives this exchange (HTTP/1.1
        default, overridden by ``Connection: close``)."""
        return self.headers.get("connection", "").lower() != "close"


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on a clean EOF.

    Raises :class:`HttpError` on malformed or over-limit input and
    ``asyncio.IncompleteReadError`` / ``ConnectionError`` on a peer that
    vanishes mid-request (the handler closes the connection either way).
    """
    try:
        raw = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise HttpError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise HttpError(413, f"request head exceeds {MAX_HEADER_BYTES} bytes")
    if len(raw) > MAX_HEADER_BYTES:
        raise HttpError(413, f"request head exceeds {MAX_HEADER_BYTES} bytes")
    head = raw.decode("latin-1").split("\r\n")
    parts = head[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {head[0]!r}")
    method, target, _version = parts
    path, _, query = target.partition("?")
    headers: Dict[str, str] = {}
    for line in head[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {length_text!r}")
        if length < 0:
            raise HttpError(400, f"bad Content-Length {length_text!r}")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length)
    return Request(
        method=method.upper(), path=path, query=query,
        headers=headers, body=body,
    )


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    headers: Optional[Mapping[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    """One complete HTTP response as bytes."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_body(payload: object) -> bytes:
    """Canonical JSON encoding of a response payload.

    Key-sorted with tight separators — the same canonical form the
    :class:`~repro.engine.store.ResultStore` frames records in, so a
    result fetched over HTTP is byte-comparable with a stored record.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode()


def sse_preamble(keep_alive: bool = False) -> bytes:
    """Response head opening a server-sent-event stream.

    The stream has no ``Content-Length``; the server signals the end by
    closing the connection, so SSE responses always send
    ``Connection: close``.
    """
    del keep_alive  # an SSE stream always closes the connection
    return (
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: text/event-stream\r\n"
        b"Cache-Control: no-store\r\n"
        b"Connection: close\r\n\r\n"
    )


def sse_event(event: str, payload: object) -> bytes:
    """One ``event:``/``data:`` frame of a server-sent-event stream."""
    return (
        f"event: {event}\ndata: "
        f"{json.dumps(payload, sort_keys=True, separators=(',', ':'))}\n\n"
    ).encode()


def parse_sse_frame(frame: str) -> Tuple[str, object]:
    """Decode one SSE frame back into ``(event, payload)`` (client side)."""
    event = ""
    data_lines = []
    for line in frame.splitlines():
        if line.startswith("event:"):
            event = line[len("event:"):].strip()
        elif line.startswith("data:"):
            data_lines.append(line[len("data:"):].strip())
    return event, json.loads("\n".join(data_lines) or "null")
