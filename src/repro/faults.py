"""Deterministic fault injection for the contesting system.

A :class:`FaultPlan` perturbs one contested run (see ``docs/robustness.md``
and the hooks in :class:`repro.core.system.ContestingSystem`):

* **Transfer faults** — each GRB result transfer (one retired instruction,
  one sender→receiver hop) can be *dropped* (the payload is lost in
  flight; the receiver discards the entry and gets no injection or early
  branch resolution from it), *corrupted* (the payload is garbled; if the
  receiver would have consumed it as a paired injection the corruption is
  detected and the receiver recovers through the existing resync path —
  pipeline squash plus ``resync_penalty_cycles``), or *delayed* (arrival
  pushed out by ``delay_ns``; later transfers on the ordered bus queue
  behind it).
* **Core faults** — a core can be *killed* outright at a retirement point
  (it is removed from contesting exactly like a saturated lagger, and the
  surviving cores finish the run), *stalled* for a window of its own
  cycles (its clock advances, no work happens — a transient hang), or
  *flipped to standalone* (it stops receiving GRB results mid-run and
  reverts to its own speed, the paper's implicit fail-soft mode).

Decisions are **counter-based**: a transfer's fate is a pure hash of
``(seed, sender, receiver, seq)``, so a plan is deterministic, independent
of co-simulation interleaving, identical across serial and parallel
executors, and usable as a cache identity (:meth:`FaultPlan.fingerprint`).
With no plan installed the system takes none of these paths and its output
is byte-identical to a build without fault injection (golden-tested).
"""

import hashlib
from dataclasses import dataclass, fields
from typing import Optional

#: Transfer-fault outcomes (returned by :meth:`FaultPlan.transfer_fault`).
XFER_OK = 0
XFER_DROP = 1
XFER_CORRUPT = 2
XFER_DELAY = 3


def _unit(seed: int, *parts: object) -> float:
    """Deterministic uniform [0, 1) from a seed and a counter tuple.

    Hash-based (no RNG state), so every decision is independent of how
    many decisions preceded it — the property that keeps fault placement
    stable when simulation interleaving changes.
    """
    payload = "/".join(str(p) for p in (seed,) + parts).encode()
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative description of the faults to inject.

    All fields default to "no fault"; a default-constructed plan is a
    no-op (useful for asserting the fault machinery itself is inert).
    Rates are per transfer and must sum to at most 1.
    """

    seed: int = 0
    #: per-transfer probability the payload is lost in flight
    drop_rate: float = 0.0
    #: per-transfer probability the payload is garbled (detected on use)
    corrupt_rate: float = 0.0
    #: per-transfer probability of an extra in-flight delay
    delay_rate: float = 0.0
    #: extra latency charged to delayed transfers
    delay_ns: float = 0.0
    #: core to kill (core_id), or None
    kill_core: Optional[int] = None
    #: retirement count at which the kill fires
    kill_at_commit: int = 0
    #: core to stall (core_id), or None
    stall_core: Optional[int] = None
    #: first stalled cycle (the stalled core's own clock)
    stall_at_cycle: int = 0
    #: length of the stall window in cycles
    stall_cycles: int = 0
    #: core to flip to standalone mid-run (core_id), or None
    standalone_core: Optional[int] = None
    #: retirement count at which the flip fires
    standalone_at_commit: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "corrupt_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        if self.drop_rate + self.corrupt_rate + self.delay_rate > 1.0 + 1e-12:
            raise ValueError("transfer fault rates must sum to <= 1")
        if self.delay_ns < 0:
            raise ValueError("delay_ns must be >= 0")
        for name in (
            "kill_at_commit", "stall_at_cycle", "stall_cycles",
            "standalone_at_commit",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @property
    def perturbs_transfers(self) -> bool:
        """Whether any per-transfer decision ever needs to be made."""
        return bool(self.drop_rate or self.corrupt_rate or self.delay_rate)

    def transfer_fault(self, sender: int, receiver: int, seq: int) -> int:
        """The fate of one transfer: ``XFER_OK``/``DROP``/``CORRUPT``/``DELAY``.

        Pure in its arguments and the plan — calling it twice, in any
        order, in any process, returns the same answer.
        """
        u = _unit(self.seed, "xfer", sender, receiver, seq)
        if u < self.drop_rate:
            return XFER_DROP
        u -= self.drop_rate
        if u < self.corrupt_rate:
            return XFER_CORRUPT
        u -= self.corrupt_rate
        if u < self.delay_rate:
            return XFER_DELAY
        return XFER_OK

    def next_core_fault_cycle(
        self,
        core_id: int,
        cycle: int,
        commit_count: int,
        killed: bool,
        flipped: bool,
    ) -> Optional[int]:
        """Earliest own-clock cycle >= ``cycle`` at which this plan could
        act on ``core_id``, or None.

        Used by the skip-ahead scheduler so event-driven runs take the
        kill/flip/stall paths at exactly the cycles the cycle-stepped
        co-simulation would: a pending commit-threshold fault (already
        crossed, not yet fired) pins the core to its very next cycle, and a
        stall window pins it to the window's first cycle.  Transfer faults
        need no entry here — they perturb arrival timestamps at broadcast
        time, which the FIFO-arrival events already cover.
        """
        if (
            self.kill_core == core_id
            and not killed
            and commit_count >= self.kill_at_commit
        ):
            return cycle
        if (
            self.standalone_core == core_id
            and not flipped
            and commit_count >= self.standalone_at_commit
        ):
            return cycle
        if self.stall_core == core_id and self.stall_cycles > 0:
            end = self.stall_at_cycle + self.stall_cycles
            if cycle < end:
                return max(cycle, self.stall_at_cycle)
        return None

    def fingerprint(self) -> str:
        """Stable identity for cache keys (field order is part of it)."""
        return "faultplan/" + "/".join(
            f"{f.name}={getattr(self, f.name)!r}" for f in fields(self)
        )
