"""repro — a reproduction of "Architectural Contesting" (HPCA 2009).

Najaf-abadi & Rotenberg propose *architectural contesting*: several
heterogeneous cores concurrently execute the same thread in a
leader-follower arrangement, each broadcasting retired-instruction results
on a global result bus so that trailing cores never fall far behind and the
core best suited to the immediate fine-grain code region automatically takes
the lead.

Quickstart::

    from repro import (
        generate_trace, workload_profile, core_config,
        run_standalone, run_contest,
    )

    trace = generate_trace(workload_profile("gcc"), 60_000, seed=11)
    alone = run_standalone(core_config("gcc"), trace)
    both = run_contest(core_config("gcc"), core_config("vpr"), trace)
    print(alone.ipt, both.ipt, both.lead_changes)

Subpackages
-----------
``repro.isa``
    Synthetic phase-structured traces (the SPEC2000int SimPoint stand-in).
``repro.uarch``
    The cycle-stepped out-of-order core timing model and the published
    Appendix-A core palette.
``repro.core``
    The contesting mechanism itself (GRBs, result FIFOs, pop/fetch counter
    logic, injection, synchronizing store queue, saturated laggers).
``repro.engine``
    The unified simulation engine: declarative jobs, serial/parallel
    executors, and the layered (memory + on-disk) result cache every
    experiment, explorer and CLI tool resolves simulations through.
``repro.analysis``
    The Section-2 oracle-switching analysis (Figure 1).
``repro.cmp``
    Constrained heterogeneous CMP design under the paper's three figures of
    merit (Table 1, Figures 9-13).
``repro.explore``
    Simulated-annealing design-space exploration (the XpScalar stand-in).
``repro.experiments``
    One module per table/figure of the paper's evaluation, plus a CLI
    runner (``python -m repro.experiments``).
"""

from repro.analysis import oracle_switching_curve, region_log
from repro.cmp import design_suite
from repro.core import ContestingSystem, ContestResult, run_contest
from repro.engine import (
    ContestJob,
    ParallelExecutor,
    RegionLogJob,
    ResultStore,
    SerialExecutor,
    SimEngine,
    StandaloneJob,
    TraceSpec,
)
from repro.explore import simulated_annealing
from repro.isa import (
    BENCHMARKS,
    Trace,
    characterize,
    generate_trace,
    workload_profile,
)
from repro.uarch import (
    APPENDIX_A_CORES,
    Core,
    CoreConfig,
    core_config,
    run_standalone,
)

__version__ = "1.0.0"

__all__ = [
    "APPENDIX_A_CORES",
    "BENCHMARKS",
    "ContestJob",
    "ContestResult",
    "ContestingSystem",
    "Core",
    "CoreConfig",
    "ParallelExecutor",
    "RegionLogJob",
    "ResultStore",
    "SerialExecutor",
    "SimEngine",
    "StandaloneJob",
    "Trace",
    "TraceSpec",
    "characterize",
    "core_config",
    "design_suite",
    "generate_trace",
    "oracle_switching_curve",
    "region_log",
    "run_contest",
    "run_standalone",
    "simulated_annealing",
    "workload_profile",
    "__version__",
]
