"""Per-region execution-time logs (the paper's 20-instruction logs)."""

from dataclasses import dataclass
from typing import List

from repro.isa.trace import TraceSource
from repro.uarch.config import CoreConfig
from repro.uarch.run import run_standalone

#: The paper's base region size in dynamic instructions.
BASE_REGION = 20


@dataclass
class RegionLog:
    """Execution time of every ``region_size``-instruction region, in ps.

    ``times_ps[i]`` is the time the core spent retiring instructions
    ``[i*region_size, (i+1)*region_size)``; clock periods are already folded
    in because the log is recorded in wall time, exactly as the paper's
    methodology requires ("while factoring in the clock periods").
    """

    config_name: str
    trace_name: str
    region_size: int
    times_ps: List[int]

    @property
    def total_ps(self) -> int:
        return sum(self.times_ps)

    def coarsen(self, factor: int) -> "RegionLog":
        """Merge ``factor`` consecutive regions (the paper's "summing the
        execution time of neighbouring regions")."""
        if factor < 1:
            raise ValueError("factor must be >= 1")
        if factor == 1:
            return self
        merged = [
            sum(self.times_ps[i : i + factor])
            for i in range(0, len(self.times_ps), factor)
        ]
        return RegionLog(
            config_name=self.config_name,
            trace_name=self.trace_name,
            region_size=self.region_size * factor,
            times_ps=merged,
        )


def region_log(
    config: CoreConfig, trace: TraceSource, region_size: int = BASE_REGION
) -> RegionLog:
    """Run ``trace`` standalone on ``config`` and log per-region times."""
    result = run_standalone(config, trace, region_size=region_size)
    boundaries = result.region_times_ps
    times = [boundaries[0]] if boundaries else []
    times += [b - a for a, b in zip(boundaries, boundaries[1:])]
    # The final partial region (trace length not a multiple of region_size)
    # is charged at the run's total time minus the last boundary.
    tail = result.time_ps - (boundaries[-1] if boundaries else 0)
    if tail > 0 and len(trace) % region_size != 0:
        times.append(tail)
    return RegionLog(
        config_name=config.name,
        trace_name=trace.name,
        region_size=region_size,
        times_ps=times,
    )
