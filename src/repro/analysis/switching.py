"""Oracle pairwise switching at doubling granularities (Figure 1)."""

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.regions import RegionLog


def pair_switch_time(log_a: RegionLog, log_b: RegionLog) -> int:
    """Total time if every region retires at the faster of two configs.

    Both logs must come from the same trace at the same region size.
    """
    if log_a.region_size != log_b.region_size:
        raise ValueError("region sizes differ")
    if len(log_a.times_ps) != len(log_b.times_ps):
        raise ValueError("region counts differ; logs are not comparable")
    return sum(min(a, b) for a, b in zip(log_a.times_ps, log_b.times_ps))


def best_pair_at_granularity(
    logs: Dict[str, RegionLog], factor: int
) -> Tuple[Tuple[str, str], int]:
    """Best two-config combination at region size ``base * factor``.

    Returns ``((name_a, name_b), total_time_ps)`` minimising the switched
    execution time over all pairs, including same-config "pairs" (which
    reduce to standalone execution and can win only when no pair helps).
    """
    coarse = {name: log.coarsen(factor) for name, log in logs.items()}
    best_pair = None
    best_time = None
    for a, b in itertools.combinations(sorted(coarse), 2):
        t = pair_switch_time(coarse[a], coarse[b])
        if best_time is None or t < best_time:
            best_time = t
            best_pair = (a, b)
    if best_pair is None:
        raise ValueError("need at least two configuration logs")
    return best_pair, best_time


@dataclass
class OracleCurve:
    """One benchmark's Figure-1 curve.

    ``points[k] = (granularity_instructions, best_pair, speedup_percent)``
    where speedup is over the benchmark's own customised configuration.
    """

    benchmark: str
    own_config: str
    points: List[Tuple[int, Tuple[str, str], float]]

    def speedups(self) -> List[float]:
        """Speedup percentages in granularity order."""
        return [p[2] for p in self.points]

    def granularities(self) -> List[int]:
        """Region sizes (instructions) in curve order."""
        return [p[0] for p in self.points]

    def knee_granularity(self, fraction: float = 0.25) -> int:
        """Largest granularity retaining at least ``fraction`` of the
        finest-granularity speedup — a simple knee locator for the
        "knee near 1280 instructions" observation."""
        if not self.points:
            raise ValueError("empty curve")
        finest = self.points[0][2]
        if finest <= 0:
            return self.points[0][0]
        knee = self.points[0][0]
        for granularity, _, speedup in self.points:
            if speedup >= fraction * finest:
                knee = granularity
        return knee


def oracle_switching_curve(
    benchmark: str,
    logs: Dict[str, RegionLog],
    max_doublings: int = 0,
) -> OracleCurve:
    """Compute the Figure-1 curve for one benchmark.

    Parameters
    ----------
    benchmark:
        The benchmark name; ``logs[benchmark]`` must be the log on its own
        customised configuration (the speedup baseline).
    logs:
        Region logs of the same trace on every candidate configuration.
    max_doublings:
        Number of granularity doublings to evaluate; 0 derives the maximum
        that still leaves at least two regions.
    """
    if benchmark not in logs:
        raise KeyError(f"no region log for baseline config {benchmark!r}")
    own_total = logs[benchmark].total_ps
    n_regions = len(logs[benchmark].times_ps)
    if max_doublings <= 0:
        max_doublings = max(1, (n_regions // 2).bit_length())
    points = []
    factor = 1
    base = logs[benchmark].region_size
    for _ in range(max_doublings):
        if n_regions // factor < 2:
            break
        pair, t = best_pair_at_granularity(logs, factor)
        speedup = (own_total / t - 1.0) * 100.0
        points.append((base * factor, pair, speedup))
        factor *= 2
    return OracleCurve(benchmark=benchmark, own_config=benchmark, points=points)


def lead_changes_from_events(events: Sequence[object]) -> int:
    """Count lead changes in a telemetry event stream, validating it.

    Accepts any sequence of objects with ``name`` and ``args`` attributes
    (duck-typed so this analysis layer needs no telemetry import —
    :class:`repro.telemetry.TraceEvent` instances in practice).  Only
    ``lead_change`` events are considered.  The handoff chain must be
    consistent: each change's ``from`` core equals the previous change's
    ``to`` core, and no change hands the lead to its current holder.
    Raises ``ValueError`` on an inconsistent stream.

    The returned count always equals both the tracer's
    ``contest.lead_changes`` counter and
    ``ContestResult.lead_changes`` (property-tested in
    ``tests/telemetry``) — the parity that makes the event stream a
    trustworthy source for switching analyses.
    """
    count = 0
    holder: object = None
    for event in events:
        if getattr(event, "name", None) != "lead_change":
            continue
        args = event.args  # type: ignore[attr-defined]
        src, dst = args["from"], args["to"]
        if src == dst:
            raise ValueError(
                f"lead_change #{count} hands the lead to its holder "
                f"(core {src!r})"
            )
        if holder is not None and src != holder:
            raise ValueError(
                f"lead_change #{count} claims the lead moved from core "
                f"{src!r} but core {holder!r} held it"
            )
        holder = dst
        count += 1
    return count
