"""Section-2 analysis: oracle switching between configurations.

The paper motivates contesting by logging, for each benchmark, the time to
retire every 20 dynamic instructions on each customised configuration, then
asking: if execution could switch between two configurations at a given
granularity (each region retired at the faster of the two, clock periods
included), how much faster would the benchmark run than on its own
customised configuration?  Repeating for region sizes of 20·2^k instructions
produces Figure 1; the knee near ~1280 instructions is the paper's evidence
that useful behaviour variation is too fine-grain for prior adaptation or
migration techniques.
"""

from repro.analysis.regions import RegionLog, region_log
from repro.analysis.switching import (
    OracleCurve,
    best_pair_at_granularity,
    oracle_switching_curve,
    pair_switch_time,
)

__all__ = [
    "OracleCurve",
    "RegionLog",
    "best_pair_at_granularity",
    "oracle_switching_curve",
    "pair_switch_time",
    "region_log",
]
