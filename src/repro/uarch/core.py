"""The cycle-stepped out-of-order core timing model.

One :class:`Core` models a single clock domain.  ``step()`` advances exactly
one cycle, processing the stages back-to-front (commit, complete, issue,
dispatch, fetch) so that results produced in a cycle can wake consumers in
the same cycle when the configuration's wakeup latency is zero.

The model is trace-driven.  Wrong-path instructions are not simulated: a
mispredicted branch stalls fetch from its own fetch cycle until it resolves,
after which the front-end refill depth is paid naturally through the fetch
queue's fetch-to-dispatch latency.  The paper's checkpointed fetch counter
maps onto this model directly — the fetch counter here never counts
wrong-path instructions, so the scenario-1/scenario-2 comparisons of
Section 4.1.2 are preserved verbatim.

Contesting hooks: a ``contest`` adapter (duck-typed; implemented by
:class:`repro.core.system.ContestingSystem`) is consulted

* once per cycle to drain late results and fire the Figure-5 early
  branch-resolution corner case (``drain``),
* at fetch to pop a matching result for injection (``pop_for_fetch``),
* at store commit for the synchronizing store queue
  (``store_commit_ok`` / ``store_performed``),
* at retirement to broadcast on this core's global result bus
  (``on_retire``), and
* at syscall commit for the semaphore-style parallel exception handler
  (``syscall_ready``).
"""

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.isa.trace import TraceSource
from repro.uarch.branch import make_predictor
from repro.uarch.cache import Cache, CacheHierarchy
from repro.uarch.config import CoreConfig

# Plain-int op classes for the hot loop (must mirror repro.isa.OpClass).
OP_IALU = 0
OP_IMUL = 1
OP_IDIV = 2
OP_LOAD = 3
OP_STORE = 4
OP_BRANCH = 5
OP_SYSCALL = 6
OP_NOP = 7

#: Execution latency in cycles by op class; loads use the cache access
#: latency instead (index kept for alignment).
_EXEC_LAT = (1, 3, 12, 0, 1, 1, 1, 1)

#: Cycles charged by the (parallelised) exception handler at a syscall.
SYSCALL_PENALTY = 200

#: Sentinel returned by :meth:`Core.next_event_cycle` when no future event
#: is scheduled (the core is done, or deadlocked).  Far beyond any reachable
#: cycle count, so ``min()`` arithmetic needs no special-casing.
NO_EVENT = 1 << 62


class _Rec:
    """In-flight instruction state (one per dispatched trace instruction)."""

    __slots__ = (
        "seq",
        "op",
        "is_mem",
        "produces",
        "injected",
        "completed",
        "complete_cycle",
        "issued",
        "pending",
        "waiters",
        "mispredicted",
        "resolved",
        "syscall_charged",
    )

    def __init__(self, seq: int, op: int, is_mem: bool, produces: bool) -> None:
        self.seq = seq
        self.op = op
        self.is_mem = is_mem
        self.produces = produces
        self.injected = False
        self.completed = False
        self.complete_cycle = -1
        self.issued = False
        self.pending = 0
        self.waiters: List["_Rec"] = []
        self.mispredicted = False
        self.resolved = True
        self.syscall_charged = False


@dataclass
class RunStats:
    """Counters accumulated over one core's run."""

    cycles: int = 0
    committed: int = 0
    branches: int = 0
    mispredicts: int = 0
    early_resolved: int = 0
    injected: int = 0
    l1_misses: int = 0
    l1_accesses: int = 0
    l2_misses: int = 0
    fetch_stall_cycles: int = 0
    region_times_ps: List[int] = field(default_factory=list)

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0

    @property
    def injection_fraction(self) -> float:
        return self.injected / self.committed if self.committed else 0.0


class Core:
    """A single out-of-order core executing a trace in its own clock domain.

    Parameters
    ----------
    config:
        The core configuration (see :mod:`repro.uarch.config`).
    trace:
        The dynamic instruction trace to execute.
    core_id:
        Identifier within a multi-core system.
    contest:
        Optional contesting adapter (None for standalone execution).
    region_size:
        If non-zero, record the elapsed time (ps) at every ``region_size``-th
        retirement — the Section-2 region log.
    """

    def __init__(
        self,
        config: CoreConfig,
        trace: TraceSource,
        core_id: int = 0,
        # the owning ContestingSystem (annotated loosely: repro.core
        # imports this module, so naming the class here would be circular)
        contest: Optional[Any] = None,
        region_size: int = 0,
        prewarm: bool = True,
        shared_cache: Optional[Cache] = None,
        shared_latency: int = 0,
        # a repro.telemetry.Tracer (annotated loosely: telemetry is an
        # observer layer and the model must not depend on it)
        tracer: Optional[Any] = None,
    ) -> None:
        self.config = config
        self.trace = trace
        self.core_id = core_id
        self.contest = contest
        self.contesting_enabled = contest is not None
        self.halted = False
        self.tracer = tracer
        # live per-op retired counts owned by the tracer; the commit loop
        # increments the plain list so the disabled path stays branch-free
        self._tel_ops: Optional[List[int]] = (
            tracer.register_core(core_id, config.name, config.period_ps)
            if tracer is not None else None
        )

        self.period_ps = config.period_ps
        self.cycle = 0
        self.time_ps = 0

        self.hierarchy = CacheHierarchy(
            config.l1, config.l2, config.mem_latency,
            shared_cache=shared_cache, shared_latency=shared_latency,
        )
        self.predictor = make_predictor(config.predictor, config.predictor_entries)

        # Column-major decode, shared across all cores running this trace:
        # the hot loop indexes plain lists (or windowed streaming columns)
        # instead of Instr attributes.
        decoded = trace.decoded()
        self._ops = decoded.ops
        self._pcs = decoded.pcs
        self._deps1 = decoded.deps1
        self._deps2 = decoded.deps2
        self._addrs = decoded.addrs
        self._takens = decoded.takens
        self._n = len(trace)
        # Hoisted config scalars (CoreConfig is frozen; reading through the
        # dataclass every cycle costs a dict lookup per field per stage).
        self._width = config.width
        self._rob_cap = config.rob_size
        self._fq_cap = config.fetch_queue_size
        self._fe_depth = config.frontend_depth
        self._sched = config.sched_depth
        self._awaken = config.awaken_latency
        self._l1_latency = config.l1.latency
        self._perfect_caches = config.perfect_caches
        self._perfect_predictor = config.perfect_predictor
        self.fetch_index = 0
        self.commit_count = 0

        self._fetch_q = deque()  # (ready_cycle, rec) FIFO, bounded
        self._rob: List[_Rec] = []
        self._rob_head = 0  # index into _rob (amortised pop-front)
        self._iq_free = config.iq_size
        self._lsq_free = config.lsq_size
        self._ready_heap: List = []   # (ready_cycle, seq, rec)
        self._complete_heap: List = []  # (complete_cycle, seq, rec)
        self._inflight: Dict[int, _Rec] = {}

        self._mshr_heap: List[int] = []   # completion cycles of outstanding misses
        self._mshr_count = config.mshr_count
        #: in-flight store words (8B-aligned addr -> count) for forwarding
        self._store_words: Dict[int, int] = {}
        self._forwarding = config.store_forwarding
        self._fetch_stalled = False       # waiting on a mispredicted branch
        self._stall_branch: Optional[_Rec] = None
        self._syscall_stall = False       # fetch frozen until syscall commits
        self._commit_stall_until = -1

        self.region_size = region_size
        self.stats = RunStats()
        if prewarm:
            self._prewarm()

    def _prewarm(self) -> None:
        """Warm the caches and the branch predictor with one trace pass.

        The paper simulates 100M-instruction SimPoints, so steady-state
        behaviour dominates; our traces are 10^3x shorter and would otherwise
        be dominated by compulsory misses and predictor training.  One
        functional pass (no timing) puts both structures in steady state,
        after which statistics are reset.
        """
        hierarchy = self.hierarchy
        predictor = self.predictor
        addrs = self._addrs
        for seq, op in enumerate(self._ops):
            if op == OP_LOAD:
                hierarchy.access(addrs[seq])
            elif op == OP_STORE:
                hierarchy.write(addrs[seq])
            elif op == OP_BRANCH:
                predictor.update(self._pcs[seq], self._takens[seq])
        hierarchy.reset_stats()

    # ------------------------------------------------------------------
    # public helpers
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True once the final trace instruction has retired on this core."""
        return self.commit_count >= self._n

    @property
    def rob_occupancy(self) -> int:
        """In-flight instructions currently occupying the ROB."""
        return len(self._rob) - self._rob_head

    def ipt(self) -> float:
        """Instructions per nanosecond over the whole run so far."""
        if self.time_ps == 0:
            return 0.0
        return self.commit_count * 1000.0 / self.time_ps

    def collect_cache_stats(self) -> RunStats:
        """Fold the cache hierarchy's counters into ``stats`` and return it
        (called once, after the run, by every driver)."""
        self.stats.l1_accesses = self.hierarchy.l1.accesses
        self.stats.l1_misses = self.hierarchy.l1.misses
        self.stats.l2_misses = self.hierarchy.l2.misses
        return self.stats

    # ------------------------------------------------------------------
    # contesting entry points (called by the adapter)
    # ------------------------------------------------------------------

    def early_resolve_branch(self, seq: int) -> bool:
        """Resolve an in-flight branch early from another core's result.

        Implements the Figure-5 corner case: a late branch result matches an
        unresolved branch in this core.  If it is the branch fetch is stalled
        on, the stall lifts immediately; the fetch counter restore of the
        paper corresponds to fetch resuming at ``seq + 1``, which is where
        ``fetch_index`` already points in this trace-driven model.
        """
        rec = self._inflight.get(seq)
        if (
            rec is None
            or rec.op != OP_BRANCH
            or rec.resolved
            or not rec.mispredicted
        ):
            # The paper compares the popped outcome against the prediction;
            # only a detected misprediction is resolved early.
            return False
        rec.resolved = True
        rec.completed = True
        rec.complete_cycle = self.cycle
        if not rec.issued:
            rec.issued = True  # lazy-invalidate any ready-heap entry
            self._iq_free += 1
        if self._stall_branch is rec:
            self._fetch_stalled = False
            self._stall_branch = None
        self.stats.early_resolved += 1
        return True

    def disable_contesting(self) -> None:
        """Stop participating in contesting (saturated-lagger remedy)."""
        self.contesting_enabled = False

    def resync(self, target_seq: int, penalty_cycles: int = 0) -> None:
        """Re-fork this core at ``target_seq`` (architectural state copied
        from the leader, as in the paper's terminate-and-refork machinery).

        The pipeline is squashed, all window structures are freed, and both
        the fetch counter (``fetch_index``) and the retirement position jump
        to ``target_seq``.  Private caches and the branch predictor keep
        their (stale) contents — copying them is not what a re-fork does.
        ``penalty_cycles`` charges the state-transfer cost.
        """
        if target_seq < self.commit_count:
            raise ValueError("cannot resync backwards")
        if target_seq > self._n:
            raise ValueError("resync target beyond the trace")
        self._fetch_q.clear()
        self._rob = []
        self._rob_head = 0
        self._inflight.clear()
        self._ready_heap.clear()
        self._complete_heap.clear()
        self._mshr_heap.clear()
        self._store_words.clear()
        self._iq_free = self.config.iq_size
        self._lsq_free = self.config.lsq_size
        self._fetch_stalled = False
        self._stall_branch = None
        self._syscall_stall = False
        self._commit_stall_until = -1
        self.fetch_index = target_seq
        self.commit_count = target_seq
        self.stats.committed = target_seq
        if penalty_cycles > 0:
            self.cycle += penalty_cycles
            self.time_ps += penalty_cycles * self.period_ps
            self.stats.cycles = self.cycle

    # ------------------------------------------------------------------
    # the cycle
    # ------------------------------------------------------------------

    def stall_cycle(self) -> None:
        """Burn one clock cycle doing no work (fault-injected hang).

        The clock and wall time advance as in :meth:`step`, but no
        pipeline stage runs — in-flight state is frozen in place.
        """
        if self.halted:
            raise RuntimeError("cannot stall a halted core")
        self.cycle += 1
        self.time_ps += self.period_ps
        self.stats.cycles = self.cycle

    def skip_to(self, cycle: int) -> None:
        """Jump the clock to ``cycle`` without running any pipeline stage.

        Only valid when every cycle in ``[self.cycle, cycle)`` is provably a
        no-op, i.e. ``cycle <= next_event_cycle()`` (and, under contesting,
        no GRB arrival, saturation timer, or fault window falls inside the
        window — :class:`repro.core.system.ContestingSystem` checks those).
        Replicates the one per-cycle side effect a no-op ``step()`` has
        besides the clock itself: the fetch-stall counter.
        """
        delta = cycle - self.cycle
        if delta <= 0:
            return
        if self._fetch_stalled or self._syscall_stall:
            self.stats.fetch_stall_cycles += delta
        if self.tracer is not None:
            self.tracer.skip(
                self.time_ps, self.core_id, self.cycle, cycle,
                delta * self.period_ps,
            )
        self.cycle = cycle
        self.time_ps += delta * self.period_ps
        self.stats.cycles = cycle

    def next_event_cycle(self) -> int:
        """Earliest cycle >= ``self.cycle`` at which ``step()`` could change
        any state (conservatively; returning the current cycle is always
        sound, it just skips nothing).

        An event is anything that lets a stage do work: the ROB head
        becoming committable (or being committable now, including commit
        *attempts* that contesting may reject — those count stalls), a
        completion-heap or wakeup-heap entry maturing, the syscall commit
        stall expiring, a fetch-queue entry reaching dispatch with window
        resources free, or fetch itself being unblocked.  Resource-blocked
        dispatch needs no event of its own: ROB/IQ/LSQ entries free only at
        commit/issue/complete, which are already events.  GRB arrivals and
        fault windows are external to the core and are folded in by
        :class:`repro.core.system.ContestingSystem`.  Returns ``NO_EVENT``
        when nothing is scheduled (done or deadlocked).
        """
        c = self.cycle
        fetch_q = self._fetch_q
        if (
            not self._fetch_stalled
            and not self._syscall_stall
            and self.fetch_index < self._n
            and len(fetch_q) < self._fq_cap
        ):
            return c  # fetch can run: the most common busy reason
        stall_until = self._commit_stall_until
        rob = self._rob
        head = self._rob_head
        if head < len(rob):
            rec = rob[head]
            if rec.completed and rec.resolved and stall_until <= c:
                return c
        nxt = stall_until if stall_until > c else NO_EVENT
        heap = self._complete_heap
        if heap:
            t = heap[0][0]
            if t <= c:
                return c
            if t < nxt:
                nxt = t
        heap = self._ready_heap
        if heap:
            t = heap[0][0]
            if t <= c:
                return c
            if t < nxt:
                nxt = t
        if fetch_q:
            t, rec = fetch_q[0]
            if t <= c:
                if (
                    len(rob) - head < self._rob_cap
                    and (not rec.is_mem or self._lsq_free)
                    and (self._iq_free or rec.injected or rec.op == OP_NOP)
                ):
                    return c
            elif t < nxt:
                nxt = t
        return nxt

    def step(self) -> None:
        """Advance exactly one clock cycle.

        Each stage call is guarded by its own loop's entry condition, so a
        stage with nothing to do costs a comparison instead of a function
        call — the guards replicate the first iteration test of the stage's
        ``while`` loop exactly, never its body, keeping the cycle-by-cycle
        behaviour bit-identical to unconditionally calling every stage.
        """
        if self.halted:
            raise RuntimeError("cannot step a halted core")
        cycle = self.cycle
        contest = self.contest if self.contesting_enabled else None
        if contest is not None:
            contest.drain(self, self.time_ps)

        if self._rob_head < len(self._rob) and self._commit_stall_until <= cycle:
            self._commit(cycle, contest)
        heap = self._complete_heap
        if heap and heap[0][0] <= cycle:
            self._complete(cycle)
        heap = self._ready_heap
        if heap and heap[0][0] <= cycle:
            self._issue(cycle)
        fetch_q = self._fetch_q
        if fetch_q and fetch_q[0][0] <= cycle:
            self._dispatch(cycle)
        self._fetch(cycle, contest)

        self.cycle = cycle + 1
        self.time_ps += self.period_ps
        self.stats.cycles = self.cycle

    # --- commit --------------------------------------------------------

    def _commit(self, cycle: int, contest: Optional[Any]) -> None:
        if self._commit_stall_until > cycle:
            return
        budget = self._width
        rob = self._rob
        head = self._rob_head
        tel_ops = self._tel_ops
        while budget and head < len(rob):
            rec = rob[head]
            if not rec.completed or not rec.resolved:
                break
            op = rec.op
            if op == OP_STORE:
                if contest is not None and not contest.store_commit_ok(self, rec.seq):
                    break
                addr = self._addrs[rec.seq]
                self.hierarchy.write(addr)
                if self._forwarding:
                    word = addr & ~7
                    left = self._store_words.get(word, 0) - 1
                    if left <= 0:
                        self._store_words.pop(word, None)
                    else:
                        self._store_words[word] = left
                if contest is not None:
                    contest.store_performed(self, rec.seq)
            elif op == OP_SYSCALL:
                if contest is not None and not contest.syscall_ready(self, rec.seq):
                    break
                if not rec.syscall_charged:
                    rec.syscall_charged = True
                    self._commit_stall_until = cycle + SYSCALL_PENALTY
                    break
                self._syscall_stall = False

            head += 1
            del self._inflight[rec.seq]
            if rec.is_mem:
                self._lsq_free += 1
            self.commit_count += 1
            self.stats.committed = self.commit_count
            if rec.injected:
                self.stats.injected += 1
            if self.region_size and self.commit_count % self.region_size == 0:
                # charge through the end of the committing cycle so the last
                # boundary coincides with the run's total time
                self.stats.region_times_ps.append(self.time_ps + self.period_ps)
            if self.contest is not None:
                # Broadcast on this core's GRB even while contesting is
                # disabled for *receiving*; other cores may still benefit.
                self.contest.on_retire(self, rec.seq, self.time_ps)
            if tel_ops is not None:
                tel_ops[op] += 1
            budget -= 1

        self._rob_head = head
        if head > 512 and head * 2 > len(rob):
            del rob[:head]
            self._rob_head = 0

    # --- complete / wakeup ----------------------------------------------

    def _complete(self, cycle: int) -> None:
        heap = self._complete_heap
        awaken = self._awaken
        while heap and heap[0][0] <= cycle:
            _, _, rec = heapq.heappop(heap)
            if rec.completed:
                continue  # resolved early via the GRB corner case
            rec.completed = True
            if rec.op == OP_BRANCH and not rec.resolved:
                rec.resolved = True
                if self._stall_branch is rec:
                    self._fetch_stalled = False
                    self._stall_branch = None
            if rec.waiters:
                ready_cycle = cycle + awaken
                for waiter in rec.waiters:
                    waiter.pending -= 1
                    if waiter.pending == 0 and not waiter.injected:
                        heapq.heappush(
                            self._ready_heap, (ready_cycle, waiter.seq, waiter)
                        )
                rec.waiters = []

    # --- issue -----------------------------------------------------------

    def _issue(self, cycle: int) -> None:
        heap = self._ready_heap
        budget = self._width
        sched = self._sched
        while budget and heap and heap[0][0] <= cycle:
            _, _, rec = heapq.heappop(heap)
            if rec.issued:
                continue  # lazily invalidated
            rec.issued = True
            self._iq_free += 1
            op = rec.op
            if op == OP_LOAD:
                addr = self._addrs[rec.seq]
                if self._forwarding and (addr & ~7) in self._store_words:
                    # store-to-load forwarding from the LSQ
                    rec.complete_cycle = cycle + sched + 1
                    heapq.heappush(
                        self._complete_heap, (rec.complete_cycle, rec.seq, rec)
                    )
                    budget -= 1
                    continue
                if self._perfect_caches:
                    raw = self._l1_latency
                else:
                    raw = self.hierarchy.access(addr)
                if raw > self._l1_latency:
                    # L1 miss: an MSHR bounds concurrent outstanding misses.
                    mshr = self._mshr_heap
                    while mshr and mshr[0] <= cycle:
                        heapq.heappop(mshr)
                    if len(mshr) >= self._mshr_count:
                        start = heapq.heappop(mshr)
                    else:
                        start = cycle
                    done = start + raw
                    heapq.heappush(mshr, done)
                    latency = sched + (done - cycle)
                else:
                    latency = sched + raw
            else:
                latency = sched + _EXEC_LAT[op]
            rec.complete_cycle = cycle + latency
            heapq.heappush(self._complete_heap, (rec.complete_cycle, rec.seq, rec))
            budget -= 1

    # --- dispatch ---------------------------------------------------------

    def _dispatch(self, cycle: int) -> None:
        budget = self._width
        fetch_q = self._fetch_q
        rob = self._rob
        rob_cap = self._rob_cap
        inflight = self._inflight
        awaken = self._awaken
        while budget and fetch_q and fetch_q[0][0] <= cycle:
            if len(rob) - self._rob_head >= rob_cap:
                break
            _, rec = fetch_q[0]
            if rec.is_mem and self._lsq_free == 0:
                break
            needs_iq = not rec.injected and rec.op != OP_NOP
            if needs_iq and self._iq_free == 0:
                break
            fetch_q.popleft()
            rob.append(rec)
            seq = rec.seq
            inflight[seq] = rec
            if rec.is_mem:
                self._lsq_free -= 1
                if self._forwarding and rec.op == OP_STORE:
                    word = self._addrs[seq] & ~7
                    self._store_words[word] = self._store_words.get(word, 0) + 1

            if rec.injected or rec.op == OP_NOP:
                # Early completion in the rename stage (Section 4.1.3): the
                # popped result is written directly; dependants of this
                # instruction are free immediately.
                rec.completed = True
                rec.complete_cycle = cycle
                budget -= 1
                continue

            self._iq_free -= 1
            ready_cycle = cycle + 1
            for dep in (self._deps1[seq], self._deps2[seq]):
                if dep < 0:
                    continue
                producer = inflight.get(dep)
                if producer is None:
                    continue  # already retired; value in the register file
                if producer.completed:
                    wake = producer.complete_cycle + awaken
                    if wake > ready_cycle:
                        ready_cycle = wake
                else:
                    rec.pending += 1
                    producer.waiters.append(rec)
            if rec.pending == 0:
                heapq.heappush(self._ready_heap, (ready_cycle, seq, rec))
            budget -= 1

    # --- fetch -------------------------------------------------------------

    def _fetch(self, cycle: int, contest: Optional[Any]) -> None:
        if self._fetch_stalled or self._syscall_stall:
            self.stats.fetch_stall_cycles += 1
            return
        budget = self._width
        fq_cap = self._fq_cap
        fetch_q = self._fetch_q
        ops = self._ops
        takens = self._takens
        ready_cycle = cycle + self._fe_depth
        while budget and self.fetch_index < self._n and len(fetch_q) < fq_cap:
            seq = self.fetch_index
            op = ops[seq]

            injected = False
            if (
                contest is not None
                and op != OP_SYSCALL
                and contest.pop_for_fetch(self, seq, self.time_ps)
            ):
                injected = True

            rec = _Rec(
                seq,
                op,
                op == OP_LOAD or op == OP_STORE,
                op <= OP_LOAD,  # IALU/IMUL/IDIV/LOAD write a register
            )
            rec.injected = injected

            taken = False
            if op == OP_BRANCH:
                taken = takens[seq]
                self.stats.branches += 1
                rec.resolved = injected
                # Predict, then train immediately: the trace is correct-path
                # only, so the speculative global history a real front end
                # maintains (with repair on misprediction) is exactly the
                # committed outcome history — training at fetch models it.
                if self._perfect_predictor:
                    prediction = taken
                else:
                    pc = self._pcs[seq]
                    prediction = self.predictor.predict(pc)
                    self.predictor.update(pc, taken)
                if not injected:
                    if prediction != taken:
                        rec.mispredicted = True
                        rec.resolved = False
                        self.stats.mispredicts += 1
                        self._fetch_stalled = True
                        self._stall_branch = rec
                    else:
                        rec.resolved = False  # resolves at execute, no stall
            elif op == OP_SYSCALL:
                self._syscall_stall = True

            fetch_q.append((ready_cycle, rec))
            self.fetch_index = seq + 1
            budget -= 1

            if op == OP_BRANCH:
                if rec.mispredicted:
                    break  # fetch freezes until resolution
                if taken:
                    break  # taken-branch fetch break
            elif op == OP_SYSCALL:
                break
