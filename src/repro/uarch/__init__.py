"""Cycle-stepped out-of-order core timing model (the sim-mase substitute).

The model is trace-driven: wrong-path instructions are not simulated; a
mispredicted branch stalls fetch until resolution and then pays the
front-end refill depth.  Everything the contesting mechanism interacts with
is modelled structurally — fetch/dispatch/issue/commit bandwidth, ROB / issue
queue / LSQ occupancy, wakeup latency, scheduler depth, branch prediction and
a two-level private cache hierarchy — and every core keeps its own clock
domain in integer picoseconds so heterogeneous cores co-simulate exactly.
"""

from repro.uarch.branch import BimodalPredictor, GsharePredictor, HybridPredictor
from repro.uarch.cache import Cache, CacheConfig, CacheHierarchy
from repro.uarch.config import APPENDIX_A_CORES, CoreConfig, core_config
from repro.uarch.core import Core, RunStats
from repro.uarch.pipetrace import PipeTrace, TracingCore, pipetrace
from repro.uarch.run import run_standalone

__all__ = [
    "APPENDIX_A_CORES",
    "BimodalPredictor",
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "Core",
    "CoreConfig",
    "GsharePredictor",
    "HybridPredictor",
    "PipeTrace",
    "RunStats",
    "TracingCore",
    "core_config",
    "pipetrace",
    "run_standalone",
]
