"""Per-instruction pipeline event tracing (a "pipetrace").

The classic simulator debugging view: for every instruction, the cycle it
was fetched, dispatched, issued, completed and committed, rendered as an
ASCII timeline.  Essential for understanding *why* a core behaves as it
does on a region — which instruction stalled the window, where a mispredict
bubble sits, how injected instructions flow through a trailing core (they
show dispatch->commit with no issue stage at all).

Tracing wraps a :class:`~repro.uarch.core.Core` non-invasively: it snapshots
architectural counters around each ``step()`` and reconstructs stage events
from the core's public state transitions, so the timing model itself stays
untouched.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.instructions import OpClass
from repro.uarch.core import NO_EVENT, Core

#: stage glyphs in the rendered timeline
GLYPHS = {
    "fetch": "F",
    "dispatch": "D",
    "issue": "I",
    "complete": "C",
    "commit": "R",   # retire
}


@dataclass
class InstrTimeline:
    """Stage cycles of one traced instruction (-1 = never reached)."""

    seq: int
    op: str
    fetch: int = -1
    dispatch: int = -1
    issue: int = -1
    complete: int = -1
    commit: int = -1
    injected: bool = False

    def row(self, origin: int, width: int) -> str:
        """Render this instruction's timeline as one Gantt row."""
        cells = ["."] * width
        for stage, glyph in GLYPHS.items():
            cycle = getattr(self, stage)
            if cycle >= 0:
                index = cycle - origin
                if 0 <= index < width:
                    # later stages overwrite earlier ones in the same cycle
                    cells[index] = glyph
        marker = "*" if self.injected else " "
        return f"{self.seq:>6}{marker}{self.op:<8}" + "".join(cells)


@dataclass
class PipeTrace:
    """Collected timelines plus rendering."""

    timelines: Dict[int, InstrTimeline] = field(default_factory=dict)
    first_cycle: int = 0
    last_cycle: int = 0

    def render(
        self, start_seq: int = 0, count: int = 32, max_width: int = 120
    ) -> str:
        """ASCII Gantt of ``count`` instructions from ``start_seq``.

        Legend: F fetch, D dispatch, I issue, C complete, R retire;
        a ``*`` after the sequence number marks an injected instruction.
        """
        rows = [
            self.timelines[seq]
            for seq in sorted(self.timelines)
            if seq >= start_seq
        ][:count]
        if not rows:
            return "(no instructions traced in that range)"
        origin = min(t.fetch for t in rows if t.fetch >= 0)
        span = max(
            max(t.commit, t.complete, t.fetch) for t in rows
        ) - origin + 1
        width = min(span, max_width)
        header = f"{'seq':>6} {'op':<8}" + f"cycles {origin}..{origin + width - 1}"
        lines = [header]
        lines += [t.row(origin, width) for t in rows]
        lines.append("legend: F fetch  D dispatch  I issue  C complete  "
                     "R retire  (* = injected)")
        return "\n".join(lines)


class TracingCore:
    """Wraps a core; stepping it records per-instruction stage cycles.

    Under event-driven runs (:meth:`run` with ``skip_ahead``) the wrapped
    core's clock jumps over provably idle windows between steps.  Stage
    events are recorded from the cycle at which the *worked* step actually
    ran — read from ``core.cycle`` after any jump, never from a loop
    counter captured before it — and completion uses the record's own
    ``complete_cycle``, so every timeline carries true event cycles and is
    bit-identical to one collected cycle by cycle (pinned by the
    regression tests in ``tests/uarch/test_pipetrace.py`` and the
    differential suite).
    """

    def __init__(self, core: Core, limit: int = 4096) -> None:
        self.core = core
        self.trace = PipeTrace()
        self._limit = limit
        self._prev_fetch = core.fetch_index
        self._prev_commit = core.commit_count

    def _timeline(self, seq: int) -> Optional[InstrTimeline]:
        if seq in self.trace.timelines:
            return self.trace.timelines[seq]
        if len(self.trace.timelines) >= self._limit:
            return None
        instr = self.core.trace[seq]
        timeline = InstrTimeline(seq=seq, op=OpClass(instr.op).name)
        self.trace.timelines[seq] = timeline
        return timeline

    def step(self) -> None:
        """Advance the wrapped core one cycle, recording stage events."""
        core = self.core
        cycle = core.cycle
        core.step()

        for seq in range(self._prev_fetch, core.fetch_index):
            timeline = self._timeline(seq)
            if timeline is not None:
                timeline.fetch = cycle
        self._prev_fetch = core.fetch_index

        for seq in range(self._prev_commit, core.commit_count):
            timeline = self.trace.timelines.get(seq)
            if timeline is not None:
                timeline.commit = cycle
        self._prev_commit = core.commit_count

        # dispatch / issue / complete are reconstructed from in-flight state
        for seq, rec in core._inflight.items():
            timeline = self.trace.timelines.get(seq)
            if timeline is None:
                continue
            if timeline.dispatch < 0:
                timeline.dispatch = cycle
                timeline.injected = rec.injected
            if rec.issued and timeline.issue < 0 and not rec.injected:
                timeline.issue = cycle
            if rec.completed and timeline.complete < 0:
                timeline.complete = (
                    rec.complete_cycle if rec.complete_cycle >= 0 else cycle
                )

        self.trace.last_cycle = core.cycle

    def run(
        self,
        max_steps: int = 1_000_000,
        skip_ahead: Optional[bool] = None,
    ) -> PipeTrace:
        """Step the core to completion; return the collected trace.

        ``skip_ahead=None`` (the default) enables event-driven skip-ahead
        automatically for standalone cores; contesting cores are always
        cycle-stepped here because only :class:`ContestingSystem` can see
        the cross-core events (GRB arrivals, fault windows) that bound a
        safe jump.  Skips happen strictly *between* steps, so recorded
        stage cycles are unaffected (see the class docstring).
        """
        core = self.core
        if skip_ahead is None:
            skip_ahead = core.contest is None
        steps = 0
        while not core.done:
            self.step()
            if skip_ahead:
                nxt = core.next_event_cycle()
                # NO_EVENT means a deadlocked core: fall back to cycle
                # stepping so max_steps trips the same diagnostic.
                if core.cycle < nxt < NO_EVENT:
                    core.skip_to(nxt)
                    self.trace.last_cycle = core.cycle
            steps += 1
            if steps > max_steps:
                raise RuntimeError("pipetrace run exceeded max_steps")
        return self.trace


def pipetrace(
    core: Core,
    limit: int = 4096,
    skip_ahead: Optional[bool] = None,
) -> PipeTrace:
    """Run ``core`` to completion under tracing and return the pipe trace."""
    return TracingCore(core, limit=limit).run(skip_ahead=skip_ahead)
