"""Standalone (non-contesting) execution of a trace on one core."""

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.isa.trace import Trace
from repro.uarch.config import CoreConfig
from repro.uarch.core import Core, RunStats

if TYPE_CHECKING:  # telemetry is an observer layer, never a model import
    from repro.telemetry import Tracer


@dataclass
class StandaloneResult:
    """Outcome of running one trace to completion on one core."""

    config_name: str
    trace_name: str
    instructions: int
    cycles: int
    time_ps: int
    stats: RunStats
    region_times_ps: List[int]

    @property
    def ipt(self) -> float:
        """Instructions per nanosecond — the paper's performance metric."""
        return self.instructions * 1000.0 / self.time_ps

    @property
    def ipc(self) -> float:
        """Instructions per cycle (frequency-blind; diagnostics only)."""
        return self.instructions / self.cycles


def run_standalone(
    config: CoreConfig,
    trace: Trace,
    region_size: int = 0,
    max_cycles: int = 0,
    prewarm: bool = True,
    skip_ahead: bool = True,
    tracer: Optional["Tracer"] = None,
) -> StandaloneResult:
    """Execute ``trace`` to completion on a core built from ``config``.

    Parameters
    ----------
    region_size:
        If non-zero, log elapsed time at every ``region_size``-th retirement
        (used by the Section-2 oracle switching analysis).
    max_cycles:
        Safety bound; 0 derives a generous limit from the trace length.
        Exceeding it raises ``RuntimeError`` (it indicates a model bug, not a
        slow workload).
    skip_ahead:
        Event-driven fast path (default): after each worked cycle, jump the
        clock straight to :meth:`Core.next_event_cycle` instead of stepping
        through cycles in which no stage can do anything.  Results are
        bit-identical to cycle stepping (pinned by ``tests/differential``);
        disable only to cross-check or profile the reference loop.
    tracer:
        Optional :class:`repro.telemetry.Tracer`; records skip-ahead jumps
        and per-op retirement counts without perturbing any result.
    """
    core = Core(
        config, trace, region_size=region_size, prewarm=prewarm,
        tracer=tracer,
    )
    limit = max_cycles or (len(trace) * (config.mem_latency + 64) + 100_000)
    if skip_ahead:
        while not core.done:
            core.step()
            if core.cycle > limit:
                raise RuntimeError(
                    f"core {config.name} exceeded {limit} cycles on trace "
                    f"{trace.name}: likely a pipeline deadlock"
                )
            if core.done:
                break
            nxt = core.next_event_cycle()
            if nxt > core.cycle:
                # a deadlocked core has no event at all: land just past the
                # limit so the step above raises exactly as the slow loop
                core.skip_to(min(nxt, limit + 1))
    else:
        while not core.done:
            core.step()
            if core.cycle > limit:
                raise RuntimeError(
                    f"core {config.name} exceeded {limit} cycles on trace "
                    f"{trace.name}: likely a pipeline deadlock"
                )
    core.collect_cache_stats()
    if tracer is not None:
        tracer.finalise_core(
            core.core_id, core.stats.committed, core.cycle, core.time_ps
        )
        tracer.finish(core.time_ps)
    return StandaloneResult(
        config_name=config.name,
        trace_name=trace.name,
        instructions=len(trace),
        cycles=core.cycle,
        time_ps=core.time_ps,
        stats=core.stats,
        region_times_ps=list(core.stats.region_times_ps),
    )
