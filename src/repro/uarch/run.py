"""Standalone (non-contesting) execution of a trace on one core."""

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.isa.trace import TraceSource
from repro.uarch.config import CoreConfig
from repro.uarch.core import RunStats

if TYPE_CHECKING:  # telemetry is an observer layer, never a model import
    from repro.telemetry import Tracer


@dataclass
class StandaloneResult:
    """Outcome of running one trace to completion on one core."""

    config_name: str
    trace_name: str
    instructions: int
    cycles: int
    time_ps: int
    stats: RunStats
    region_times_ps: List[int]

    @property
    def ipt(self) -> float:
        """Instructions per nanosecond — the paper's performance metric."""
        return self.instructions * 1000.0 / self.time_ps

    @property
    def ipc(self) -> float:
        """Instructions per cycle (frequency-blind; diagnostics only)."""
        return self.instructions / self.cycles


def run_standalone(
    config: CoreConfig,
    trace: TraceSource,
    region_size: int = 0,
    max_cycles: int = 0,
    prewarm: bool = True,
    skip_ahead: bool = True,
    tracer: Optional["Tracer"] = None,
    backend: str = "reference",
) -> StandaloneResult:
    """Execute ``trace`` to completion on a core built from ``config``.

    Dispatches through the :mod:`repro.backend` protocol layer; the
    cycle-stepped interpreter itself lives in
    :class:`repro.backend.reference.ReferenceBackend`.

    Parameters
    ----------
    region_size:
        If non-zero, log elapsed time at every ``region_size``-th retirement
        (used by the Section-2 oracle switching analysis).
    max_cycles:
        Safety bound; 0 derives a generous limit from the trace length.
        Exceeding it raises ``RuntimeError`` (it indicates a model bug, not a
        slow workload).
    skip_ahead:
        Event-driven fast path (default): after each worked cycle, jump the
        clock straight to :meth:`Core.next_event_cycle` instead of stepping
        through cycles in which no stage can do anything.  Results are
        bit-identical to cycle stepping (pinned by ``tests/differential``);
        disable only to cross-check or profile the reference loop.
    tracer:
        Optional :class:`repro.telemetry.Tracer`; records skip-ahead jumps
        and per-op retirement counts without perturbing any result.
    backend:
        Which execution engine to use: ``"reference"`` (default),
        ``"columnar"``, or ``"auto"``.  Results are bit-identical across
        backends (pinned by ``tests/differential/test_backend.py``); a
        backend asked to simulate something outside its capability falls
        back to the reference backend deterministically.
    """
    # imported lazily: repro.backend's reference engine imports this module
    from repro.backend import get_backend, resolve_backend_name

    engine = get_backend(resolve_backend_name(backend))
    return engine.run_standalone(
        config,
        trace,
        region_size=region_size,
        max_cycles=max_cycles,
        prewarm=prewarm,
        skip_ahead=skip_ahead,
        tracer=tracer,
    )
