"""Set-associative LRU caches and a two-level private hierarchy.

The Appendix-A configurations specify, per core: L1D and L2 geometry
(associativity, block size, number of sets) and access latencies in cycles,
plus a memory access latency in cycles.  The hierarchy here reproduces that
structure.  Misses are modelled without bandwidth contention (latencies
overlap freely subject to the window), which matches the level of detail the
paper's analysis depends on.
"""

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and access latency of one cache level."""

    assoc: int
    block: int       # bytes per block (power of two)
    sets: int        # number of sets (power of two)
    latency: int     # access latency in core cycles

    def __post_init__(self) -> None:
        if self.assoc < 1 or self.sets < 1 or self.latency < 1:
            raise ValueError("assoc, sets and latency must be >= 1")
        if self.block < 1 or (self.block & (self.block - 1)):
            raise ValueError("block size must be a positive power of two")
        if self.sets & (self.sets - 1):
            raise ValueError("set count must be a power of two")

    @property
    def size_bytes(self) -> int:
        """Total capacity in bytes."""
        return self.assoc * self.block * self.sets


class Cache:
    """One set-associative cache level with true-LRU replacement.

    Tag state only — this is a timing model, no data is stored.  Each set is
    a list ordered most-recently-used first; associativities in the palette
    are small enough that list operations are the fast path.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._block_bits = config.block.bit_length() - 1
        self._set_mask = config.sets - 1
        self._sets: List[List[int]] = [[] for _ in range(config.sets)]
        self.hits = 0
        self.misses = 0

    def lookup(self, addr: int, allocate: bool = True) -> bool:
        """Access the cache; returns True on hit.  Misses allocate by
        default (both reads and writes allocate, as in sim-mase)."""
        block_addr = addr >> self._block_bits
        index = block_addr & self._set_mask
        tag = block_addr >> (self._set_mask.bit_length())
        entries = self._sets[index]
        if tag in entries:
            self.hits += 1
            if entries[0] != tag:
                entries.remove(tag)
                entries.insert(0, tag)
            return True
        self.misses += 1
        if allocate:
            entries.insert(0, tag)
            if len(entries) > self.config.assoc:
                entries.pop()
        return False

    def contains(self, addr: int) -> bool:
        """Non-destructive presence check (no LRU update, no statistics)."""
        block_addr = addr >> self._block_bits
        index = block_addr & self._set_mask
        tag = block_addr >> (self._set_mask.bit_length())
        return tag in self._sets[index]

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (contents are kept)."""
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0


class CacheHierarchy:
    """Private L1D + L2 backed by a fixed-latency memory.

    ``access`` returns the load-to-use latency in cycles for the requesting
    core.  Stores update cache state at commit (write-allocate) but their
    latency is hidden behind the store buffer, matching the model described
    in DESIGN.md.
    """

    def __init__(
        self,
        l1: CacheConfig,
        l2: CacheConfig,
        mem_latency: int,
        shared_cache: Optional["Cache"] = None,
        shared_latency: int = 0,
    ) -> None:
        if mem_latency < 1:
            raise ValueError("memory latency must be >= 1 cycle")
        if shared_cache is not None and shared_latency < 1:
            raise ValueError("shared_latency must be >= 1 when a shared cache is attached")
        self.l1 = Cache(l1)
        self.l2 = Cache(l2)
        self.mem_latency = mem_latency
        #: optional shared level beyond the private L2 (Section 4.2's
        #: "shared cache level"); one Cache object may be shared by the
        #: hierarchies of several cores, with a per-core cycle latency
        self.shared_cache = shared_cache
        self.shared_latency = shared_latency

    def access(self, addr: int) -> int:
        """Load access: returns total latency in cycles."""
        if self.l1.lookup(addr):
            return self.l1.config.latency
        if self.l2.lookup(addr):
            return self.l1.config.latency + self.l2.config.latency
        private = self.l1.config.latency + self.l2.config.latency
        if self.shared_cache is not None:
            if self.shared_cache.lookup(addr):
                return private + self.shared_latency
            return private + self.shared_latency + self.mem_latency
        return private + self.mem_latency

    def write(self, addr: int) -> None:
        """Store performed at commit: updates tag state, latency hidden."""
        if not self.l1.lookup(addr):
            self.l2.lookup(addr)

    def reset_stats(self) -> None:
        """Zero both private levels' counters."""
        self.l1.reset_stats()
        self.l2.reset_stats()
