"""Core configurations, including the paper's Appendix-A palette.

Appendix A of the paper publishes the eleven benchmark-customised core
configurations found by the XpScalar simulated-annealing exploration in 70nm
technology.  We adopt those configurations verbatim: memory latency (cycles),
front-end depth, width, ROB/IQ/LSQ sizes, minimum wakeup latency, scheduler
depth, clock period (ns), and both cache geometries with latencies.
"""

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.uarch.cache import CacheConfig
from repro.util.units import ns_to_ps

#: Execution latencies in cycles by op class (IALU, IMUL, IDIV, ...).  Loads
#: take the cache access latency instead; branches and stores take one cycle
#: of address/condition generation.
EXEC_LATENCY = {"IALU": 1, "IMUL": 3, "IDIV": 12, "BRANCH": 1, "STORE": 1}


@dataclass(frozen=True)
class CoreConfig:
    """A complete core configuration (one column of Appendix A).

    ``frontend_depth`` is both the fetch-to-dispatch latency and the redirect
    refill penalty after a branch misprediction.  ``sched_depth`` models the
    scheduler/register-file pipeline between issue and execute.
    ``awaken_latency`` is the paper's "minimum latency for awakening of
    dependent instructions".
    """

    name: str
    clock_period_ns: float
    width: int                 # dispatch, issue and commit width
    rob_size: int
    iq_size: int
    lsq_size: int
    frontend_depth: int
    sched_depth: int
    awaken_latency: int
    mem_latency: int           # cycles to memory beyond L2
    l1: CacheConfig
    l2: CacheConfig
    predictor: str = "hybrid"
    predictor_entries: int = 4096
    fetch_queue: int = 0       # 0 -> derived: 2 * width * frontend_depth
    #: limit-study knobs (not Appendix-A parameters): a perfect predictor
    #: never mispredicts; perfect caches serve every load at L1-hit latency.
    perfect_predictor: bool = False
    perfect_caches: bool = False
    #: optional fidelity knob: loads that hit an in-flight older store to
    #: the same 8-byte word are forwarded from the LSQ at 1-cycle latency.
    #: Off by default (the calibrated palette was tuned without it).
    store_forwarding: bool = False
    #: miss-status holding registers: maximum concurrent outstanding L1-miss
    #: requests.  Not an Appendix-A parameter (the paper does not publish
    #: it); 0 derives ``min(32, max(4, rob_size // 32))`` — a miss queue
    #: sized with the instruction window, as a balanced design would be.  It
    #: bounds memory-level parallelism the way sim-mase's finite miss queues
    #: do.
    mshrs: int = 0

    def __post_init__(self) -> None:
        if self.clock_period_ns <= 0:
            raise ValueError("clock period must be positive")
        if self.width < 1:
            raise ValueError("width must be >= 1")
        if self.rob_size < 2 or self.iq_size < 1 or self.lsq_size < 1:
            raise ValueError("window structures must be non-trivial")
        if self.frontend_depth < 1 or self.sched_depth < 0:
            raise ValueError("frontend_depth >= 1, sched_depth >= 0 required")
        if self.awaken_latency < 0 or self.mem_latency < 1:
            raise ValueError("awaken_latency >= 0, mem_latency >= 1 required")

    @property
    def period_ps(self) -> int:
        """Clock period in integer picoseconds (the global time base)."""
        return ns_to_ps(self.clock_period_ns)

    @property
    def fetch_queue_size(self) -> int:
        return self.fetch_queue or 2 * self.width * self.frontend_depth

    @property
    def mshr_count(self) -> int:
        return self.mshrs or min(32, max(4, self.rob_size // 32))

    @property
    def peak_ips(self) -> float:
        """Peak retirement rate in instructions per nanosecond.

        Section 4.1.4: the peak retirement rate of any core must be
        sustainable by every other core, otherwise a lagging core saturates.
        """
        return self.width / self.clock_period_ns

    def with_l2(self, other: "CoreConfig") -> "CoreConfig":
        """Clone this core with ``other``'s L2 cache (geometry and latency).

        This is the Section 5.2.1 experiment that isolates the contribution
        of L2-cache heterogeneity to the contesting speedup.
        """
        return replace(
            self, name=f"{self.name}+l2({other.name})", l2=other.l2
        )

    def fingerprint(self) -> Tuple:
        """Hashable identity for caching simulation results."""
        return dataclasses.astuple(self)


def _cache(assoc: int, block: int, sets: int, latency: int) -> CacheConfig:
    return CacheConfig(assoc=assoc, block=block, sets=sets, latency=latency)


def _core(
    name: str,
    mem: int,
    fe_depth: int,
    width: int,
    rob: int,
    iq: int,
    awaken: int,
    sched: int,
    period: float,
    l1: CacheConfig,
    l2: CacheConfig,
    lsq: int,
) -> CoreConfig:
    return CoreConfig(
        name=name,
        clock_period_ns=period,
        width=width,
        rob_size=rob,
        iq_size=iq,
        lsq_size=lsq,
        frontend_depth=fe_depth,
        sched_depth=sched,
        awaken_latency=awaken,
        mem_latency=mem,
        l1=l1,
        l2=l2,
    )


K = 1024

#: The eleven benchmark-customised cores, verbatim from Appendix A.  A core
#: type is named after the benchmark it was customised for.
APPENDIX_A_CORES: Dict[str, CoreConfig] = {
    "bzip": _core(
        "bzip", mem=112, fe_depth=4, width=5, rob=512, iq=64, awaken=0,
        sched=1, period=0.49,
        l1=_cache(2, 32, 1 * K, 2), l2=_cache(4, 64, 8 * K, 15), lsq=128,
    ),
    "crafty": _core(
        "crafty", mem=321, fe_depth=12, width=8, rob=64, iq=32, awaken=3,
        sched=3, period=0.19,
        l1=_cache(1, 8, 16 * K, 5), l2=_cache(16, 64, 128, 7), lsq=64,
    ),
    "gap": _core(
        "gap", mem=173, fe_depth=6, width=4, rob=128, iq=32, awaken=1,
        sched=1, period=0.33,
        l1=_cache(1, 8, 2 * K, 2), l2=_cache(4, 256, 128, 4), lsq=256,
    ),
    "gcc": _core(
        "gcc", mem=186, fe_depth=7, width=4, rob=256, iq=32, awaken=1,
        sched=2, period=0.31,
        l1=_cache(1, 8, 32 * K, 4), l2=_cache(8, 64, 1 * K, 6), lsq=256,
    ),
    "gzip": _core(
        "gzip", mem=198, fe_depth=7, width=4, rob=64, iq=32, awaken=1,
        sched=1, period=0.29,
        l1=_cache(1, 128, 256, 3), l2=_cache(1, 128, 4 * K, 5), lsq=128,
    ),
    "mcf": _core(
        "mcf", mem=120, fe_depth=4, width=3, rob=1024, iq=64, awaken=0,
        sched=1, period=0.45,
        l1=_cache(2, 128, 1 * K, 5), l2=_cache(4, 128, 8 * K, 27), lsq=64,
    ),
    "parser": _core(
        "parser", mem=198, fe_depth=7, width=4, rob=512, iq=32, awaken=1,
        sched=2, period=0.29,
        l1=_cache(1, 64, 2 * K, 3), l2=_cache(8, 512, 32, 12), lsq=256,
    ),
    "perl": _core(
        "perl", mem=321, fe_depth=12, width=5, rob=256, iq=32, awaken=3,
        sched=4, period=0.19,
        l1=_cache(1, 8, 2 * K, 3), l2=_cache(16, 64, 128, 7), lsq=128,
    ),
    "twolf": _core(
        "twolf", mem=172, fe_depth=6, width=5, rob=512, iq=64, awaken=1,
        sched=2, period=0.33,
        l1=_cache(8, 64, 128, 3), l2=_cache(4, 128, 2 * K, 12), lsq=256,
    ),
    "vortex": _core(
        "vortex", mem=213, fe_depth=8, width=7, rob=512, iq=32, awaken=2,
        sched=4, period=0.27,
        l1=_cache(4, 32, 1 * K, 5), l2=_cache(16, 128, 128, 6), lsq=256,
    ),
    "vpr": _core(
        "vpr", mem=172, fe_depth=6, width=5, rob=256, iq=64, awaken=1,
        sched=2, period=0.30,
        l1=_cache(2, 32, 128, 2), l2=_cache(8, 128, 1 * K, 12), lsq=64,
    ),
}


def core_config(name: str) -> CoreConfig:
    """Look up an Appendix-A core type by the benchmark it is customised for."""
    try:
        return APPENDIX_A_CORES[name]
    except KeyError:
        raise KeyError(
            f"unknown core type {name!r}; expected one of "
            f"{', '.join(sorted(APPENDIX_A_CORES))}"
        ) from None
