"""Branch direction predictors.

The Appendix-A palette does not vary the predictor, so every core uses the
same hybrid (bimodal + gshare with a chooser) by default; the simpler
predictors remain available for ablations and tests.
"""

from typing import Dict, Type, Union

Predictor = Union["BimodalPredictor", "GsharePredictor", "HybridPredictor"]


class BimodalPredictor:
    """Classic table of 2-bit saturating counters indexed by PC."""

    def __init__(self, entries: int = 4096) -> None:
        if entries < 1 or (entries & (entries - 1)):
            raise ValueError("entries must be a positive power of two")
        self._mask = entries - 1
        self._table = [2] * entries  # weakly taken

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        return self._table[(pc >> 2) & self._mask] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train on the branch's actual outcome."""
        index = (pc >> 2) & self._mask
        counter = self._table[index]
        if taken:
            if counter < 3:
                self._table[index] = counter + 1
        elif counter > 0:
            self._table[index] = counter - 1


class GsharePredictor:
    """Global-history predictor: PC xor history indexes 2-bit counters."""

    def __init__(self, entries: int = 4096, history_bits: int = 10) -> None:
        if entries < 1 or (entries & (entries - 1)):
            raise ValueError("entries must be a positive power of two")
        if history_bits < 1:
            raise ValueError("history_bits must be >= 1")
        self._mask = entries - 1
        self._table = [2] * entries
        self._history = 0
        self._history_mask = (1 << history_bits) - 1

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train counters and shift the branch outcome into the history."""
        index = self._index(pc)
        counter = self._table[index]
        if taken:
            if counter < 3:
                self._table[index] = counter + 1
        elif counter > 0:
            self._table[index] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask


class HybridPredictor:
    """Tournament predictor: a chooser table selects bimodal vs. gshare.

    The chooser is trained toward whichever component was correct when they
    disagree, as in the Alpha 21264 scheme.
    """

    def __init__(self, entries: int = 4096, history_bits: int = 10) -> None:
        self.bimodal = BimodalPredictor(entries)
        self.gshare = GsharePredictor(entries, history_bits)
        self._mask = entries - 1
        self._chooser = [2] * entries  # >=2 prefers gshare

    def predict(self, pc: int) -> bool:
        """Direction from whichever component the chooser prefers."""
        if self._chooser[(pc >> 2) & self._mask] >= 2:
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        """Train both components and the chooser."""
        bimodal_correct = self.bimodal.predict(pc) == taken
        gshare_correct = self.gshare.predict(pc) == taken
        index = (pc >> 2) & self._mask
        if gshare_correct != bimodal_correct:
            counter = self._chooser[index]
            if gshare_correct:
                if counter < 3:
                    self._chooser[index] = counter + 1
            elif counter > 0:
                self._chooser[index] = counter - 1
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)


PREDICTORS: Dict[str, Type[Predictor]] = {
    "bimodal": BimodalPredictor,
    "gshare": GsharePredictor,
    "hybrid": HybridPredictor,
}


def make_predictor(kind: str, entries: int = 4096) -> Predictor:
    """Factory used by :class:`~repro.uarch.config.CoreConfig`."""
    try:
        cls = PREDICTORS[kind]
    except KeyError:
        raise ValueError(
            f"unknown predictor {kind!r}; expected one of {sorted(PREDICTORS)}"
        ) from None
    return cls(entries)
