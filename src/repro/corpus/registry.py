"""The corpus registry: hundreds of named workloads, one resolution point.

Every ``profile`` string the engine, service, CLI and experiments pass
around resolves here.  Legacy benchmark names (``gcc``, ``mcf``, ...) keep
resolving through :mod:`repro.isa.workloads` unchanged; ``corpus/...``
names resolve through the grammar.  Two functions carry the contract:

* :func:`resolve_profile` — name to :class:`~repro.isa.phases.PhaseMix`.
* :func:`profile_key` — name to *cache identity*.  Legacy names are their
  own key (hand-written profiles change only with ``SCHEMA_VERSION``);
  corpus names append an abbreviated content hash
  (``corpus/stream-f256k-b92@1a2b3c4d5e6f``), so editing a registry
  entry's parameters invalidates exactly the cached engine results built
  from it while renaming or adding *other* entries invalidates nothing.

Registry entries are generated, not hand-enumerated: three families sweep
the phase-template vocabulary over the axes the timing models are
sensitive to (footprint tier, branch predictability, phase-mixing ratio
and dwell).  The families are deterministic functions of the grammar, so
the registry is identical in every process — a registry entry is as
reproducible as the generator itself.  Versioning policy and the
add-a-workload guide live in ``docs/corpus.md``.
"""

from typing import Dict, List, Tuple

from repro.corpus.grammar import PhaseSpec, WorkloadSpec
from repro.isa.phases import PHASE_TEMPLATES, PhaseMix
from repro.isa.workloads import BENCHMARKS, workload_profile

#: Name prefix distinguishing corpus workloads from legacy benchmarks.
CORPUS_PREFIX = "corpus/"

#: Footprint tiers (bytes) swept by the single-template family — spanning
#: comfortably-L1 through past-every-L2 on the Appendix-A palette.
_FOOTPRINTS: Tuple[Tuple[str, int], ...] = (
    ("f16k", 16 * 1024),
    ("f64k", 64 * 1024),
    ("f256k", 256 * 1024),
    ("f1m", 1024 * 1024),
    ("f4m", 4 * 1024 * 1024),
)

#: Branch-predictability tiers (PhaseType.branch_bias).
_BIASES: Tuple[Tuple[str, float], ...] = (
    ("b85", 0.85),
    ("b92", 0.92),
    ("b98", 0.98),
)

#: Mixing ratios for the paired family: weight share of the first template.
_RATIOS: Tuple[Tuple[str, float], ...] = (
    ("r25", 0.25),
    ("r50", 0.50),
    ("r75", 0.75),
)

#: Dwell scales for the paired family: 1 = the template's native fine
#: grain, 3 = the benchmark profiles' contesting-friendly regime.
_DWELLS: Tuple[Tuple[str, int], ...] = (("d1", 1), ("d3", 3))

#: Template pairs whose phase affinities contrast (every unordered pair of
#: the seven templates), in vocabulary order.
_PAIRS: Tuple[Tuple[str, str], ...] = tuple(
    (a, b)
    for i, a in enumerate(PHASE_TEMPLATES)
    for b in PHASE_TEMPLATES[i + 1:]
)


def _single_family() -> List[WorkloadSpec]:
    """One workload per (template, footprint tier, branch bias)."""
    specs: List[WorkloadSpec] = []
    for template in PHASE_TEMPLATES:
        for ftag, footprint in _FOOTPRINTS:
            for btag, bias in _BIASES:
                specs.append(
                    WorkloadSpec(
                        name=f"{CORPUS_PREFIX}{template}-{ftag}-{btag}",
                        phases=(
                            PhaseSpec(
                                template=template,
                                params=(
                                    ("branch_bias", bias),
                                    ("footprint", footprint),
                                ),
                            ),
                        ),
                    )
                )
    return specs


def _paired_family() -> List[WorkloadSpec]:
    """One workload per (template pair, mixing ratio, dwell scale).

    Pairs are the corpus' contesting workloads: two phases with different
    core affinities alternating at a chosen grain, the structure Section 2
    of the paper exploits.
    """
    specs: List[WorkloadSpec] = []
    for a, b in _PAIRS:
        for rtag, ratio in _RATIOS:
            for dtag, dwell in _DWELLS:
                specs.append(
                    WorkloadSpec(
                        name=f"{CORPUS_PREFIX}{a}+{b}-{rtag}-{dtag}",
                        dwell_scale=dwell,
                        phases=(
                            PhaseSpec(template=a, weight=ratio),
                            PhaseSpec(template=b, weight=1.0 - ratio),
                        ),
                    )
                )
    return specs


def _build_registry() -> Dict[str, WorkloadSpec]:
    registry: Dict[str, WorkloadSpec] = {}
    for spec in _single_family() + _paired_family():
        if spec.name in registry:
            raise ValueError(f"duplicate corpus workload name {spec.name!r}")
        if not spec.name.startswith(CORPUS_PREFIX):
            raise ValueError(
                f"corpus workload {spec.name!r} must start with "
                f"{CORPUS_PREFIX!r}"
            )
        registry[spec.name] = spec
    return registry


_REGISTRY = _build_registry()


def corpus_names() -> Tuple[str, ...]:
    """All corpus workload names, sorted."""
    return tuple(sorted(_REGISTRY))


def is_corpus_profile(name: str) -> bool:
    """Whether ``name`` names a corpus registry entry."""
    return name in _REGISTRY


def corpus_spec(name: str) -> WorkloadSpec:
    """The registry entry for ``name`` (KeyError with guidance if absent)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown corpus workload {name!r}; {len(_REGISTRY)} entries "
            f"are registered (see repro.corpus.corpus_names, or "
            f"`python -m repro.corpus list`)"
        ) from None


def resolve_profile(name: str) -> PhaseMix:
    """Resolve any profile name — legacy benchmark or corpus workload.

    The single resolution point for every ``profile`` string in the
    system: :class:`repro.engine.jobs.TraceSpec`, the service codec and
    the CLI all route through here.
    """
    if name in _REGISTRY:
        return _REGISTRY[name].build_mix()
    if name in BENCHMARKS:
        return workload_profile(name)
    raise KeyError(
        f"unknown profile {name!r}; expected one of the benchmarks "
        f"({', '.join(BENCHMARKS)}) or a registered corpus workload "
        f"({len(_REGISTRY)} entries; see repro.corpus.corpus_names)"
    )


def profile_key(name: str) -> str:
    """Cache identity of a profile name.

    Legacy benchmark names are their own key; corpus names carry an
    abbreviated content hash so a parameter edit re-keys exactly the
    results generated from that entry.  Raises for unknown names — a
    cache key must never be built from a profile that cannot resolve.
    """
    if name in _REGISTRY:
        return f"{name}@{_REGISTRY[name].content_hash()[:12]}"
    if name in BENCHMARKS:
        return name
    raise KeyError(
        f"unknown profile {name!r}; cannot derive a cache key for a "
        f"profile that does not resolve"
    )
