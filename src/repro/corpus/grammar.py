"""The profile grammar: declarative, versioned, content-hashed workloads.

A workload here is *data*, not code: a :class:`WorkloadSpec` names a set of
phase templates from the :mod:`repro.isa.phases` vocabulary, the parameter
overrides applied to each, and the mixture weights.  ``build_mix()`` turns
the spec into the same :class:`~repro.isa.phases.PhaseMix` shape the
hand-written benchmark profiles use, so the generator, the backends and the
engine are entirely unaware of where a mixture came from.

Three properties make the grammar safe to grow:

* **Canonical serialisation** — ``to_dict``/``from_dict`` round-trip every
  expressible spec through plain JSON types with sorted keys, so a spec has
  exactly one wire form (pinned by ``tests/corpus/test_grammar.py``).
* **Content hashing** — :meth:`WorkloadSpec.content_hash` digests the
  canonical form under :data:`GRAMMAR_VERSION`.  The registry folds this
  hash into engine cache keys (see ``repro.corpus.registry.profile_key``),
  so editing a workload's parameters invalidates exactly the cached results
  built from it — renames and re-orderings of *other* entries change
  nothing.
* **Validation at construction** — specs validate eagerly (unknown
  template, bad weight, duplicate phase names) and the built
  :class:`~repro.isa.phases.PhaseType` re-validates its own invariants, so
  an unbuildable spec cannot be registered in the first place.
"""

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Mapping, Tuple, Union

from repro.isa.phases import (
    PHASE_TEMPLATES,
    PhaseMix,
    PhaseType,
    branchy_phase,
    compute_mul_phase,
    pointer_chase_phase,
    serial_chain_phase,
    stream_phase,
    wide_ilp_phase,
    windowed_mem_phase,
)

#: Bump when the grammar's *semantics* change (how a spec maps to phase
#: types), invalidating every content hash at once.  Additive changes —
#: new templates, new overridable parameters — do not require a bump:
#: specs not using them hash identically.
GRAMMAR_VERSION = 1

#: JSON-representable parameter value (PhaseType fields are ints, floats,
#: bools and strings).
ParamValue = Union[int, float, bool, str]

_FACTORIES: Dict[str, Callable[..., PhaseType]] = {
    "wide_ilp": wide_ilp_phase,
    "serial_chain": serial_chain_phase,
    "pointer_chase": pointer_chase_phase,
    "windowed_mem": windowed_mem_phase,
    "stream": stream_phase,
    "branchy": branchy_phase,
    "compute_mul": compute_mul_phase,
}
assert set(_FACTORIES) == set(PHASE_TEMPLATES)

#: PhaseType fields a spec may override (everything behavioural; ``name``
#: and ``region`` are owned by the spec/workload, not the parameter map).
_OVERRIDABLE = frozenset(
    f for f in PhaseType.__dataclass_fields__ if f not in ("name", "region")
)


def _canonical_params(
    params: Mapping[str, ParamValue],
) -> Tuple[Tuple[str, ParamValue], ...]:
    """Parameters as a sorted, hashable tuple of pairs."""
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of a workload: a template plus parameter overrides.

    ``params`` is stored as a sorted tuple of ``(field, value)`` pairs so
    the spec is hashable and has exactly one canonical form regardless of
    the order overrides were written in.
    """

    template: str
    name: str = ""
    weight: float = 1.0
    params: Tuple[Tuple[str, ParamValue], ...] = ()

    def __post_init__(self) -> None:
        if self.template not in _FACTORIES:
            raise ValueError(
                f"unknown phase template {self.template!r}; expected one of "
                f"{', '.join(PHASE_TEMPLATES)}"
            )
        if self.weight <= 0:
            raise ValueError("phase weight must be positive")
        keys = [k for k, _ in self.params]
        if keys != sorted(keys):
            object.__setattr__(self, "params", _canonical_params(dict(self.params)))
            keys = [k for k, _ in self.params]
        if len(set(keys)) != len(keys):
            raise ValueError(f"duplicate parameter overrides: {keys}")
        unknown = [k for k in keys if k not in _OVERRIDABLE]
        if unknown:
            raise ValueError(
                f"phase spec overrides unknown/reserved PhaseType fields: "
                f"{', '.join(unknown)}"
            )

    @property
    def phase_name(self) -> str:
        return self.name or self.template

    def build(self) -> PhaseType:
        """Instantiate the template with this spec's overrides.

        :class:`~repro.isa.phases.PhaseType` validation runs here, so an
        inconsistent parameter set fails loudly at build time.
        """
        return _FACTORIES[self.template](self.phase_name, **dict(self.params))

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-type form (sorted params, defaults included)."""
        return {
            "template": self.template,
            "name": self.name,
            "weight": self.weight,
            "params": {k: v for k, v in self.params},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PhaseSpec":
        """Inverse of :meth:`to_dict` (extra keys rejected)."""
        extra = set(data) - {"template", "name", "weight", "params"}
        if extra:
            raise ValueError(f"unknown phase-spec keys: {sorted(extra)}")
        return cls(
            template=str(data["template"]),
            name=str(data.get("name", "")),
            weight=float(data.get("weight", 1.0)),
            params=_canonical_params(dict(data.get("params", {}))),
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """A named, versioned workload: phases, weights, and mix-wide knobs.

    ``dwell_scale`` mirrors ``repro.isa.workloads.DWELL_SCALE``: phase
    dwells are multiplied so typical contiguous phase runs reach the
    ~10^3-instruction regime in which contesting leadership can transfer.
    ``region`` tags every phase with one shared data region (the benchmark
    profiles' "heap" convention); an empty string keeps each phase's
    private region.
    """

    name: str
    phases: Tuple[PhaseSpec, ...]
    version: int = 1
    dwell_scale: int = 3
    region: str = "heap"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a workload spec needs a name")
        if not self.phases:
            raise ValueError(f"workload {self.name!r} has no phases")
        names = [p.phase_name for p in self.phases]
        if len(set(names)) != len(names):
            raise ValueError(
                f"workload {self.name!r} has duplicate phase names: {names}"
            )
        if self.version < 1 or self.dwell_scale < 1:
            raise ValueError("version and dwell_scale must be >= 1")

    def build_mix(self) -> PhaseMix:
        """The concrete :class:`~repro.isa.phases.PhaseMix` of this spec.

        The mix is named after the workload, so traces generated from it
        carry the workload name in their provenance (and fingerprint).
        """
        entries: List[Tuple[PhaseType, float]] = []
        for spec in self.phases:
            phase = spec.build()
            phase = replace(
                phase,
                region=self.region,
                mean_dwell=phase.mean_dwell * self.dwell_scale,
            )
            entries.append((phase, spec.weight))
        return PhaseMix(self.name, entries)

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-type form of the whole spec."""
        return {
            "grammar": GRAMMAR_VERSION,
            "name": self.name,
            "version": self.version,
            "dwell_scale": self.dwell_scale,
            "region": self.region,
            "phases": [p.to_dict() for p in self.phases],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        """Inverse of :meth:`to_dict` (grammar version checked)."""
        grammar = int(data.get("grammar", GRAMMAR_VERSION))
        if grammar != GRAMMAR_VERSION:
            raise ValueError(
                f"spec was written under grammar version {grammar}; "
                f"this build understands {GRAMMAR_VERSION}"
            )
        extra = set(data) - {
            "grammar", "name", "version", "dwell_scale", "region", "phases",
        }
        if extra:
            raise ValueError(f"unknown workload-spec keys: {sorted(extra)}")
        return cls(
            name=str(data["name"]),
            version=int(data.get("version", 1)),
            dwell_scale=int(data.get("dwell_scale", 3)),
            region=str(data.get("region", "heap")),
            phases=tuple(
                PhaseSpec.from_dict(p) for p in data["phases"]
            ),
        )

    def canonical_json(self) -> str:
        """The one wire form of this spec (sorted keys, no whitespace)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def content_hash(self) -> str:
        """Stable behaviour identity of this spec (hex sha256).

        Digests the canonical JSON under :data:`GRAMMAR_VERSION`; two specs
        share a hash iff they build the same mixture the same way.  The
        registry abbreviates this into engine cache keys.
        """
        payload = f"repro-corpus/{GRAMMAR_VERSION}\x00{self.canonical_json()}"
        return hashlib.sha256(payload.encode()).hexdigest()
