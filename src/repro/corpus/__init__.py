"""Trace corpus: a parameterized profile grammar and a workload registry.

The corpus grows the reproduction's scenario diversity beyond the eleven
hand-written SPEC2000 profiles (:mod:`repro.isa.workloads`) without giving
up any of their guarantees:

* :mod:`repro.corpus.grammar` — declarative, versioned workload specs
  (:class:`~repro.corpus.grammar.WorkloadSpec`) that compose the phase-type
  vocabulary of :mod:`repro.isa.phases`; every spec serialises to canonical
  JSON and carries a content hash, so a registry entry's identity is its
  *behaviour*, not its name.
* :mod:`repro.corpus.registry` — hundreds of named corpus workloads built
  from the grammar, resolved by the same ``profile`` strings the engine,
  service and CLI already pass around.  ``resolve_profile`` accepts both
  legacy benchmark names and ``corpus/...`` names; ``profile_key`` folds
  the content hash into engine cache keys so editing a registry entry
  invalidates exactly the cached results it affects.

Streaming generation (million-instruction traces without materialising)
lives in :mod:`repro.isa.stream`; the conformance suite pinning the
corpus' exactness guarantees lives in ``tests/corpus``.  See
``docs/corpus.md`` for the grammar reference and the add-a-workload guide.
"""

from repro.corpus.grammar import (
    GRAMMAR_VERSION,
    PhaseSpec,
    WorkloadSpec,
)
from repro.corpus.registry import (
    corpus_names,
    corpus_spec,
    is_corpus_profile,
    profile_key,
    resolve_profile,
)

__all__ = [
    "GRAMMAR_VERSION",
    "PhaseSpec",
    "WorkloadSpec",
    "corpus_names",
    "corpus_spec",
    "is_corpus_profile",
    "profile_key",
    "resolve_profile",
]
