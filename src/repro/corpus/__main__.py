"""Corpus registry CLI: ``python -m repro.corpus {list,show} [name]``.

``list`` prints every registered workload name (optionally filtered by a
substring); ``show`` prints one entry's canonical JSON and content hash —
the exact bytes its engine cache identity is derived from.
"""

import argparse
import sys
from typing import List, Optional

from repro.corpus.registry import corpus_names, corpus_spec, profile_key


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.corpus",
        description="inspect the trace-corpus registry",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_list = sub.add_parser("list", help="list registered workload names")
    p_list.add_argument(
        "filter", nargs="?", default="",
        help="only names containing this substring",
    )
    p_show = sub.add_parser(
        "show", help="print one entry's canonical JSON and content hash"
    )
    p_show.add_argument("name", help="corpus workload name")
    args = parser.parse_args(argv)

    if args.command == "list":
        names = [n for n in corpus_names() if args.filter in n]
        for name in names:
            print(name)
        print(f"# {len(names)} workloads", file=sys.stderr)
        return 0

    spec = corpus_spec(args.name)
    print(spec.canonical_json())
    print(f"# content hash: {spec.content_hash()}", file=sys.stderr)
    print(f"# cache key:    {profile_key(args.name)}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
