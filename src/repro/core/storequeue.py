"""The synchronizing store queue (Section 4.2).

Stores are performed redundantly in every core's private (write-through)
cache levels but stop short of the shared level.  Like SRT's store queue,
the synchronizing store queue buffers each store until *every* active
contesting core has performed it privately, then performs one merged
instance to the shared level.

Because all cores retire the same stores in the same order, a store is
identified by its per-core ordinal (how many stores that core has committed
so far); ordinals agree across cores by construction.  Queue occupancy is
the spread between the most- and least-advanced active cores, and a core may
not commit a store that would push the spread past the capacity — this is
the only backpressure contesting exerts on a leading core.
"""

from typing import Dict, List


class SyncStoreQueue:
    """Tracks per-core store progress and merges completed stores."""

    def __init__(self, core_ids: List[int], capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("store queue capacity must be >= 1")
        if not core_ids:
            raise ValueError("at least one participating core is required")
        self.capacity = capacity
        self._performed: Dict[int, int] = {cid: 0 for cid in core_ids}
        self._active: Dict[int, bool] = {cid: True for cid in core_ids}
        #: cached min over active cores' performed counts.  ``can_commit``
        #: runs once per store commit attempt — including every retried
        #: attempt of a backpressured leader — so the laggard position is
        #: kept incrementally instead of being recomputed per call (it can
        #: only move when a count or the active set changes).
        self._min_performed = 0
        #: number of merged store instances performed to the shared level
        self.merged = 0
        #: number of commit attempts rejected because the queue was full
        self.stalls = 0

    # ------------------------------------------------------------------

    def _active_counts(self) -> List[int]:
        return [
            count
            for cid, count in self._performed.items()
            if self._active[cid]
        ]

    @property
    def occupancy(self) -> int:
        """Stores buffered: performed by >=1 active core but not by all."""
        counts = self._active_counts()
        return max(counts) - min(counts) if counts else 0

    def can_commit(self, core_id: int) -> bool:
        """Whether ``core_id`` may commit its next store without overflowing
        the queue.  The least-advanced core can always commit."""
        if not self._active.get(core_id, False):
            return True  # non-participants bypass the queue entirely
        allowed = self._performed[core_id] - self._min_performed < self.capacity
        if not allowed:
            self.stalls += 1
        return allowed

    def perform(self, core_id: int) -> None:
        """Record that ``core_id`` privately performed its next store; merge
        to the shared level once all active cores have performed it."""
        if not self._active.get(core_id, False):
            return
        before = self._min_performed
        was = self._performed[core_id]
        self._performed[core_id] = was + 1
        if was == before:
            # the advancing core sat at the laggard position; the min may
            # have moved (it did iff no other active core shares it)
            after = min(self._active_counts())
            self._min_performed = after
            if after > before:
                self.merged += after - before

    def deactivate(self, core_id: int) -> None:
        """Remove a core (saturated lagger / halted) from participation.

        Stores the remaining cores have all performed are merged immediately.
        """
        if not self._active.get(core_id, False):
            return
        before = self._min_performed
        self._active[core_id] = False
        if self._performed[core_id] == before:
            counts = self._active_counts()
            if counts:
                after = min(counts)
                self._min_performed = after
                if after > before:
                    self.merged += after - before

    def is_active(self, core_id: int) -> bool:
        """Whether the core still participates in store merging."""
        return self._active.get(core_id, False)

    def set_progress(self, core_id: int, count: int) -> None:
        """Jump a core's store progress (used when a lagger is re-forked:
        the copied architectural state already reflects the skipped stores,
        so buffered stores waiting only on this core may merge)."""
        if count < self._performed.get(core_id, 0):
            raise ValueError("store progress cannot move backwards")
        if not self._active.get(core_id, False):
            return
        before = self._min_performed
        was = self._performed[core_id]
        self._performed[core_id] = count
        if was == before:
            after = min(self._active_counts())
            self._min_performed = after
            if after > before:
                self.merged += after - before
