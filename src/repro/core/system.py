"""The contesting system: GRBs, result FIFOs, and the co-simulation driver.

Implements Section 4 of the paper:

* **Global result buses** (4.1.1): every core broadcasts each retired
  instruction on its own GRB; each other core receives it after the
  configurable core-to-core propagation latency through a synchronizing
  FIFO (the GALS-style synchronizing queue appears here as the arrival
  timestamp being rounded up to the receiver's next clock edge).
* **Pop counters and the fetch counter** (4.1.2): a FIFO's ``next_seq`` *is*
  its pop counter; the receiving core's ``fetch_index`` is the fetch
  counter.  Scenario 1 (core not trailing): arrived results older than the
  fetch counter are popped and discarded — except branches, which are
  checked against unresolved in-flight branches and can resolve a
  misprediction early (the Figure-5 corner case, which flips the core into
  Scenario 2 because fetch resumes exactly at the popped seq + 1).
  Scenario 2 (core trailing): the FIFO head matches the next fetch; the
  result is popped at fetch and paired with the instruction.
* **Injecting results** (4.1.3): a paired branch completes in fetch, a
  paired value-producer completes in rename (handled inside
  :class:`repro.uarch.core.Core`).
* **Lagging distance / saturated laggers** (4.1.4): a FIFO whose occupancy
  exceeds ``max_lag`` marks its receiver as a saturated lagger; contesting
  is disabled for that core (it is halted) and the event recorded.
* **Stores** (4.2): the :class:`SyncStoreQueue`.
* **Exceptions** (4.3): the semaphore-style redundant-thread-aware handler —
  every active core stalls at the syscall's commit until all active cores
  have reached it, then each pays the handler cost.

Time is integer picoseconds.  The driver always steps the core whose current
edge time is smallest, which reproduces the paper's 0.01ns-handshake
round-robin co-simulation without simulating idle base units.
"""

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.faults import FaultPlan, XFER_CORRUPT, XFER_DELAY, XFER_DROP, XFER_OK
from repro.isa.instructions import OpClass
from repro.isa.stream import StreamingTrace
from repro.isa.trace import Trace
from repro.core.storequeue import SyncStoreQueue
from repro.uarch.cache import Cache, CacheConfig
from repro.uarch.config import CoreConfig
from repro.uarch.core import NO_EVENT, Core, RunStats
from repro.util.units import ns_to_ps

_OP_BRANCH = int(OpClass.BRANCH)


class ResultFifo:
    """One incoming result FIFO: entries from a single sender's GRB.

    Entries are arrival timestamps (ps); sequence numbers are implicit
    because the sender retires in order and the bus preserves order, so the
    entry at the head always carries the result of instruction ``next_seq``.
    ``next_seq`` doubles as the paper's pop counter.
    """

    __slots__ = (
        "sender_id", "next_seq", "arrivals", "popped_late", "popped_paired",
        "faulted",
    )

    def __init__(self, sender_id: int) -> None:
        self.sender_id = sender_id
        self.next_seq = 0
        self.arrivals: Deque[int] = deque()
        self.popped_late = 0
        self.popped_paired = 0
        #: seq -> XFER_DROP/XFER_CORRUPT for in-flight faulted transfers;
        #: lazily allocated — stays None unless a FaultPlan is injecting
        self.faulted: Optional[Dict[int, int]] = None

    def push(self, arrival_ps: int) -> None:
        """Enqueue the next retired result's arrival timestamp."""
        self.arrivals.append(arrival_ps)

    @property
    def occupancy(self) -> int:
        return len(self.arrivals)


@dataclass
class FaultStats:
    """Diagnostics of one fault-injected run, one typed field per kind.

    Counters count fault *actions applied* (a dropped transfer, a stalled
    cycle, ...); the lists name the cores a kill or standalone flip hit.
    All fields stay at their zero values unless a
    :class:`repro.faults.FaultPlan` is installed.
    """

    #: GRB transfers whose payload was lost in flight
    dropped: int = 0
    #: GRB transfers whose payload was garbled in flight
    corrupted: int = 0
    #: GRB transfers that arrived late by the plan's ``delay_ns``
    delayed: int = 0
    #: garbled payloads a trailing core actually consumed (each triggers
    #: a detection + re-fork recovery)
    corrupt_consumed: int = 0
    #: corruption recoveries performed (resync of the victim)
    recoveries: int = 0
    #: cycles burned inside fault-injected stall windows
    stalled_cycles: int = 0
    #: config names of cores removed by a kill fault
    killed: List[str] = field(default_factory=list)
    #: config names of cores flipped to standalone execution
    flipped: List[str] = field(default_factory=list)

    @property
    def any_faults(self) -> bool:
        """True when any fault action was applied during the run."""
        return bool(
            self.dropped or self.corrupted or self.delayed
            or self.corrupt_consumed or self.recoveries
            or self.stalled_cycles or self.killed or self.flipped
        )


@dataclass
class ContestResult:
    """Outcome of one contested execution."""

    config_names: List[str]
    trace_name: str
    instructions: int
    time_ps: int
    winner: str                      # core that retired the last instruction
    lead_changes: int
    saturated: List[str]             # cores disabled as saturated laggers
    store_stalls: int
    merged_stores: int
    per_core: Dict[str, RunStats] = field(default_factory=dict)
    #: saturated-lagger re-forks performed (non-zero only under the
    #: ``resync`` lagger policy)
    resyncs: int = 0

    @property
    def ipt(self) -> float:
        """Instructions per nanosecond of the contested execution."""
        return self.instructions * 1000.0 / self.time_ps


class ContestingSystem:
    """N-way architectural contesting over a single trace.

    Parameters
    ----------
    configs:
        One :class:`CoreConfig` per participating core (the paper evaluates
        N=2; any N >= 2 is supported).
    trace:
        The dynamic instruction trace all cores execute.
    grb_latency_ns:
        Core-to-core propagation latency of the global result buses
        (Section 5.2 uses 1 ns; Figure 8 sweeps it).
    max_lag:
        Maximum lagging distance in instructions.  ``0`` (default) derives
        ``max(2048, 4 * grb_latency_ns * max peak IPS)`` — the pop/fetch
        counters only need to represent the maximum separation allowed
        between leader and lagger (Section 4.1.4); the default rides out
        transient phase-rate mismatches while still bounding the hardware
        cost of the counters and FIFOs.  A receiver whose FIFO occupancy
        exceeds this *continuously* for ``sat_grace_ns`` is a saturated
        lagger (one that cannot keep up with the leader's retirement rate,
        as opposed to one riding out a transient stall) and is removed from
        contesting, the paper's remedy.
    sat_grace_ns:
        How long the lagging distance must be continuously exceeded before
        the lagger is declared saturated.
    store_queue_capacity:
        Capacity of the synchronizing store queue (Section 4.2).
    prewarm:
        Warm each core's caches/predictor with one functional pass (see
        :meth:`repro.uarch.core.Core._prewarm`).
    faults:
        Optional :class:`repro.faults.FaultPlan` perturbing this run
        (dropped/corrupted/delayed GRB transfers, killed/stalled cores,
        mid-run standalone flips).  ``None`` — the default — takes none
        of the fault paths, keeping the run byte-identical to a build
        without fault injection; diagnostics accumulate in
        ``self.fault_stats`` when a plan is installed.
    skip_ahead:
        Event-driven fast path (default): when no active core can do any
        work at its current clock edge, jump every core straight to the
        first edge at or past the earliest *work* time in the whole
        system (:meth:`_next_work_ps`) instead of round-robin stepping
        through idle edges.  Edges landing exactly on the horizon still
        execute for real, so the driver's tie-break order — and hence
        every cross-core interaction — is preserved exactly; results are
        byte-identical to cycle stepping (pinned by
        ``tests/differential``).
    tracer:
        Optional :class:`repro.telemetry.Tracer` observing the run: lead
        changes, GRB transfers, skip-ahead jumps, faults, saturations and
        re-forks, with simulated timestamps.  ``None`` (default) takes no
        telemetry path anywhere; results are bit-identical either way
        (pinned by ``tests/differential/test_telemetry.py``).
    """

    def __init__(
        self,
        configs: Sequence[CoreConfig],
        trace: Union[Trace, StreamingTrace],
        grb_latency_ns: float = 1.0,
        max_lag: int = 0,
        store_queue_capacity: int = 512,
        prewarm: bool = True,
        sat_grace_ns: float = 400.0,
        early_branch_resolution: bool = True,
        lagger_policy: str = "disable",
        resync_penalty_cycles: int = 100,
        shared_l3: Optional[CacheConfig] = None,
        shared_l3_latency_ns: float = 4.0,
        faults: Optional[FaultPlan] = None,
        skip_ahead: bool = True,
        # a repro.telemetry.Tracer (annotated loosely: telemetry is an
        # observer layer and the model must not depend on it)
        tracer: Optional[Any] = None,
        backend: str = "reference",
    ) -> None:
        if len(configs) < 2:
            raise ValueError("contesting requires at least two cores")
        if max_lag < 0:
            raise ValueError("max_lag must be >= 0 (0 derives a default)")
        if lagger_policy not in ("disable", "resync"):
            raise ValueError(
                f"unknown lagger_policy {lagger_policy!r}; "
                "expected 'disable' or 'resync'"
            )
        # Contested execution re-forks cores at arbitrary trace points and
        # scans store prefixes up front, so a streaming trace is
        # materialised once here rather than thrashing its chunk window.
        if isinstance(trace, StreamingTrace):
            trace = trace.materialise()
        self.trace = trace
        self.latency_ps = ns_to_ps(grb_latency_ns)
        #: Figure-5 corner case on/off (ablation hook; the paper's design
        #: always has it on)
        self.early_branch_resolution = early_branch_resolution
        #: what to do with a saturated lagger: "disable" (the paper's
        #: remedy: remove it from contesting) or "resync" (extension:
        #: re-fork it at the leader's retirement point, as the paper's
        #: exception handling machinery re-forks threads)
        self.lagger_policy = lagger_policy
        self.resync_penalty_cycles = resync_penalty_cycles
        self.resyncs = 0
        #: which execution engine drives the cores.  Contested execution
        #: re-couples cores mid-region (GRB injections, resyncs, the
        #: synchronizing store queue), which is outside the columnar
        #: capability — :func:`repro.backend.backend_for_contest` resolves
        #: any contest-incapable request to the reference engine and counts
        #: the fallback on the requested backend's stats.
        from repro.backend import backend_for_contest

        self.backend = backend_for_contest(backend)
        peak_ips = max(cfg.peak_ips for cfg in configs)
        self.max_lag = max_lag or max(2048, int(4 * grb_latency_ns * peak_ips))
        self._grace_ps = ns_to_ps(sat_grace_ns)
        self._over_since: Dict[int, Optional[int]] = {
            i: None for i in range(len(configs))
        }

        #: optional shared cache level beyond the private L2s (Section
        #: 4.2's "shared cache level"); merged stores are performed to it
        #: and every core's L2 misses probe it with a per-clock-domain
        #: cycle latency derived from ``shared_l3_latency_ns``
        self.shared_l3: Optional[Cache] = None
        if shared_l3 is not None:
            self.shared_l3 = Cache(shared_l3)
        self.tracer = tracer
        self.cores: List[Core] = [
            Core(
                cfg, trace, core_id=i, contest=self, prewarm=prewarm,
                shared_cache=self.shared_l3,
                shared_latency=(
                    max(1, round(shared_l3_latency_ns / cfg.clock_period_ns))
                    if self.shared_l3 is not None
                    else 0
                ),
                tracer=tracer,
            )
            for i, cfg in enumerate(configs)
        ]
        if tracer is not None:
            tracer.set_initial_leader(self.cores[0].core_id)
        self._active: List[Core] = list(self.cores)
        #: fifos[receiver_id] -> list of ResultFifo (one per other core)
        self.fifos: Dict[int, List[ResultFifo]] = {
            c.core_id: [
                ResultFifo(o.core_id) for o in self.cores if o is not c
            ]
            for c in self.cores
        }
        #: fifo_index[receiver_id][sender_id] -> ResultFifo (fast GRB sink lookup)
        self._fifo_index: Dict[int, Dict[int, ResultFifo]] = {
            rid: {f.sender_id: f for f in flist}
            for rid, flist in self.fifos.items()
        }
        self.store_queue = SyncStoreQueue(
            [c.core_id for c in self.cores], store_queue_capacity
        )

        self._instrs = trace.instructions
        decoded = trace.decoded()
        self._ops = decoded.ops
        self.skip_ahead = skip_ahead
        # prefix store counts (stores in trace[:k]) for re-fork accounting,
        # and the ordered store addresses for merged-store write-through to
        # the shared level
        self._store_prefix = [0] * (len(trace) + 1)
        self._store_addr_list: List[int] = []
        acc = 0
        addrs = decoded.addrs
        for k, op in enumerate(decoded.ops):
            if op == 4:  # OP_STORE
                acc += 1
                self._store_addr_list.append(addrs[k])
            self._store_prefix[k + 1] = acc
        self._merged_written = 0
        self._leader: Core = self.cores[0]
        self.lead_changes = 0
        self.saturated: List[str] = []

        #: the installed FaultPlan (None = no fault paths taken anywhere)
        self.faults = faults
        #: the plan again iff it makes per-transfer decisions, so a plan
        #: that only kills/stalls cores costs nothing on the GRB hot path
        self._xfer_faults = (
            faults if faults is not None and faults.perturbs_transfers
            else None
        )
        self._fault_delay_ps = (
            ns_to_ps(faults.delay_ns) if faults is not None else 0
        )
        self._fault_killed = False
        self._fault_flipped = False
        self._pending_corruption: Optional[Core] = None
        #: fault diagnostics (populated only when a plan is installed)
        self.fault_stats = FaultStats()

    # ------------------------------------------------------------------
    # adapter interface (called from Core)
    # ------------------------------------------------------------------

    def drain(self, core: Core, now_ps: int) -> None:
        """Scenario-1 processing at the start of a receiver cycle.

        Pops every *late* arrived result (seq older than the core's fetch
        counter) and discards it, except that branch results are offered for
        early misprediction resolution (Figure 5).  Also detects saturated
        laggers.
        """
        fetch_index = core.fetch_index
        instrs = self._instrs
        worst = 0
        for fifo in self.fifos[core.core_id]:
            arrivals = fifo.arrivals
            while (
                arrivals
                and arrivals[0] <= now_ps
                and fifo.next_seq < fetch_index
            ):
                arrivals.popleft()
                seq = fifo.next_seq
                fifo.next_seq = seq + 1
                fifo.popped_late += 1
                if fifo.faulted is not None and fifo.faulted.pop(seq, 0):
                    continue  # payload lost/garbled in flight: discard
                if (
                    self.early_branch_resolution
                    and instrs[seq].op == _OP_BRANCH
                ):
                    core.early_resolve_branch(seq)
            if fifo.occupancy > worst:
                worst = fifo.occupancy
        if worst > self.max_lag:
            since = self._over_since[core.core_id]
            if since is None:
                self._over_since[core.core_id] = now_ps
            elif now_ps - since > self._grace_ps:
                self._saturate(core)
        else:
            self._over_since[core.core_id] = None

    def pop_for_fetch(self, core: Core, seq: int, now_ps: int) -> bool:
        """Scenario-2 check at fetch: pop a result pairing with ``seq``.

        Returns True when some FIFO's head holds the result of exactly the
        instruction being fetched and it has already arrived — the core is
        trailing and the instruction completes early via injection.
        """
        for fifo in self.fifos[core.core_id]:
            if (
                fifo.next_seq == seq
                and fifo.arrivals
                and fifo.arrivals[0] <= now_ps
            ):
                fifo.arrivals.popleft()
                fifo.next_seq = seq + 1
                if fifo.faulted is not None:
                    flag = fifo.faulted.pop(seq, 0)
                    if flag == XFER_DROP:
                        continue  # lost in flight: nothing usable arrived
                    if flag == XFER_CORRUPT:
                        # The garbled value is consumed, then caught by
                        # the checking machinery: the receiver recovers
                        # via the existing resync path after this step.
                        self.fault_stats.corrupt_consumed += 1
                        self._pending_corruption = core
                        return False
                fifo.popped_paired += 1
                return True
        return False

    def on_retire(self, core: Core, seq: int, now_ps: int) -> None:
        """Broadcast a retired instruction on ``core``'s GRB."""
        arrival = now_ps + self.latency_ps
        sender = core.core_id
        xfer_faults = self._xfer_faults
        tracer = self.tracer
        if xfer_faults is None:
            for receiver in self._active:
                if receiver is core or not receiver.contesting_enabled:
                    continue
                fifo = self._fifo_index[receiver.core_id][sender]
                fifo.push(arrival)
                if tracer is not None:
                    tracer.grb_transfer(
                        now_ps, sender, receiver.core_id, seq,
                        len(fifo.arrivals),
                    )
        else:
            stats = self.fault_stats
            for receiver in self._active:
                if receiver is core or not receiver.contesting_enabled:
                    continue
                fifo = self._fifo_index[receiver.core_id][sender]
                flag = xfer_faults.transfer_fault(
                    sender, receiver.core_id, seq
                )
                if flag == XFER_OK:
                    fifo.push(arrival)
                elif flag == XFER_DELAY:
                    stats.delayed += 1
                    fifo.push(arrival + self._fault_delay_ps)
                else:
                    # the entry still occupies its FIFO slot (sequence
                    # numbering is implicit), but its payload is marked
                    # lost (DROP) or garbled (CORRUPT) for the pop paths
                    if fifo.faulted is None:
                        fifo.faulted = {}
                    fifo.faulted[seq] = flag
                    if flag == XFER_DROP:
                        stats.dropped += 1
                    else:
                        stats.corrupted += 1
                    fifo.push(arrival)
                if tracer is not None:
                    tracer.grb_transfer(
                        now_ps, sender, receiver.core_id, seq,
                        len(fifo.arrivals), fate=flag,
                    )
        # Emergent-leadership bookkeeping (diagnostics only).
        if core is not self._leader and core.commit_count > self._leader.commit_count:
            prev = self._leader
            self._leader = core
            self.lead_changes += 1
            if tracer is not None:
                tracer.lead_change(now_ps, prev.core_id, core.core_id, seq)
                for c in self._active:
                    tracer.rob_occupancy(now_ps, c.core_id, c.rob_occupancy)

    def store_commit_ok(self, core: Core, seq: int) -> bool:
        """Whether the synchronizing store queue admits the next store."""
        return self.store_queue.can_commit(core.core_id)

    def store_performed(self, core: Core, seq: int) -> None:
        """Record a privately performed store; merge when all cores have."""
        self.store_queue.perform(core.core_id)
        self._write_merged_to_shared()

    def _write_merged_to_shared(self) -> None:
        """Perform newly merged stores to the shared level (Section 4.2:
        the single merged instance is performed to the shared cache)."""
        if self.shared_l3 is None:
            return
        while self._merged_written < self.store_queue.merged:
            self.shared_l3.lookup(self._store_addr_list[self._merged_written])
            self._merged_written += 1

    def syscall_ready(self, core: Core, seq: int) -> bool:
        """Semaphore check of the parallelized exception handler (4.3):
        the handler may run once every active core has reached the
        exception."""
        return all(c.commit_count >= seq for c in self._active)

    # ------------------------------------------------------------------

    def _saturate(self, core: Core) -> None:
        """Handle a saturated lagger (Section 4.1.4).

        Under the paper's policy the lagger is disabled; under the
        "resync" extension it is re-forked at the leader's retirement
        point and keeps contesting.
        """
        if self.lagger_policy == "resync":
            self._resync(core)
            return
        if self.tracer is not None:
            self.tracer.saturated(core.time_ps, core.core_id, core.config.name)
        self._remove_core(core)

    def _remove_core(self, core: Core) -> None:
        """Take a core out of the run entirely (saturation or fault kill):
        halt it, release the store queue, and drop its queued results."""
        core.disable_contesting()
        core.halted = True
        self.saturated.append(core.config.name)
        self._active = [c for c in self._active if c is not core]
        self.store_queue.deactivate(core.core_id)
        self._write_merged_to_shared()
        # Drop its queued results; it will not consume them.
        for fifo in self.fifos[core.core_id]:
            fifo.arrivals.clear()

    def _resync(self, core: Core) -> None:
        """Re-fork a saturated lagger at the most advanced retire point."""
        target = max(
            (c.commit_count for c in self._active if c is not core),
            default=core.commit_count,
        )
        if target <= core.commit_count:
            return
        core.resync(target, penalty_cycles=self.resync_penalty_cycles)
        for fifo in self.fifos[core.core_id]:
            fifo.arrivals.clear()
            if fifo.next_seq < target:
                fifo.next_seq = target
        self.store_queue.set_progress(
            core.core_id, self._store_prefix[target]
        )
        self._write_merged_to_shared()
        self._over_since[core.core_id] = None
        self.resyncs += 1
        if self.tracer is not None:
            self.tracer.resync(core.time_ps, core.core_id, target)

    # ------------------------------------------------------------------
    # fault orchestration (every path below requires an installed plan)
    # ------------------------------------------------------------------

    def _fault_preempt(self, core: Core, faults: FaultPlan) -> bool:
        """Apply core-level faults due at this core's current edge.

        Returns True when the scheduled step must be skipped (the core was
        killed, or this cycle is inside its stall window).  A standalone
        flip falls through — the core still steps, it just stops receiving.
        """
        cid = core.core_id
        if (
            faults.kill_core == cid
            and not self._fault_killed
            and core.commit_count >= faults.kill_at_commit
        ):
            self._fault_killed = True
            if self.tracer is not None:
                self.tracer.fault(
                    core.time_ps, cid, "kill", core.config.name
                )
            self._remove_core(core)
            self.fault_stats.killed.append(core.config.name)
            return True
        if (
            faults.standalone_core == cid
            and not self._fault_flipped
            and core.commit_count >= faults.standalone_at_commit
        ):
            self._fault_flipped = True
            core.disable_contesting()
            self.fault_stats.flipped.append(core.config.name)
            if self.tracer is not None:
                self.tracer.fault(
                    core.time_ps, cid, "flip", core.config.name
                )
            # it no longer consumes its queued results
            for fifo in self.fifos[cid]:
                fifo.arrivals.clear()
        if (
            faults.stall_core == cid
            and faults.stall_cycles > 0
            and faults.stall_at_cycle
            <= core.cycle
            < faults.stall_at_cycle + faults.stall_cycles
        ):
            if (
                self.tracer is not None
                and core.cycle == faults.stall_at_cycle
            ):
                # one event per window, not one per stalled cycle
                self.tracer.fault(
                    core.time_ps, cid, "stall",
                    f"{faults.stall_cycles} cycles",
                )
            core.stall_cycle()
            self.fault_stats.stalled_cycles += 1
            return True
        return False

    def _recover_corruption(self, core: Core) -> None:
        """Recover a core that consumed a garbled GRB result.

        Detection terminates and re-forks the victim at the most advanced
        retirement point — the same machinery ``_resync`` applies to a
        saturated lagger, charging ``resync_penalty_cycles``.  Re-forking
        in place (at the victim's own retirement point) is *not* enough:
        its receive FIFOs would stay misaligned and fill while it
        refetched the squashed window, tripping the saturation detector.
        """
        if core.halted or core.done:
            return
        target = max(
            (c.commit_count for c in self._active), default=core.commit_count
        )
        core.resync(target, penalty_cycles=self.resync_penalty_cycles)
        for fifo in self.fifos[core.core_id]:
            fifo.arrivals.clear()
            if fifo.next_seq < target:
                fifo.next_seq = target
        self.store_queue.set_progress(
            core.core_id, self._store_prefix[target]
        )
        self._write_merged_to_shared()
        self._over_since[core.core_id] = None
        self.resyncs += 1
        self.fault_stats.recoveries += 1
        if self.tracer is not None:
            self.tracer.fault(
                core.time_ps, core.core_id, "recovery", f"refork@{target}"
            )
            self.tracer.resync(core.time_ps, core.core_id, target)

    # ------------------------------------------------------------------
    # event-driven skip-ahead
    # ------------------------------------------------------------------

    def _core_has_work_now(
        self, core: Core, faults: Optional[FaultPlan]
    ) -> bool:
        """Whether stepping ``core`` at its current clock edge could change
        any state (so the edge must be executed for real, not skipped).

        Mirrors everything a scheduled iteration of :meth:`run` can do at
        this edge: a core-level fault preemption, any pipeline stage doing
        work (:meth:`repro.uarch.core.Core.next_event_cycle`), and — for a
        receiving core — the ``drain`` side of contesting: a matured late
        arrival to pop, a lagging-distance state transition, or an expired
        saturation grace period.  Matured arrivals the core is *trailing*
        on (``next_seq >= fetch_index``) need no entry: only fetch consumes
        them, and a core that can fetch is already busy by the pipeline
        check.
        """
        if faults is not None and faults.next_core_fault_cycle(
            core.core_id, core.cycle, core.commit_count,
            self._fault_killed, self._fault_flipped,
        ) == core.cycle:
            return True
        if core.next_event_cycle() <= core.cycle:
            return True
        if core.contesting_enabled:
            now = core.time_ps
            fetch_index = core.fetch_index
            worst = 0
            for fifo in self.fifos[core.core_id]:
                arrivals = fifo.arrivals
                if arrivals:
                    if fifo.next_seq < fetch_index and arrivals[0] <= now:
                        return True
                    if len(arrivals) > worst:
                        worst = len(arrivals)
            over_since = self._over_since[core.core_id]
            if (worst > self.max_lag) != (over_since is not None):
                return True  # drain would flip the lagging-distance state
            if over_since is not None and now - over_since > self._grace_ps:
                return True  # saturation fires at this edge
        return False

    def _skip_idle_gap(
        self, active: List[Core], faults: Optional[FaultPlan]
    ) -> bool:
        """Jump every active core to its first clock edge at or past the
        earliest future work time anywhere in the system.

        Only called when no active core has work at its current edge, i.e.
        every cycle strictly before the horizon is a provable no-op on
        every core (occupancies, fetch counters and commit counts are all
        frozen while nothing steps).  Edges landing exactly on the horizon
        are *not* executed here — the driver's normal min-time scan runs
        them for real, preserving its tie-break order and hence every
        cross-core interaction.  Returns False when no future event exists
        anywhere (deadlock): the caller falls back to cycle stepping, which
        reproduces the reference loop's step-budget diagnostics exactly.
        """
        horizon: Optional[int] = None
        for core in active:
            period = core.period_ps
            now = core.time_ps
            cycle = core.cycle
            nxt = core.next_event_cycle()
            if nxt != NO_EVENT:
                t = now + (nxt - cycle) * period
                if horizon is None or t < horizon:
                    horizon = t
            if faults is not None:
                fault_cycle = faults.next_core_fault_cycle(
                    core.core_id, cycle, core.commit_count,
                    self._fault_killed, self._fault_flipped,
                )
                if fault_cycle is not None:
                    t = now + (fault_cycle - cycle) * period
                    if horizon is None or t < horizon:
                        horizon = t
            if core.contesting_enabled:
                fetch_index = core.fetch_index
                for fifo in self.fifos[core.core_id]:
                    if fifo.arrivals and fifo.next_seq < fetch_index:
                        t = fifo.arrivals[0]
                        if horizon is None or t < horizon:
                            horizon = t
                over_since = self._over_since[core.core_id]
                if over_since is not None:
                    # saturation fires at the first edge where
                    # now - over_since > grace; times are integer ps
                    t = over_since + self._grace_ps + 1
                    if horizon is None or t < horizon:
                        horizon = t
        if horizon is None:
            return False
        for core in active:
            gap = horizon - core.time_ps
            if gap > 0:
                period = core.period_ps
                core.skip_to(core.cycle + (gap + period - 1) // period)
        return True

    # ------------------------------------------------------------------

    def run(self, max_steps: int = 0) -> ContestResult:
        """Co-simulate until the first core retires the last instruction."""
        trace_len = len(self.trace)
        limit = max_steps or (
            trace_len * (max(c.config.mem_latency for c in self.cores) + 64)
            * len(self.cores)
            + 1_000_000
        )
        faults = self.faults
        skip_ahead = self.skip_ahead
        steps = 0
        active = self._active
        winner: Optional[Core] = None
        # Idle-gap probing is pure optimisation — probing less often only
        # skips less, never changes results — so back off exponentially
        # while the system keeps refusing to go idle: a compute-bound
        # contest pays one probe per ~32 steps instead of one per step,
        # and a stall is still caught within one backoff window of the
        # last work edge.
        probe_in = 0
        probe_backoff = 1
        while winner is None:
            if skip_ahead:
                if probe_in > 0:
                    probe_in -= 1
                elif any(self._core_has_work_now(c, faults) for c in active):
                    probe_in = probe_backoff
                    if probe_backoff < 128:
                        probe_backoff *= 2
                elif self._skip_idle_gap(active, faults):
                    # The whole system jumped to the next event; at least
                    # one core landed on a work edge, so a real step
                    # follows immediately.
                    probe_backoff = 1
                    continue
                else:
                    # Dead system: no future event anywhere.  Stop probing
                    # and cycle-step into the step-budget diagnostics,
                    # exactly as the reference loop would.
                    skip_ahead = False
            # Step the core whose current clock edge is earliest.
            core = active[0]
            t = core.time_ps
            for other in active[1:]:
                if other.time_ps < t:
                    core = other
                    t = other.time_ps
            if faults is not None and self._fault_preempt(core, faults):
                active = self._active  # may shrink on a kill
                if not active:
                    raise RuntimeError(
                        "fault plan removed every core; no progress possible"
                    )
                steps += 1
                if steps > limit:
                    raise RuntimeError(
                        "contesting co-simulation exceeded its step budget: "
                        "likely deadlock"
                    )
                continue
            core.step()
            if faults is not None and self._pending_corruption is not None:
                victim = self._pending_corruption
                self._pending_corruption = None
                self._recover_corruption(victim)
            if core.done:
                winner = core
                break
            active = self._active  # may shrink on saturation
            if not active:
                raise RuntimeError("all cores saturated; no progress possible")
            steps += 1
            if steps > limit:
                raise RuntimeError(
                    "contesting co-simulation exceeded its step budget: "
                    "likely deadlock"
                )
        for c in self.cores:
            c.collect_cache_stats()
        if self.tracer is not None:
            for c in self.cores:
                self.tracer.finalise_core(
                    c.core_id, c.stats.committed, c.cycle, c.time_ps
                )
            self.tracer.finish(winner.time_ps)
        return ContestResult(
            config_names=[c.config.name for c in self.cores],
            trace_name=self.trace.name,
            instructions=trace_len,
            time_ps=winner.time_ps,
            winner=winner.config.name,
            lead_changes=self.lead_changes,
            saturated=list(self.saturated),
            store_stalls=self.store_queue.stalls,
            merged_stores=self.store_queue.merged,
            per_core={
                f"{c.core_id}:{c.config.name}": c.stats for c in self.cores
            },
            resyncs=self.resyncs,
        )


def run_contest(
    config_a: CoreConfig,
    config_b: CoreConfig,
    trace: Union[Trace, StreamingTrace],
    grb_latency_ns: float = 1.0,
    **kwargs: Any,
) -> ContestResult:
    """Run 2-way contesting (the configuration the paper evaluates)."""
    system = ContestingSystem(
        [config_a, config_b], trace, grb_latency_ns=grb_latency_ns, **kwargs
    )
    return system.run()
