"""Architectural contesting — the paper's primary contribution.

N cores concurrently execute the same trace.  Each core broadcasts its
retired-instruction results on its own global result bus (GRB); every other
core receives them through a synchronizing result FIFO.  A core that trails
pairs popped results with its fetched instructions and completes them early
(branches in fetch, register values in rename), so it can never fall far
behind; when workload behaviour shifts, the core whose microarchitecture
suits the new phase simply stops finding usable results in its FIFOs and
takes the lead by executing normally.  Leadership is emergent — there is no
phase detector and no explicit leader election (Section 4 of the paper).

Public surface:

* :class:`ContestingSystem` — build from a list of core configurations and a
  trace, call :meth:`~ContestingSystem.run`.
* :class:`ContestResult` — timing, per-core statistics, lead changes,
  saturated-lagger events.
* :class:`SyncStoreQueue` — the SRT-style synchronizing store queue that
  merges each store into the shared level once every active core has
  performed it privately.
* :func:`run_contest` — convenience wrapper for the common 2-way case.
"""

from repro.core.storequeue import SyncStoreQueue
from repro.core.system import ContestingSystem, ContestResult, ResultFifo, run_contest

__all__ = [
    "ContestingSystem",
    "ContestResult",
    "ResultFifo",
    "SyncStoreQueue",
    "run_contest",
]
