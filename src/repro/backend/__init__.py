"""Pluggable simulation backends (see :mod:`repro.backend.base`).

Importing this package registers the built-in backends; instances are
created lazily by :func:`get_backend`, so the columnar backend's NumPy
requirement is only paid when it is actually selected.
"""

from repro.backend.base import (
    BACKEND_CHOICES,
    CONCRETE_BACKENDS,
    BackendCapabilities,
    BackendStats,
    BackendUnavailable,
    SimBackend,
    backend_for_contest,
    get_backend,
    numpy_available,
    register_backend,
    resolve_backend_name,
)
from repro.backend.columnar import ColumnarBackend
from repro.backend.reference import ReferenceBackend

register_backend("reference", ReferenceBackend)
register_backend("columnar", ColumnarBackend)

__all__ = [
    "BACKEND_CHOICES",
    "CONCRETE_BACKENDS",
    "BackendCapabilities",
    "BackendStats",
    "BackendUnavailable",
    "ColumnarBackend",
    "ReferenceBackend",
    "SimBackend",
    "backend_for_contest",
    "get_backend",
    "numpy_available",
    "register_backend",
    "resolve_backend_name",
]
