"""The columnar backend: whole-trace NumPy scheduling with exactness proofs.

Instead of interpreting the pipeline cycle by cycle, this backend computes
the complete per-instruction schedule — fetch, dispatch, issue, complete,
commit cycles — as closed-form array recurrences over the column-major
``Trace.decoded`` layout, then *proves* the schedule exact with vectorized
certificates before returning it.  Any run it cannot prove falls back to
the reference backend deterministically (the decision is a pure function
of the job), so results are bit-identical either way.

How the schedule is exact
-------------------------
The reference :class:`~repro.uarch.core.Core` processes stages
back-to-front (commit, complete, issue, dispatch, fetch).  For a trace
with no memory operations, no syscalls and no injections, each stage is an
in-order, width-limited conveyor:

* **fetch** proceeds at ``width`` per cycle, breaking the fetch group
  after taken or mispredicted branches; a mispredicted branch ``b``
  freezes fetch from ``F[b]+1`` until its complete cycle ``C[b]`` (the
  complete stage runs before fetch, so fetch resumes *at* ``C[b]``).
  Within one stall-free segment the fetch cycles have a closed form via
  stretch packing; segments are processed in order because each stall
  release cycle is the previous segment's branch-complete cycle.
* **dispatch / issue / commit** are max-plus closures: e.g.
  ``D[i] = max(F[i]+fe, D[i-1], D[i-width]+1)``, whose solution
  ``max_j base[j] + floor((i-j)/width)`` is computed in
  O(n log n) by a running max followed by width-doubling passes.

That conveyor picture assumes (a) no dependency ever delays issue past
``D[i]+1`` and (b) no queue (fetch queue, ROB, IQ) ever fills.  Both are
*verified after the fact* on the computed schedule: dependency slack
(``C[dep]+awaken <= D[i]+1`` for every still-in-flight producer) and
queue occupancies (rank differences via ``searchsorted`` on the monotone
stage arrays).  A first-divergence argument makes the certificates sound:
if the real machine ever deviated from the conveyor schedule, the first
deviation would be a dependency or occupancy violation at a cycle the
certificates inspect.  Certificate failure is not an error — it is a
fallback reason, counted on :attr:`ColumnarBackend.stats`.

Capability envelope
-------------------
Standalone runs whose traces contain only IALU/IMUL/IDIV/BRANCH ops.
Loads and stores are out (cache and MSHR state depend on out-of-order
issue order), as are syscalls (commit-stall machinery), NOPs
(dispatch-stage early completion), telemetry observers (per-event hooks),
and contested or fault-injected execution (cores re-couple mid-region).
NumPy itself is imported lazily: the base install works without it, and
requesting this backend without NumPy raises
:class:`~repro.backend.base.BackendUnavailable` (install ``repro[fast]``).
"""

from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from repro.backend.base import (
    BackendCapabilities,
    BackendStats,
    BackendUnavailable,
    get_backend,
)
from repro.isa.stream import StreamingTrace
from repro.isa.trace import TraceSource
from repro.uarch.branch import make_predictor
from repro.uarch.config import CoreConfig
from repro.uarch.core import (
    _EXEC_LAT,
    OP_BRANCH,
    OP_LOAD,
    OP_NOP,
    OP_STORE,
    OP_SYSCALL,
    RunStats,
)

if TYPE_CHECKING:
    from repro.uarch.run import StandaloneResult

_np: Optional[Any] = None  # cached module handle after the first import


def _import_numpy() -> Any:
    # separated from _require_numpy so tests can monkeypatch NumPy absence
    import numpy

    return numpy


def _require_numpy() -> Any:
    global _np
    if _np is None:
        try:
            _np = _import_numpy()
        except ImportError as exc:
            raise BackendUnavailable(
                "the columnar backend requires NumPy, which is not "
                "installed; install the fast extra (pip install "
                "'repro[fast]') or select --backend reference"
            ) from exc
    return _np


class ColumnarBackend:
    """Vectorized standalone execution with reference fallback."""

    name = "columnar"
    capabilities = BackendCapabilities(
        standalone=True,
        contests=False,
        faults=False,
        telemetry=False,
        region_logs=True,
    )

    def __init__(self) -> None:
        self.stats = BackendStats()

    def run_standalone(
        self,
        config: CoreConfig,
        trace: TraceSource,
        region_size: int = 0,
        max_cycles: int = 0,
        prewarm: bool = True,
        skip_ahead: bool = True,
        tracer: Optional[Any] = None,
    ) -> "StandaloneResult":
        """Execute ``trace``, vectorized when provably exact.

        ``skip_ahead`` is accepted for signature compatibility; the fast
        path has no cycle loop to skip, and fallbacks forward it.
        """
        # The telemetry capability check comes before the NumPy import:
        # it is a pure capability question, answerable without NumPy.
        if tracer is not None:
            return self._fallback(
                "telemetry", config, trace, region_size, max_cycles,
                prewarm, skip_ahead, tracer,
            )
        np = _require_numpy()
        if isinstance(trace, StreamingTrace):
            result, reason = _schedule_stream(
                np, config, trace, region_size, max_cycles, prewarm
            )
        else:
            result, reason = _schedule(
                np, config, trace, region_size, max_cycles, prewarm
            )
        if result is not None:
            self.stats.fast_runs += 1
            return result
        assert reason is not None
        return self._fallback(
            reason, config, trace, region_size, max_cycles, prewarm,
            skip_ahead, tracer,
        )

    def _fallback(
        self,
        reason: str,
        config: CoreConfig,
        trace: TraceSource,
        region_size: int,
        max_cycles: int,
        prewarm: bool,
        skip_ahead: bool,
        tracer: Optional[Any],
    ) -> "StandaloneResult":
        self.stats.record_fallback(reason)
        return get_backend("reference").run_standalone(
            config,
            trace,
            region_size=region_size,
            max_cycles=max_cycles,
            prewarm=prewarm,
            skip_ahead=skip_ahead,
            tracer=tracer,
        )


def _static_reason(np: Any, ops: Any) -> Optional[str]:
    """The capability reason ruling this trace out, or None if it is in."""
    if ops.size == 0:
        return "empty-trace"
    counts = np.bincount(ops, minlength=OP_NOP + 1)
    if counts[OP_LOAD] or counts[OP_STORE]:
        return "memory-ops"
    if counts[OP_SYSCALL]:
        return "syscalls"
    if counts[OP_NOP]:
        return "nops"
    return None


def _branch_outcomes(
    np: Any, config: CoreConfig, decoded: Any, branch_idx: Any, prewarm: bool
) -> Any:
    """Mispredict flags per instruction, replaying the predictor exactly.

    The reference front end predicts and then trains at fetch, in program
    order, over correct-path outcomes only — so predictor state is a pure
    function of the branch outcome sequence and can be replayed up front
    (including the prewarm pass).  This is the one sequential loop in the
    backend; it visits branches only.
    """
    mis = np.zeros(len(decoded.ops), dtype=bool)
    if config.perfect_predictor or branch_idx.size == 0:
        return mis
    predictor = make_predictor(config.predictor, config.predictor_entries)
    pcs = decoded.pcs
    takens = decoded.takens
    branches = branch_idx.tolist()
    if prewarm:
        for b in branches:
            predictor.update(pcs[b], takens[b])
    flags = []
    for b in branches:
        pc = pcs[b]
        taken = takens[b]
        flags.append(predictor.predict(pc) != taken)
        predictor.update(pc, taken)
    mis[branch_idx] = flags
    return mis


def _conveyor(np: Any, base: Any, width: int, tail: Optional[Any]) -> Any:
    """Closure of ``base`` under ``X[i] >= X[i-1]`` and
    ``X[i] >= X[i-width] + 1`` — an in-order stage draining ``width``
    entries per cycle.

    The solution is ``X[i] = max_j base[j] + (i-j)//width``: a running max
    realises the zero-cost steps, then width-doubling passes (shift ``w``
    add 1, shift ``2w`` add 2, ...) realise any count of width steps via
    its binary decomposition.  Each pass keeps the array monotone and
    never overshoots the closure, so the result is exact, in O(n log n).

    ``tail`` carries the final values of the preceding ``width`` entries
    when a segment is closed incrementally; older entries cannot bind
    because the tail already dominates them (the closure property held
    when they were computed).
    """
    if tail is not None and tail.size:
        ext = np.concatenate((tail, base))
        cut = int(tail.size)
    else:
        ext = base.copy()
        cut = 0
    np.maximum.accumulate(ext, out=ext)
    shift = width
    add = 1
    size = ext.size
    while shift < size:
        np.maximum(ext[shift:], ext[:-shift] + add, out=ext[shift:])
        shift *= 2
        add *= 2
    return ext[cut:]


def _fetch_segment(
    np: Any, fetch: Any, brk: Any, s: int, e: int, start: int, width: int
) -> None:
    """Fetch cycles for one stall-free segment ``[s, e)`` starting at
    cycle ``start``, by stretch packing.

    A *stretch* is a maximal run of instructions with no fetch break
    (taken or mispredicted branch) between them.  Fetch packs ``width``
    instructions per cycle within a stretch and resumes on the next cycle
    after a break, so a stretch of length L beginning at cycle ``b``
    spans ``b .. b + (L-1)//width`` and the next stretch begins one cycle
    later.
    """
    m = e - s
    bseg = brk[s:e]
    inner = np.flatnonzero(bseg[:-1])  # breaks strictly inside the segment
    starts = np.concatenate((np.zeros(1, dtype=np.int64), inner + 1))
    lens = np.diff(np.concatenate((starts, np.asarray([m], dtype=np.int64))))
    costs = (lens - 1) // width + 1
    bases = start + np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(costs[:-1]))
    )
    stretch = np.zeros(m, dtype=np.int64)
    stretch[1:] = np.cumsum(bseg[:-1])
    offs = np.arange(m, dtype=np.int64) - starts[stretch]
    fetch[s:e] = bases[stretch] + offs // width


def _schedule(
    np: Any,
    config: CoreConfig,
    trace: TraceSource,
    region_size: int,
    max_cycles: int,
    prewarm: bool,
) -> Tuple[Optional["StandaloneResult"], Optional[str]]:
    """Compute the exact schedule, or a fallback reason."""
    from repro.uarch.run import StandaloneResult

    decoded = trace.decoded()
    ops = np.asarray(decoded.ops, dtype=np.int64)
    reason = _static_reason(np, ops)
    if reason is not None:
        return None, reason
    n = int(ops.size)
    width = config.width
    fe_depth = config.frontend_depth
    sched = config.sched_depth
    awaken = config.awaken_latency

    takens = np.asarray(decoded.takens, dtype=bool)
    is_branch = ops == OP_BRANCH
    branch_idx = np.flatnonzero(is_branch)
    mis = _branch_outcomes(np, config, decoded, branch_idx, prewarm)
    brk = is_branch & (mis | takens)  # fetch-group breaks
    mis_idx = np.flatnonzero(mis)

    fetch = np.empty(n, dtype=np.int64)
    disp = np.empty(n, dtype=np.int64)
    issue = np.empty(n, dtype=np.int64)
    comp = np.empty(n, dtype=np.int64)
    lat = np.asarray(_EXEC_LAT, dtype=np.int64)[ops]

    # Segments end at mispredicted branches (inclusive); the next segment's
    # fetch resumes at that branch's complete cycle, so segments are closed
    # left to right, carrying `width`-deep conveyor tails across.
    bounds = mis_idx.tolist()
    s = 0
    start = 0
    for k in range(len(bounds) + 1):
        e = bounds[k] + 1 if k < len(bounds) else n
        if e > s:
            _fetch_segment(np, fetch, brk, s, e, start, width)
            disp[s:e] = _conveyor(
                np, fetch[s:e] + fe_depth, width, disp[max(0, s - width):s]
            )
            issue[s:e] = _conveyor(
                np, disp[s:e] + 1, width, issue[max(0, s - width):s]
            )
            comp[s:e] = issue[s:e] + sched + lat[s:e]
        if k < len(bounds):
            start = int(comp[bounds[k]])
        s = e
    commit = _conveyor(np, comp + 1, width, None)

    # --- exactness certificates (any failure -> deterministic fallback) ---
    # Dependencies must never delay issue past disp+1: every producer still
    # in flight at the consumer's dispatch must satisfy the wakeup bound.
    for deps_col in (decoded.deps1, decoded.deps2):
        deps = np.asarray(deps_col, dtype=np.int64)
        have = deps >= 0
        if np.any(have):
            producers = deps[have]
            slack_bad = comp[producers] + awaken > disp[have] + 1
            in_flight = commit[producers] > disp[have]
            if np.any(slack_bad & in_flight):
                return None, "dep-pressure"
    # Queues must never fill at insertion time.  Occupancy is a rank
    # difference on the monotone stage arrays; the draining stage runs
    # earlier in the cycle than the inserting one, so side="right" matches
    # the reference's same-cycle free-then-insert ordering.
    rank = np.arange(n, dtype=np.int64)
    if np.any(
        rank - np.searchsorted(disp, fetch, side="right")
        >= config.fetch_queue_size
    ):
        return None, "fetch-queue-pressure"
    if np.any(
        rank - np.searchsorted(commit, disp, side="right") >= config.rob_size
    ):
        return None, "rob-pressure"
    if np.any(
        rank - np.searchsorted(issue, disp, side="right") >= config.iq_size
    ):
        return None, "iq-pressure"

    # --- assemble the result exactly as the reference loop would ---------
    cycles = int(commit[n - 1]) + 1
    limit = max_cycles or (n * (config.mem_latency + 64) + 100_000)
    if cycles > limit:
        raise RuntimeError(
            f"core {config.name} exceeded {limit} cycles on trace "
            f"{trace.name}: likely a pipeline deadlock"
        )
    period = config.period_ps
    stats = RunStats()
    stats.cycles = cycles
    stats.committed = n
    stats.branches = int(branch_idx.size)
    stats.mispredicts = int(mis_idx.size)
    if mis_idx.size:
        # fetch froze over [F[b]+1, C[b]-1] for each mispredicted branch
        stats.fetch_stall_cycles = int(
            np.sum(comp[mis_idx] - fetch[mis_idx] - 1)
        )
    regions: List[int] = []
    if region_size:
        marks = np.arange(region_size - 1, n, region_size, dtype=np.int64)
        regions = [int(t) for t in (commit[marks] + 1) * period]
    stats.region_times_ps = regions
    result = StandaloneResult(
        config_name=config.name,
        trace_name=trace.name,
        instructions=n,
        cycles=cycles,
        time_ps=cycles * period,
        stats=stats,
        region_times_ps=list(regions),
    )
    return result, None


def _fetch_chunk_segment(
    np: Any, out: Any, brk: Any, base: int, prefix: int, width: int
) -> Tuple[int, int]:
    """Fetch cycles for one chunk-local slice of a stall-free segment.

    The chunked counterpart of :func:`_fetch_segment`: the slice may begin
    mid-stretch (``prefix`` instructions of the current stretch were
    fetched in earlier chunks, the stretch began at cycle ``base``) and
    may end mid-stretch.  Returns the carried ``(base, prefix)`` for the
    next slice: the open stretch's base cycle and accumulated length, or
    the next stretch's fresh base when the slice ends on a break.
    Identical to the whole-trace math when ``prefix == 0`` and the slice
    covers the segment (pinned by the corpus parity suite).
    """
    m = int(out.size)
    inner = np.flatnonzero(brk[:-1])  # breaks strictly inside the slice
    starts = np.concatenate((np.zeros(1, dtype=np.int64), inner + 1))
    lens = np.diff(np.concatenate((starts, np.asarray([m], dtype=np.int64))))
    prefixes = np.zeros(starts.size, dtype=np.int64)
    prefixes[0] = prefix
    eff = lens + prefixes  # full stretch lengths, carried prefix included
    costs = (eff - 1) // width + 1
    bases = np.empty(starts.size, dtype=np.int64)
    bases[0] = base
    if starts.size > 1:
        bases[1:] = base + np.cumsum(costs[:-1])
    stretch = np.zeros(m, dtype=np.int64)
    stretch[1:] = np.cumsum(brk[:-1])
    offs = np.arange(m, dtype=np.int64) - starts[stretch] + prefixes[stretch]
    out[:] = bases[stretch] + offs // width
    if bool(brk[m - 1]):
        return int(bases[-1] + costs[-1]), 0
    return int(bases[-1]), int(eff[-1])


def _keep_tail(np: Any, tail: Any, local: Any, keep: int) -> Any:
    """The last ``keep`` values of ``tail`` followed by ``local``."""
    if local.size >= keep:
        return local[-keep:].copy()
    joined = np.concatenate((tail, local))
    return joined[-keep:] if joined.size > keep else joined


def _schedule_stream(
    np: Any,
    config: CoreConfig,
    trace: StreamingTrace,
    region_size: int,
    max_cycles: int,
    prewarm: bool,
) -> Tuple[Optional["StandaloneResult"], Optional[str]]:
    """Chunked schedule of a streaming trace with carried pipeline state.

    Processes the generated chunk stream left to right, holding one chunk
    of columns at a time.  Everything the whole-trace algorithm computes
    globally carries across chunk boundaries in bounded state:

    * **fetch** — the open stretch's ``(base, prefix)``
      (:func:`_fetch_chunk_segment`); segment boundaries at mispredicted
      branches behave exactly as in the whole-trace loop.
    * **dispatch / issue / commit** — ``width``-deep conveyor tails, the
      same carry the whole-trace path uses between segments.
    * **predictor** — replayed sequentially across chunks (one extra
      generation pass when ``prewarm`` asks for a warmed predictor).
    * **certificates** — checked per chunk against ``T``-deep tails,
      ``T = max(width, fetch-queue, ROB, IQ capacities)``.  The windowed
      checks are sound: queue occupancies are suffix counts on monotone
      stage arrays, so a window of at least the capacity either covers the
      whole in-flight suffix (exact) or is itself entirely in flight
      (count >= capacity — a genuine violation).  A producer older than
      ``T >= rob_size`` instructions must be committed wherever the ROB
      certificate holds, so skipping it cannot hide a dependency stall.

    Peak residency is O(chunk + T), never O(trace) — the bound the RSS
    regression test enforces on million-instruction runs.
    """
    from repro.uarch.run import StandaloneResult

    n = len(trace)
    width = config.width
    fe_depth = config.frontend_depth
    sched = config.sched_depth
    awaken = config.awaken_latency
    lat_table = np.asarray(_EXEC_LAT, dtype=np.int64)
    tail_len = max(
        width, config.fetch_queue_size, config.rob_size, config.iq_size
    )

    predictor = None
    if not config.perfect_predictor:
        predictor = make_predictor(config.predictor, config.predictor_entries)
        if prewarm:
            # Prewarm pass: replay every branch once in program order,
            # checking the capability envelope on the way so an out-of-
            # envelope trace costs at most one generation pass.
            for chunk in trace.chunks():
                ops_l = np.asarray(chunk.ops, dtype=np.int64)
                reason = _static_reason(np, ops_l)
                if reason is not None:
                    return None, reason
                for b in np.flatnonzero(ops_l == OP_BRANCH).tolist():
                    predictor.update(chunk.pcs[b], chunk.takens[b])

    empty = np.zeros(0, dtype=np.int64)
    disp_tail = empty
    issue_tail = empty
    comp_tail = empty
    commit_tail = empty
    seg_base = 0
    seg_prefix = 0
    chunk_base = 0
    branches = 0
    mispredicts = 0
    fetch_stall = 0
    last_commit = 0
    period = config.period_ps
    regions: List[int] = []

    for chunk in trace.chunks():
        m = len(chunk)
        ops_l = np.asarray(chunk.ops, dtype=np.int64)
        reason = _static_reason(np, ops_l)
        if reason is not None:
            return None, reason
        takens_l = np.asarray(chunk.takens, dtype=bool)
        is_branch = ops_l == OP_BRANCH
        branch_idx = np.flatnonzero(is_branch)
        mis = np.zeros(m, dtype=bool)
        if predictor is not None and branch_idx.size:
            pcs = chunk.pcs
            tks = chunk.takens
            flags = []
            for b in branch_idx.tolist():
                pc = pcs[b]
                taken = tks[b]
                flags.append(predictor.predict(pc) != taken)
                predictor.update(pc, taken)
            mis[branch_idx] = flags
        brk = is_branch & (mis | takens_l)
        lat = lat_table[ops_l]

        fetch_l = np.empty(m, dtype=np.int64)
        disp_l = np.empty(m, dtype=np.int64)
        issue_l = np.empty(m, dtype=np.int64)
        comp_l = np.empty(m, dtype=np.int64)

        bounds = np.flatnonzero(mis).tolist()
        s = 0
        for k in range(len(bounds) + 1):
            e = bounds[k] + 1 if k < len(bounds) else m
            if e > s:
                seg_base, seg_prefix = _fetch_chunk_segment(
                    np, fetch_l[s:e], brk[s:e], seg_base, seg_prefix, width
                )
                disp_l[s:e] = _conveyor(
                    np, fetch_l[s:e] + fe_depth, width,
                    _keep_tail(np, disp_tail, disp_l[:s], width),
                )
                issue_l[s:e] = _conveyor(
                    np, disp_l[s:e] + 1, width,
                    _keep_tail(np, issue_tail, issue_l[:s], width),
                )
                comp_l[s:e] = issue_l[s:e] + sched + lat[s:e]
            if k < len(bounds):
                seg_base = int(comp_l[bounds[k]])
                seg_prefix = 0
            s = e
        commit_l = _conveyor(
            np, comp_l + 1, width, _keep_tail(np, commit_tail, empty, width)
        )

        # --- windowed exactness certificates (see docstring) -------------
        t = int(disp_tail.size)  # every cert tail has the same length
        covered_base = chunk_base - t
        rank = np.arange(chunk_base, chunk_base + m, dtype=np.int64)
        leq = covered_base + np.searchsorted(
            np.concatenate((disp_tail, disp_l)), fetch_l, side="right"
        )
        if np.any(rank - leq >= config.fetch_queue_size):
            return None, "fetch-queue-pressure"
        leq = covered_base + np.searchsorted(
            np.concatenate((commit_tail, commit_l)), disp_l, side="right"
        )
        if np.any(rank - leq >= config.rob_size):
            return None, "rob-pressure"
        leq = covered_base + np.searchsorted(
            np.concatenate((issue_tail, issue_l)), disp_l, side="right"
        )
        if np.any(rank - leq >= config.iq_size):
            return None, "iq-pressure"
        for deps_list in (chunk.deps1, chunk.deps2):
            deps = np.asarray(deps_list, dtype=np.int64)
            have = np.flatnonzero(deps >= 0)
            if have.size == 0:
                continue
            producers = deps[have]
            d_disp = disp_l[have]
            local = producers >= chunk_base
            near = (~local) & (producers >= covered_base)
            comp_p = np.zeros(producers.size, dtype=np.int64)
            commit_p = np.zeros(producers.size, dtype=np.int64)
            if np.any(local):
                idx = producers[local] - chunk_base
                comp_p[local] = comp_l[idx]
                commit_p[local] = commit_l[idx]
            if np.any(near):
                idx = producers[near] - covered_base
                comp_p[near] = comp_tail[idx]
                commit_p[near] = commit_tail[idx]
            covered = local | near
            slack_bad = comp_p + awaken > d_disp + 1
            in_flight = commit_p > d_disp
            if np.any(covered & slack_bad & in_flight):
                return None, "dep-pressure"

        # --- accumulate result state -------------------------------------
        branches += int(branch_idx.size)
        mis_local = np.flatnonzero(mis)
        mispredicts += int(mis_local.size)
        if mis_local.size:
            fetch_stall += int(
                np.sum(comp_l[mis_local] - fetch_l[mis_local] - 1)
            )
        if region_size:
            first_k = chunk_base // region_size + 1
            last_k = (chunk_base + m) // region_size
            if last_k >= first_k:
                marks = (
                    np.arange(first_k, last_k + 1, dtype=np.int64)
                    * region_size - 1 - chunk_base
                )
                regions.extend(
                    int(v) for v in (commit_l[marks] + 1) * period
                )
        last_commit = int(commit_l[m - 1])
        disp_tail = _keep_tail(np, disp_tail, disp_l, tail_len)
        issue_tail = _keep_tail(np, issue_tail, issue_l, tail_len)
        comp_tail = _keep_tail(np, comp_tail, comp_l, tail_len)
        commit_tail = _keep_tail(np, commit_tail, commit_l, tail_len)
        chunk_base += m

    cycles = last_commit + 1
    limit = max_cycles or (n * (config.mem_latency + 64) + 100_000)
    if cycles > limit:
        raise RuntimeError(
            f"core {config.name} exceeded {limit} cycles on trace "
            f"{trace.name}: likely a pipeline deadlock"
        )
    stats = RunStats()
    stats.cycles = cycles
    stats.committed = n
    stats.branches = branches
    stats.mispredicts = mispredicts
    stats.fetch_stall_cycles = fetch_stall
    stats.region_times_ps = regions
    result = StandaloneResult(
        config_name=config.name,
        trace_name=trace.name,
        instructions=n,
        cycles=cycles,
        time_ps=cycles * period,
        stats=stats,
        region_times_ps=list(regions),
    )
    return result, None
