"""The reference backend: the cycle-stepped interpreter, unchanged.

This is the execution loop that has always lived in
:func:`repro.uarch.run.run_standalone`, moved behind the
:class:`~repro.backend.base.SimBackend` protocol verbatim.  It is the
ground truth every other backend is validated against, and the target of
every capability fallback — so it supports the full feature surface:
contests (driven by :class:`repro.core.system.ContestingSystem`, which
steps :class:`~repro.uarch.core.Core` objects directly), fault plans,
telemetry observers, and region logs.
"""

from typing import TYPE_CHECKING, Any, Optional

from repro.backend.base import BackendCapabilities, BackendStats
from repro.isa.trace import TraceSource
from repro.uarch.config import CoreConfig
from repro.uarch.core import Core

if TYPE_CHECKING:  # repro.uarch.run imports this package lazily at call time
    from repro.uarch.run import StandaloneResult


class ReferenceBackend:
    """Cycle-stepped interpreter execution (the model of record)."""

    name = "reference"
    capabilities = BackendCapabilities(
        standalone=True,
        contests=True,
        faults=True,
        telemetry=True,
        region_logs=True,
    )

    def __init__(self) -> None:
        self.stats = BackendStats()

    def run_standalone(
        self,
        config: CoreConfig,
        trace: TraceSource,
        region_size: int = 0,
        max_cycles: int = 0,
        prewarm: bool = True,
        skip_ahead: bool = True,
        tracer: Optional[Any] = None,
    ) -> "StandaloneResult":
        """Execute ``trace`` to completion on a core built from ``config``.

        See :func:`repro.uarch.run.run_standalone` for the parameter
        contract; that function is now a thin dispatcher onto this method.
        """
        from repro.uarch.run import StandaloneResult

        core = Core(
            config, trace, region_size=region_size, prewarm=prewarm,
            tracer=tracer,
        )
        limit = max_cycles or (
            len(trace) * (config.mem_latency + 64) + 100_000
        )
        if skip_ahead:
            while not core.done:
                core.step()
                if core.cycle > limit:
                    raise RuntimeError(
                        f"core {config.name} exceeded {limit} cycles on trace "
                        f"{trace.name}: likely a pipeline deadlock"
                    )
                if core.done:
                    break
                nxt = core.next_event_cycle()
                if nxt > core.cycle:
                    # a deadlocked core has no event at all: land just past
                    # the limit so the step above raises exactly as the slow
                    # loop
                    core.skip_to(min(nxt, limit + 1))
        else:
            while not core.done:
                core.step()
                if core.cycle > limit:
                    raise RuntimeError(
                        f"core {config.name} exceeded {limit} cycles on trace "
                        f"{trace.name}: likely a pipeline deadlock"
                    )
        core.collect_cache_stats()
        if tracer is not None:
            tracer.finalise_core(
                core.core_id, core.stats.committed, core.cycle, core.time_ps
            )
            tracer.finish(core.time_ps)
        self.stats.fast_runs += 1
        return StandaloneResult(
            config_name=config.name,
            trace_name=trace.name,
            instructions=len(trace),
            cycles=core.cycle,
            time_ps=core.time_ps,
            stats=core.stats,
            region_times_ps=list(core.stats.region_times_ps),
        )
