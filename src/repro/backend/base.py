"""The simulation-backend protocol, capability flags, and registry.

A *backend* is an interchangeable engine for executing one trace on one
core configuration.  The cycle-stepped interpreter that has always powered
the simulator is the **reference** backend
(:mod:`repro.backend.reference`); the **columnar** backend
(:mod:`repro.backend.columnar`) batches whole trace regions through NumPy
array arithmetic and must produce bit-identical results — the differential
suite (``tests/differential/test_backend.py``) enforces that, following the
"fast model continuously validated against a reference model" methodology
of *Validating Simplified Processor Models in Architectural Studies*.

Backends advertise what they can simulate through
:class:`BackendCapabilities`.  Work outside a backend's capability falls
back to the reference backend *deterministically* (same inputs, same
routing — the decision depends only on the job, never on wall clock or
host state), and every fallback is counted with a reason on the backend's
:class:`BackendStats` so a run can report how much of it actually used the
fast path.

Selection is by name: ``"reference"``, ``"columnar"``, or ``"auto"``
(columnar when NumPy is importable, reference otherwise).  Jobs store only
the two concrete names — resolving ``"auto"`` happens at the CLI/driver
layer, so a job's cache key never depends on what happens to be installed.
"""

from dataclasses import dataclass, field
from importlib import util as importlib_util
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from typing import Protocol

if TYPE_CHECKING:  # runtime import would be circular through repro.uarch.run
    from repro.isa.trace import TraceSource
    from repro.uarch.config import CoreConfig
    from repro.uarch.run import StandaloneResult


class BackendUnavailable(RuntimeError):
    """A backend was requested whose runtime requirements are missing.

    Raised e.g. when ``--backend columnar`` is selected on an installation
    without NumPy (install ``repro[fast]``).  ``"auto"`` never raises this:
    it resolves to the reference backend instead.
    """


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can simulate natively (everything else falls back).

    ``standalone`` is the baseline every backend must support.  The other
    flags mirror the job features that can appear on the engine's job
    types: contested (multi-core) execution, fault-injection plans, live
    telemetry observers, and per-region retirement logs.
    """

    standalone: bool = True
    contests: bool = False
    faults: bool = False
    telemetry: bool = False
    region_logs: bool = True


@dataclass
class BackendStats:
    """Fast-path vs. fallback counters for one backend instance."""

    #: runs completed natively by this backend
    fast_runs: int = 0
    #: runs routed to the reference backend instead
    fallback_runs: int = 0
    #: fallback count by reason (``"memory-ops"``, ``"dep-pressure"``, ...)
    fallback_reasons: Dict[str, int] = field(default_factory=dict)

    def record_fallback(self, reason: str) -> None:
        """Count one fallback under ``reason``."""
        self.fallback_runs += 1
        self.fallback_reasons[reason] = (
            self.fallback_reasons.get(reason, 0) + 1
        )


class SimBackend(Protocol):
    """The execution-engine protocol every backend implements.

    ``run_standalone`` must match :func:`repro.uarch.run.run_standalone`'s
    semantics exactly — bit-identical :class:`StandaloneResult` for any
    input the backend accepts natively, and a deterministic fallback to the
    reference backend for anything else.
    """

    name: str
    capabilities: BackendCapabilities
    stats: BackendStats

    def run_standalone(
        self,
        config: "CoreConfig",
        trace: "TraceSource",
        region_size: int = 0,
        max_cycles: int = 0,
        prewarm: bool = True,
        skip_ahead: bool = True,
        tracer: Optional[object] = None,
    ) -> "StandaloneResult":
        """Execute ``trace`` to completion on a core built from ``config``."""
        ...


#: The selectable backend names, as exposed by every ``--backend`` flag.
BACKEND_CHOICES: Tuple[str, ...] = ("reference", "columnar", "auto")

#: The concrete backend names a job may carry (``"auto"`` resolves to one
#: of these before a job is built, so cache keys stay environment-free).
CONCRETE_BACKENDS: Tuple[str, ...] = ("reference", "columnar")

_FACTORIES: Dict[str, Callable[[], SimBackend]] = {}
_INSTANCES: Dict[str, SimBackend] = {}

#: Optional chaos hook consulted on every dispatch (``repro.chaos``): the
#: hoisted ``is not None`` check keeps the unhooked fast path at a single
#: pointer comparison, the same pattern as the telemetry observers.
_CHAOS_GET_HOOK: Optional[Callable[[str], None]] = None


def install_backend_chaos_hook(
    hook: Optional[Callable[[str], None]]
) -> None:
    """Install (or with ``None`` clear) the process-global dispatch hook.

    The hook runs at the top of :func:`get_backend` with the requested
    name and may raise to simulate a backend failing mid-job
    (:class:`repro.chaos.hooks.ChaosBackendError`).  Test machinery only.
    """
    global _CHAOS_GET_HOOK
    _CHAOS_GET_HOOK = hook


def register_backend(name: str, factory: Callable[[], SimBackend]) -> None:
    """Register a backend factory under ``name`` (instantiated lazily,
    one singleton per process)."""
    _FACTORIES[name] = factory


def get_backend(name: str) -> SimBackend:
    """The process-wide singleton backend registered under ``name``.

    ``name`` must be concrete — resolve ``"auto"`` through
    :func:`resolve_backend_name` first.
    """
    if _CHAOS_GET_HOOK is not None:
        _CHAOS_GET_HOOK(name)
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown backend {name!r}; expected one of "
            f"{', '.join(sorted(_FACTORIES))}"
        )
    if name not in _INSTANCES:
        _INSTANCES[name] = _FACTORIES[name]()
    return _INSTANCES[name]


def numpy_available() -> bool:
    """Whether NumPy is importable (without importing it)."""
    return importlib_util.find_spec("numpy") is not None


def resolve_backend_name(name: str) -> str:
    """Resolve a ``--backend`` value to a concrete backend name.

    ``"auto"`` picks ``"columnar"`` when NumPy is importable and
    ``"reference"`` otherwise; the concrete names pass through.  The result
    is one of :data:`CONCRETE_BACKENDS`, so it is safe to store on a job.
    """
    if name == "auto":
        return "columnar" if numpy_available() else "reference"
    if name not in CONCRETE_BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; expected one of "
            f"{', '.join(BACKEND_CHOICES)}"
        )
    return name


def backend_for_contest(name: str) -> str:
    """The concrete backend a contested run should drive cores with.

    Contested execution is outside the columnar backend's capability
    (resyncs, GRB injections, and fault windows re-couple the cores
    mid-region), so a contest requested on a contest-incapable backend
    falls back to the reference backend — deterministically, with the
    fallback recorded on the requested backend's stats.
    """
    resolved = resolve_backend_name(name)
    if resolved == "reference":
        return resolved
    backend = get_backend(resolved)
    if backend.capabilities.contests:
        return resolved
    backend.stats.record_fallback("contest")
    return "reference"
