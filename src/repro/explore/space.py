"""The discrete core design space and its 70nm-style technology model.

Parameter palettes follow the spread of the published Appendix-A cores.
Derived quantities keep designs self-consistent the way XpScalar's did:

* the clock period shortens with front-end/scheduler depth and lengthens
  with width and issue-queue size (deeper pipelining buys frequency, wider
  structures cost it);
* cache access latencies in cycles are an access-time model (log of
  capacity, plus associativity) divided by the period;
* the memory latency corresponds to a fixed ~57 ns DRAM access — the
  Appendix-A cores all sit within 54–61 ns once their clock periods are
  folded in.
"""

import math
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Tuple

from repro.uarch.cache import CacheConfig
from repro.uarch.config import CoreConfig

#: Fixed DRAM access time implied by the Appendix-A palette (ns).
DRAM_NS = 57.0

#: Discrete palettes, spanning the published Appendix-A values.
PALETTES: Dict[str, List] = {
    "width": [3, 4, 5, 6, 7, 8],
    "rob_size": [64, 128, 256, 512, 1024],
    "iq_size": [32, 64],
    "lsq_size": [64, 128, 256],
    "frontend_depth": [4, 6, 7, 8, 12],
    "sched_depth": [1, 2, 3, 4],
    "l1_assoc": [1, 2, 4, 8],
    "l1_block": [8, 32, 64, 128],
    "l1_sets": [128, 256, 1024, 2048, 16384, 32768],
    "l2_assoc": [1, 4, 8, 16],
    "l2_block": [64, 128, 256, 512],
    "l2_sets": [32, 128, 1024, 2048, 4096, 8192],
}

#: The genome: one palette index per parameter, in this fixed key order.
GENOME_KEYS: Tuple[str, ...] = tuple(PALETTES)


def _cache_ns(size_bytes: int, assoc: int) -> float:
    """Access-time model: grows with log-capacity and associativity."""
    kb = max(1.0, size_bytes / 1024.0)
    return 0.30 + 0.17 * math.log2(kb) + 0.05 * assoc


def derive_config(name: str, genome: Dict[str, int]) -> CoreConfig:
    """Build a self-consistent :class:`CoreConfig` from palette choices."""
    width = genome["width"]
    iq = genome["iq_size"]
    fe = genome["frontend_depth"]
    sched = genome["sched_depth"]

    # Clock model: a wider machine with bigger scheduling structures has a
    # longer critical path; pipelining (front-end + scheduler depth) divides
    # it down.  Constants are fitted loosely to the Appendix-A spread
    # (0.19 ns at width 8 / depth 15 ... 0.49 ns at width 5 / depth 5).
    critical_ns = 1.55 + 0.16 * width + 0.11 * math.log2(iq)
    # round first so every latency below is derived from the stored period
    period_ns = round(max(0.15, critical_ns / (fe + sched)), 3)

    # Wakeup latency grows with how aggressively the scheduler is pipelined.
    awaken = max(0, sched - 1)

    l1 = CacheConfig(
        assoc=genome["l1_assoc"],
        block=genome["l1_block"],
        sets=genome["l1_sets"],
        latency=max(1, round(_cache_ns(
            genome["l1_assoc"] * genome["l1_block"] * genome["l1_sets"],
            genome["l1_assoc"],
        ) / period_ns)),
    )
    l2 = CacheConfig(
        assoc=genome["l2_assoc"],
        block=genome["l2_block"],
        sets=genome["l2_sets"],
        latency=max(2, round((0.8 + 2.6 * max(
            0.0,
            math.log2(
                genome["l2_assoc"] * genome["l2_block"] * genome["l2_sets"]
                / (1024.0 * 1024.0)
            ),
        ) + 0.9) / period_ns)),
    )
    return CoreConfig(
        name=name,
        clock_period_ns=period_ns,
        width=width,
        rob_size=genome["rob_size"],
        iq_size=iq,
        lsq_size=genome["lsq_size"],
        frontend_depth=fe,
        sched_depth=sched,
        awaken_latency=awaken,
        mem_latency=max(1, round(DRAM_NS / period_ns)),
        l1=l1,
        l2=l2,
    )


@dataclass
class DesignSpace:
    """The discrete design space with neighbour moves for annealing."""

    palettes: Dict[str, List] = field(default_factory=lambda: dict(PALETTES))

    def random_genome(self, rng: Random) -> Dict[str, int]:
        """A uniform random palette choice per parameter."""
        return {k: rng.choice(v) for k, v in self.palettes.items()}

    def neighbour(self, genome: Dict[str, int], rng: Random) -> Dict[str, int]:
        """Move one parameter one palette step (the annealer's move)."""
        key = rng.choice(GENOME_KEYS)
        palette = self.palettes[key]
        index = palette.index(genome[key])
        if index == 0:
            index = 1
        elif index == len(palette) - 1:
            index -= 1
        else:
            index += rng.choice((-1, 1))
        new = dict(genome)
        new[key] = palette[index]
        return new

    def size(self) -> int:
        """Number of points in the space."""
        n = 1
        for v in self.palettes.values():
            n *= len(v)
        return n


def random_config(name: str, seed: int = 0) -> CoreConfig:
    """A random self-consistent configuration (useful for tests/examples)."""
    rng = Random(seed)
    return derive_config(name, DesignSpace().random_genome(rng))
