"""Design-space exploration (the XpScalar substitute).

The paper's benchmark-customised cores were found with XpScalar, a
simulated-annealing design-space exploration framework that varies
superscalar width, window sizes, cache geometries and clock frequency with
pipeline depths consistent with the clock.  This package provides the same
search procedure over our core model:

* :mod:`repro.explore.space` — the discrete parameter space, a 70nm-style
  technology model that couples cache geometry/structure sizes to access
  latencies and the clock period, and neighbour moves;
* :mod:`repro.explore.annealing` — a classic simulated-annealing loop;
* :mod:`repro.explore.objective` — IPT objectives (single workload or a
  suite aggregate, as in the paper's whole-suite exploration).

The headline experiments use the paper's published Appendix-A cores
directly; exploration is exercised by the ``explore_core`` example, the
tests, and the Section-7.2 discussion (customising cores *for contesting*).
"""

from repro.explore.annealing import AnnealingResult, simulated_annealing
from repro.explore.pairs import (
    PairResult,
    best_partner_from_palette,
    contest_score,
    explore_contesting_pair,
)
from repro.explore.objective import (
    contest_pair_objective,
    suite_objective,
    workload_objective,
)
from repro.explore.space import DesignSpace, random_config

__all__ = [
    "AnnealingResult",
    "DesignSpace",
    "PairResult",
    "best_partner_from_palette",
    "contest_score",
    "explore_contesting_pair",
    "contest_pair_objective",
    "random_config",
    "simulated_annealing",
    "suite_objective",
    "workload_objective",
]
