"""Simulated annealing over the core design space (XpScalar's procedure)."""

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.explore.objective import EngineObjective, Objective, cached
from repro.explore.objective import evaluate_candidates
from repro.explore.space import DesignSpace, derive_config
from repro.util.rng import substream


@dataclass
class AnnealingResult:
    """Outcome of one annealing run."""

    best_genome: Dict[str, int]
    best_score: float
    evaluations: int
    #: (step, score of accepted point) trajectory for diagnostics
    trajectory: List[Tuple[int, float]]

    def best_config(self, name: str):
        """Materialise the best genome as a named CoreConfig."""
        return derive_config(name, self.best_genome)


def simulated_annealing(
    objective: Objective,
    steps: int = 200,
    seed: int = 0,
    initial_temp: float = 0.25,
    final_temp: float = 0.01,
    space: Optional[DesignSpace] = None,
    name: str = "candidate",
    memoise: bool = True,
    engine=None,
    neighbours_per_step: int = 1,
) -> AnnealingResult:
    """Maximise ``objective`` over the design space.

    Classic exponential-cooling annealing with single-parameter palette
    moves.  Acceptance uses relative score change, so the temperature scale
    is unitless: 0.25 initial temperature accepts ~25% relative regressions
    early on.

    When ``objective`` is an :class:`~repro.explore.objective.EngineObjective`
    and an ``engine`` is given, each step proposes ``neighbours_per_step``
    candidate moves and scores them as *one engine batch* — under a
    parallel executor the candidates simulate concurrently — then applies
    the Metropolis test to the candidates in proposal order and accepts the
    first that passes (speculative parallel annealing).  With
    ``neighbours_per_step=1`` the chain is identical to the serial one.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if initial_temp <= 0 or final_temp <= 0 or final_temp > initial_temp:
        raise ValueError("require 0 < final_temp <= initial_temp")
    if neighbours_per_step < 1:
        raise ValueError("neighbours_per_step must be >= 1")
    rng = substream(seed, "annealing")
    space = space or DesignSpace()
    batched = engine is not None and isinstance(objective, EngineObjective)
    if batched:
        # the engine's in-memory cache already memoises on the job identity
        def score_batch(genomes):
            return evaluate_candidates(
                engine, objective,
                [derive_config(name, g) for g in genomes],
            )
    else:
        serial = cached(objective) if memoise else objective

        def score_batch(genomes):
            return [serial(derive_config(name, g)) for g in genomes]

    current = space.random_genome(rng)
    current_score = score_batch([current])[0]
    best, best_score = dict(current), current_score
    evaluations = 1
    trajectory = [(0, current_score)]
    cooling = (final_temp / initial_temp) ** (1.0 / steps)
    temp = initial_temp

    for step in range(1, steps + 1):
        candidates = [
            space.neighbour(current, rng)
            for _ in range(neighbours_per_step)
        ]
        scores = score_batch(candidates)
        evaluations += len(candidates)
        for candidate, candidate_score in zip(candidates, scores):
            if current_score > 0:
                delta = (candidate_score - current_score) / current_score
            else:
                delta = 1.0 if candidate_score > current_score else -1.0
            if delta >= 0 or rng.random() < math.exp(delta / temp):
                current, current_score = candidate, candidate_score
                trajectory.append((step, current_score))
                if current_score > best_score:
                    best, best_score = dict(current), current_score
                break
        temp *= cooling

    return AnnealingResult(
        best_genome=best,
        best_score=best_score,
        evaluations=evaluations,
        trajectory=trajectory,
    )
