"""Simulated annealing over the core design space (XpScalar's procedure).

Long anneals can checkpoint (``checkpoint_path``/``checkpoint_every``): the
full chain state — current/best genome and score, step, temperature, the
exact RNG state — is written atomically every N steps, and ``resume=True``
restarts a killed run from the last accepted checkpoint, continuing the
*identical* chain (a resumed run returns the same result as an uninterrupted
one).  A checkpoint records its ``seed``/``steps`` identity and is refused
for a mismatched run rather than silently continuing a different chain.
"""

import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.engine import SimEngine
from repro.explore.objective import EngineObjective, Objective, cached
from repro.explore.objective import evaluate_candidates
from repro.explore.space import DesignSpace, derive_config
from repro.uarch.config import CoreConfig
from repro.util.rng import substream

#: checkpoint format version; bump on layout change
_CHECKPOINT_VERSION = 1


def _rng_state_to_json(state: Tuple[Any, ...]) -> List[Any]:
    """``random.Random.getstate()`` tuple -> JSON-serialisable list."""
    version, internal, gauss = state
    return [version, list(internal), gauss]


def _rng_state_from_json(payload: List[Any]) -> Tuple[Any, ...]:
    """Inverse of :func:`_rng_state_to_json`."""
    version, internal, gauss = payload
    return (version, tuple(internal), gauss)


@dataclass
class AnnealingResult:
    """Outcome of one annealing run."""

    best_genome: Dict[str, int]
    best_score: float
    evaluations: int
    #: (step, score of accepted point) trajectory for diagnostics
    trajectory: List[Tuple[int, float]]

    def best_config(self, name: str) -> CoreConfig:
        """Materialise the best genome as a named CoreConfig."""
        return derive_config(name, self.best_genome)


def simulated_annealing(
    objective: Objective,
    steps: int = 200,
    seed: int = 0,
    initial_temp: float = 0.25,
    final_temp: float = 0.01,
    space: Optional[DesignSpace] = None,
    name: str = "candidate",
    memoise: bool = True,
    engine: Optional[SimEngine] = None,
    neighbours_per_step: int = 1,
    checkpoint_path: Optional[Union[str, Path]] = None,
    checkpoint_every: int = 25,
    resume: bool = False,
) -> AnnealingResult:
    """Maximise ``objective`` over the design space.

    Classic exponential-cooling annealing with single-parameter palette
    moves.  Acceptance uses relative score change, so the temperature scale
    is unitless: 0.25 initial temperature accepts ~25% relative regressions
    early on.

    When ``objective`` is an :class:`~repro.explore.objective.EngineObjective`
    and an ``engine`` is given, each step proposes ``neighbours_per_step``
    candidate moves and scores them as *one engine batch* — under a
    parallel executor the candidates simulate concurrently — then applies
    the Metropolis test to the candidates in proposal order and accepts the
    first that passes (speculative parallel annealing).  With
    ``neighbours_per_step=1`` the chain is identical to the serial one.

    ``checkpoint_path`` enables periodic checkpointing (every
    ``checkpoint_every`` steps, atomically); with ``resume=True`` a
    matching checkpoint restarts the chain mid-run and the checkpoint file
    is removed on successful completion.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if initial_temp <= 0 or final_temp <= 0 or final_temp > initial_temp:
        raise ValueError("require 0 < final_temp <= initial_temp")
    if neighbours_per_step < 1:
        raise ValueError("neighbours_per_step must be >= 1")
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    rng = substream(seed, "annealing")
    space = space or DesignSpace()
    batched = engine is not None and isinstance(objective, EngineObjective)
    if batched:
        # the engine's in-memory cache already memoises on the job identity
        def score_batch(genomes: List[Dict[str, int]]) -> List[float]:
            return evaluate_candidates(
                engine, objective,
                [derive_config(name, g) for g in genomes],
            )
    else:
        serial = cached(objective) if memoise else objective

        def score_batch(genomes: List[Dict[str, int]]) -> List[float]:
            return [serial(derive_config(name, g)) for g in genomes]

    checkpoint_path = Path(checkpoint_path) if checkpoint_path else None

    def save_checkpoint(
        step: int,
        temp: float,
        current: Dict[str, int],
        current_score: float,
        best: Dict[str, int],
        best_score: float,
        evaluations: int,
        trajectory: List[Tuple[Any, ...]],
    ) -> None:
        payload = {
            "version": _CHECKPOINT_VERSION,
            "seed": seed,
            "steps": steps,
            "step": step,
            "temp": temp,
            "current": current,
            "current_score": current_score,
            "best": best,
            "best_score": best_score,
            "evaluations": evaluations,
            "trajectory": trajectory,
            "rng_state": _rng_state_to_json(rng.getstate()),
        }
        tmp = checkpoint_path.with_name(
            checkpoint_path.name + f".tmp.{os.getpid()}"
        )
        tmp.write_text(json.dumps(payload))
        tmp.replace(checkpoint_path)  # atomic: a crash leaves old or new

    resumed = None
    if resume and checkpoint_path is not None and checkpoint_path.exists():
        payload = json.loads(checkpoint_path.read_text())
        if payload.get("version") != _CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint {checkpoint_path} has version "
                f"{payload.get('version')!r}; expected {_CHECKPOINT_VERSION}"
            )
        if payload["seed"] != seed or payload["steps"] != steps:
            raise ValueError(
                f"checkpoint {checkpoint_path} belongs to a different run "
                f"(seed={payload['seed']}, steps={payload['steps']}; "
                f"this run has seed={seed}, steps={steps})"
            )
        resumed = payload

    if resumed is not None:
        current = resumed["current"]
        current_score = resumed["current_score"]
        best, best_score = resumed["best"], resumed["best_score"]
        evaluations = resumed["evaluations"]
        trajectory = [tuple(t) for t in resumed["trajectory"]]
        temp = resumed["temp"]
        start_step = resumed["step"] + 1
        rng.setstate(_rng_state_from_json(resumed["rng_state"]))
    else:
        current = space.random_genome(rng)
        current_score = score_batch([current])[0]
        best, best_score = dict(current), current_score
        evaluations = 1
        trajectory = [(0, current_score)]
        temp = initial_temp
        start_step = 1
    cooling = (final_temp / initial_temp) ** (1.0 / steps)

    for step in range(start_step, steps + 1):
        candidates = [
            space.neighbour(current, rng)
            for _ in range(neighbours_per_step)
        ]
        scores = score_batch(candidates)
        evaluations += len(candidates)
        for candidate, candidate_score in zip(candidates, scores):
            if current_score > 0:
                delta = (candidate_score - current_score) / current_score
            else:
                delta = 1.0 if candidate_score > current_score else -1.0
            if delta >= 0 or rng.random() < math.exp(delta / temp):
                current, current_score = candidate, candidate_score
                trajectory.append((step, current_score))
                if current_score > best_score:
                    best, best_score = dict(current), current_score
                break
        temp *= cooling
        if (
            checkpoint_path is not None
            and (step % checkpoint_every == 0 or step == steps)
        ):
            save_checkpoint(
                step, temp, current, current_score, best, best_score,
                evaluations, trajectory,
            )

    if checkpoint_path is not None:
        # the run completed; a stale checkpoint must not hijack the next one
        try:
            checkpoint_path.unlink()
        except OSError:
            pass

    return AnnealingResult(
        best_genome=best,
        best_score=best_score,
        evaluations=evaluations,
        trajectory=trajectory,
    )
