"""Joint exploration of contesting pairs (the Section-7.2 programme).

The paper argues that cores customised for *application-level* performance
are not necessarily the best cores to contest with: the true potential of
contesting requires exploring core designs *together*, in contesting pairs,
which squares the design space and makes every evaluation a (slower)
co-simulation.  This module implements exactly that:

* :func:`best_partner_from_palette` — the cheap variant: fix one core
  (e.g. the benchmark's customised core) and pick the best contesting
  partner from a palette by actually contesting each candidate;
* :func:`explore_contesting_pair` — the full variant: simulated annealing
  over the *joint* genome of two cores, scored by contested IPT.
"""

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from repro.engine.engine import SimEngine

from repro.engine.jobs import ContestJob, TraceLike
from repro.explore.space import DesignSpace, derive_config
from repro.uarch.config import CoreConfig
from repro.util.rng import substream


def contest_score(
    config_a: CoreConfig,
    config_b: CoreConfig,
    trace: TraceLike,
    grb_latency_ns: float = 1.0,
    engine: Optional["SimEngine"] = None,
) -> float:
    """Contested IPT of a pair on a trace (the pair-exploration objective).

    With an ``engine`` the contest resolves through its caches; without one
    it runs here and now.
    """
    job = ContestJob(
        configs=(config_a, config_b), trace=trace,
        grb_latency_ns=grb_latency_ns,
    )
    result = engine.run(job) if engine is not None else job.run()
    return result.ipt


def best_partner_from_palette(
    base: CoreConfig,
    candidates: Sequence[CoreConfig],
    trace: TraceLike,
    grb_latency_ns: float = 1.0,
    engine: Optional["SimEngine"] = None,
) -> Tuple[CoreConfig, float]:
    """Contest ``base`` against every candidate; return the best partner.

    Candidates identical to ``base`` (same fingerprint) are skipped — a
    core gains nothing from contesting an exact copy of itself.  With an
    ``engine``, all candidate contests are submitted as one batch, so a
    parallel executor evaluates the palette concurrently.
    """
    if not candidates:
        raise ValueError("need at least one candidate partner")
    base_print = base.fingerprint()
    contenders = [
        c for c in candidates if c.fingerprint() != base_print
    ]
    if not contenders:
        raise ValueError("all candidates were identical to the base core")
    jobs = [
        ContestJob(
            configs=(base, candidate), trace=trace,
            grb_latency_ns=grb_latency_ns,
        )
        for candidate in contenders
    ]
    if engine is not None:
        results = engine.run_many(jobs)
    else:
        results = [job.run() for job in jobs]
    best: Optional[Tuple[CoreConfig, float]] = None
    for candidate, result in zip(contenders, results):
        if best is None or result.ipt > best[1]:
            best = (candidate, result.ipt)
    assert best is not None
    return best


@dataclass
class PairResult:
    """Outcome of a joint pair exploration."""

    genome_a: Dict[str, int]
    genome_b: Dict[str, int]
    best_score: float
    evaluations: int
    trajectory: List[Tuple[int, float]]

    def best_configs(
        self, name_a: str = "pair_a", name_b: str = "pair_b"
    ) -> Tuple[CoreConfig, CoreConfig]:
        """Materialise both best genomes as named CoreConfigs."""
        return (
            derive_config(name_a, self.genome_a),
            derive_config(name_b, self.genome_b),
        )


def explore_contesting_pair(
    trace: TraceLike,
    steps: int = 100,
    seed: int = 0,
    grb_latency_ns: float = 1.0,
    initial_temp: float = 0.25,
    final_temp: float = 0.01,
    space: Optional[DesignSpace] = None,
    engine: Optional["SimEngine"] = None,
) -> PairResult:
    """Anneal over the joint (core A, core B) design space.

    Each move mutates a single parameter of a single core (the classic
    neighbourhood lifted to the product space); the objective is the
    contested IPT of the pair on ``trace``.  Budgets are the caller's
    problem — the paper notes this exploration is intrinsically slower
    than single-core customisation because every point is a co-simulation.
    An ``engine`` adds persistent/result caching beneath the in-run memo.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    rng = substream(seed, "pair-annealing")
    space = space or DesignSpace()
    memo: Dict[tuple, float] = {}

    def score(ga: Dict[str, int], gb: Dict[str, int]) -> float:
        ca = derive_config("pair_a", ga)
        cb = derive_config("pair_b", gb)
        key = tuple(sorted((ca.fingerprint(), cb.fingerprint())))
        if key not in memo:
            memo[key] = contest_score(
                ca, cb, trace, grb_latency_ns, engine=engine
            )
        return memo[key]

    current_a = space.random_genome(rng)
    current_b = space.random_genome(rng)
    current_score = score(current_a, current_b)
    best = (dict(current_a), dict(current_b), current_score)
    evaluations = 1
    trajectory = [(0, current_score)]
    cooling = (final_temp / initial_temp) ** (1.0 / steps)
    temp = initial_temp

    for step in range(1, steps + 1):
        if rng.random() < 0.5:
            cand_a = space.neighbour(current_a, rng)
            cand_b = current_b
        else:
            cand_a = current_a
            cand_b = space.neighbour(current_b, rng)
        cand_score = score(cand_a, cand_b)
        evaluations += 1
        delta = (
            (cand_score - current_score) / current_score
            if current_score > 0
            else (1.0 if cand_score > current_score else -1.0)
        )
        if delta >= 0 or rng.random() < math.exp(delta / temp):
            current_a, current_b, current_score = cand_a, cand_b, cand_score
            trajectory.append((step, current_score))
            if current_score > best[2]:
                best = (dict(current_a), dict(current_b), current_score)
        temp *= cooling

    return PairResult(
        genome_a=best[0],
        genome_b=best[1],
        best_score=best[2],
        evaluations=evaluations,
        trajectory=trajectory,
    )
