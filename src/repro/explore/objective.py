"""Objectives for design-space exploration.

Objectives come in two shapes.  The classic shape is a plain callable
``CoreConfig -> float``.  The engine-aware shape —
:class:`EngineObjective` — additionally *declares* the simulations a score
needs as :data:`~repro.engine.jobs.SimJob` values, so an annealer (or any
search) can batch the jobs of many candidate configs through a
:class:`~repro.engine.SimEngine` and evaluate them in parallel, with the
engine's caches deduplicating revisited designs.  Every engine objective is
still callable (it executes its own jobs serially), so the two shapes are
interchangeable at call sites.
"""

from typing import TYPE_CHECKING, Callable, Dict, List, Sequence

if TYPE_CHECKING:
    from repro.engine.engine import SimEngine

from repro.backend import resolve_backend_name
from repro.engine.jobs import (
    ContestJob,
    SimJob,
    StandaloneJob,
    TraceLike,
    trace_fingerprint,
)
from repro.uarch.config import CoreConfig
from repro.util.stats import harmonic_mean

Objective = Callable[[CoreConfig], float]


class EngineObjective:
    """An objective whose score is a pure function of simulation jobs.

    Subclasses declare :meth:`jobs` and :meth:`combine`; calling the
    objective directly runs the jobs serially in-process.
    """

    def jobs(self, config: CoreConfig) -> List[SimJob]:
        """The simulations needed to score ``config``."""
        raise NotImplementedError

    def combine(self, results: Sequence[object]) -> float:
        """Fold the job results (in :meth:`jobs` order) into the score."""
        raise NotImplementedError

    def __call__(self, config: CoreConfig) -> float:
        """Serial fallback: execute this config's jobs here and now."""
        return self.combine([job.run() for job in self.jobs(config)])


class WorkloadObjective(EngineObjective):
    """IPT of one workload on the candidate core (benchmark customisation,
    the paper's Appendix-A setting)."""

    def __init__(self, trace: TraceLike, backend: str = "reference") -> None:
        self.trace = trace
        # "auto" is resolved here, once: the jobs an objective declares must
        # be identical across processes, whatever happens to be installed
        self.backend = resolve_backend_name(backend)

    def jobs(self, config: CoreConfig) -> List[SimJob]:
        """One standalone run."""
        return [StandaloneJob(config, self.trace, backend=self.backend)]

    def combine(self, results: Sequence[object]) -> float:
        """The run's IPT."""
        return results[0].ipt


class SuiteObjective(EngineObjective):
    """Harmonic-mean IPT over a suite (the paper's whole-suite exploration,
    Section 6.2, which found no core meaningfully better than gcc's)."""

    def __init__(
        self, traces: Sequence[TraceLike], backend: str = "reference"
    ) -> None:
        if not traces:
            raise ValueError("SuiteObjective needs at least one trace")
        self.traces = tuple(traces)
        self.backend = resolve_backend_name(backend)

    def jobs(self, config: CoreConfig) -> List[SimJob]:
        """One standalone run per suite member."""
        return [
            StandaloneJob(config, t, backend=self.backend)
            for t in self.traces
        ]

    def combine(self, results: Sequence[object]) -> float:
        """Harmonic mean of the per-workload IPTs."""
        return harmonic_mean(r.ipt for r in results)


class ContestPairObjective(EngineObjective):
    """Contested IPT of (candidate, partner) on a workload.

    Section 7.2: the true potential of contesting requires customising cores
    *for contesting* — the candidate is evaluated by how well it contests
    alongside a fixed partner, not by its standalone performance.  (Full
    pair-space exploration composes this with an outer loop over partners.)
    """

    def __init__(
        self, trace: TraceLike, partner: CoreConfig,
        grb_latency_ns: float = 1.0, backend: str = "reference",
    ) -> None:
        self.trace = trace
        self.partner = partner
        self.grb_latency_ns = grb_latency_ns
        self.backend = resolve_backend_name(backend)

    def jobs(self, config: CoreConfig) -> List[SimJob]:
        """One 2-way contest."""
        return [ContestJob(
            configs=(config, self.partner), trace=self.trace,
            grb_latency_ns=self.grb_latency_ns, backend=self.backend,
        )]

    def combine(self, results: Sequence[object]) -> float:
        """The contest's IPT."""
        return results[0].ipt


def evaluate_candidates(
    engine: "SimEngine",
    objective: EngineObjective,
    configs: Sequence[CoreConfig],
) -> List[float]:
    """Score many candidate configs as one engine batch.

    All configs' jobs are submitted together, so a parallel executor
    evaluates the whole candidate set concurrently; the engine's caches
    make revisited designs free.
    """
    per_config = [objective.jobs(c) for c in configs]
    flat: List[SimJob] = [j for jobs in per_config for j in jobs]
    results = engine.run_many(flat)
    scores: List[float] = []
    cursor = 0
    for jobs in per_config:
        scores.append(objective.combine(results[cursor:cursor + len(jobs)]))
        cursor += len(jobs)
    return scores


def workload_objective(
    trace: TraceLike, backend: str = "reference"
) -> Objective:
    """IPT of one workload on the candidate core (see
    :class:`WorkloadObjective`)."""
    return WorkloadObjective(trace, backend=backend)


def suite_objective(
    traces: Sequence[TraceLike], backend: str = "reference"
) -> Objective:
    """Harmonic-mean IPT over a suite (see :class:`SuiteObjective`)."""
    if not traces:
        raise ValueError("suite_objective needs at least one trace")
    return SuiteObjective(traces, backend=backend)


def contest_pair_objective(
    trace: TraceLike, partner: CoreConfig, grb_latency_ns: float = 1.0,
    backend: str = "reference",
) -> Objective:
    """Contested IPT of (candidate, partner) on a workload (see
    :class:`ContestPairObjective`)."""
    return ContestPairObjective(
        trace, partner, grb_latency_ns, backend=backend
    )


def cached(objective: Objective) -> Objective:
    """Memoise an objective on the config fingerprint (annealers revisit).

    A trace identity is folded in when the objective exposes one, so two
    caches built from different traces never alias.
    """
    memo: Dict[tuple, float] = {}

    def score(config: CoreConfig) -> float:
        key = config.fingerprint()
        if key not in memo:
            memo[key] = objective(config)
        return memo[key]

    return score


def objective_fingerprint(objective: Objective) -> str:
    """A short identity string for an objective (diagnostics/logging).

    A non-reference backend is folded in (the reference is implicit, so
    identities from before the backend layer existed are unchanged).
    """
    suffix = ""
    backend = getattr(objective, "backend", "reference")
    if backend != "reference":
        suffix = f"@{backend}"
    if isinstance(objective, WorkloadObjective):
        return f"workload/{trace_fingerprint(objective.trace)}{suffix}"
    if isinstance(objective, SuiteObjective):
        parts = ",".join(trace_fingerprint(t) for t in objective.traces)
        return f"suite/{parts}{suffix}"
    if isinstance(objective, ContestPairObjective):
        return (
            f"contest/{trace_fingerprint(objective.trace)}/"
            f"{objective.partner.name}/{objective.grb_latency_ns}{suffix}"
        )
    return getattr(objective, "__name__", type(objective).__name__)
