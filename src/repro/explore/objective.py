"""Objectives for design-space exploration."""

from typing import Callable, Dict, Sequence

from repro.core.system import ContestingSystem
from repro.isa.trace import Trace
from repro.uarch.config import CoreConfig
from repro.uarch.run import run_standalone
from repro.util.stats import harmonic_mean

Objective = Callable[[CoreConfig], float]


def workload_objective(trace: Trace) -> Objective:
    """IPT of one workload on the candidate core (benchmark customisation,
    the paper's Appendix-A setting)."""

    def score(config: CoreConfig) -> float:
        return run_standalone(config, trace).ipt

    return score


def suite_objective(traces: Sequence[Trace]) -> Objective:
    """Harmonic-mean IPT over a suite (the paper's whole-suite exploration,
    Section 6.2, which found no core meaningfully better than gcc's)."""
    if not traces:
        raise ValueError("suite_objective needs at least one trace")

    def score(config: CoreConfig) -> float:
        return harmonic_mean(
            run_standalone(config, t).ipt for t in traces
        )

    return score


def contest_pair_objective(
    trace: Trace, partner: CoreConfig, grb_latency_ns: float = 1.0
) -> Objective:
    """Contested IPT of (candidate, partner) on a workload.

    Section 7.2: the true potential of contesting requires customising cores
    *for contesting* — the candidate is evaluated by how well it contests
    alongside a fixed partner, not by its standalone performance.  (Full
    pair-space exploration composes this with an outer loop over partners.)
    """

    def score(config: CoreConfig) -> float:
        system = ContestingSystem(
            [config, partner], trace, grb_latency_ns=grb_latency_ns
        )
        return system.run().ipt

    return score


def cached(objective: Objective) -> Objective:
    """Memoise an objective on the config fingerprint (annealers revisit)."""
    memo: Dict[tuple, float] = {}

    def score(config: CoreConfig) -> float:
        key = config.fingerprint()
        if key not in memo:
            memo[key] = objective(config)
        return memo[key]

    return score
