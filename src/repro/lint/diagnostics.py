"""Lint findings: one frozen record per rule violation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union


@dataclass(frozen=True)
class Diagnostic:
    """One finding: where it is, which rule fired, and why.

    ``line``/``col`` are 1-based line and 0-based column, matching the
    :mod:`ast` node they came from (and the convention of every other
    ``file:line:col`` tool).
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        """Render as the conventional ``path:line:col: rule: message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-serialisable form (``--format=json``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
