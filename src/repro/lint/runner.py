"""Walk files, parse, apply rules, filter pragmas.

Entry points, layered:

* :func:`lint_source` — analyse one source string (the unit tests' door);
  per-file rules only, since one string is not a project;
* :func:`lint_file` — read + analyse one file, likewise per-file;
* :func:`lint_paths` / :func:`lint_paths_report` — recurse over files and
  directories, run the per-file pass *and* the whole-program project pass
  (symbol table + call graph + dataflow; see :mod:`repro.lint.project`);
* :func:`lint_modules` — project-lint synthetic in-memory modules, the
  door for cross-file rule fixtures in the test suite.

Every file is parsed exactly once: the same ASTs feed the per-file
contexts and the project build.  Module names are derived from file paths
by locating the ``repro`` package directory, so scope-limited rules
(model code, config modules) see the same dotted names whether the tree
is linted from the repo root, from ``src``, or from inside the package.

Pragma semantics for project rules: a finding is suppressed by a
``# repro: allow-<rule>`` pragma at its *anchor* (the call site the
diagnostic points at).  A pragma at the sink — the blocking helper, the
wall-clock read — deliberately does not suppress callers in other files:
suppression stays visible next to every reported line.
"""

from __future__ import annotations

import ast
import os
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.pragmas import is_allowed, parse_pragmas
from repro.lint.project import ProjectContext, build_project
from repro.lint.registry import FileContext, Rule, all_rules

#: directories never descended into.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})

#: (path, source, tree, module) — one parsed file, shared between passes.
ParsedFile = Tuple[str, str, ast.Module, str]


class LintReport:
    """Findings plus the run telemetry behind ``--stats``."""

    __slots__ = (
        "findings", "file_count", "line_count", "project_build_seconds",
        "total_seconds",
    )

    def __init__(
        self,
        findings: List[Diagnostic],
        file_count: int,
        line_count: int,
        project_build_seconds: float,
        total_seconds: float,
    ) -> None:
        self.findings = findings
        self.file_count = file_count
        self.line_count = line_count
        self.project_build_seconds = project_build_seconds
        self.total_seconds = total_seconds

    def per_rule_counts(self) -> Dict[str, int]:
        """Finding counts keyed by rule name, sorted by name."""
        counts: Dict[str, int] = {}
        for diag in self.findings:
            counts[diag.rule] = counts.get(diag.rule, 0) + 1
        return dict(sorted(counts.items()))


def module_name_for(path: str) -> str:
    """Dotted module name of ``path``, anchored at the ``repro`` package.

    ``.../src/repro/uarch/core.py`` -> ``repro.uarch.core``.  Files outside
    a ``repro`` directory fall back to their stem — scope-limited rules
    then simply do not apply, while tree-wide rules still run.
    """
    parts = list(os.path.normpath(os.path.abspath(path)).split(os.sep))
    stem = os.path.splitext(parts[-1])[0]
    dirs = parts[:-1]
    if "repro" in dirs:
        anchor = len(dirs) - 1 - dirs[::-1].index("repro")
        dotted = dirs[anchor:] + ([] if stem == "__init__" else [stem])
        return ".".join(dotted)
    return stem


def lint_source(
    source: str,
    path: str = "<source>",
    module: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Diagnostic]:
    """Analyse one source string; per-file rules only.

    ``module`` overrides path-derived scoping (tests lint synthetic
    sources "as if" they lived at a given dotted path).  A syntax error
    yields a single ``syntax-error`` pseudo-diagnostic rather than
    raising, so one broken file cannot mask findings elsewhere.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [_syntax_diag(path, exc)]
    parsed: ParsedFile = (
        path, source, tree,
        module if module is not None else module_name_for(path),
    )
    findings = _file_pass([parsed], rules, project_mode=False)
    findings.sort(key=lambda d: (d.line, d.col, d.rule))
    return findings


def lint_file(
    path: str, rules: Optional[Sequence[Rule]] = None
) -> List[Diagnostic]:
    """Read and analyse one file (per-file rules only)."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path, rules=rules)


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in SKIP_DIRS
                )
                out.extend(
                    os.path.join(dirpath, name)
                    for name in filenames
                    if name.endswith(".py")
                )
        else:
            out.append(path)
    return sorted(set(out))


def lint_paths(
    paths: Iterable[str], rules: Optional[Sequence[Rule]] = None
) -> List[Diagnostic]:
    """Analyse every Python file under ``paths`` (both passes)."""
    return lint_paths_report(paths, rules=rules).findings


def lint_paths_report(
    paths: Iterable[str], rules: Optional[Sequence[Rule]] = None
) -> LintReport:
    """Like :func:`lint_paths`, but keep the run telemetry too."""
    started = time.perf_counter()
    if rules is None:
        rules = all_rules()
    findings: List[Diagnostic] = []
    parsed: List[ParsedFile] = []
    line_count = 0
    file_count = 0
    for path in iter_python_files(paths):
        file_count += 1
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        line_count += source.count("\n") + (
            1 if source and not source.endswith("\n") else 0
        )
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            findings.append(_syntax_diag(path, exc))
            continue
        parsed.append((path, source, tree, module_name_for(path)))
    findings.extend(_file_pass(parsed, rules, project_mode=True))
    project, project_findings = _project_pass(parsed, rules)
    findings.extend(project_findings)
    findings.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return LintReport(
        findings=findings,
        file_count=file_count,
        line_count=line_count,
        project_build_seconds=project.build_seconds,
        total_seconds=time.perf_counter() - started,
    )


def lint_modules(
    sources: Dict[str, str], rules: Optional[Sequence[Rule]] = None
) -> List[Diagnostic]:
    """Project-lint synthetic modules: ``{dotted.module.name: source}``.

    The door for cross-file rule fixtures: sources are parsed, indexed
    into one :class:`~repro.lint.project.ProjectContext`, and run through
    both the per-file and project passes exactly like a tree on disk.
    Paths are synthesised from the module names (``repro/uarch/core.py``
    for ``repro.uarch.core``), so diagnostics and pragma filtering behave
    as they would for real files.
    """
    if rules is None:
        rules = all_rules()
    parsed: List[ParsedFile] = []
    for module, source in sources.items():
        path = module.replace(".", os.sep) + ".py"
        parsed.append((path, source, ast.parse(source), module))
    findings = _file_pass(parsed, rules, project_mode=True)
    _, project_findings = _project_pass(parsed, rules)
    findings.extend(project_findings)
    findings.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return findings


# --------------------------------------------------------------- passes


def _syntax_diag(path: str, exc: SyntaxError) -> Diagnostic:
    return Diagnostic(
        rule="syntax-error",
        path=path,
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        message=f"cannot parse: {exc.msg}",
    )


def _file_pass(
    parsed: Sequence[ParsedFile],
    rules: Optional[Sequence[Rule]],
    project_mode: bool,
) -> List[Diagnostic]:
    """Run per-file ``check`` over every parsed file, filtering pragmas.

    In project mode, rules whose project analysis replaces the per-file
    one (``project_replaces_check``) are skipped here.
    """
    if rules is None:
        rules = all_rules()
    active = [
        r for r in rules
        if not (project_mode and r.project_replaces_check)
    ]
    findings: List[Diagnostic] = []
    for path, source, tree, module in parsed:
        ctx = FileContext(path=path, source=source, tree=tree, module=module)
        allowed = parse_pragmas(source)
        for rule in active:
            for diag in rule.check(ctx):
                if not is_allowed(allowed, diag.line, diag.rule):
                    findings.append(diag)
    return findings


def _project_pass(
    parsed: Sequence[ParsedFile], rules: Sequence[Rule]
) -> Tuple[ProjectContext, List[Diagnostic]]:
    """Build the project + call graph and run every ``check_project``."""
    build_started = time.perf_counter()
    project = build_project(list(parsed))
    _ = project.graph  # force the call-graph build into the timed window
    project.build_seconds = time.perf_counter() - build_started
    pragmas = {
        path: parse_pragmas(source) for path, source, _, _ in parsed
    }
    findings: List[Diagnostic] = []
    for rule in rules:
        for diag in rule.check_project(project):
            allowed = pragmas.get(diag.path)
            if allowed is None or not is_allowed(
                allowed, diag.line, diag.rule
            ):
                findings.append(diag)
    return project, findings
