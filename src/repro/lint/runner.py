"""Walk files, parse, apply rules, filter pragmas.

Three entry points, layered:

* :func:`lint_source` — analyse one source string (the unit tests' door);
* :func:`lint_file` — read + analyse one file;
* :func:`lint_paths` — recurse over files and directories (the CLI's door).

Module names are derived from file paths by locating the ``repro`` package
directory, so scope-limited rules (model code, config modules) see the
same dotted names whether the tree is linted from the repo root, from
``src``, or from inside the package.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, List, Optional, Sequence

from repro.lint.diagnostics import Diagnostic
from repro.lint.pragmas import is_allowed, parse_pragmas
from repro.lint.registry import FileContext, Rule, all_rules

#: directories never descended into.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


def module_name_for(path: str) -> str:
    """Dotted module name of ``path``, anchored at the ``repro`` package.

    ``.../src/repro/uarch/core.py`` -> ``repro.uarch.core``.  Files outside
    a ``repro`` directory fall back to their stem — scope-limited rules
    then simply do not apply, while tree-wide rules still run.
    """
    parts = list(os.path.normpath(os.path.abspath(path)).split(os.sep))
    stem = os.path.splitext(parts[-1])[0]
    dirs = parts[:-1]
    if "repro" in dirs:
        anchor = len(dirs) - 1 - dirs[::-1].index("repro")
        dotted = dirs[anchor:] + ([] if stem == "__init__" else [stem])
        return ".".join(dotted)
    return stem


def lint_source(
    source: str,
    path: str = "<source>",
    module: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Diagnostic]:
    """Analyse one source string; the core every other entry point wraps.

    ``module`` overrides path-derived scoping (tests lint synthetic
    sources "as if" they lived at a given dotted path).  A syntax error
    yields a single ``syntax-error`` pseudo-diagnostic rather than
    raising, so one broken file cannot mask findings elsewhere.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Diagnostic(
                rule="syntax-error",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"cannot parse: {exc.msg}",
            )
        ]
    ctx = FileContext(
        path=path,
        source=source,
        tree=tree,
        module=module if module is not None else module_name_for(path),
    )
    allowed = parse_pragmas(source)
    findings: List[Diagnostic] = []
    for rule in rules if rules is not None else all_rules():
        for diag in rule.check(ctx):
            if not is_allowed(allowed, diag.line, diag.rule):
                findings.append(diag)
    findings.sort(key=lambda d: (d.line, d.col, d.rule))
    return findings


def lint_file(
    path: str, rules: Optional[Sequence[Rule]] = None
) -> List[Diagnostic]:
    """Read and analyse one file."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path, rules=rules)


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in SKIP_DIRS
                )
                out.extend(
                    os.path.join(dirpath, name)
                    for name in filenames
                    if name.endswith(".py")
                )
        else:
            out.append(path)
    return sorted(set(out))


def lint_paths(
    paths: Iterable[str], rules: Optional[Sequence[Rule]] = None
) -> List[Diagnostic]:
    """Analyse every Python file under ``paths`` (files or directories)."""
    if rules is None:
        rules = all_rules()
    findings: List[Diagnostic] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules=rules))
    return findings
