"""The ``# repro: allow-<rule>`` escape hatch.

Every rule encodes a *default*, not an absolute: some code legitimately
crosses the line (the engine reads wall clocks to time jobs; a fixture
deliberately violates a rule to test it).  Such sites carry an explicit,
greppable pragma instead of being silently special-cased inside the
analyzer — the exemption lives next to the code it excuses, survives
refactors, and shows up in review diffs.

Syntax — a comment containing ``repro:`` followed by one or more
``allow-<rule>`` tokens (comma- or space-separated)::

    t0 = time.monotonic()  # repro: allow-no-wallclock

    # repro: allow-no-unseeded-random (calibration noise, not model state)
    jitter = random.random()

A pragma suppresses matching findings on its own line; a pragma on a
*comment-only* line additionally covers the next line (for statements too
long to share a line with their excuse).  ``allow-all`` suppresses every
rule — reserved for generated files.
"""

from __future__ import annotations

import re
from typing import Dict, Set

#: ``repro:`` marker followed by the token list (rest of the comment).
_PRAGMA_RE = re.compile(r"#\s*repro:\s*(?P<tokens>.*)$")
#: one ``allow-<rule>`` token.
_ALLOW_RE = re.compile(r"allow-([A-Za-z0-9_-]+)")

#: token that suppresses every rule on the line.
ALLOW_ALL = "all"


def parse_pragmas(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the set of rule names allowed there.

    A comment-only pragma line propagates its allowances to the following
    line, so the pragma can sit above an over-long statement.
    """
    allowed: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if not match:
            continue
        rules = {m.group(1) for m in _ALLOW_RE.finditer(match.group("tokens"))}
        if not rules:
            continue
        allowed.setdefault(lineno, set()).update(rules)
        if text.lstrip().startswith("#"):  # comment-only line: cover the next
            allowed.setdefault(lineno + 1, set()).update(rules)
    return allowed


def is_allowed(allowed: Dict[int, Set[str]], line: int, rule: str) -> bool:
    """Whether ``rule`` is suppressed at ``line`` by a pragma."""
    at_line = allowed.get(line)
    if not at_line:
        return False
    return rule in at_line or ALLOW_ALL in at_line
