"""Best-effort intra-package call graph over a :class:`ProjectContext`.

Nodes are strings: project functions by qualname
(``repro.engine.store.ResultStore.put``) and *external* callees by dotted
path (``time.sleep``, ``os.write``, ``pathlib.Path.write_text``, the
builtin ``open``).  Three edge kinds:

* ``call`` — an evidenced call expression; the edge the reachability
  queries follow;
* ``init`` — a class instantiation (``C(...)`` resolving to a project
  class) pointing at its ``__init__``; kept distinct because construction
  overwhelmingly happens at startup, and rules like ``blocking-in-async``
  deliberately do not follow it (see ``docs/static-analysis.md``);
* ``ref`` — a function *referenced* without being called (passed to
  ``ThreadPoolExecutor.submit``, ``loop.run_in_executor``,
  ``threading.Thread(target=...)``); never followed as a call, but the
  cross-thread rule reads these to find worker entry points.

Resolution forms (anything else is absent, not guessed):

* ``f()`` — module function or ``from m import f`` member;
* ``mod.f()`` — through a module import alias;
* ``self.m()`` — method of the enclosing class (bases included);
* ``self.attr.m()`` / ``local.m()`` / ``param.m()`` — when the attribute,
  local or parameter has an inferred class type (direct constructor call
  or annotation; see :func:`repro.lint.project.local_types`).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectContext,
    local_types,
)

#: callables whose positional argument is *executed on another thread*:
#: ``(attribute name, index of the callable argument)``.
THREAD_DISPATCH_ATTRS: Dict[str, int] = {
    "submit": 0,           # Thread/ProcessPoolExecutor.submit(fn, ...)
    "run_in_executor": 1,  # loop.run_in_executor(executor, fn, ...)
    "to_thread": 0,        # asyncio.to_thread(fn, ...)
}

#: builtins resolved as external callees without an import.
TRACKED_BUILTINS = frozenset({"open"})


def iter_body_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Nodes of a function body, *excluding* nested def/lambda bodies.

    A nested function is its own (unindexed) scope; attributing its calls
    to the enclosing function would claim the enclosing function performs
    work it may only define.  Nested defs are therefore a documented
    blind spot, not a source of false paths.
    """
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class CallSite:
    """One evidenced edge: caller, callee node id, and where in the file."""

    __slots__ = ("caller", "callee", "node", "path", "kind")

    def __init__(
        self,
        caller: str,
        callee: str,
        node: ast.AST,
        path: str,
        kind: str = "call",
    ) -> None:
        self.caller = caller
        self.callee = callee
        self.node = node
        self.path = path
        #: ``call`` | ``init`` | ``ref``
        self.kind = kind

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 1)

    def __repr__(self) -> str:
        return f"<CallSite {self.caller} -[{self.kind}]-> {self.callee}>"


class CallGraph:
    """Forward and reverse edge indexes plus reachability queries."""

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        #: caller qualname -> outgoing call sites (every kind)
        self.out_edges: Dict[str, List[CallSite]] = {}
        #: callee node id -> incoming call sites
        self.in_edges: Dict[str, List[CallSite]] = {}
        #: worker dispatch sites: (dispatching function, dispatched callee)
        self.dispatches: List[CallSite] = []
        for info in project.modules.values():
            _GraphBuilder(self, info).build()

    # ------------------------------------------------------------- edges

    def _add(self, site: CallSite) -> None:
        self.out_edges.setdefault(site.caller, []).append(site)
        self.in_edges.setdefault(site.callee, []).append(site)
        if site.kind == "ref":
            self.dispatches.append(site)

    def calls_from(self, qualname: str) -> List[CallSite]:
        """Outgoing ``call`` edges of one function."""
        return [
            s for s in self.out_edges.get(qualname, ()) if s.kind == "call"
        ]

    # ------------------------------------------------------- reachability

    def reach_sinks(
        self,
        sinks: Set[str],
        blocked: Optional[Set[str]] = None,
        follow_init: bool = False,
    ) -> Dict[str, CallSite]:
        """Every node with a call path to a sink, with its witness edge.

        Returns ``node -> call site`` where the site is the first hop of a
        shortest path from ``node`` toward a sink (BFS from the sinks over
        reverse ``call`` edges).  ``blocked`` nodes act as sanitizers:
        paths may not pass *through* them (a sink that is itself blocked
        is unreachable).  ``init`` edges are followed only on request;
        ``ref`` edges never are.
        """
        blocked = blocked or set()
        next_hop: Dict[str, CallSite] = {}
        frontier = [s for s in sinks if s not in blocked]
        seen = set(frontier)
        while frontier:
            nxt: List[str] = []
            for node in frontier:
                for site in self.in_edges.get(node, ()):
                    if site.kind == "ref":
                        continue
                    if site.kind == "init" and not follow_init:
                        continue
                    if site.caller in seen or site.caller in blocked:
                        continue
                    seen.add(site.caller)
                    next_hop[site.caller] = site
                    nxt.append(site.caller)
            frontier = nxt
        return next_hop

    def witness_path(
        self, start: str, next_hop: Dict[str, CallSite], sinks: Set[str]
    ) -> List[str]:
        """Node names along the witness path from ``start`` into a sink."""
        path = [start]
        node = start
        while node in next_hop and node not in sinks:
            node = next_hop[node].callee
            path.append(node)
            if len(path) > 64:  # defensive: next_hop is acyclic by BFS
                break
        return path

    def transitive_closure(self, roots: Set[str]) -> Set[str]:
        """Functions reachable from ``roots`` over ``call`` edges."""
        seen = set(roots)
        frontier = list(roots)
        while frontier:
            node = frontier.pop()
            for site in self.out_edges.get(node, ()):
                if site.kind != "call":
                    continue
                if site.callee not in seen:
                    seen.add(site.callee)
                    frontier.append(site.callee)
        return seen


class _GraphBuilder:
    """Walk one module's functions and emit edges."""

    def __init__(self, graph: CallGraph, info: ModuleInfo) -> None:
        self.graph = graph
        self.project = graph.project
        self.info = info

    def build(self) -> None:
        for fn in self.info.functions.values():
            self._walk_function(fn, None)
        for cls in self.info.classes.values():
            for method in cls.methods.values():
                self._walk_function(method, cls)

    # ---------------------------------------------------------- walking

    def _walk_function(
        self, fn: FunctionInfo, cls: Optional[ClassInfo]
    ) -> None:
        locals_ = local_types(self.project, self.info, fn.node, cls)
        for node in iter_body_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            callee, kind = self._resolve_call(node.func, cls, locals_)
            if callee is not None:
                self.graph._add(
                    CallSite(fn.qualname, callee, node, fn.path, kind)
                )
            self._emit_dispatch_refs(fn, node, callee, cls, locals_)

    # -------------------------------------------------------- resolution

    def _resolve_call(
        self,
        func: ast.expr,
        cls: Optional[ClassInfo],
        locals_: Dict[str, str],
    ) -> Tuple[Optional[str], str]:
        """Resolve a call expression to ``(node id, edge kind)``."""
        # f(...) — bare name
        if isinstance(func, ast.Name):
            if func.id in locals_ and func.id not in self.info.functions:
                return None, "call"  # shadowed by a typed local/param
            resolved = self.project.resolve_name(self.info, func.id)
            if resolved is not None:
                return self._classify(resolved)
            if func.id in TRACKED_BUILTINS:
                return func.id, "call"
            return None, "call"
        if not isinstance(func, ast.Attribute):
            return None, "call"
        owner = func.value
        # mod.f(...) / mod.Class(...) — module alias attribute
        if isinstance(owner, ast.Name):
            target_mod = self.info.imports.module_aliases.get(owner.id)
            if target_mod is not None:
                mod = self.project.module_by_name(target_mod)
                if mod is not None:
                    resolved = self.project.resolve_name(mod, func.attr)
                    if resolved is not None:
                        return self._classify(resolved)
                return f"{target_mod}.{func.attr}", "call"
            owner_type = locals_.get(owner.id)
            if owner_type is not None:
                return self._method(owner_type, func.attr)
            return None, "call"
        # self.attr.m(...) — typed instance attribute
        if (
            isinstance(owner, ast.Attribute)
            and isinstance(owner.value, ast.Name)
            and cls is not None
            and locals_.get(owner.value.id) == cls.qualname
        ):
            attr_type = self._attr_type(cls, owner.attr)
            if attr_type is not None:
                return self._method(attr_type, func.attr)
        return None, "call"

    def _attr_type(self, cls: ClassInfo, attr: str) -> Optional[str]:
        seen: Set[str] = set()
        queue = [cls.qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.project.classes.get(current)
            if info is None:
                continue
            if attr in info.attr_types:
                return info.attr_types[attr]
            queue.extend(info.base_names)
        return None

    def _method(self, class_path: str, name: str) -> Tuple[Optional[str], str]:
        """A method call on a value of known class type."""
        if class_path in self.project.classes:
            resolved = self.project.method_of(class_path, name)
            if resolved is not None:
                return resolved, "call"
            return None, "call"
        return f"{class_path}.{name}", "call"  # external class method

    def _classify(self, resolved: str) -> Tuple[Optional[str], str]:
        """A resolved dotted path as a call or constructor edge."""
        if resolved in self.project.classes:
            init = self.project.method_of(resolved, "__init__")
            if init is not None:
                return init, "init"
            return f"{resolved}.__init__", "init"
        return resolved, "call"

    # -------------------------------------------------------- dispatches

    def _emit_dispatch_refs(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        callee: Optional[str],
        cls: Optional[ClassInfo],
        locals_: Dict[str, str],
    ) -> None:
        """Record callables handed to thread-dispatch APIs as ``ref``."""
        target: Optional[ast.expr] = None
        if callee is not None and callee.startswith("threading.Thread"):
            for kw in call.keywords:
                if kw.arg == "target":
                    target = kw.value
        else:
            attr = (
                call.func.attr if isinstance(call.func, ast.Attribute)
                else call.func.id if isinstance(call.func, ast.Name)
                else None
            )
            if attr not in THREAD_DISPATCH_ATTRS:
                return
            index = THREAD_DISPATCH_ATTRS[attr]
            if len(call.args) > index:
                target = call.args[index]
        if target is None:
            return
        resolved = self._resolve_ref(target, cls, locals_)
        if resolved is not None:
            self.graph._add(
                CallSite(fn.qualname, resolved, call, fn.path, "ref")
            )

    def _resolve_ref(
        self,
        expr: ast.expr,
        cls: Optional[ClassInfo],
        locals_: Dict[str, str],
    ) -> Optional[str]:
        """Resolve a *reference* to a callable (not a call) to a node id."""
        resolved, kind = self._resolve_call(expr, cls, locals_)
        if kind == "init" and resolved is not None:
            # A class reference passed as a callable: the worker runs its
            # constructor, which is precise enough for entry-point use.
            return resolved
        return resolved
