"""Reachability / taint queries over the call graph, with witnesses.

The concurrency and taint rules all reduce to the same question: *can
this function reach one of these sink operations through evidenced call
edges, without passing through a sanctioned sanitizer?*  A
:class:`ReachAnalysis` answers it for a whole sink set at once — one
reverse BFS from the sinks, O(edges) — and keeps, for every reaching
function, the first hop of a shortest witness path so diagnostics can
print the actual chain (``handle -> _flush -> time.sleep``) instead of
asserting reachability without evidence.

Sanitizer semantics: a ``blocked`` node terminates propagation.  Paths
may not pass *through* it, and a sink that is itself blocked never
taints anything.  Rules use this two ways:

* trust boundaries — every function in ``repro.util.rng`` is blocked for
  the randomness/wallclock taints, so model code routed through the
  sanctioned seeding helpers stays clean;
* noise control — ``blocking-in-async`` blocks *other* ``async def``
  functions, so each offending coroutine is reported once at its own
  first sync hop rather than re-reported by every caller up the stack.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.lint.callgraph import CallGraph, CallSite
from repro.lint.project import ProjectContext


class ReachAnalysis:
    """Which functions reach a sink set, and how."""

    def __init__(
        self,
        graph: CallGraph,
        sinks: Set[str],
        blocked: Optional[Set[str]] = None,
        follow_init: bool = False,
    ) -> None:
        self.graph = graph
        self.sinks = sinks
        self._next_hop: Dict[str, CallSite] = graph.reach_sinks(
            sinks, blocked=blocked, follow_init=follow_init
        )

    def reaches(self, qualname: str) -> bool:
        """True when ``qualname`` has a call path into the sink set."""
        return qualname in self._next_hop

    def first_hop(self, qualname: str) -> Optional[CallSite]:
        """The first call edge of ``qualname``'s witness path."""
        return self._next_hop.get(qualname)

    def witness(self, qualname: str) -> List[str]:
        """Node names from ``qualname`` down to the sink it reaches."""
        if qualname not in self._next_hop:
            return []
        return self.graph.witness_path(qualname, self._next_hop, self.sinks)

    def path_string(self, qualname: str) -> str:
        """The witness path rendered for a diagnostic message.

        Intermediate project functions are shortened to their last two
        dotted components (``ResultStore.put``); the external sink keeps
        its full dotted path (``time.sleep``) because that *is* its name.
        """
        nodes = self.witness(qualname)
        if not nodes:
            return qualname
        rendered = [display_name(n, self.graph.project) for n in nodes[:-1]]
        rendered.append(nodes[-1] if _is_external(nodes[-1], self.graph.project)
                        else display_name(nodes[-1], self.graph.project))
        return " -> ".join(rendered)


def display_name(qualname: str, project: ProjectContext) -> str:
    """A compact, unambiguous rendering of a graph node for humans."""
    if ":" in qualname:  # path-disambiguated module (stem collision)
        return qualname.rsplit(":", 1)[-1] or qualname
    parts = qualname.split(".")
    if len(parts) <= 2:
        return qualname
    return ".".join(parts[-2:])


def _is_external(node: str, project: ProjectContext) -> bool:
    return node not in project.functions


def functions_in_modules(
    project: ProjectContext, module_names: Iterable[str]
) -> Set[str]:
    """Qualnames of every function defined in the named modules.

    Used to build sanitizer sets: blocking a whole module makes all its
    functions trust boundaries for a taint.
    """
    wanted = set(module_names)
    out: Set[str] = set()
    for info in project.modules.values():
        if info.module not in wanted:
            continue
        for fn in info.functions.values():
            out.add(fn.qualname)
        for cls in info.classes.values():
            for method in cls.methods.values():
                out.add(method.qualname)
    return out


def async_functions(project: ProjectContext) -> Set[str]:
    """Qualnames of every ``async def`` in the project."""
    return {
        fn.qualname for fn in project.iter_functions() if fn.is_async
    }
