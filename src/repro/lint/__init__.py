"""``repro.lint`` — determinism & invariant static analysis for the simulator.

The whole reproduction rests on bit-identical determinism: cached results
(:mod:`repro.engine.store`), the skip-ahead differential suite and the
golden fixtures are only sound while simulations stay pure functions of
their job description.  The test suite catches violations *late* (a stale
cache entry, a golden diff) or *never* (an unseeded RNG that happens to be
stable on one machine).  This package catches the known failure classes
*statically*, at lint time, before the code ever runs:

* :mod:`~repro.lint.rules.wallclock` — ``no-wallclock``: model code must
  not read host clocks; simulated time comes from the cycle/picosecond
  clock.
* :mod:`~repro.lint.rules.unseeded_random` — ``no-unseeded-random``:
  :mod:`repro.util.rng` is the sole sanctioned randomness entry point.
* :mod:`~repro.lint.rules.frozen_config` — ``frozen-config``: config and
  job-spec dataclasses must be ``frozen=True``.
* :mod:`~repro.lint.rules.cache_key` — ``cache-key-completeness``: every
  field of a job spec must feed its cache key.
* :mod:`~repro.lint.rules.pickle_boundary` — ``pickle-boundary``: attrs
  dropped by ``__getstate__`` need a rebuild path.
* :mod:`~repro.lint.rules.mutable_default` — ``no-mutable-default``.
* :mod:`~repro.lint.rules.dict_order` — ``no-dict-order-dependence``:
  sorted iteration over sets in timing-model code.
* :mod:`~repro.lint.rules.untyped_stats` — ``no-untyped-stats``: model
  code accumulates into typed stats (dataclass fields or the
  :mod:`repro.telemetry` registry), never bare string dict keys.

On top of the per-file rules sits a whole-program pass
(:mod:`~repro.lint.project`: symbol table + module graph,
:mod:`~repro.lint.callgraph`, :mod:`~repro.lint.dataflow`) feeding the
concurrency-safety pack — ``blocking-in-async``, ``lock-discipline``,
``cross-thread-mutable-state``, ``await-discarded`` — and upgrading
``no-wallclock`` / ``no-unseeded-random`` to transitive call-graph taint
checks and ``cache-key-completeness`` to cross-module field tracking.

Run it as ``python -m repro.lint [paths]`` (see :mod:`repro.lint.cli` for
``--select/--ignore/--format=json/--list-rules``).  A finding can be
suppressed in place with a ``# repro: allow-<rule>`` pragma on the
offending line (or on a comment-only line directly above it); see
``docs/static-analysis.md`` for the rule catalogue and rationale.

The analyzer is pure stdlib (:mod:`ast`) — no third-party dependency — so
it runs anywhere the simulator runs and is itself covered by the tier-1
test suite (``tests/lint``).
"""

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import RULES, FileContext, Rule, all_rules
from repro.lint.runner import (
    LintReport,
    lint_file,
    lint_modules,
    lint_paths,
    lint_paths_report,
    lint_source,
)

__all__ = [
    "Diagnostic",
    "FileContext",
    "LintReport",
    "RULES",
    "Rule",
    "all_rules",
    "lint_file",
    "lint_modules",
    "lint_paths",
    "lint_paths_report",
    "lint_source",
]
