"""Rule protocol, per-file analysis context, and the rule registry.

A rule is a small, self-documenting object: a ``name`` (what ``--select``,
``--ignore`` and ``# repro: allow-<name>`` refer to), a one-line
``summary``, a ``rationale`` paragraph explaining which reproduction
invariant it protects (surfaced by ``--list-rules`` and mirrored in
``docs/static-analysis.md``), and a ``check(ctx)`` generator over
:class:`~repro.lint.diagnostics.Diagnostic`.

Rules register themselves with the :func:`register` decorator at import
time; :mod:`repro.lint.rules` imports every rule module, so importing that
package populates :data:`RULES`.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Tuple, Type

from repro.lint.diagnostics import Diagnostic

if TYPE_CHECKING:  # runtime import would be circular (project -> astutil)
    from repro.lint.project import ProjectContext

#: packages whose modules are *timing-model* code: they define what the
#: simulated hardware does and must be pure functions of their inputs.
#: (``repro.faults`` is a single module, matched by full name below.)
MODEL_PACKAGES = ("uarch", "core", "isa")

#: single modules that are model scope despite living at the package root.
MODEL_MODULES = ("repro.faults",)

#: the sanctioned randomness entry point — exempt from the random rules
#: (it exists precisely to wrap :mod:`random` behind seeded substreams).
RNG_MODULE = "repro.util.rng"


def is_model_module(module: str) -> bool:
    """Whether a dotted module name is timing-model code.

    Shared by :class:`FileContext` and the project-level taint rules, so
    per-file and cross-file passes agree on what "model scope" means.
    """
    if module in MODEL_MODULES:
        return True
    parts = module.split(".")
    return (
        len(parts) >= 2 and parts[0] == "repro" and parts[1] in MODEL_PACKAGES
    )


class FileContext:
    """Everything a rule needs to know about one file under analysis."""

    def __init__(self, path: str, source: str, tree: ast.Module, module: str) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        #: dotted module name (``repro.uarch.core``); derived from the file
        #: path by the runner, or passed explicitly by tests linting
        #: synthetic sources.
        self.module = module
        self.module_parts: Tuple[str, ...] = tuple(module.split("."))

    @property
    def in_model_scope(self) -> bool:
        """Whether this module is timing-model code (see MODEL_PACKAGES)."""
        return is_model_module(self.module)

    @property
    def is_rng_module(self) -> bool:
        """Whether this is the sanctioned RNG wrapper itself."""
        return self.module == RNG_MODULE

    def diag(self, rule: str, node: ast.AST, message: str) -> Diagnostic:
        """Build a finding anchored at ``node``."""
        return Diagnostic(
            rule=rule,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class Rule:
    """Base class for one lint rule (see the module docstring)."""

    #: registry key; also the pragma and --select/--ignore token.
    name: str = ""
    #: one-line description (rule listings, docs).
    summary: str = ""
    #: why the invariant matters for reproduction fidelity.
    rationale: str = ""
    #: when True, the whole-tree runner skips ``check`` and relies on
    #: ``check_project`` alone: the project-level analysis subsumes the
    #: per-file one with better precision (e.g. cache-key-completeness
    #: following fields across module boundaries).  ``lint_source`` /
    #: ``lint_file`` — which have no project — still run ``check``.
    project_replaces_check: bool = False

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Yield findings for one file.

        Default: none.  Project-only rules (the concurrency pack) leave
        this alone and implement ``check_project``; most rules override
        this one.
        """
        return iter(())

    def check_project(
        self, project: "ProjectContext"
    ) -> Iterator[Diagnostic]:
        """Yield findings that need the whole-program view.

        Default: no project-level findings.  Rules using the call graph
        and dataflow layers override this; diagnostics are anchored at a
        call site (not the sink), and the runner filters them through
        that *file's* pragmas, so ``# repro: allow-<rule>`` works at the
        reported line exactly like per-file findings.
        """
        return iter(())

    def __repr__(self) -> str:
        return f"<Rule {self.name}>"


#: name -> rule instance; populated by :func:`register` at import time.
RULES: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and index a rule by its name."""
    if not cls.name:
        raise ValueError(f"rule {cls.__name__} must define a name")
    if cls.name in RULES:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    RULES[cls.name] = cls()
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, in a stable (sorted-by-name) order."""
    import repro.lint.rules  # noqa: F401  (side effect: registration)

    return [RULES[name] for name in sorted(RULES)]
