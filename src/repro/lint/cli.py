"""``python -m repro.lint`` — the command-line front end.

Usage::

    python -m repro.lint [paths...]            # default: src
    python -m repro.lint --select frozen-config,no-wallclock src
    python -m repro.lint --ignore no-mutable-default src tests
    python -m repro.lint --format=json src     # machine-readable findings
    python -m repro.lint --format=github src   # ::error PR annotations
    python -m repro.lint --stats src tests     # run telemetry on stderr
    python -m repro.lint --list-rules          # the rule catalogue

Exit status: 0 clean, 1 findings, 2 usage error.  CI runs the tree-wide
invocation as part of the fast lint gate (see ``.github/workflows/ci.yml``
and ``docs/static-analysis.md``).  ``--stats`` writes to stderr so it
composes with every format, including ``--format=json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import textwrap
from typing import List, Optional, Sequence

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import RULES, Rule, all_rules
from repro.lint.runner import LintReport, lint_paths_report


def _split_names(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [name.strip() for name in raw.split(",") if name.strip()]


def _resolve_rules(
    select: Optional[List[str]], ignore: Optional[List[str]]
) -> List[Rule]:
    """Apply ``--select``/``--ignore`` to the registry, validating names."""
    rules = all_rules()  # also populates RULES
    known = set(RULES)
    for names in (select or []), (ignore or []):
        unknown = [n for n in names if n not in known]
        if unknown:
            raise SystemExit(
                f"error: unknown rule(s): {', '.join(unknown)}; "
                f"known rules: {', '.join(sorted(known))}"
            )
    if select is not None:
        rules = [r for r in rules if r.name in select]
    if ignore is not None:
        rules = [r for r in rules if r.name not in ignore]
    return rules


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.name}: {rule.summary}")
        lines.append(
            textwrap.fill(
                rule.rationale, width=76, initial_indent="    ",
                subsequent_indent="    ",
            )
        )
    return "\n".join(lines)


def _github_line(diag: Diagnostic) -> str:
    """One GitHub Actions workflow command annotating the finding inline.

    Newlines and the characters GitHub treats as property delimiters are
    percent-escaped per the workflow-command spec.
    """
    def esc(value: str, *, prop: bool = False) -> str:
        value = value.replace("%", "%25").replace("\r", "%0D").replace(
            "\n", "%0A"
        )
        if prop:
            value = value.replace(":", "%3A").replace(",", "%2C")
        return value

    return (
        f"::error file={esc(diag.path, prop=True)},line={diag.line},"
        f"col={diag.col + 1},title={esc(diag.rule, prop=True)}"
        f"::{esc(diag.message)}"
    )


def _print_stats(report: LintReport) -> None:
    print(
        f"stats: {report.file_count} files, {report.line_count} lines, "
        f"{len(report.findings)} findings",
        file=sys.stderr,
    )
    print(
        f"stats: project pass {report.project_build_seconds:.3f}s, "
        f"total {report.total_seconds:.3f}s",
        file=sys.stderr,
    )
    for rule_name, count in report.per_rule_counts().items():
        print(f"stats: {rule_name}: {count}", file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Determinism & invariant static analysis for the simulator "
            "(see docs/static-analysis.md)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="RULES",
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help="output format (default: text); github emits ::error "
        "workflow commands for inline PR annotations",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print run telemetry (files/LoC, per-rule counts, project-"
        "pass build time) to stderr",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    rules = _resolve_rules(_split_names(args.select), _split_names(args.ignore))
    report = lint_paths_report(args.paths, rules=rules)
    findings = report.findings

    if args.format == "json":
        print(json.dumps([d.to_dict() for d in findings], indent=2))
    elif args.format == "github":
        for diag in findings:
            print(_github_line(diag))
    else:
        for diag in findings:
            print(diag.format())
        if findings:
            noun = "finding" if len(findings) == 1 else "findings"
            print(f"{len(findings)} {noun}", file=sys.stderr)
    if args.stats:
        _print_stats(report)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
